// Ablation A2 — bulk PUT vs regular PUT (paper §V "Data Insertion").
//
// The paper reports that a 128 KB bulk-put message carrying up to 2570
// 16B/32B pairs is ~7x faster than issuing regular puts, because the
// per-command NVMe/DMA overhead amortizes over the whole frame.
//
// Flags: --keys=N (default 128K) --threads=T (default 4)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "harness/workloads.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 128 << 10);
  const auto threads = static_cast<std::uint32_t>(flags.GetUint("threads", 4));
  ApplyObservabilityFlags(flags);
  JsonReporter report("ablate_bulkput", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  std::printf("Ablation: bulk vs regular PUT, %s keys, %u threads\n",
              FormatCount(keys).c_str(), threads);

  InsertSpec bulk;
  bulk.total_keys = keys;
  bulk.threads = threads;
  bulk.shared_keyspace = true;
  bulk.use_bulk_put = true;
  CsdInsertOutcome with_bulk = RunCsdInsert(config, 32, bulk);

  InsertSpec single = bulk;
  single.use_bulk_put = false;
  CsdInsertOutcome with_single = RunCsdInsert(config, 32, single);

  Table table("A2: insert time by PUT style (paper: bulk is ~7x faster)",
              {"style", "insert time", "PCIe H2D bytes", "speedup"});
  table.AddRow({"regular PUT", FormatSeconds(with_single.insert_done),
                FormatBytes(with_single.pcie_h2d_bytes), "1.0x"});
  table.AddRow({"bulk PUT (128 KB frames)",
                FormatSeconds(with_bulk.insert_done),
                FormatBytes(with_bulk.pcie_h2d_bytes),
                FormatRatio(static_cast<double>(with_single.insert_done) /
                            static_cast<double>(with_bulk.insert_done))});
  table.Print();

  report.AddMetric("csd.bulk.keys_per_sec",
                   static_cast<double>(keys) * 1e9 /
                       static_cast<double>(with_bulk.insert_done));
  report.AddMetric("csd.single.keys_per_sec",
                   static_cast<double>(keys) * 1e9 /
                       static_cast<double>(with_single.insert_done));
  report.AddMetric("csd.bulk.pcie_h2d_bytes", with_bulk.pcie_h2d_bytes);
  report.AddMetric("csd.single.pcie_h2d_bytes", with_single.pcie_h2d_bytes);
  report.AddMetric("csd.bulk.speedup",
                   static_cast<double>(with_single.insert_done) /
                       static_cast<double>(with_bulk.insert_done));
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
