// Ablation A5 — compaction throughput vs SoC core count (paper §IV: the
// Sidewinder-100 runs the KV store on 4 weak ARM cores; the compactor is
// a multi-core pipeline, so its wall-clock should improve with cores).
//
// A fixed dataset (bulk-loaded in shuffled order, with a fused f32
// secondary index) is compacted under soc_cores ∈ {1, 2, 4, 8}. For each
// setting the table reports the simulated compaction time, the speedup
// over 1 core, the phase split, and a crc32c fingerprint of the compacted
// keyspace contents: PIDX sketch pivots, entry count, a primary scan, a
// sample of point gets, and a secondary range query. The fingerprint must
// be identical at every core count — parallelism may change timing and
// flash placement, never results.
//
// Flags: --keys=N (default 96K)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/keys.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "harness/tracing.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

// 32-byte value with an f32 secondary key at offset 28 and deterministic
// id-dependent filler (so value bytes also enter the fingerprint).
std::string ValueFor(std::uint64_t id) {
  std::string v(28, '\0');
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<char>('a' + (id + i * 7) % 26);
  }
  const float energy = static_cast<float>(id % 4096) * 0.25f;
  char buf[4];
  std::memcpy(buf, &energy, 4);
  v.append(buf, 4);
  return v;
}

struct SweepResult {
  Tick insert_done = 0;
  Tick compact_done = 0;
  std::uint32_t fingerprint = 0;
  std::uint64_t num_kvs = 0;
};

std::uint32_t ExtendWithPairs(
    std::uint32_t crc,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  for (const auto& [k, v] : rows) {
    crc = crc32c::Extend(crc, k.data(), k.size());
    crc = crc32c::Extend(crc, v.data(), v.size());
  }
  return crc;
}

sim::Task<void> Driver(client::Client* db, sim::Simulation* sim,
                       std::uint64_t keys, SweepResult* out) {
  auto created = co_await db->CreateKeyspace("ablate_cores");
  if (!created.ok()) co_return;
  auto ks = std::move(*created);

  // Shuffled (but deterministic) insertion order: stride coprime to keys.
  std::uint64_t stride = 7919;
  while (keys % stride == 0) ++stride;
  auto writer = ks.NewBulkWriter();
  for (std::uint64_t i = 0; i < keys; ++i) {
    const std::uint64_t id = (i * stride) % keys;
    if (!(co_await writer.Add(MakeFixedKey(id), ValueFor(id))).ok()) {
      co_return;
    }
  }
  if (!(co_await writer.Flush()).ok()) co_return;
  out->insert_done = sim->Now();

  nvme::SecondaryIndexSpec energy;
  energy.name = "energy";
  energy.value_offset = 28;
  energy.value_length = 4;
  energy.type = nvme::SecondaryKeyType::kF32;
  std::vector<nvme::SecondaryIndexSpec> specs;
  specs.push_back(std::move(energy));
  if (!(co_await ks.CompactWithIndexes(std::move(specs))).ok()) co_return;
  if (!(co_await ks.WaitCompaction()).ok()) co_return;
  out->compact_done = sim->Now();

  // Content fingerprint (order-sensitive, timing-insensitive).
  std::uint32_t crc = 0;
  auto stat = co_await ks.GetStat();
  if (!stat.ok()) co_return;
  out->num_kvs = stat->num_kvs;

  std::vector<std::pair<std::string, std::string>> rows;
  if (!(co_await ks.Scan(MakeFixedKey(keys / 3),
                         MakeFixedKey(keys / 3 + 256), 0, &rows))
           .ok()) {
    co_return;
  }
  crc = ExtendWithPairs(crc, rows);

  for (std::uint64_t probe = 0; probe < 32; ++probe) {
    const std::uint64_t id = (probe * keys) / 32;
    auto v = co_await ks.Get(MakeFixedKey(id));
    if (!v.ok()) co_return;
    crc = crc32c::Extend(crc, v->data(), v->size());
  }

  rows.clear();
  if (!(co_await ks.QuerySecondaryRangeF32("energy", 100.0f, 108.0f, 0,
                                           &rows))
           .ok()) {
    co_return;
  }
  crc = ExtendWithPairs(crc, rows);
  out->fingerprint = crc;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 96 << 10);
  if (keys == 0) {
    std::fprintf(stderr, "--keys must be > 0\n");
    return 2;
  }
  ApplyObservabilityFlags(flags);
  JsonReporter report("ablate_compact_cores", flags);

  std::printf(
      "Ablation: compaction pipeline vs SoC core count (%s keys, fused "
      "f32 index)\n",
      FormatCount(keys).c_str());
  Table table("A5: offloaded compaction vs soc_cores",
              {"cores", "compaction (async)", "speedup vs 1 core",
               "phase-1", "phase-2", "runs", "fan-in", "fingerprint"});

  Tick one_core_ticks = 0;
  std::uint32_t base_fingerprint = 0;
  std::uint64_t base_num_kvs = 0;
  bool monotone = true;
  bool identical = true;
  Tick prev_ticks = 0;

  const std::uint32_t core_counts[] = {1, 2, 4, 8};
  for (std::uint32_t cores : core_counts) {
    TestbedConfig config = TestbedConfig::Scaled();
    config.device.soc_cores = cores;

    CsdTestbed bed(config);
    SweepResult result;
    bed.sim().Spawn(Driver(&bed.client(), &bed.sim(), keys, &result));
    bed.sim().Run();

    const device::CompactionStats& stats = bed.dev().compaction_stats();
    const Tick compact_ticks = result.compact_done - result.insert_done;
    char fp[16];
    std::snprintf(fp, sizeof(fp), "%08x", result.fingerprint);

    if (cores == 1) {
      one_core_ticks = compact_ticks;
      base_fingerprint = result.fingerprint;
      base_num_kvs = result.num_kvs;
    } else {
      // Strictly slower is a regression; ties are fine (a dataset small
      // enough for a single run leaves nothing to parallelize).
      if (cores <= 4 && compact_ticks > prev_ticks) monotone = false;
      if (result.fingerprint != base_fingerprint ||
          result.num_kvs != base_num_kvs) {
        identical = false;
      }
    }
    prev_ticks = compact_ticks;

    const std::string point = "cores" + std::to_string(cores);
    // keys/sec through compaction: the gateable throughput metric.
    report.AddMetric("csd.compact." + point + ".keys_per_sec",
                     static_cast<double>(keys) * 1e9 /
                         static_cast<double>(compact_ticks));
    report.AddMetric("csd.compact." + point + ".ticks", compact_ticks);
    report.AddMetric("csd.compact." + point + ".phase1_ticks",
                     stats.phase1_ticks);
    report.AddMetric("csd.compact." + point + ".phase2_ticks",
                     stats.phase2_ticks);
    report.AddMetric("csd.compact." + point + ".fingerprint",
                     static_cast<std::uint64_t>(result.fingerprint));

    table.AddRow({std::to_string(cores), FormatSeconds(compact_ticks),
                  FormatRatio(static_cast<double>(one_core_ticks) /
                              static_cast<double>(compact_ticks)),
                  FormatSeconds(stats.phase1_ticks),
                  FormatSeconds(stats.phase2_ticks),
                  FormatCount(stats.runs_spilled),
                  FormatCount(stats.max_merge_fanin), fp});

    if (cores == 4) {
      PrintCompactionStats("device compaction counters (4 cores)", stats);
    }
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();

  std::printf("\ncompaction time monotone 1->4 cores: %s\n",
              monotone ? "yes" : "NO (regression!)");
  std::printf("contents identical across core counts: %s\n",
              identical ? "yes" : "NO (determinism bug!)");
  return (monotone && identical) ? 0 : 1;
}
