// Ablation A4 — SoC DRAM budget vs offloaded compaction time (paper §III
// "LSM-Trees": the device trades memory for extra merge-sort I/O rounds,
// hidden by asynchronous processing).
//
// A fixed dataset is compacted under shrinking DRAM budgets; smaller
// budgets mean more, smaller sorted runs and therefore more TEMP-zone
// traffic during the merge.
//
// Flags: --keys=N (default 256K)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>
#include <string>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "harness/workloads.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 256 << 10);
  ApplyObservabilityFlags(flags);
  JsonReporter report("ablate_dram", flags);

  std::printf("Ablation: SoC DRAM budget vs compaction cost (%s keys)\n",
              FormatCount(keys).c_str());
  Table table("A4: offloaded compaction vs SoC DRAM budget",
              {"DRAM budget", "insert", "compaction (async)",
               "device bytes written", "device bytes read"});

  for (std::uint64_t dram :
       {MiB(8), MiB(16), MiB(64), MiB(256)}) {
    TestbedConfig config = TestbedConfig::Scaled();
    config.device.dram_bytes = dram;

    InsertSpec spec;
    spec.total_keys = keys;
    spec.threads = 8;
    spec.shared_keyspace = true;
    CsdInsertOutcome outcome = RunCsdInsert(config, 32, spec);

    const std::string point = "dram" + std::to_string(dram >> 20);
    report.AddMetric("csd.compact." + point + ".keys_per_sec",
                     static_cast<double>(keys) * 1e9 /
                         static_cast<double>(outcome.compaction_done -
                                             outcome.insert_done));
    report.AddMetric("csd.compact." + point + ".zns_bytes_written",
                     outcome.zns_bytes_written);
    report.AddMetric("csd.compact." + point + ".zns_bytes_read",
                     outcome.zns_bytes_read);
    table.AddRow({FormatBytes(dram), FormatSeconds(outcome.insert_done),
                  FormatSeconds(outcome.compaction_done - outcome.insert_done),
                  FormatBytes(outcome.zns_bytes_written),
                  FormatBytes(outcome.zns_bytes_read)});
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
