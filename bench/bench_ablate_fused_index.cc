// Ablation A3 — fused vs separate secondary-index construction.
//
// The paper (§V) builds the primary index and each secondary index as
// separate device operations, and notes as future work that consolidating
// them into one pass would avoid "repeatedly reading back keyspace data
// into SoC DRAM" at the cost of increased DRAM usage. Both variants are
// implemented here; this bench quantifies the trade.
//
// Flags: --keys=N (default 256K)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>
#include <string>

#include "common/keys.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "harness/tracing.h"
#include "sim/sync.h"
#include "vpic/vpic.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

struct Outcome {
  Tick device_done;  // compaction + index work finished
  std::uint64_t zns_reads;
  std::uint64_t zns_writes;
};

Outcome Run(bool fused, std::uint64_t keys, std::uint64_t dram_bytes) {
  TestbedConfig config = TestbedConfig::Scaled();
  config.device.dram_bytes = dram_bytes;
  CsdTestbed bed(config);
  Outcome outcome{};
  bed.sim().Spawn([](CsdTestbed* tb, bool fuse,
                     std::uint64_t n) -> sim::Task<void> {
    auto ks = (co_await tb->client().CreateKeyspace("a3")).value();
    auto writer = ks.NewBulkWriter();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string value(28, 'p');
      const float energy = static_cast<float>(i % 1000);
      value.append(reinterpret_cast<const char*>(&energy), 4);
      (void)co_await writer.Add(MakeFixedKey(i), value);
    }
    (void)co_await writer.Flush();

    nvme::SecondaryIndexSpec energy_spec;
    energy_spec.name = "energy";
    energy_spec.value_offset = 28;
    energy_spec.value_length = 4;
    energy_spec.type = nvme::SecondaryKeyType::kF32;
    if (fuse) {
      std::vector<nvme::SecondaryIndexSpec> specs;
      specs.push_back(std::move(energy_spec));
      (void)co_await ks.CompactWithIndexes(std::move(specs));
      (void)co_await ks.WaitCompaction();
    } else {
      (void)co_await ks.Compact();
      (void)co_await ks.WaitCompaction();
      (void)co_await ks.CreateSecondaryIndex(std::move(energy_spec));
    }
  }(&bed, fused, keys));
  bed.sim().Run();
  outcome.device_done = bed.sim().Now();
  outcome.zns_reads = bed.dev().ssd().total_bytes_read();
  outcome.zns_writes = bed.dev().ssd().total_bytes_written();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 256 << 10);
  ApplyObservabilityFlags(flags);
  JsonReporter report("ablate_fused_index", flags);

  std::printf(
      "Ablation: separate (paper design) vs fused (paper future work) "
      "index construction, %s keys\n",
      FormatCount(keys).c_str());
  Table table("A3: compaction + energy-index build",
              {"variant", "SoC DRAM", "total device time", "ZNS read",
               "ZNS written"});
  for (std::uint64_t dram : {MiB(256), MiB(16)}) {
    Outcome separate = Run(false, keys, dram);
    Outcome fused = Run(true, keys, dram);
    const std::string point = "dram" + std::to_string(dram >> 20);
    report.AddMetric("csd.separate." + point + ".keys_per_sec",
                     static_cast<double>(keys) * 1e9 /
                         static_cast<double>(separate.device_done));
    report.AddMetric("csd.fused." + point + ".keys_per_sec",
                     static_cast<double>(keys) * 1e9 /
                         static_cast<double>(fused.device_done));
    report.AddMetric("csd.separate." + point + ".zns_reads",
                     separate.zns_reads);
    report.AddMetric("csd.fused." + point + ".zns_reads", fused.zns_reads);
    table.AddRow({"separate", FormatBytes(dram),
                  FormatSeconds(separate.device_done),
                  FormatBytes(separate.zns_reads),
                  FormatBytes(separate.zns_writes)});
    table.AddRow({"fused", FormatBytes(dram),
                  FormatSeconds(fused.device_done),
                  FormatBytes(fused.zns_reads), FormatBytes(fused.zns_writes)});
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
