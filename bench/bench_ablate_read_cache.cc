// Ablation A6 — device read-path acceleration (DESIGN.md §10): the DRAM
// index-block cache, the compaction-built bloom filter, and the value
// gather fan-out.
//
// A fixed dataset is bulk-loaded and compacted per configuration, then
// three read phases run against it on a fresh testbed each time:
//   scan      a full primary range scan (index prefetch + gather fan-out)
//   hit GETs  point gets over present keys, after the scan warmed the
//             cache — throughput must improve monotonically with cache
//             size (LRU inclusion: a bigger cache keeps a superset)
//   miss GETs point gets above the max key — with bloom on these answer
//             from DRAM; with bloom off each pays an index-block read, so
//             bloom on must be >= 5x faster when the cache is off
// A crc32c fingerprint over scan rows and get results must be identical
// in every configuration: acceleration changes timing, never contents.
//
// Flags: --keys=N (default 96K) --gets=N (default 2048)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/keys.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "harness/tracing.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

// 32-byte value with deterministic id-dependent filler.
std::string ValueFor(std::uint64_t id) {
  std::string v(32, '\0');
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<char>('a' + (id + i * 7) % 26);
  }
  return v;
}

struct SweepResult {
  Tick scan_ticks = 0;
  Tick hit_get_ticks = 0;
  Tick miss_get_ticks = 0;
  std::uint64_t scan_rows = 0;
  std::uint32_t fingerprint = 0;
  bool ok = false;
};

std::uint32_t ExtendWithPairs(
    std::uint32_t crc,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  for (const auto& [k, v] : rows) {
    crc = crc32c::Extend(crc, k.data(), k.size());
    crc = crc32c::Extend(crc, v.data(), v.size());
  }
  return crc;
}

sim::Task<void> Driver(client::Client* db, sim::Simulation* sim,
                       std::uint64_t keys, std::uint64_t gets,
                       SweepResult* out) {
  auto created = co_await db->CreateKeyspace("ablate_read");
  if (!created.ok()) co_return;
  auto ks = std::move(*created);

  // Shuffled (but deterministic) insertion order: stride coprime to keys.
  std::uint64_t stride = 7919;
  while (keys % stride == 0) ++stride;
  auto writer = ks.NewBulkWriter();
  for (std::uint64_t i = 0; i < keys; ++i) {
    const std::uint64_t id = (i * stride) % keys;
    if (!(co_await writer.Add(MakeFixedKey(id), ValueFor(id))).ok()) {
      co_return;
    }
  }
  if (!(co_await writer.Flush()).ok()) co_return;
  if (!(co_await ks.Compact()).ok()) co_return;
  if (!(co_await ks.WaitCompaction()).ok()) co_return;

  std::uint32_t crc = 0;

  // Phase 1: full primary scan. Exercises the index-block prefetch
  // pipeline and the gather fan-out, and warms the cache for phase 2.
  Tick t0 = sim->Now();
  std::vector<std::pair<std::string, std::string>> rows;
  if (!(co_await ks.Scan("", "\x7f", 0, &rows)).ok()) co_return;
  out->scan_ticks = sim->Now() - t0;
  out->scan_rows = rows.size();
  crc = ExtendWithPairs(crc, rows);
  rows.clear();

  // Phase 2: point gets over present keys, spread across the whole index
  // (stride coprime to keys so every region is touched).
  std::uint64_t get_stride = 4093;
  while (keys % get_stride == 0) ++get_stride;
  t0 = sim->Now();
  for (std::uint64_t g = 0; g < gets; ++g) {
    const std::uint64_t id = (g * get_stride) % keys;
    auto v = co_await ks.Get(MakeFixedKey(id));
    if (!v.ok()) co_return;
    crc = crc32c::Extend(crc, v->data(), v->size());
  }
  out->hit_get_ticks = sim->Now() - t0;

  // Phase 3: point gets above the max key — every one a definite miss.
  t0 = sim->Now();
  for (std::uint64_t g = 0; g < gets; ++g) {
    auto v = co_await ks.Get(MakeFixedKey(keys + 1 + g));
    if (!v.status().IsNotFound()) co_return;
  }
  out->miss_get_ticks = sim->Now() - t0;

  out->fingerprint = crc;
  out->ok = true;
}

struct Config {
  const char* label;
  std::uint64_t cache_bytes;  // 0 = cache disabled
  std::uint32_t bloom_bits;
  std::uint32_t fanout;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 96 << 10);
  const std::uint64_t gets = flags.GetUint("gets", 2048);
  if (keys == 0 || gets == 0) {
    std::fprintf(stderr, "--keys and --gets must be > 0\n");
    return 2;
  }
  ApplyObservabilityFlags(flags);
  JsonReporter report("ablate_read_cache", flags);

  std::printf(
      "Ablation: read-path acceleration (%s keys, %s gets per phase)\n",
      FormatCount(keys).c_str(), FormatCount(gets).c_str());
  Table table("A6: index cache x bloom x gather fan-out",
              {"config", "scan", "hit GETs/s", "miss GETs/s", "hit ratio",
               "fingerprint"});

  // The first four rows sweep ONLY the cache size (the monotone check);
  // the two bloom rows pin cache off + fanout 1 so the miss-path delta is
  // purely the filter; the last row isolates gather fan-out.
  const Config configs[] = {
      {"cache=0,bloom=on,fan=8", 0, 10, 8},
      {"cache=64K,bloom=on,fan=8", 64 << 10, 10, 8},
      {"cache=256K,bloom=on,fan=8", 256 << 10, 10, 8},
      {"cache=1M,bloom=on,fan=8", 1 << 20, 10, 8},
      {"cache=0,bloom=off,fan=1", 0, 0, 1},
      {"cache=0,bloom=on,fan=1", 0, 10, 1},
      {"cache=256K,bloom=on,fan=1", 256 << 10, 10, 1},
  };
  constexpr int kCacheSweep = 4;  // configs[0..3] form the monotone sweep
  constexpr int kBloomOff = 4;
  constexpr int kBloomOn = 5;

  bool all_ok = true;
  bool identical = true;
  bool monotone = true;
  std::uint32_t base_fingerprint = 0;
  Tick prev_hit_ticks = 0;
  Tick sweep_first_hit_ticks = 0;
  Tick sweep_last_hit_ticks = 0;
  Tick bloom_off_miss_ticks = 0;
  Tick bloom_on_miss_ticks = 0;

  for (int c = 0; c < static_cast<int>(std::size(configs)); ++c) {
    const Config& cfg = configs[c];
    TestbedConfig config = TestbedConfig::Scaled();
    config.device.index_cache_enabled = cfg.cache_bytes != 0;
    config.device.index_cache_bytes = cfg.cache_bytes;
    config.device.bloom_bits_per_key = cfg.bloom_bits;
    config.device.gather_fanout = cfg.fanout;

    CsdTestbed bed(config);
    SweepResult result;
    bed.sim().Spawn(Driver(&bed.client(), &bed.sim(), keys, gets, &result));
    bed.sim().Run();

    if (!result.ok) {
      std::fprintf(stderr, "config %s: driver failed\n", cfg.label);
      all_ok = false;
      continue;
    }
    if (c == 0) {
      base_fingerprint = result.fingerprint;
    } else if (result.fingerprint != base_fingerprint) {
      identical = false;
    }
    if (c < kCacheSweep) {
      if (c == 0) {
        sweep_first_hit_ticks = result.hit_get_ticks;
      } else if (result.hit_get_ticks > prev_hit_ticks) {
        monotone = false;
      }
      prev_hit_ticks = result.hit_get_ticks;
      sweep_last_hit_ticks = result.hit_get_ticks;
    }
    if (c == kBloomOff) bloom_off_miss_ticks = result.miss_get_ticks;
    if (c == kBloomOn) bloom_on_miss_ticks = result.miss_get_ticks;

    const double hit_gets_per_sec = static_cast<double>(gets) * 1e9 /
                                    static_cast<double>(result.hit_get_ticks);
    const double miss_gets_per_sec =
        static_cast<double>(gets) * 1e9 /
        static_cast<double>(result.miss_get_ticks);
    const double scan_rows_per_sec =
        static_cast<double>(result.scan_rows) * 1e9 /
        static_cast<double>(result.scan_ticks);
    const std::uint64_t hits =
        bed.sim().stats().counter_value("device.read_cache.hits");
    const std::uint64_t misses =
        bed.sim().stats().counter_value("device.read_cache.misses");
    const double hit_ratio =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);

    std::string point = "c" + std::to_string(c);
    report.AddMetric("csd.read." + point + ".hit_gets_per_sec",
                     hit_gets_per_sec);
    report.AddMetric("csd.read." + point + ".miss_gets_per_sec",
                     miss_gets_per_sec);
    report.AddMetric("csd.read." + point + ".scan_rows_per_sec",
                     scan_rows_per_sec);
    report.AddMetric("csd.read." + point + ".cache_hit_ratio", hit_ratio);
    report.AddMetric("csd.read." + point + ".fingerprint",
                     static_cast<std::uint64_t>(result.fingerprint));
    if (c == kCacheSweep - 1) {
      // Reference config for the raw device counters: full cache.
      report.AddStats(bed.sim().stats(), "device.read_cache.");
      report.AddStats(bed.sim().stats(), "device.bloom.");
      report.AddStats(bed.sim().stats(), "device.gather.");
      report.AddStats(bed.sim().stats(), "device.prefetch.");
    }

    char fp[16];
    std::snprintf(fp, sizeof(fp), "%08x", result.fingerprint);
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.2f", hit_ratio);
    table.AddRow({cfg.label, FormatSeconds(result.scan_ticks),
                  FormatCount(static_cast<std::uint64_t>(hit_gets_per_sec)),
                  FormatCount(static_cast<std::uint64_t>(miss_gets_per_sec)),
                  ratio, fp});
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();

  const bool cache_helps = sweep_last_hit_ticks < sweep_first_hit_ticks;
  const bool bloom_5x =
      bloom_on_miss_ticks > 0 &&
      bloom_off_miss_ticks >= 5 * bloom_on_miss_ticks;
  std::printf("\nhit-GET throughput monotone with cache size: %s\n",
              monotone ? "yes" : "NO (regression!)");
  std::printf("largest cache strictly faster than no cache: %s\n",
              cache_helps ? "yes" : "NO (regression!)");
  std::printf("bloom >= 5x on all-miss gets (cache off): %s (%.1fx)\n",
              bloom_5x ? "yes" : "NO (regression!)",
              bloom_on_miss_ticks == 0
                  ? 0.0
                  : static_cast<double>(bloom_off_miss_ticks) /
                        static_cast<double>(bloom_on_miss_ticks));
  std::printf("contents identical across configs: %s\n",
              identical ? "yes" : "NO (determinism bug!)");
  return (all_ok && identical && monotone && cache_helps && bloom_5x) ? 0 : 1;
}
