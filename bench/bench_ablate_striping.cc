// Ablation A1 — zone-cluster striping (paper §IV "Zone Manager").
//
// KV-CSD allocates zones in clusters and rotates writes across a cluster's
// zones from a random start offset so concurrent writers spread over SSD
// channels. This ablation varies the cluster size: with 1 zone per cluster
// every flush of a keyspace serializes on one channel; with more zones the
// flush pipeline overlaps channel work.
//
// Flags: --keys_per_thread=N (default 64K) --threads=T (default 8)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>
#include <string>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "harness/workloads.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys_per_thread =
      flags.GetUint("keys_per_thread", 64 << 10);
  const auto threads =
      static_cast<std::uint32_t>(flags.GetUint("threads", 8));
  ApplyObservabilityFlags(flags);
  JsonReporter report("ablate_striping", flags);

  std::printf("Ablation: zone-cluster striping width, %u writers x %s keys\n",
              threads, FormatCount(keys_per_thread).c_str());

  Table table("A1: insert + offloaded compaction vs zones per cluster",
              {"zones/cluster", "insert", "compaction done", "vs width 1"});

  Tick baseline = 0;
  for (std::uint32_t width : {1u, 2u, 4u, 8u}) {
    TestbedConfig config = TestbedConfig::Scaled();
    config.device.zones.zones_per_cluster = width;

    InsertSpec spec;
    spec.total_keys = keys_per_thread * threads;
    spec.threads = threads;
    spec.shared_keyspace = false;
    CsdInsertOutcome outcome = RunCsdInsert(config, 32, spec);
    if (width == 1) baseline = outcome.compaction_done;

    const std::string point = "width" + std::to_string(width);
    report.AddMetric("csd.put." + point + ".keys_per_sec",
                     static_cast<double>(spec.total_keys) * 1e9 /
                         static_cast<double>(outcome.insert_done));
    report.AddMetric("csd.total." + point + ".keys_per_sec",
                     static_cast<double>(spec.total_keys) * 1e9 /
                         static_cast<double>(outcome.compaction_done));
    table.AddRow({std::to_string(width),
                  FormatSeconds(outcome.insert_done),
                  FormatSeconds(outcome.compaction_done),
                  FormatRatio(static_cast<double>(baseline) /
                              static_cast<double>(outcome.compaction_done))});
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
