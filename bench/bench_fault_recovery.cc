// Recovery benchmark — simulated Device::Recover() latency vs keyspace
// count after a power cut.
//
// For each keyspace count the bench loads K keyspaces (each with --keys
// acknowledged KVs), cuts power via the fault injector, power-cycles the
// device (Device::Restart over the surviving flash bytes) and times
// Recover(). Two rows per K: WRITABLE keyspaces, whose KLOG chains must
// be replayed end to end to rebuild key counts and bounds, and COMPACTED
// keyspaces, which only re-read index footers. The gap between the rows
// is the price of crashing with unsorted logs, which is why recovery
// time scales with the volume of un-compacted data rather than with the
// keyspace count itself.
//
// Flags: --keys=N per keyspace (default 2000)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/keys.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "hostenv/cost_model.h"
#include "kvcsd/device.h"
#include "nvme/queue.h"
#include "sim/fault.h"
#include "sim/resources.h"
#include "sim/simulation.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

std::string ValueFor(std::uint64_t id) {
  std::string v(64, '\0');
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<char>('a' + (id + i * 11) % 26);
  }
  return v;
}

device::DeviceConfig BenchConfig(sim::FaultInjector* faults) {
  device::DeviceConfig d;
  d.zns.zone_size = KiB(256);
  d.zns.num_zones = 512;
  d.zns.nand.channels = 8;
  d.zns.faults = faults;
  d.dram_bytes = MiB(4);
  d.write_buffer_bytes = KiB(16);
  return d;
}

struct RunResult {
  bool load_ok = false;
  bool recover_ok = false;
  Tick recovery_ticks = 0;
  std::uint64_t recovered_kvs = 0;
};

sim::Task<void> Load(client::Client* db, std::uint32_t keyspaces,
                     std::uint64_t keys, bool compacted, RunResult* out) {
  for (std::uint32_t i = 0; i < keyspaces; ++i) {
    auto created = co_await db->CreateKeyspace("ks" + std::to_string(i));
    if (!created.ok()) co_return;
    auto ks = std::move(*created);
    for (std::uint64_t k = 0; k < keys; ++k) {
      if (!(co_await ks.Put(MakeFixedKey(k), ValueFor(k))).ok()) co_return;
    }
    if (!(co_await ks.Sync()).ok()) co_return;
    if (compacted) {
      if (!(co_await ks.Compact()).ok()) co_return;
      if (!(co_await ks.WaitCompaction()).ok()) co_return;
    }
  }
  out->load_ok = true;
}

sim::Task<void> Recover(device::Device* dev, client::Client* db,
                        sim::Simulation* sim, std::uint32_t keyspaces,
                        RunResult* out) {
  const Tick start = sim->Now();
  if (!(co_await dev->Recover()).ok()) co_return;
  out->recovery_ticks = sim->Now() - start;
  for (std::uint32_t i = 0; i < keyspaces; ++i) {
    auto opened = co_await db->OpenKeyspace("ks" + std::to_string(i));
    if (!opened.ok()) co_return;
    auto stat = co_await opened->GetStat();
    if (!stat.ok()) co_return;
    out->recovered_kvs += stat->num_kvs;
  }
  out->recover_ok = true;
}

RunResult RunOne(std::uint32_t keyspaces, std::uint64_t keys,
                 bool compacted) {
  sim::Simulation sim;
  // This bench assembles its device by hand (no CsdTestbed), so request
  // tracing explicitly; the dump covers both the load and the recovery.
  TraceRequest::EnableOn(&sim);
  sim::FaultInjector faults(keyspaces * 31 + (compacted ? 1 : 0));
  const device::DeviceConfig cfg = BenchConfig(&faults);

  RunResult result;
  nvme::QueueSet queue(&sim, nvme::PcieConfig{});
  auto dev = std::make_unique<device::Device>(&sim, cfg, &queue);
  dev->Start();
  sim::CpuPool host_cpu(&sim, "host", 8);
  client::Client db(&queue, &host_cpu, hostenv::CostModel::Host());
  sim.Spawn(Load(&db, keyspaces, keys, compacted, &result));
  sim.Run();
  if (!result.load_ok) return result;

  faults.Crash();  // power cut; every acked byte is behind CommitTail

  nvme::QueueSet queue2(&sim, nvme::PcieConfig{});
  auto dev2 = device::Device::Restart(&sim, cfg, &queue2, *dev);
  dev2->Start();
  client::Client db2(&queue2, &host_cpu, hostenv::CostModel::Host());
  sim.Spawn(Recover(dev2.get(), &db2, &sim, keyspaces, &result));
  sim.Run();
  TraceRequest::Dump(&sim);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 2000);
  if (keys == 0) {
    std::fprintf(stderr, "--keys must be > 0\n");
    return 2;
  }
  ApplyObservabilityFlags(flags);
  JsonReporter report("fault_recovery", flags);

  std::printf(
      "Recovery after power cut: Device::Recover() vs keyspace count "
      "(%s keys/keyspace)\n",
      FormatCount(keys).c_str());
  Table table("recovery latency (simulated)",
              {"keyspaces", "state", "recovered kvs", "recovery",
               "per keyspace"});

  bool all_ok = true;
  const std::uint32_t counts[] = {1, 2, 4, 8, 16};
  for (std::uint32_t k : counts) {
    for (bool compacted : {false, true}) {
      RunResult r = RunOne(k, keys, compacted);
      if (!r.load_ok || !r.recover_ok ||
          r.recovered_kvs != static_cast<std::uint64_t>(k) * keys) {
        all_ok = false;
      }
      const std::string point =
          std::string(compacted ? "compacted" : "writable") + ".ks" +
          std::to_string(k);
      report.AddMetric("recover." + point + ".kvs_per_sec",
                       static_cast<double>(r.recovered_kvs) * 1e9 /
                           static_cast<double>(r.recovery_ticks));
      report.AddMetric("recover." + point + ".ticks", r.recovery_ticks);
      table.AddRow({std::to_string(k), compacted ? "COMPACTED" : "WRITABLE",
                    FormatCount(r.recovered_kvs),
                    FormatSeconds(r.recovery_ticks),
                    FormatSeconds(r.recovery_ticks / k)});
    }
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();

  std::printf("\nall runs loaded, recovered, and kept every acked kv: %s\n",
              all_ok ? "yes" : "NO (recovery bug!)");
  return all_ok ? 0 : 1;
}
