// Fig. 10 — "Performance of random GET operations" + I/O statistics.
//
//   Dataset: 32 keyspaces x N keys (paper: 32M each, 1B total), built the
//   same way as Fig. 9, fully compacted. Then 32 query threads (one per
//   keyspace) issue uniformly random GETs; total GET count sweeps the
//   x-axis. KV-CSD caches nothing; the OS page cache is dropped before
//   each RocksDB run (its block cache then warms up *within* a run — the
//   client-side caching effect the paper describes).
//
// Paper's headline: KV-CSD up to 1.3x faster; RocksDB shows heavy read
// inflation (Fig. 10b) and improves as more keys are queried.
//
// Flags: --keys_per_keyspace=N (default 64K; paper 32M)
//        --keyspaces=K (default 32) --seed=S
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <algorithm>
#include <cstdio>

#include "common/keys.h"
#include "common/random.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "harness/workloads.h"
#include "sim/sync.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

// Sequential ids 0..N-1 per keyspace so random GETs always hit.
sim::Task<void> CsdLoader(CsdTestbed* bed, std::uint64_t keys,
                          std::uint32_t thread, sim::WaitGroup* wg,
                          std::vector<client::KeyspaceHandle>* handles) {
  auto ks = (co_await bed->client().CreateKeyspace(
                 "ks" + std::to_string(thread)))
                .value();
  auto writer = ks.NewBulkWriter();
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)co_await writer.Add(MakeFixedKey(i), std::string(32, 'v'));
  }
  (void)co_await writer.Flush();
  (void)co_await ks.Compact();
  (void)co_await ks.WaitCompaction();
  (*handles)[thread] = ks;
  wg->Done();
}

sim::Task<void> LsmLoader(LsmTestbed* bed, std::uint64_t keys,
                          std::uint32_t thread, sim::WaitGroup* wg,
                          std::vector<std::unique_ptr<lsm::Db>>* dbs) {
  auto db = (co_await bed->OpenDb("db" + std::to_string(thread),
                                  lsm::CompactionMode::kAuto))
                .value();
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)co_await db->Put(MakeFixedKey(i), std::string(32, 'v'));
  }
  (void)co_await db->Flush();
  co_await db->WaitForIdle();
  (*dbs)[thread] = std::move(db);
  wg->Done();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys_per_keyspace =
      flags.GetUint("keys_per_keyspace", 64 << 10);
  const auto keyspaces =
      static_cast<std::uint32_t>(flags.GetUint("keyspaces", 32));
  const std::uint64_t seed = flags.GetUint("seed", 99);
  ApplyObservabilityFlags(flags);
  JsonReporter report("fig10_get", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  config.ScaleLsmTreeTo(keys_per_keyspace * (16 + 32));
  // RocksDB's default block cache is 8 MB per instance; scale it with the
  // dataset the same way the tree is scaled (paper: 256 MB cache for a
  // 48 GB dataset, ~0.5%).
  config.block_cache_bytes =
      std::max<std::uint64_t>(MiB(1), keyspaces * keys_per_keyspace * 48 / 200);
  std::printf("%s", config.Describe().c_str());
  std::printf("Dataset: %u keyspaces x %s keys (16B/32B)\n", keyspaces,
              FormatCount(keys_per_keyspace).c_str());

  // ---- build both datasets once ----
  CsdTestbed csd_bed(config);
  std::vector<client::KeyspaceHandle> csd_handles(keyspaces);
  {
    sim::WaitGroup wg(&csd_bed.sim());
    wg.Add(keyspaces);
    for (std::uint32_t t = 0; t < keyspaces; ++t) {
      csd_bed.sim().Spawn(
          CsdLoader(&csd_bed, keys_per_keyspace, t, &wg, &csd_handles));
    }
    csd_bed.sim().Run();
  }

  LsmTestbed lsm_bed(config);
  std::vector<std::unique_ptr<lsm::Db>> lsm_dbs(keyspaces);
  {
    sim::WaitGroup wg(&lsm_bed.sim());
    wg.Add(keyspaces);
    for (std::uint32_t t = 0; t < keyspaces; ++t) {
      lsm_bed.sim().Spawn(
          LsmLoader(&lsm_bed, keys_per_keyspace, t, &wg, &lsm_dbs));
    }
    lsm_bed.sim().Run();
  }
  std::vector<lsm::Db*> lsm_ptrs;
  for (auto& db : lsm_dbs) lsm_ptrs.push_back(db.get());

  // ---- GET sweeps ----
  Table time_table("Fig 10a: random GET time vs query count",
                   {"queries", "KV-CSD", "RocksDB", "speedup"});
  Table io_table("Fig 10b: I/O statistics (device bytes read per run)",
                 {"queries", "KV-CSD read", "KV-CSD -> host", "RocksDB read",
                  "RocksDB read inflation"});

  const std::uint64_t base = flags.GetUint("base_gets", 3200);
  for (std::uint64_t factor : {1ull, 2ull, 4ull, 7ull, 10ull}) {
    GetSpec spec;
    spec.total_gets = base * factor;  // paper: 32K..320K
    spec.keys_per_keyspace = keys_per_keyspace;
    spec.threads = keyspaces;
    spec.seed = seed + factor;

    QueryOutcome csd = RunCsdGets(csd_bed, csd_handles, spec);
    // The paper cleans the OS page cache before each RocksDB run.
    QueryOutcome rocks =
        RunLsmGets(lsm_bed, lsm_ptrs, spec, /*drop_page_cache=*/true);

    const std::string point = "gets" + std::to_string(spec.total_gets);
    report.AddMetric("csd.get." + point + ".gets_per_sec",
                     static_cast<double>(spec.total_gets) * 1e9 /
                         static_cast<double>(csd.query_time));
    report.AddMetric("lsm.get." + point + ".gets_per_sec",
                     static_cast<double>(spec.total_gets) * 1e9 /
                         static_cast<double>(rocks.query_time));
    report.AddMetric("csd.get." + point + ".zns_bytes_read",
                     csd.device_bytes_read);
    report.AddMetric("lsm.get." + point + ".ssd_bytes_read",
                     rocks.device_bytes_read);

    const std::uint64_t useful_bytes = spec.total_gets * (16 + 32);
    time_table.AddRow(
        {FormatCount(spec.total_gets), FormatSeconds(csd.query_time),
         FormatSeconds(rocks.query_time),
         FormatRatio(static_cast<double>(rocks.query_time) /
                     static_cast<double>(csd.query_time))});
    io_table.AddRow(
        {FormatCount(spec.total_gets), FormatBytes(csd.device_bytes_read),
         FormatBytes(csd.pcie_d2h_bytes),
         FormatBytes(rocks.device_bytes_read),
         FormatRatio(static_cast<double>(rocks.device_bytes_read) /
                     static_cast<double>(useful_bytes))});
  }
  time_table.Print();
  io_table.Print();
  // Host-visible GET latency percentiles across every sweep point, plus
  // the device's per-command view — the perf gate watches these p99s.
  report.AddStats(csd_bed.sim().stats(), "client.cmd.");
  report.AddStats(csd_bed.sim().stats(), "device.cmd.");
  // Read-path acceleration counters (DESIGN.md §10): index-cache traffic,
  // bloom outcomes, and gather/prefetch behavior across the whole sweep.
  report.AddStats(csd_bed.sim().stats(), "device.read_cache.");
  report.AddStats(csd_bed.sim().stats(), "device.bloom.");
  report.AddStats(csd_bed.sim().stats(), "device.gather.");
  report.AddStats(csd_bed.sim().stats(), "device.prefetch.");
  const std::uint64_t cache_hits =
      csd_bed.sim().stats().counter_value("device.read_cache.hits");
  const std::uint64_t cache_misses =
      csd_bed.sim().stats().counter_value("device.read_cache.misses");
  report.AddMetric("csd.read_cache.hit_ratio",
                   cache_hits + cache_misses == 0
                       ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(cache_hits + cache_misses));
  report.AddCompactionStats(csd_bed.dev().compaction_stats());
  report.AddTable(time_table);
  report.AddTable(io_table);
  report.WriteIfRequested();
  return 0;
}
