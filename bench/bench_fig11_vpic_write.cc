// Fig. 11 — "Breakdown of KV-CSD and RocksDB insertion time" for the VPIC
// macro benchmark (paper §VI-C write phase).
//
//   A synthetic VPIC dump (paper: 256M particles x 48B in 16 files) is
//   loaded by 16 threads into 16 keyspaces / RocksDB instances.
//   KV-CSD: bulk-put particles, then deferred compaction + secondary index
//   on kinetic energy — both run asynchronously in the device, so the
//   application only experiences the insert time ("effective write time").
//   RocksDB: primary + auxiliary (1 B-prefixed energy) records, automatic
//   compaction; the application waits for compaction to finish.
//
// Paper's headline: 66 s effective write vs 704 s -> 10.6x.
//
// Flags: --particles=N (default 2M; paper 256M) --files=F (default 16)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "vpic_common.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT
using namespace kvcsd::bench;    // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  vpic::GeneratorConfig gen;
  gen.num_particles = flags.GetUint("particles", 2 << 20);
  gen.num_files = static_cast<std::uint32_t>(flags.GetUint("files", 16));
  gen.seed = flags.GetUint("seed", 2023);
  ApplyObservabilityFlags(flags);
  JsonReporter report("fig11_vpic_write", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  // Per-instance data: particles/files x (48 B particle + ~30 B aux pair).
  config.ScaleLsmTreeTo(gen.num_particles / gen.num_files * 78);
  std::printf("%s", config.Describe().c_str());
  std::printf("Dataset: %s synthetic VPIC particles (48 B) in %u files\n",
              FormatCount(gen.num_particles).c_str(), gen.num_files);

  const vpic::Dump dump(gen);

  CsdTestbed csd_bed(config);
  std::vector<client::KeyspaceHandle> handles;
  CsdVpicTimes csd = LoadVpicIntoCsd(csd_bed, dump, &handles);

  LsmTestbed lsm_bed(config);
  std::vector<std::unique_ptr<lsm::Db>> dbs;
  LsmVpicTimes rocks = LoadVpicIntoLsm(lsm_bed, dump, &dbs);

  const Tick rocks_effective = rocks.insert + rocks.compaction_wait;

  Table table("Fig 11: VPIC write-phase breakdown",
              {"system", "insert", "compaction", "indexing",
               "effective write time (what the app waits for)"});
  table.AddRow({"KV-CSD", FormatSeconds(csd.insert),
                FormatSeconds(csd.compaction) + " (async)",
                FormatSeconds(csd.index) + " (async)",
                FormatSeconds(csd.insert)});
  table.AddRow({"RocksDB", FormatSeconds(rocks.insert),
                FormatSeconds(rocks.compaction_wait) + " (waited)",
                "(merged into compaction)",
                FormatSeconds(rocks_effective)});
  table.Print();
  std::printf("\nEffective-write-time speedup: %s (paper: 10.6x)\n",
              FormatRatio(static_cast<double>(rocks_effective) /
                          static_cast<double>(csd.insert))
                  .c_str());

  report.AddMetric("csd.write.particles_per_sec",
                   static_cast<double>(gen.num_particles) * 1e9 /
                       static_cast<double>(csd.insert));
  report.AddMetric("lsm.write.particles_per_sec",
                   static_cast<double>(gen.num_particles) * 1e9 /
                       static_cast<double>(rocks_effective));
  report.AddMetric("csd.write.compact_ticks", csd.compaction);
  report.AddMetric("csd.write.index_ticks", csd.index);
  report.AddMetric("csd.write.speedup",
                   static_cast<double>(rocks_effective) /
                       static_cast<double>(csd.insert));
  report.AddStats(csd_bed.sim().stats(), "device.cmd.");
  report.AddCompactionStats(csd_bed.dev().compaction_stats());
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
