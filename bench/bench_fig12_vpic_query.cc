// Fig. 12 — "KV-CSD vs RocksDB secondary index query time" (paper §VI-C
// query phase).
//
//   After the Fig. 11 write phase, 16 reader threads query particles above
//   an energy threshold; thresholds sweep selectivity from 0.1% to 20%.
//   KV-CSD answers each query entirely in the device from the SIDX blocks
//   and streams back full particles. RocksDB runs the two-step process:
//   range-scan the auxiliary energy keys, then GET every matching primary
//   key (its caches warm within a run; the OS page cache is dropped before
//   each selectivity level, as in the paper).
//
// Paper's headline: speedup 7.4x at 0.1% selectivity, falling to 1.3x at
// 20% as RocksDB's client-side caching catches up.
//
// Flags: --particles=N (default 2M; paper 256M) --files=F (default 16)
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <algorithm>
#include <cstdio>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "sim/sync.h"
#include "vpic_common.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT
using namespace kvcsd::bench;    // NOLINT

namespace {

Tick RunCsdQuery(CsdTestbed& bed,
                 std::vector<client::KeyspaceHandle>& handles,
                 float threshold, std::uint64_t* hits) {
  const Tick start = bed.sim().Now();
  sim::WaitGroup wg(&bed.sim());
  wg.Add(handles.size());
  for (auto& ks : handles) {
    bed.sim().Spawn([](client::KeyspaceHandle handle, float thresh,
                       std::uint64_t* hit_count,
                       sim::WaitGroup* group) -> sim::Task<void> {
      std::vector<std::pair<std::string, std::string>> out;
      (void)co_await handle.QuerySecondaryRangeF32("energy", thresh, 1e30f,
                                                   0, &out);
      *hit_count += out.size();
      group->Done();
    }(ks, threshold, hits, &wg));
  }
  bed.sim().Run();
  return bed.sim().Now() - start;
}

Tick RunLsmQuery(LsmTestbed& bed, std::vector<std::unique_ptr<lsm::Db>>& dbs,
                 float threshold, std::uint64_t* hits) {
  bed.page_cache().DropAll();  // paper cleans the OS cache per run
  const Tick start = bed.sim().Now();
  sim::WaitGroup wg(&bed.sim());
  wg.Add(dbs.size());
  for (auto& db : dbs) {
    bed.sim().Spawn([](lsm::Db* d, float thresh, std::uint64_t* hit_count,
                       sim::WaitGroup* group) -> sim::Task<void> {
      // Step 1: scan the auxiliary index for matching particle ids.
      std::vector<std::pair<std::string, std::string>> aux;
      (void)co_await d->RangeScan(AuxRangeStart(thresh), AuxRangeEnd(), 0,
                                  &aux);
      // Step 2: read back each full particle via its primary key.
      std::string value;
      for (const auto& [aux_key, particle_id] : aux) {
        (void)co_await d->Get(std::string(1, kPrimaryPrefix) + particle_id,
                              &value);
      }
      *hit_count += aux.size();
      group->Done();
    }(db.get(), threshold, hits, &wg));
  }
  bed.sim().Run();
  return bed.sim().Now() - start;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  vpic::GeneratorConfig gen;
  gen.num_particles = flags.GetUint("particles", 2 << 20);
  gen.num_files = static_cast<std::uint32_t>(flags.GetUint("files", 16));
  gen.seed = flags.GetUint("seed", 2023);
  ApplyObservabilityFlags(flags);
  JsonReporter report("fig12_vpic_query", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  // Per-instance data: particles/files x (48 B particle + ~30 B aux pair).
  config.ScaleLsmTreeTo(gen.num_particles / gen.num_files * 78);
  // Block cache at the paper's cache:data ratio (~0.5%).
  config.block_cache_bytes =
      std::max<std::uint64_t>(MiB(1), gen.num_particles * 78 / 200);
  std::printf("%s", config.Describe().c_str());
  std::printf("Dataset: %s synthetic VPIC particles in %u files\n",
              FormatCount(gen.num_particles).c_str(), gen.num_files);

  const vpic::Dump dump(gen);

  // Write phase for both systems (not timed here; that is Fig. 11).
  CsdTestbed csd_bed(config);
  std::vector<client::KeyspaceHandle> handles;
  (void)LoadVpicIntoCsd(csd_bed, dump, &handles);
  LsmTestbed lsm_bed(config);
  std::vector<std::unique_ptr<lsm::Db>> dbs;
  (void)LoadVpicIntoLsm(lsm_bed, dump, &dbs);

  Table table("Fig 12: secondary-index query time vs selectivity",
              {"selectivity", "matches", "KV-CSD", "RocksDB", "speedup"});
  for (double pct : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    const float threshold =
        dump.EnergyThresholdForSelectivity(pct / 100.0);
    std::uint64_t csd_hits = 0, lsm_hits = 0;
    const Tick csd_time = RunCsdQuery(csd_bed, handles, threshold,
                                      &csd_hits);
    const Tick lsm_time = RunLsmQuery(lsm_bed, dbs, threshold, &lsm_hits);
    if (csd_hits != lsm_hits) {
      std::printf("WARNING: result mismatch at %.1f%%: %llu vs %llu\n", pct,
                  static_cast<unsigned long long>(csd_hits),
                  static_cast<unsigned long long>(lsm_hits));
    }
    char sel[32];
    std::snprintf(sel, sizeof(sel), "%.1f%%", pct);
    char point[32];
    std::snprintf(point, sizeof(point), "sel%.1f", pct);
    report.AddMetric(std::string("csd.query.") + point + ".hits_per_sec",
                     static_cast<double>(csd_hits) * 1e9 /
                         static_cast<double>(csd_time));
    report.AddMetric(std::string("lsm.query.") + point + ".hits_per_sec",
                     static_cast<double>(lsm_hits) * 1e9 /
                         static_cast<double>(lsm_time));
    report.AddMetric(std::string("csd.query.") + point + ".hits", csd_hits);
    table.AddRow({sel, FormatCount(csd_hits), FormatSeconds(csd_time),
                  FormatSeconds(lsm_time),
                  FormatRatio(static_cast<double>(lsm_time) /
                              static_cast<double>(csd_time))});
  }
  table.Print();
  report.AddStats(csd_bed.sim().stats(), "device.ks.");
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
