// Fig. 7 — "Time to insert 32M keys into a single keyspace using different
// amounts of host compute resources" plus the underlying I/O statistics.
//
//   * N application threads (each pinned to a core; we model pinning as a
//     host CPU pool of exactly N cores) write random 16 B keys / 32 B
//     values into ONE shared keyspace / DB instance.
//   * KV-CSD uses 128 KB bulk PUTs, then invokes compaction and exits —
//     the reported time excludes the offloaded compaction (7a) while the
//     I/O statistics include everything the device does (7b).
//   * RocksDB (RocksLite) runs automatic background compaction and the
//     reported time includes waiting for it to finish, as in the paper.
//
// Paper's headline: KV-CSD 4.2x faster at 32 cores, 7.9x at 2 cores.
//
// Flags: --keys=N (default 1M; paper 32M) --seed=S
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "harness/workloads.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t total_keys = flags.GetUint("keys", 1 << 20);
  const std::uint64_t seed = flags.GetUint("seed", 1);
  ApplyObservabilityFlags(flags);
  JsonReporter report("fig7_put_scaling", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  config.ScaleLsmTreeTo(total_keys * (16 + 32));
  std::printf("%s", config.Describe().c_str());
  std::printf("Workload: %s random 16B/32B pairs, single shared keyspace\n",
              FormatCount(total_keys).c_str());

  Table time_table(
      "Fig 7a: PUT time vs host cores (single shared keyspace)",
      {"host cores", "KV-CSD put", "RocksDB put+compact", "speedup",
       "KV-CSD compact (async, hidden)"});
  Table io_table(
      "Fig 7b: I/O statistics (device bytes moved during the run)",
      {"host cores", "KV-CSD written", "KV-CSD read", "RocksDB written",
       "RocksDB read", "RocksDB write amp"});

  const std::uint64_t logical_bytes = total_keys * (16 + 32);
  for (std::uint32_t cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
    InsertSpec spec;
    spec.total_keys = total_keys;
    spec.threads = cores;  // one pinned thread per core, as in the paper
    spec.shared_keyspace = true;
    spec.seed = seed;

    CsdInsertOutcome csd = RunCsdInsert(config, cores, spec);
    LsmInsertOutcome lsm =
        RunLsmInsert(config, cores, spec, lsm::CompactionMode::kAuto);

    const double speedup = static_cast<double>(lsm.total_done) /
                           static_cast<double>(csd.insert_done);
    const std::string point = "cores" + std::to_string(cores);
    report.AddMetric("csd.put." + point + ".keys_per_sec",
                     static_cast<double>(total_keys) * 1e9 /
                         static_cast<double>(csd.insert_done));
    report.AddMetric("lsm.put." + point + ".keys_per_sec",
                     static_cast<double>(total_keys) * 1e9 /
                         static_cast<double>(lsm.total_done));
    report.AddMetric("csd.put." + point + ".speedup", speedup);
    report.AddMetric("csd.compact." + point + ".ticks",
                     csd.compaction_done - csd.insert_done);
    report.AddMetric("csd.zns." + point + ".bytes_written",
                     csd.zns_bytes_written);
    report.AddMetric("lsm.ssd." + point + ".bytes_written",
                     lsm.device_bytes_written);
    time_table.AddRow({std::to_string(cores),
                       FormatSeconds(csd.insert_done),
                       FormatSeconds(lsm.total_done), FormatRatio(speedup),
                       FormatSeconds(csd.compaction_done)});
    io_table.AddRow(
        {std::to_string(cores), FormatBytes(csd.zns_bytes_written),
         FormatBytes(csd.zns_bytes_read),
         FormatBytes(lsm.device_bytes_written),
         FormatBytes(lsm.device_bytes_read),
         FormatRatio(static_cast<double>(lsm.device_bytes_written) /
                     static_cast<double>(logical_bytes))});
  }
  time_table.Print();
  io_table.Print();
  report.AddTable(time_table);
  report.AddTable(io_table);
  report.WriteIfRequested();
  return 0;
}
