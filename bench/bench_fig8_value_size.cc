// Fig. 8 — "Time to insert 32M keys with different value sizes into a
// single keyspace."
//
//   Value sizes sweep 32 B → 4 KB. RocksDB uses all 32 host cores (its
//   best case); KV-CSD is shown with both 2 and 32 host cores, because the
//   paper's point is that 2 cores already reach device-bound peak.
//
// Paper's headline: 10x faster at 4 KB values (32 cores), and still 8.9x
// when KV-CSD is limited to 2 host cores.
//
// Flags: --keys=N (default 64K; paper 32M) --seed=S
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "harness/workloads.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t total_keys = flags.GetUint("keys", 64 << 10);
  const std::uint64_t seed = flags.GetUint("seed", 1);
  ApplyObservabilityFlags(flags);
  JsonReporter report("fig8_value_size", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  std::printf("%s", config.Describe().c_str());
  std::printf("Workload: %s keys, value size sweep, single keyspace\n",
              FormatCount(total_keys).c_str());

  Table table("Fig 8: PUT time vs value size",
              {"value size", "KV-CSD (32 cores)", "KV-CSD (2 cores)",
               "RocksDB (32 cores)", "speedup@32", "speedup@2"});

  for (std::uint32_t value_bytes : {32u, 128u, 512u, 1024u, 4096u}) {
    config.ScaleLsmTreeTo(total_keys * (16 + value_bytes));
    InsertSpec spec;
    spec.total_keys = total_keys;
    spec.value_bytes = value_bytes;
    spec.threads = 32;
    spec.shared_keyspace = true;
    spec.seed = seed;

    CsdInsertOutcome csd32 = RunCsdInsert(config, 32, spec);
    InsertSpec spec2 = spec;
    spec2.threads = 2;  // two pinned threads on two cores
    CsdInsertOutcome csd2 = RunCsdInsert(config, 2, spec2);
    LsmInsertOutcome rocks =
        RunLsmInsert(config, 32, spec, lsm::CompactionMode::kAuto);

    const std::string point = "val" + std::to_string(value_bytes);
    report.AddMetric("csd.put32." + point + ".keys_per_sec",
                     static_cast<double>(total_keys) * 1e9 /
                         static_cast<double>(csd32.insert_done));
    report.AddMetric("csd.put2." + point + ".keys_per_sec",
                     static_cast<double>(total_keys) * 1e9 /
                         static_cast<double>(csd2.insert_done));
    report.AddMetric("lsm.put32." + point + ".keys_per_sec",
                     static_cast<double>(total_keys) * 1e9 /
                         static_cast<double>(rocks.total_done));
    table.AddRow(
        {FormatBytes(value_bytes), FormatSeconds(csd32.insert_done),
         FormatSeconds(csd2.insert_done), FormatSeconds(rocks.total_done),
         FormatRatio(static_cast<double>(rocks.total_done) /
                     static_cast<double>(csd32.insert_done)),
         FormatRatio(static_cast<double>(rocks.total_done) /
                     static_cast<double>(csd2.insert_done))});
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
