// Fig. 9 — "RocksDB vs KV-CSD insertion time as keyspace count and data
// size increase."
//
//   1..32 threads, each inserting into its OWN keyspace (KV-CSD) or its
//   own RocksDB instance on a shared filesystem. RocksDB runs in three
//   modes: automatic compaction, deferred compaction (one CompactRange at
//   the end), and compaction disabled.
//
// Paper's headline at 32 keyspaces: KV-CSD is 7.8x / 6.1x / 2.9x faster
// than RocksDB auto / deferred / none.
//
// Flags: --keys_per_thread=N (default 64K; paper 32M) --seed=S
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cstdio>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "harness/workloads.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys_per_thread =
      flags.GetUint("keys_per_thread", 64 << 10);
  const std::uint64_t seed = flags.GetUint("seed", 1);
  ApplyObservabilityFlags(flags);
  JsonReporter report("fig9_multi_keyspace", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  config.ScaleLsmTreeTo(keys_per_thread * (16 + 32));
  std::printf("%s", config.Describe().c_str());
  std::printf(
      "Workload: per-thread keyspaces, %s keys each, 16B/32B pairs\n",
      FormatCount(keys_per_thread).c_str());

  Table table("Fig 9: insertion time vs keyspace count",
              {"keyspaces", "total keys", "KV-CSD",
               "RocksDB auto", "RocksDB deferred", "RocksDB none",
               "speedup auto", "speedup deferred", "speedup none"});

  for (std::uint32_t threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
    InsertSpec spec;
    spec.total_keys = keys_per_thread * threads;
    spec.threads = threads;
    spec.shared_keyspace = false;  // one keyspace / instance per thread
    spec.seed = seed;

    // All runs get the full 32-core host, per the paper's setup.
    CsdInsertOutcome csd = RunCsdInsert(config, 32, spec);
    LsmInsertOutcome rocks_auto =
        RunLsmInsert(config, 32, spec, lsm::CompactionMode::kAuto);
    LsmInsertOutcome rocks_deferred =
        RunLsmInsert(config, 32, spec, lsm::CompactionMode::kDeferred);
    LsmInsertOutcome rocks_none =
        RunLsmInsert(config, 32, spec, lsm::CompactionMode::kNone);

    const std::string point = "ks" + std::to_string(threads);
    report.AddMetric("csd.put." + point + ".keys_per_sec",
                     static_cast<double>(spec.total_keys) * 1e9 /
                         static_cast<double>(csd.insert_done));
    report.AddMetric("lsm.auto." + point + ".keys_per_sec",
                     static_cast<double>(spec.total_keys) * 1e9 /
                         static_cast<double>(rocks_auto.total_done));
    report.AddMetric("lsm.deferred." + point + ".keys_per_sec",
                     static_cast<double>(spec.total_keys) * 1e9 /
                         static_cast<double>(rocks_deferred.total_done));
    report.AddMetric("lsm.none." + point + ".keys_per_sec",
                     static_cast<double>(spec.total_keys) * 1e9 /
                         static_cast<double>(rocks_none.total_done));

    auto ratio = [&](const LsmInsertOutcome& r) {
      return FormatRatio(static_cast<double>(r.total_done) /
                         static_cast<double>(csd.insert_done));
    };
    table.AddRow({std::to_string(threads), FormatCount(spec.total_keys),
                  FormatSeconds(csd.insert_done),
                  FormatSeconds(rocks_auto.total_done),
                  FormatSeconds(rocks_deferred.total_done),
                  FormatSeconds(rocks_none.total_done), ratio(rocks_auto),
                  ratio(rocks_deferred), ratio(rocks_none)});
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();
  return 0;
}
