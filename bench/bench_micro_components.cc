// Component microbenchmarks (google-benchmark, real wall-clock time).
//
// Unlike the figure benches — which measure *simulated* time — these
// measure the real throughput of the data structures the simulation
// executes for real: skiplist memtable, bloom filters, CRC32C, varint
// codecs, SSTable block parsing, and the VPIC generator. Useful for
// catching performance regressions in the library itself.
//
// Accepts --json=PATH like the figure benches (translated into
// google-benchmark's JSON output file); --trace is accepted and ignored
// since there is no simulation to trace.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/keys.h"
#include "common/random.h"
#include "common/bloom.h"
#include "lsm/memtable.h"
#include "vpic/vpic.h"

namespace kvcsd {
namespace {

void BM_MemTableInsert(benchmark::State& state) {
  lsm::MemTable* mem = new lsm::MemTable();
  Rng rng(1);
  lsm::SequenceNumber seq = 0;
  const std::string value(32, 'v');
  for (auto _ : state) {
    mem->Add(++seq, lsm::ValueType::kValue, MakeFixedKey(rng.Next()),
             value);
    if (mem->num_entries() >= 1 << 20) {  // cap memory growth
      state.PauseTiming();
      delete mem;
      mem = new lsm::MemTable();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  delete mem;
}
BENCHMARK(BM_MemTableInsert);

void BM_MemTableGet(benchmark::State& state) {
  lsm::MemTable mem;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    mem.Add(i + 1, lsm::ValueType::kValue, MakeFixedKey(i),
            std::string(32, 'v'));
  }
  Rng rng(2);
  std::string value;
  bool found;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem.Get(MakeFixedKey(rng.Uniform(100000)), 1 << 20, &value,
                &found));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableGet);

void BM_BloomBuild(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    BloomFilterBuilder builder(10);
    for (std::uint64_t i = 0; i < n; ++i) {
      builder.AddKey(MakeFixedKey(i));
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BloomBuild)->Arg(1024)->Arg(65536);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilterBuilder builder(10);
  for (std::uint64_t i = 0; i < 65536; ++i) builder.AddKey(MakeFixedKey(i));
  const std::string filter = builder.Finish();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BloomFilterMayContain(Slice(filter), MakeFixedKey(rng.Next())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(1 << 20);

void BM_VarintRoundTrip(benchmark::State& state) {
  Rng rng(4);
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    const std::uint64_t v = rng.Next() >> (rng.Uniform(64));
    PutVarint64(&buf, v);
    Slice in(buf);
    std::uint64_t out = 0;
    GetVarint64(&in, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VarintRoundTrip);

void BM_VpicGenerate(benchmark::State& state) {
  for (auto _ : state) {
    vpic::GeneratorConfig gen;
    gen.num_particles = static_cast<std::uint64_t>(state.range(0));
    vpic::Dump dump(gen);
    benchmark::DoNotOptimize(dump.num_particles());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VpicGenerate)->Arg(100000);

void BM_OrderEncodeF32(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OrderEncodeF32(static_cast<float>(rng.Normal(0, 100))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderEncodeF32);

}  // namespace
}  // namespace kvcsd

// BENCHMARK_MAIN with a flag-translation shim: --json=PATH becomes
// --benchmark_out=PATH --benchmark_out_format=json so every bench in
// bench/ shares one machine-readable flag; --trace=.../--telemetry=...
// are swallowed (there is no simulation here to observe).
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--json=", 0) == 0) {
      args.emplace_back("--benchmark_out=" + std::string(arg.substr(7)));
      args.emplace_back("--benchmark_out_format=json");
    } else if (arg.rfind("--trace", 0) != 0 &&
               arg.rfind("--telemetry", 0) != 0) {
      args.emplace_back(arg);
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
