// Multi-tenant async throughput bench (DESIGN.md §11): N tenants, each
// its own client pinned to SQ/CQ pair (tenant % queues), drive open-loop
// windowed streams of async PUTs and then async GETs while the SQ/CQ
// pair count sweeps 1 -> 2 -> 4 at fixed total offered load (tenants x
// per-queue depth outstanding commands).
//
// What must hold:
//   * aggregate PUT and GET throughput is monotonically non-decreasing
//     in the number of queue pairs (more pairs = more outstanding
//     commands = more device concurrency, until the SoC cores saturate),
//     and the 4-queue point beats the 1-queue point outright;
//   * a crc32c fingerprint over every issued PUT and every GET answer is
//     identical at every sweep point: queue topology changes timing,
//     never contents;
//   * per-tenant latency distributions stay separable — each tenant
//     records its own client.t<i>.cmd.{put,get}_ns histogram, and the
//     p50/p99/p999 of every tenant lands in the JSON report.
//
// Flags: --tenants=4 --puts_per_tenant=4096 --gets_per_tenant=1024
//        --depth=4 --value_bytes=256
//        --json=PATH --trace=PATH --telemetry=PATH
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/keys.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "harness/tracing.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

std::string ValueFor(std::uint32_t tenant, std::uint64_t id,
                     std::uint64_t bytes) {
  std::string v(bytes, '\0');
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<char>('a' + (tenant * 131 + id + i * 7) % 26);
  }
  return v;
}

struct TenantResult {
  std::uint32_t put_crc = 0;
  std::uint32_t get_crc = 0;
  Tick put_end = 0;
  Tick get_end = 0;
  bool ok = false;
};

// Open-loop windowed PUT stream: issue async puts back-to-back, reaping
// the oldest future once `depth` are outstanding; the client's admission
// window (max_inflight == depth) plus the per-SQ depth cap provide the
// backpressure that makes queue count the bottleneck.
sim::Task<void> TenantPuts(sim::Simulation* sim, client::KeyspaceHandle ks,
                           std::uint32_t tenant, std::uint64_t puts,
                           std::uint64_t value_bytes, std::uint64_t depth,
                           TenantResult* out) {
  std::deque<client::StatusFuture> window;
  for (std::uint64_t i = 0; i < puts; ++i) {
    if (window.size() >= depth) {
      Status s = co_await window.front().Await();
      if (!s.ok()) {
        std::fprintf(stderr, "tenant %u put failed: %s\n", tenant,
                     s.message().c_str());
        co_return;
      }
      window.pop_front();
    }
    const std::string key = MakeFixedKey(i);
    const std::string value = ValueFor(tenant, i, value_bytes);
    out->put_crc = crc32c::Extend(out->put_crc, key.data(), key.size());
    out->put_crc = crc32c::Extend(out->put_crc, value.data(), value.size());
    auto put = co_await ks.PutAsync(key, value);
    window.push_back(std::move(put));
  }
  while (!window.empty()) {
    Status s = co_await window.front().Await();
    if (!s.ok()) {
      std::fprintf(stderr, "tenant %u put drain failed: %s\n", tenant,
                   s.message().c_str());
      co_return;
    }
    window.pop_front();
  }
  out->put_end = sim->Now();
  out->ok = true;
}

sim::Task<void> TenantSeal(client::KeyspaceHandle ks, TenantResult* out) {
  out->ok = false;
  Status s = co_await ks.Sync();
  if (!s.ok()) {
    std::fprintf(stderr, "seal sync failed: %s\n", s.message().c_str());
    co_return;
  }
  s = co_await ks.Compact();
  if (!s.ok()) {
    std::fprintf(stderr, "seal compact failed: %s\n", s.message().c_str());
    co_return;
  }
  s = co_await ks.WaitCompaction();
  if (!s.ok()) {
    std::fprintf(stderr, "seal wait failed: %s\n", s.message().c_str());
    co_return;
  }
  out->ok = true;
}

// Open-loop windowed GET stream over the tenant's own keys; answers are
// awaited in issue order so the fingerprint is deterministic.
sim::Task<void> TenantGets(sim::Simulation* sim, client::KeyspaceHandle ks,
                           std::uint64_t puts, std::uint64_t gets,
                           std::uint64_t depth, TenantResult* out) {
  out->ok = false;
  std::uint64_t stride = 4093;
  while (puts % stride == 0) ++stride;
  std::deque<client::GetFuture> window;
  for (std::uint64_t i = 0; i < gets; ++i) {
    if (window.size() >= depth) {
      auto got = co_await window.front().Await();
      window.pop_front();
      if (!got.ok()) co_return;
      out->get_crc = crc32c::Extend(out->get_crc, got->data(), got->size());
    }
    auto get = co_await ks.GetAsync(MakeFixedKey((i * stride) % puts));
    window.push_back(std::move(get));
  }
  while (!window.empty()) {
    auto got = co_await window.front().Await();
    window.pop_front();
    if (!got.ok()) co_return;
    out->get_crc = crc32c::Extend(out->get_crc, got->data(), got->size());
  }
  out->get_end = sim->Now();
  out->ok = true;
}

struct PointResult {
  double put_per_sec = 0;
  double get_per_sec = 0;
  std::uint32_t fingerprint = 0;
  double worst_put_p99 = 0;
  double worst_get_p99 = 0;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint32_t tenants =
      static_cast<std::uint32_t>(flags.GetUint("tenants", 4));
  const std::uint64_t puts = flags.GetUint("puts_per_tenant", 4096);
  const std::uint64_t gets = flags.GetUint("gets_per_tenant", 1024);
  const std::uint64_t depth = flags.GetUint("depth", 4);
  const std::uint64_t value_bytes = flags.GetUint("value_bytes", 256);
  if (tenants == 0 || puts == 0 || gets == 0 || depth == 0) {
    std::fprintf(stderr,
                 "--tenants, --puts_per_tenant, --gets_per_tenant and "
                 "--depth must be > 0\n");
    return 2;
  }
  ApplyObservabilityFlags(flags);
  JsonReporter report("multi_tenant", flags);

  std::printf(
      "Multi-tenant async host path: %u tenants x depth %s, "
      "%s PUTs + %s GETs per tenant, SQ/CQ pairs 1 -> 4\n",
      tenants, FormatCount(depth).c_str(), FormatCount(puts).c_str(),
      FormatCount(gets).c_str());
  Table table("Throughput vs SQ/CQ pair count (fixed offered load)",
              {"queues", "PUT keys/s", "GET keys/s", "put p99 (worst)",
               "get p99 (worst)", "fingerprint"});

  const std::uint32_t queue_counts[] = {1, 2, 4};
  std::vector<PointResult> points;
  bool all_ok = true;

  for (std::uint32_t queues : queue_counts) {
    TestbedConfig config = TestbedConfig::Scaled();
    config.queues.num_queues = queues;
    config.queues.sq_depth_cap = static_cast<std::uint32_t>(depth);

    CsdTestbed bed(config);
    std::vector<std::unique_ptr<client::Client>> clients;
    std::vector<client::KeyspaceHandle> keyspaces(tenants);
    std::vector<TenantResult> results(tenants);
    for (std::uint32_t t = 0; t < tenants; ++t) {
      client::ClientConfig cc;
      cc.queue_id = t % queues;
      cc.max_inflight = static_cast<std::uint32_t>(depth);
      cc.stats_prefix = "client.t" + std::to_string(t) + ".";
      clients.push_back(std::make_unique<client::Client>(
          &bed.queue(), &bed.host_cpu(), hostenv::CostModel::Host(), cc));
    }

    // Setup: one keyspace per tenant (untimed).
    for (std::uint32_t t = 0; t < tenants; ++t) {
      bed.sim().Spawn([](client::Client* db, std::uint32_t tenant,
                         client::KeyspaceHandle* out) -> sim::Task<void> {
        auto ks = co_await db->CreateKeyspace("tenant" +
                                              std::to_string(tenant));
        if (ks.ok()) *out = *ks;
      }(clients[t].get(), t, &keyspaces[t]));
    }
    bed.sim().Run();

    PointResult point;
    bool point_ok = true;
    for (std::uint32_t t = 0; t < tenants; ++t) {
      if (!keyspaces[t].valid()) point_ok = false;
    }

    // Phase 1 (timed): concurrent open-loop PUT streams.
    if (point_ok) {
      const Tick t0 = bed.sim().Now();
      for (std::uint32_t t = 0; t < tenants; ++t) {
        bed.sim().Spawn(TenantPuts(&bed.sim(), keyspaces[t], t, puts,
                                   value_bytes, depth, &results[t]));
      }
      bed.sim().Run();
      Tick put_end = t0;
      for (const TenantResult& r : results) {
        if (!r.ok) point_ok = false;
        if (r.put_end > put_end) put_end = r.put_end;
      }
      if (point_ok && put_end > t0) {
        point.put_per_sec = static_cast<double>(tenants) *
                            static_cast<double>(puts) * 1e9 /
                            static_cast<double>(put_end - t0);
      }
    }

    // Seal: sync + compact every tenant (untimed).
    if (point_ok) {
      for (std::uint32_t t = 0; t < tenants; ++t) {
        bed.sim().Spawn(TenantSeal(keyspaces[t], &results[t]));
      }
      bed.sim().Run();
      for (const TenantResult& r : results) {
        if (!r.ok) point_ok = false;
      }
    }

    // Phase 2 (timed): concurrent open-loop GET streams.
    if (point_ok) {
      const Tick t0 = bed.sim().Now();
      for (std::uint32_t t = 0; t < tenants; ++t) {
        bed.sim().Spawn(
            TenantGets(&bed.sim(), keyspaces[t], puts, gets, depth,
                       &results[t]));
      }
      bed.sim().Run();
      Tick get_end = t0;
      for (const TenantResult& r : results) {
        if (!r.ok) point_ok = false;
        if (r.get_end > get_end) get_end = r.get_end;
      }
      if (point_ok && get_end > t0) {
        point.get_per_sec = static_cast<double>(tenants) *
                            static_cast<double>(gets) * 1e9 /
                            static_cast<double>(get_end - t0);
      }
    }

    // Fingerprint: tenant-ordered combination of issued PUT bytes and
    // returned GET bytes — identical at every sweep point.
    std::uint32_t crc = 0;
    for (const TenantResult& r : results) {
      crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&r.put_crc),
                           sizeof(r.put_crc));
      crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&r.get_crc),
                           sizeof(r.get_crc));
    }
    point.fingerprint = crc;
    point.ok = point_ok;
    if (!point_ok) {
      std::fprintf(stderr, "point queues=%u: driver failed\n", queues);
      all_ok = false;
    }

    // Per-tenant latency distributions (separable by stats prefix).
    const std::string qtag = "q" + std::to_string(queues);
    for (std::uint32_t t = 0; t < tenants; ++t) {
      const std::string prefix = "client.t" + std::to_string(t) + ".";
      const auto put_summary =
          bed.sim().stats().histogram(prefix + "cmd.put_ns").Summary();
      const auto get_summary =
          bed.sim().stats().histogram(prefix + "cmd.get_ns").Summary();
      if (put_summary.p99 > point.worst_put_p99) {
        point.worst_put_p99 = put_summary.p99;
      }
      if (get_summary.p99 > point.worst_get_p99) {
        point.worst_get_p99 = get_summary.p99;
      }
      const std::string mt = "csd.mt." + qtag + ".t" + std::to_string(t);
      report.AddMetric(mt + ".put_p50_ns", put_summary.p50);
      report.AddMetric(mt + ".put_p99_ns", put_summary.p99);
      report.AddMetric(mt + ".put_p999_ns", put_summary.p999);
      report.AddMetric(mt + ".get_p50_ns", get_summary.p50);
      report.AddMetric(mt + ".get_p99_ns", get_summary.p99);
      report.AddMetric(mt + ".get_p999_ns", get_summary.p999);
    }
    report.AddMetric("csd.mt." + qtag + ".put_keys_per_sec",
                     point.put_per_sec);
    report.AddMetric("csd.mt." + qtag + ".get_keys_per_sec",
                     point.get_per_sec);
    report.AddMetric("csd.mt." + qtag + ".fingerprint",
                     static_cast<std::uint64_t>(point.fingerprint));
    if (queues == queue_counts[std::size(queue_counts) - 1]) {
      // Reference point for the p99 gate: every tenant's histograms.
      report.AddStats(bed.sim().stats(), "client.t");
    }

    char fp[16];
    std::snprintf(fp, sizeof(fp), "%08x", point.fingerprint);
    table.AddRow(
        {std::to_string(queues),
         FormatCount(static_cast<std::uint64_t>(point.put_per_sec)),
         FormatCount(static_cast<std::uint64_t>(point.get_per_sec)),
         FormatSeconds(static_cast<Tick>(point.worst_put_p99)),
         FormatSeconds(static_cast<Tick>(point.worst_get_p99)), fp});
    points.push_back(point);
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();

  // Monotone non-decreasing with 2% slack (saturated points may jitter),
  // and the widest configuration must beat the single queue outright.
  bool identical = true;
  bool put_monotone = true;
  bool get_monotone = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].fingerprint != points[0].fingerprint) identical = false;
    if (points[i].put_per_sec < points[i - 1].put_per_sec * 0.98) {
      put_monotone = false;
    }
    if (points[i].get_per_sec < points[i - 1].get_per_sec * 0.98) {
      get_monotone = false;
    }
  }
  // Scaling is required unless the single-queue point already runs at
  // the sweep's ceiling (the offered load saturates the device's command
  // dispatch before the queue count binds — e.g. few tenants at a deep
  // per-queue window).
  double put_peak = 0, get_peak = 0;
  for (const PointResult& p : points) {
    if (p.put_per_sec > put_peak) put_peak = p.put_per_sec;
    if (p.get_per_sec > get_peak) get_peak = p.get_per_sec;
  }
  const bool put_saturated = points.front().put_per_sec >= 0.95 * put_peak;
  const bool get_saturated = points.front().get_per_sec >= 0.95 * get_peak;
  const bool put_scales =
      points.back().put_per_sec > points.front().put_per_sec || put_saturated;
  const bool get_scales =
      points.back().get_per_sec > points.front().get_per_sec || get_saturated;

  std::printf("\naggregate PUT throughput monotone in queue count: %s\n",
              put_monotone ? "yes" : "NO (regression!)");
  std::printf("aggregate GET throughput monotone in queue count: %s\n",
              get_monotone ? "yes" : "NO (regression!)");
  std::printf("4 queues beat 1 queue (PUT %.2fx%s, GET %.2fx%s): %s\n",
              points.front().put_per_sec > 0
                  ? points.back().put_per_sec / points.front().put_per_sec
                  : 0.0,
              put_saturated ? " [saturated at 1 queue]" : "",
              points.front().get_per_sec > 0
                  ? points.back().get_per_sec / points.front().get_per_sec
                  : 0.0,
              get_saturated ? " [saturated at 1 queue]" : "",
              put_scales && get_scales ? "yes" : "NO (regression!)");
  std::printf("contents identical across sweep points: %s\n",
              identical ? "yes" : "NO (determinism bug!)");
  return (all_ok && identical && put_monotone && get_monotone && put_scales &&
          get_scales)
             ? 0
             : 1;
}
