// In-device query pushdown on VPIC (DESIGN.md §13): the Fig. 12 energy
// sweep re-run with SELECT/aggregate instead of a plain secondary-range
// query. Thresholds sweep selectivity from 0.1% to 20%; at each level the
// bench runs three device-side plans over every file keyspace and measures
// what actually crosses PCIe:
//
//   select      predicate energy >= T, full 48 B records back
//   projected   same predicate, value projected to the 4 B energy field
//   aggregate   count/min/max/sum of energy folded on the device — 32 B
//               of scalars per keyspace regardless of row count
//
// The bench is also a correctness gate and exits nonzero when the device
// diverges from the host model:
//   - select payload bytes must equal matches x 48 (and matches x 20
//     projected): host-visible bytes scale with selectivity, never with
//     dataset size, while bytes scanned device-side stay constant;
//   - per-file aggregates must be BIT-IDENTICAL to Dump::FileEnergyAggregate
//     (same scan order, same double fold — not approximately equal).
//
// Flags: --particles=N (default 1M) --files=F (default 16) --seed=S
//        --json=PATH (machine-readable report) --trace=PATH (span trace)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/tracing.h"
#include "nvme/skey.h"
#include "sim/sync.h"
#include "vpic_common.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT
using namespace kvcsd::bench;    // NOLINT

namespace {

struct PhaseResult {
  Tick time = 0;
  std::uint64_t hits = 0;
  std::uint64_t d2h_bytes = 0;      // completion traffic over PCIe
  std::uint64_t payload_bytes = 0;  // device.select.bytes_returned delta
  std::uint64_t scanned_bytes = 0;  // device.select.bytes_scanned delta
};

client::KeyspaceHandle::SelectOptions EnergyPred(float threshold) {
  client::KeyspaceHandle::SelectOptions opts;
  opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe,
                                 vpic::kEnergyOffset, threshold);
  return opts;
}

PhaseResult RunSelect(CsdTestbed& bed,
                      std::vector<client::KeyspaceHandle>& handles,
                      float threshold, bool projected) {
  PhaseResult r;
  const Tick start = bed.sim().Now();
  const std::uint64_t d2h0 = bed.queue().device_to_host_bytes();
  const std::uint64_t pay0 =
      bed.sim().stats().counter_value("device.select.bytes_returned");
  const std::uint64_t scan0 =
      bed.sim().stats().counter_value("device.select.bytes_scanned");

  sim::WaitGroup wg(&bed.sim());
  wg.Add(handles.size());
  for (auto& ks : handles) {
    bed.sim().Spawn([](client::KeyspaceHandle handle, float thresh,
                       bool proj, std::uint64_t* hits,
                       sim::WaitGroup* group) -> sim::Task<void> {
      auto opts = EnergyPred(thresh);
      if (proj) {
        opts.proj.enabled = true;
        opts.proj.offset = vpic::kEnergyOffset;
        opts.proj.length = 4;
      }
      std::vector<std::pair<std::string, std::string>> out;
      (void)co_await handle.Select("", "\x7f", opts, &out);
      *hits += out.size();
      group->Done();
    }(ks, threshold, projected, &r.hits, &wg));
  }
  bed.sim().Run();

  r.time = bed.sim().Now() - start;
  r.d2h_bytes = bed.queue().device_to_host_bytes() - d2h0;
  r.payload_bytes =
      bed.sim().stats().counter_value("device.select.bytes_returned") - pay0;
  r.scanned_bytes =
      bed.sim().stats().counter_value("device.select.bytes_scanned") - scan0;
  return r;
}

// One kSum aggregate per keyspace (the device fills count/min/max/sum for
// any numeric fold); every per-file result is checked bit-for-bit against
// the host model. Returns the mismatch count via *mismatches.
PhaseResult RunAggregate(CsdTestbed& bed,
                         std::vector<client::KeyspaceHandle>& handles,
                         const vpic::Dump& dump, float threshold,
                         std::uint64_t* mismatches) {
  PhaseResult r;
  const Tick start = bed.sim().Now();
  const std::uint64_t d2h0 = bed.queue().device_to_host_bytes();

  std::vector<nvme::AggregateResult> device_aggs(handles.size());
  sim::WaitGroup wg(&bed.sim());
  wg.Add(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    bed.sim().Spawn([](client::KeyspaceHandle handle, float thresh,
                       nvme::AggregateResult* out,
                       sim::WaitGroup* group) -> sim::Task<void> {
      nvme::AggregateSpec spec;
      spec.func = nvme::AggregateFunc::kSum;
      spec.value_offset = vpic::kEnergyOffset;
      spec.value_length = 4;
      spec.type = nvme::SecondaryKeyType::kF32;
      auto opts = EnergyPred(thresh);
      auto agg = co_await handle.Aggregate("", "\x7f", spec, opts);
      if (agg.ok()) *out = *agg;
      group->Done();
    }(handles[i], threshold, &device_aggs[i], &wg));
  }
  bed.sim().Run();

  r.time = bed.sim().Now() - start;
  r.d2h_bytes = bed.queue().device_to_host_bytes() - d2h0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto host = dump.FileEnergyAggregate(
        static_cast<std::uint32_t>(i), threshold);
    const auto& dev = device_aggs[i];
    r.hits += dev.rows;
    if (dev.rows != host.rows || dev.valid != host.valid ||
        dev.min != host.min || dev.max != host.max || dev.sum != host.sum) {
      ++*mismatches;
      std::printf(
          "MISMATCH file %zu: device rows=%llu min=%.17g max=%.17g "
          "sum=%.17g | host rows=%llu min=%.17g max=%.17g sum=%.17g\n",
          i, static_cast<unsigned long long>(dev.rows), dev.min, dev.max,
          dev.sum, static_cast<unsigned long long>(host.rows), host.min,
          host.max, host.sum);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  vpic::GeneratorConfig gen;
  gen.num_particles = flags.GetUint("particles", 1 << 20);
  gen.num_files = static_cast<std::uint32_t>(flags.GetUint("files", 16));
  gen.seed = flags.GetUint("seed", 2023);
  ApplyObservabilityFlags(flags);
  JsonReporter report("pushdown", flags);

  TestbedConfig config = TestbedConfig::Scaled();
  std::printf("%s", config.Describe().c_str());
  std::printf("Dataset: %s synthetic VPIC particles in %u files\n",
              FormatCount(gen.num_particles).c_str(), gen.num_files);

  const vpic::Dump dump(gen);
  CsdTestbed bed(config);
  std::vector<client::KeyspaceHandle> handles;
  (void)LoadVpicIntoCsd(bed, dump, &handles);

  const std::uint64_t dataset_value_bytes =
      gen.num_particles * vpic::kPayloadBytes;
  const std::uint64_t record_bytes = vpic::kIdBytes + vpic::kPayloadBytes;

  Table table("Pushdown: host-visible bytes vs selectivity",
              {"selectivity", "matches", "select B", "projected B",
               "aggregate B", "scanned B", "select", "aggregate"});
  int failures = 0;
  std::vector<std::uint64_t> select_d2h;
  std::vector<std::uint64_t> agg_d2h;
  std::vector<std::uint64_t> match_counts;
  for (double pct : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    const float threshold = dump.EnergyThresholdForSelectivity(pct / 100.0);
    const std::uint64_t expected = dump.CountAbove(threshold);

    PhaseResult sel = RunSelect(bed, handles, threshold, /*projected=*/false);
    PhaseResult proj = RunSelect(bed, handles, threshold, /*projected=*/true);
    std::uint64_t agg_mismatches = 0;
    PhaseResult agg =
        RunAggregate(bed, handles, dump, threshold, &agg_mismatches);

    // --- correctness gates ---
    if (sel.hits != expected || proj.hits != expected ||
        agg.hits != expected) {
      std::printf("FAIL %.1f%%: hits select=%llu proj=%llu agg=%llu, "
                  "host model says %llu\n", pct,
                  static_cast<unsigned long long>(sel.hits),
                  static_cast<unsigned long long>(proj.hits),
                  static_cast<unsigned long long>(agg.hits),
                  static_cast<unsigned long long>(expected));
      ++failures;
    }
    if (agg_mismatches != 0) {
      std::printf("FAIL %.1f%%: %llu per-file aggregate mismatches\n", pct,
                  static_cast<unsigned long long>(agg_mismatches));
      ++failures;
    }
    // Returned payload is exactly matches x record (or projected record):
    // host-visible bytes track selectivity, not dataset size.
    if (sel.payload_bytes != expected * record_bytes) {
      std::printf("FAIL %.1f%%: select payload %llu != matches x %llu\n",
                  pct, static_cast<unsigned long long>(sel.payload_bytes),
                  static_cast<unsigned long long>(record_bytes));
      ++failures;
    }
    if (proj.payload_bytes != expected * (vpic::kIdBytes + 4)) {
      std::printf("FAIL %.1f%%: projected payload %llu != matches x %llu\n",
                  pct, static_cast<unsigned long long>(proj.payload_bytes),
                  static_cast<unsigned long long>(vpic::kIdBytes + 4));
      ++failures;
    }
    // The device scanned the whole dataset each time, selectivity aside.
    if (sel.scanned_bytes != dataset_value_bytes) {
      std::printf("FAIL %.1f%%: scanned %llu != dataset %llu\n", pct,
                  static_cast<unsigned long long>(sel.scanned_bytes),
                  static_cast<unsigned long long>(dataset_value_bytes));
      ++failures;
    }

    select_d2h.push_back(sel.d2h_bytes);
    agg_d2h.push_back(agg.d2h_bytes);
    match_counts.push_back(expected);

    char sel_label[32];
    std::snprintf(sel_label, sizeof(sel_label), "%.1f%%", pct);
    table.AddRow({sel_label, FormatCount(expected),
                  FormatBytes(sel.d2h_bytes), FormatBytes(proj.d2h_bytes),
                  FormatBytes(agg.d2h_bytes),
                  FormatBytes(sel.scanned_bytes), FormatSeconds(sel.time),
                  FormatSeconds(agg.time)});

    char point[32];
    std::snprintf(point, sizeof(point), "sel%.1f", pct);
    const std::string prefix = std::string("csd.pushdown.") + point;
    report.AddMetric(prefix + ".matches", expected);
    report.AddMetric(prefix + ".select_d2h_bytes", sel.d2h_bytes);
    report.AddMetric(prefix + ".projected_d2h_bytes", proj.d2h_bytes);
    report.AddMetric(prefix + ".aggregate_d2h_bytes", agg.d2h_bytes);
    report.AddMetric(prefix + ".scanned_bytes", sel.scanned_bytes);
    report.AddMetric(prefix + ".select_rows_per_sec",
                     static_cast<double>(expected) * 1e9 /
                         static_cast<double>(sel.time));
    report.AddMetric(prefix + ".aggregate_rows_per_sec",
                     static_cast<double>(expected) * 1e9 /
                         static_cast<double>(agg.time));
  }
  table.Print();

  // Sweep-level shape checks. Selects must scale with selectivity: the
  // 20% level returns ~200x the matches of the 0.1% level, so it must
  // move at least 20x the bytes. Aggregates must NOT scale: the per-level
  // completion traffic is a fixed 48 B per keyspace.
  if (select_d2h.back() < select_d2h.front() * 20) {
    std::printf("FAIL: select d2h bytes do not scale with selectivity "
                "(%llu at 0.1%% vs %llu at 20%%)\n",
                static_cast<unsigned long long>(select_d2h.front()),
                static_cast<unsigned long long>(select_d2h.back()));
    ++failures;
  }
  for (std::size_t i = 1; i < agg_d2h.size(); ++i) {
    if (agg_d2h[i] != agg_d2h.front()) {
      std::printf("FAIL: aggregate d2h bytes vary with selectivity "
                  "(%llu vs %llu)\n",
                  static_cast<unsigned long long>(agg_d2h.front()),
                  static_cast<unsigned long long>(agg_d2h[i]));
      ++failures;
    }
  }
  std::printf("%s: device aggregates %s host model; select bytes scale "
              "%.0fx across a %.0fx match spread\n",
              failures == 0 ? "OK" : "FAIL",
              failures == 0 ? "bit-identical to" : "DIVERGE from",
              static_cast<double>(select_d2h.back()) /
                  static_cast<double>(select_d2h.front()),
              static_cast<double>(match_counts.back()) /
                  static_cast<double>(match_counts.front()));

  report.AddMetric("csd.pushdown.failures",
                   static_cast<std::uint64_t>(failures));
  report.AddStats(bed.sim().stats(), "device.select.");
  report.AddStats(bed.sim().stats(), "device.cmd.kv_");
  report.AddTable(table);
  report.WriteIfRequested();
  return failures == 0 ? 0 : 1;
}
