// Shard-router scale-out bench (DESIGN.md §15): a FIXED total dataset is
// hash-partitioned over 1 -> 2 -> 4 -> 8 independent KV-CSDs behind the
// host-side ShardedClient, driven by a fixed set of open-loop windowed
// driver streams. Per-device hardware never changes; only the device
// count does, so aggregate throughput should track the fleet size.
//
// What must hold:
//   * aggregate PUT and point-GET throughput is monotonically
//     non-decreasing in shard count, and the widest point achieves at
//     least --min_scaling (default 0.75) of ideal linear scaling over
//     the single-device point;
//   * a crc32c fingerprint over every issued PUT and every GET answer is
//     identical at every sweep point: partitioning changes placement and
//     timing, never contents;
//   * the scatter-gather results are exact: the merged full scan, the
//     merged secondary range, the merged pushdown select and the folded
//     aggregate scalars are all bit-identical across sweep points — a
//     fleet of N devices answers exactly like one device holding the
//     whole dataset.
//
// Flags: --puts=16384 --gets=8192 --drivers=8 --depth=4 --batch=32
//        --get_drivers=64 --get_depth=64 --value_bytes=2048
//        --min_scaling_pct=75 --debug_stats=1 (latency breakdown)
//        --json=PATH --trace=PATH --telemetry=PATH
#include <bit>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/keys.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/sharded_testbed.h"
#include "harness/tracing.h"
#include "nvme/skey.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

using Rows = router::ShardedKeyspaceHandle::Rows;

// Integer-valued f32 attribute at byte 0 of every value: exact under
// both f32 and the aggregate's double accumulation, so the host-side
// shard fold is bit-identical to a single device's scan-order fold.
float EnergyFor(std::uint64_t id) {
  return static_cast<float>((id * 7 + 3) % 1000);
}

std::string ValueFor(std::uint64_t id, std::uint64_t bytes) {
  std::string v(std::max<std::uint64_t>(bytes, 4), '\0');
  const std::uint32_t raw = std::bit_cast<std::uint32_t>(EnergyFor(id));
  v[0] = static_cast<char>(raw & 0xff);
  v[1] = static_cast<char>((raw >> 8) & 0xff);
  v[2] = static_cast<char>((raw >> 16) & 0xff);
  v[3] = static_cast<char>((raw >> 24) & 0xff);
  for (std::size_t i = 4; i < v.size(); ++i) {
    v[i] = static_cast<char>('a' + (id + i * 7) % 26);
  }
  return v;
}

struct DriverResult {
  std::uint32_t put_crc = 0;
  std::uint32_t get_crc = 0;
  Tick put_end = 0;
  Tick get_end = 0;
  bool ok = false;
};

// Open-loop batched PUT stream through the router: driver d owns keys
// d, d+D, d+2D, ... — a decomposition independent of shard count, so
// the issued byte stream (and its fingerprint) is identical at every
// sweep point. Each batch is shard-grouped by the router and rides one
// doorbell per shard; `depth` bounds the in-flight batches so the
// per-shard admission windows stay the real backpressure.
sim::Task<void> DriverPuts(sim::Simulation* sim,
                           router::ShardedKeyspaceHandle ks,
                           std::uint32_t driver, std::uint32_t drivers,
                           std::uint64_t puts, std::uint64_t value_bytes,
                           std::uint64_t depth, std::uint64_t batch,
                           DriverResult* out) {
  std::deque<client::StatusFuture> window;
  const std::uint64_t window_cap = depth * batch;
  std::vector<std::pair<std::string, std::string>> pending;
  for (std::uint64_t i = driver; i < puts; i += drivers) {
    std::string key = MakeFixedKey(i);
    std::string value = ValueFor(i, value_bytes);
    out->put_crc = crc32c::Extend(out->put_crc, key.data(), key.size());
    out->put_crc = crc32c::Extend(out->put_crc, value.data(), value.size());
    pending.emplace_back(std::move(key), std::move(value));
    if (pending.size() < batch && i + drivers < puts) continue;
    while (window.size() >= window_cap) {
      Status s = co_await window.front().Await();
      if (!s.ok()) {
        std::fprintf(stderr, "driver %u put failed: %s\n", driver,
                     s.message().c_str());
        co_return;
      }
      window.pop_front();
    }
    auto futures = co_await ks.PutBatchAsync(std::move(pending));
    pending.clear();
    for (auto& f : futures) window.push_back(std::move(f));
  }
  while (!window.empty()) {
    Status s = co_await window.front().Await();
    if (!s.ok()) {
      std::fprintf(stderr, "driver %u put drain failed: %s\n", driver,
                   s.message().c_str());
      co_return;
    }
    window.pop_front();
  }
  out->put_end = sim->Now();
  out->ok = true;
}

// Seal the fleet: fsync every shard, then governor-staggered compaction
// and the secondary index build (all untimed).
sim::Task<void> Seal(router::ShardedKeyspaceHandle ks, DriverResult* out) {
  out->ok = false;
  Status s = co_await ks.Sync();
  if (!s.ok()) {
    std::fprintf(stderr, "seal sync failed: %s\n", s.message().c_str());
    co_return;
  }
  s = co_await ks.Compact();
  if (!s.ok()) {
    std::fprintf(stderr, "seal compact failed: %s\n", s.message().c_str());
    co_return;
  }
  s = co_await ks.CreateSecondaryIndexF32("energy", 0);
  if (!s.ok()) {
    std::fprintf(stderr, "seal index failed: %s\n", s.message().c_str());
    co_return;
  }
  out->ok = true;
}

// Open-loop windowed point-GET stream; answers are awaited in issue
// order so the fingerprint is deterministic.
sim::Task<void> DriverGets(sim::Simulation* sim,
                           router::ShardedKeyspaceHandle ks,
                           std::uint32_t driver, std::uint32_t drivers,
                           std::uint64_t puts, std::uint64_t gets,
                           std::uint64_t depth, DriverResult* out) {
  out->ok = false;
  std::uint64_t stride = 4093;
  while (puts % stride == 0) ++stride;
  std::deque<client::GetFuture> window;
  for (std::uint64_t i = driver; i < gets; i += drivers) {
    if (window.size() >= depth) {
      auto got = co_await window.front().Await();
      window.pop_front();
      if (!got.ok()) co_return;
      out->get_crc = crc32c::Extend(out->get_crc, got->data(), got->size());
    }
    auto get = co_await ks.GetAsync(MakeFixedKey((i * stride) % puts));
    window.push_back(std::move(get));
  }
  while (!window.empty()) {
    auto got = co_await window.front().Await();
    window.pop_front();
    if (!got.ok()) co_return;
    out->get_crc = crc32c::Extend(out->get_crc, got->data(), got->size());
  }
  out->get_end = sim->Now();
  out->ok = true;
}

struct QueryResult {
  std::uint32_t scan_crc = 0;
  std::uint64_t scan_rows = 0;
  std::uint32_t secondary_crc = 0;
  std::uint32_t select_crc = 0;
  std::uint32_t aggregate_crc = 0;
  bool ok = false;
};

std::uint32_t CrcRows(const Rows& rows) {
  std::uint32_t crc = 0;
  for (const auto& kv : rows) {
    crc = crc32c::Extend(crc, kv.first.data(), kv.first.size());
    crc = crc32c::Extend(crc, kv.second.data(), kv.second.size());
  }
  return crc;
}

// Scatter-gather verification pass: full merged scan, merged secondary
// range, merged pushdown select, folded aggregate. Every fingerprint
// must be identical at every sweep point.
sim::Task<void> MergedQueries(router::ShardedKeyspaceHandle ks,
                              std::uint64_t value_bytes, QueryResult* out) {
  const std::string lo;
  const std::string hi(16, '\xff');

  Rows rows;
  Status s = co_await ks.Scan(lo, hi, 0, &rows);
  if (!s.ok()) {
    std::fprintf(stderr, "merged scan failed: %s\n", s.message().c_str());
    co_return;
  }
  out->scan_rows = rows.size();
  out->scan_crc = CrcRows(rows);

  rows.clear();
  s = co_await ks.QuerySecondaryRangeF32("energy", 100.0f, 499.0f, 1000,
                                         &rows);
  if (!s.ok()) {
    std::fprintf(stderr, "merged secondary failed: %s\n",
                 s.message().c_str());
    co_return;
  }
  out->secondary_crc = CrcRows(rows);

  rows.clear();
  client::KeyspaceHandle::SelectOptions opts;
  opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 0, 700.0f);
  opts.proj.enabled = true;
  opts.proj.offset = 0;
  opts.proj.length = static_cast<std::uint32_t>(value_bytes);
  opts.limit = 256;
  s = co_await ks.Select(lo, hi, opts, &rows);
  if (!s.ok()) {
    std::fprintf(stderr, "merged select failed: %s\n", s.message().c_str());
    co_return;
  }
  out->select_crc = CrcRows(rows);

  nvme::AggregateSpec agg;
  agg.func = nvme::AggregateFunc::kSum;
  agg.value_offset = 0;
  agg.value_length = 4;
  agg.type = nvme::SecondaryKeyType::kF32;
  Result<nvme::AggregateResult> r = co_await ks.Aggregate(lo, hi, agg);
  if (!r.ok()) {
    std::fprintf(stderr, "folded aggregate failed: %s\n",
                 r.status().message().c_str());
    co_return;
  }
  const nvme::AggregateResult& a = r.value();
  std::uint32_t crc = 0;
  crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&a.rows),
                       sizeof(a.rows));
  crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&a.min),
                       sizeof(a.min));
  crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&a.max),
                       sizeof(a.max));
  crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&a.sum),
                       sizeof(a.sum));
  out->aggregate_crc = crc;
  out->ok = true;
}

struct PointResult {
  double put_per_sec = 0;
  double get_per_sec = 0;
  std::uint32_t fingerprint = 0;
  std::uint32_t query_fingerprint = 0;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t puts = flags.GetUint("puts", 16384);
  const std::uint64_t gets = flags.GetUint("gets", 8192);
  const std::uint32_t drivers =
      static_cast<std::uint32_t>(flags.GetUint("drivers", 8));
  const std::uint64_t depth = flags.GetUint("depth", 4);
  const std::uint64_t batch = flags.GetUint("batch", 32);
  // Point GETs have no batch API, so each stream pays the per-command
  // submission cost serially; many more GET streams than PUT streams are
  // needed before the devices (not host submission) set the ceiling.
  const std::uint32_t get_drivers =
      static_cast<std::uint32_t>(flags.GetUint("get_drivers", 64));
  const std::uint64_t get_depth = flags.GetUint("get_depth", 64);
  // Values default to 2 KiB so even the 8-shard slice of the dataset
  // stripes across every NAND channel; with tiny values the whole
  // dataset fits in a couple of stripe units and point GETs serialize
  // on one or two channels per device regardless of fleet size.
  const std::uint64_t value_bytes = flags.GetUint("value_bytes", 2048);
  const std::uint64_t min_scaling_pct = flags.GetUint("min_scaling_pct", 75);
  if (puts == 0 || gets == 0 || drivers == 0 || depth == 0 || batch == 0 ||
      get_drivers == 0 || get_depth == 0) {
    std::fprintf(stderr,
                 "--puts, --gets, --drivers, --depth, --batch, "
                 "--get_drivers and --get_depth must be > 0\n");
    return 2;
  }
  ApplyObservabilityFlags(flags);
  JsonReporter report("shard_scaling", flags);

  std::printf(
      "Shard router scale-out: %s PUTs (batch %s, %u streams) + %s point "
      "GETs (%u streams) total, devices 1 -> 8\n",
      FormatCount(puts).c_str(), FormatCount(batch).c_str(), drivers,
      FormatCount(gets).c_str(), get_drivers);
  Table table("Aggregate throughput vs device count (fixed total dataset)",
              {"shards", "PUT keys/s", "GET keys/s", "speedup(PUT)",
               "speedup(GET)", "fingerprint", "queries"});

  const std::uint32_t shard_counts[] = {1, 2, 4, 8};
  std::vector<PointResult> points;
  bool all_ok = true;

  for (std::uint32_t shards : shard_counts) {
    ShardedTestbedConfig config;
    config.num_shards = shards;
    config.shard.queues.sq_depth_cap =
        static_cast<std::uint32_t>(drivers * depth * batch);

    ShardedTestbed bed(config);
    router::ShardedKeyspaceHandle ks;
    bed.sim().Spawn([](router::ShardedClient* db,
                       router::ShardedKeyspaceHandle* out)
                        -> sim::Task<void> {
      auto r = co_await db->CreateKeyspace("particles");
      if (r.ok()) *out = r.value();
    }(&bed.router(), &ks));
    bed.sim().Run();

    PointResult point;
    bool point_ok = ks.valid();
    std::vector<DriverResult> results(
        std::max<std::size_t>(drivers, get_drivers));

    // Phase 1 (timed): concurrent open-loop PUT streams.
    if (point_ok) {
      const Tick t0 = bed.sim().Now();
      for (std::uint32_t d = 0; d < drivers; ++d) {
        bed.sim().Spawn(DriverPuts(&bed.sim(), ks, d, drivers, puts,
                                   value_bytes, depth, batch, &results[d]));
      }
      bed.sim().Run();
      Tick put_end = t0;
      for (std::uint32_t d = 0; d < drivers; ++d) {
        const DriverResult& r = results[d];
        if (!r.ok) point_ok = false;
        if (r.put_end > put_end) put_end = r.put_end;
      }
      if (point_ok && put_end > t0) {
        point.put_per_sec = static_cast<double>(puts) * 1e9 /
                            static_cast<double>(put_end - t0);
      }
    }

    // Seal: sync + staggered compaction + index build (untimed).
    if (point_ok) {
      bed.sim().Spawn(Seal(ks, &results[0]));
      bed.sim().Run();
      if (!results[0].ok) point_ok = false;
    }

    // Phase 2 (timed): concurrent open-loop point-GET streams.
    if (point_ok) {
      const Tick t0 = bed.sim().Now();
      for (std::uint32_t d = 0; d < get_drivers; ++d) {
        bed.sim().Spawn(DriverGets(&bed.sim(), ks, d, get_drivers, puts,
                                   gets, get_depth, &results[d]));
      }
      bed.sim().Run();
      Tick get_end = t0;
      for (std::uint32_t d = 0; d < get_drivers; ++d) {
        const DriverResult& r = results[d];
        if (!r.ok) point_ok = false;
        if (r.get_end > get_end) get_end = r.get_end;
      }
      if (point_ok && get_end > t0) {
        point.get_per_sec = static_cast<double>(gets) * 1e9 /
                            static_cast<double>(get_end - t0);
      }
    }

    if (flags.GetUint("debug_stats", 0) != 0) {
      for (const auto& [name, h] : bed.sim().stats().histograms()) {
        if (name.find("get_ns") == std::string::npos &&
            name.find("queue_wait") == std::string::npos &&
            name.find("exec_ns") == std::string::npos) {
          continue;
        }
        const auto s = h.Summary();
        std::printf("  [debug] %-46s count=%-8llu mean=%-10.0f p99=%.0f\n",
                    name.c_str(), static_cast<unsigned long long>(s.count),
                    s.mean, s.p99);
      }
    }

    // Phase 3 (untimed): scatter-gather exactness.
    QueryResult queries;
    if (point_ok) {
      bed.sim().Spawn(MergedQueries(ks, value_bytes, &queries));
      bed.sim().Run();
      if (!queries.ok || queries.scan_rows != puts) {
        std::fprintf(stderr,
                     "shards=%u: merged scan returned %llu rows, want "
                     "%llu\n",
                     shards,
                     static_cast<unsigned long long>(queries.scan_rows),
                     static_cast<unsigned long long>(puts));
        point_ok = false;
      }
    }

    // Fingerprints: driver-ordered PUT/GET byte streams, then the four
    // merged query results.
    std::uint32_t crc = 0;
    for (const DriverResult& r : results) {
      crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&r.put_crc),
                           sizeof(r.put_crc));
      crc = crc32c::Extend(crc, reinterpret_cast<const char*>(&r.get_crc),
                           sizeof(r.get_crc));
    }
    point.fingerprint = crc;
    crc = 0;
    crc = crc32c::Extend(crc,
                         reinterpret_cast<const char*>(&queries.scan_crc),
                         sizeof(queries.scan_crc));
    crc = crc32c::Extend(
        crc, reinterpret_cast<const char*>(&queries.secondary_crc),
        sizeof(queries.secondary_crc));
    crc = crc32c::Extend(crc,
                         reinterpret_cast<const char*>(&queries.select_crc),
                         sizeof(queries.select_crc));
    crc = crc32c::Extend(
        crc, reinterpret_cast<const char*>(&queries.aggregate_crc),
        sizeof(queries.aggregate_crc));
    point.query_fingerprint = crc;
    point.ok = point_ok;
    if (!point_ok) {
      std::fprintf(stderr, "point shards=%u: driver failed\n", shards);
      all_ok = false;
    }

    const std::string tag = "n" + std::to_string(shards);
    report.AddMetric("csd.shard." + tag + ".put_keys_per_sec",
                     point.put_per_sec);
    report.AddMetric("csd.shard." + tag + ".get_keys_per_sec",
                     point.get_per_sec);
    report.AddMetric("csd.shard." + tag + ".fingerprint",
                     static_cast<std::uint64_t>(point.fingerprint));
    report.AddMetric("csd.shard." + tag + ".query_fingerprint",
                     static_cast<std::uint64_t>(point.query_fingerprint));
    if (shards == shard_counts[std::size(shard_counts) - 1]) {
      report.AddStats(bed.sim().stats(), "router.");
    }

    const double put_speedup =
        points.empty() || points.front().put_per_sec <= 0
            ? 1.0
            : point.put_per_sec / points.front().put_per_sec;
    const double get_speedup =
        points.empty() || points.front().get_per_sec <= 0
            ? 1.0
            : point.get_per_sec / points.front().get_per_sec;
    char fp[16], qfp[16];
    std::snprintf(fp, sizeof(fp), "%08x", point.fingerprint);
    std::snprintf(qfp, sizeof(qfp), "%08x", point.query_fingerprint);
    char put_x[16], get_x[16];
    std::snprintf(put_x, sizeof(put_x), "%.2fx", put_speedup);
    std::snprintf(get_x, sizeof(get_x), "%.2fx", get_speedup);
    table.AddRow(
        {std::to_string(shards),
         FormatCount(static_cast<std::uint64_t>(point.put_per_sec)),
         FormatCount(static_cast<std::uint64_t>(point.get_per_sec)), put_x,
         get_x, fp, qfp});
    points.push_back(point);
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();

  // Gates: identical contents, monotone throughput (2% slack), and the
  // widest point must reach min_scaling of ideal linear scaling.
  bool identical = true;
  bool put_monotone = true;
  bool get_monotone = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].fingerprint != points[0].fingerprint ||
        points[i].query_fingerprint != points[0].query_fingerprint) {
      identical = false;
    }
    if (points[i].put_per_sec < points[i - 1].put_per_sec * 0.98) {
      put_monotone = false;
    }
    if (points[i].get_per_sec < points[i - 1].get_per_sec * 0.98) {
      get_monotone = false;
    }
  }
  const double n = static_cast<double>(
      shard_counts[std::size(shard_counts) - 1]);
  const double need =
      static_cast<double>(min_scaling_pct) / 100.0 * n;
  const double put_speedup =
      points.front().put_per_sec > 0
          ? points.back().put_per_sec / points.front().put_per_sec
          : 0.0;
  const double get_speedup =
      points.front().get_per_sec > 0
          ? points.back().get_per_sec / points.front().get_per_sec
          : 0.0;
  const bool put_scales = put_speedup >= need;
  const bool get_scales = get_speedup >= need;

  std::printf("\naggregate PUT throughput monotone in shard count: %s\n",
              put_monotone ? "yes" : "NO (regression!)");
  std::printf("aggregate GET throughput monotone in shard count: %s\n",
              get_monotone ? "yes" : "NO (regression!)");
  std::printf(
      "8 shards vs 1 (need >= %.2fx): PUT %.2fx %s, GET %.2fx %s\n", need,
      put_speedup, put_scales ? "ok" : "TOO FLAT (regression!)",
      get_speedup, get_scales ? "ok" : "TOO FLAT (regression!)");
  std::printf("contents identical across sweep points: %s\n",
              identical ? "yes" : "NO (determinism bug!)");
  return (all_ok && identical && put_monotone && get_monotone &&
          put_scales && get_scales)
             ? 0
             : 1;
}
