// YCSB-style mixed workloads over a COMPACTED keyspace (DESIGN.md §12):
// load N keys, compact, then drive the classic mixes against the sorted
// run while updates and point deletes land in the delta log:
//
//   A: 50% read / 45% update /  5% delete   (update heavy)
//   B: 95% read /  4% update /  1% delete   (read mostly)
//   C: 100% read                            (read only)
//   F: 50% read / 45% read-modify-write / 5% delete
//
// Each mix runs at every queue depth in the sweep (open-loop async window,
// bench_multi_tenant style). After the mixed phase the delta is folded
// back into the run via incremental re-compaction, and a full scan is
// compared against a host-side model of the op stream: the driver exits
// non-zero on any mismatch, so the perf gate doubles as a correctness
// gate for merge-read and re-compaction semantics.
//
// What must hold:
//   * every mix at every depth completes with zero failed ops;
//   * the post-fold scan fingerprint equals the host model exactly
//     (last-writer-wins, tombstones suppressed, inserts visible);
//   * mixes with writes trigger at least one incremental re-compaction.
//
// Flags: --keys=8192 --ops=8192 --value_bytes=128 --depths=1,4 --seed=42
//        --json=PATH --trace=PATH --telemetry=PATH
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/keys.h"
#include "common/random.h"
#include "harness/flags.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "harness/tracing.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

struct MixSpec {
  const char* name;
  double read;    // plain point GET
  double update;  // blind overwrite PUT
  double rmw;     // GET then PUT of the same key (YCSB-F)
  double del;     // blind point DELETE
};

constexpr MixSpec kMixes[] = {
    {"A", 0.50, 0.45, 0.00, 0.05},
    {"B", 0.95, 0.04, 0.00, 0.01},
    {"C", 1.00, 0.00, 0.00, 0.00},
    {"F", 0.50, 0.00, 0.45, 0.05},
};

std::string ValueFor(std::uint64_t id, std::uint64_t version,
                     std::uint64_t bytes) {
  std::string v(bytes, '\0');
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<char>('a' + (id * 131 + version * 31 + i * 7) % 26);
  }
  return v;
}

struct PointResult {
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t rmws = 0;
  std::uint64_t deletes = 0;
  std::uint64_t read_hits = 0;
  Tick mixed_start = 0;
  Tick mixed_end = 0;
  std::uint32_t scan_crc = 0;
  std::uint32_t model_crc = 0;
  std::uint64_t recompactions = 0;
  std::uint64_t delta_keys_folded = 0;
  bool ok = false;
};

// Load keys 0..N-1 (version 0 values), compact, leave the keyspace
// COMPACTED and ready for delta traffic. Untimed.
sim::Task<void> LoadAndCompact(client::Client* db, std::uint64_t keys,
                               std::uint64_t value_bytes,
                               client::KeyspaceHandle* out, bool* ok) {
  *ok = false;
  auto ks = co_await db->CreateKeyspace("ycsb");
  if (!ks.ok()) co_return;
  auto writer = ks->NewBulkWriter();
  for (std::uint64_t i = 0; i < keys; ++i) {
    Status s = co_await writer.Add(MakeFixedKey(i), ValueFor(i, 0,
                                                             value_bytes));
    if (!s.ok()) co_return;
  }
  if (!(co_await writer.Drain()).ok()) co_return;
  if (!(co_await ks->Compact()).ok()) co_return;
  if (!(co_await ks->WaitCompaction()).ok()) co_return;
  *out = *ks;
  *ok = true;
}

// The mixed phase: one open-loop stream of `ops` operations drawn from
// the mix, at most `depth` writes outstanding. Reads are awaited inline
// (their answers feed the host model's hit accounting); writes ride the
// async window. The host model applies writes in issue order — a single
// client on a single SQ submits in order and the device assigns delta
// sequence numbers on arrival, so issue order IS commit order.
sim::Task<void> MixedPhase(sim::Simulation* sim, client::KeyspaceHandle ks,
                           const MixSpec& mix, std::uint64_t keys,
                           std::uint64_t ops, std::uint64_t value_bytes,
                           std::uint64_t depth, std::uint64_t seed,
                           std::map<std::uint64_t, std::uint64_t>* model,
                           PointResult* out) {
  Rng rng(seed);
  std::deque<client::StatusFuture> window;
  bool failed = false;
  out->mixed_start = sim->Now();
  for (std::uint64_t op = 0; op < ops && !failed; ++op) {
    while (window.size() >= depth) {
      Status s = co_await window.front().Await();
      window.pop_front();
      if (!s.ok()) {
        std::fprintf(stderr, "mix %s write failed: %s\n", mix.name,
                     s.message().c_str());
        failed = true;
      }
    }
    if (failed) break;
    const std::uint64_t id = rng.Uniform(keys);
    const double roll = rng.NextDouble();
    if (roll < mix.read) {
      auto got = co_await ks.Get(MakeFixedKey(id));
      if (got.ok()) {
        ++out->read_hits;
      } else if (!got.status().IsNotFound()) {
        std::fprintf(stderr, "mix %s read failed: %s\n", mix.name,
                     got.status().ToString().c_str());
        failed = true;
      }
      ++out->reads;
    } else if (roll < mix.read + mix.update) {
      const std::uint64_t version = op + 1;
      window.push_back(co_await ks.PutAsync(
          MakeFixedKey(id), ValueFor(id, version, value_bytes)));
      (*model)[id] = version;
      ++out->updates;
    } else if (roll < mix.read + mix.update + mix.rmw) {
      // Read-modify-write: the read is part of the op's latency.
      auto got = co_await ks.Get(MakeFixedKey(id));
      if (got.ok()) ++out->read_hits;
      const std::uint64_t version = op + 1;
      window.push_back(co_await ks.PutAsync(
          MakeFixedKey(id), ValueFor(id, version, value_bytes)));
      (*model)[id] = version;
      ++out->rmws;
    } else {
      window.push_back(co_await ks.DeleteAsync(MakeFixedKey(id)));
      model->erase(id);
      ++out->deletes;
    }
  }
  while (!window.empty()) {
    Status s = co_await window.front().Await();
    window.pop_front();
    if (!s.ok()) failed = true;
  }
  if (failed) co_return;
  Status s = co_await ks.Sync();
  if (!s.ok()) {
    std::fprintf(stderr, "mix %s sync failed: %s\n", mix.name,
                 s.message().c_str());
    co_return;
  }
  out->mixed_end = sim->Now();
  out->ok = true;
}

// Fold the delta back into the run, then scan everything and fingerprint
// both the device's answer and the host model. A mismatch is a merge or
// re-compaction bug, not a perf regression.
sim::Task<void> FoldAndVerify(client::KeyspaceHandle ks, std::uint64_t keys,
                              std::uint64_t value_bytes,
                              const std::map<std::uint64_t, std::uint64_t>&
                                  model,
                              PointResult* out) {
  out->ok = false;
  Status s = co_await ks.Compact();  // incremental re-compaction (no-op
                                     // for mix C's empty delta)
  if (!s.ok()) {
    std::fprintf(stderr, "fold compact failed: %s\n", s.message().c_str());
    co_return;
  }
  s = co_await ks.WaitCompaction();
  if (!s.ok()) {
    std::fprintf(stderr, "fold wait failed: %s\n", s.message().c_str());
    co_return;
  }
  std::vector<std::pair<std::string, std::string>> rows;
  s = co_await ks.Scan("", "\x7f", 0, &rows);
  if (!s.ok()) {
    std::fprintf(stderr, "verify scan failed: %s\n", s.message().c_str());
    co_return;
  }
  for (const auto& [key, value] : rows) {
    out->scan_crc = crc32c::Extend(out->scan_crc, key.data(), key.size());
    out->scan_crc = crc32c::Extend(out->scan_crc, value.data(),
                                   value.size());
  }
  for (std::uint64_t id = 0; id < keys; ++id) {
    auto it = model.find(id);
    if (it == model.end()) continue;
    const std::string key = MakeFixedKey(id);
    const std::string value = ValueFor(id, it->second, value_bytes);
    out->model_crc = crc32c::Extend(out->model_crc, key.data(), key.size());
    out->model_crc = crc32c::Extend(out->model_crc, value.data(),
                                    value.size());
  }
  out->ok = rows.size() == model.size() && out->scan_crc == out->model_crc;
  if (!out->ok) {
    std::fprintf(stderr,
                 "verify mismatch: scan %zu rows crc %08x vs model %zu "
                 "keys crc %08x\n",
                 rows.size(), out->scan_crc, model.size(), out->model_crc);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 8192);
  const std::uint64_t ops = flags.GetUint("ops", 8192);
  const std::uint64_t value_bytes = flags.GetUint("value_bytes", 128);
  const std::uint64_t seed = flags.GetUint("seed", 42);
  const std::uint64_t depth_lo = flags.GetUint("depth_lo", 1);
  const std::uint64_t depth_hi = flags.GetUint("depth_hi", 4);
  if (keys == 0 || ops == 0 || depth_lo == 0 || depth_hi < depth_lo) {
    std::fprintf(stderr,
                 "--keys and --ops must be > 0; need 0 < depth_lo <= "
                 "depth_hi\n");
    return 2;
  }
  ApplyObservabilityFlags(flags);
  JsonReporter report("ycsb", flags);

  std::printf(
      "YCSB mixes over a compacted keyspace: %s keys x %sB values, "
      "%s ops per point, depths %llu and %llu\n",
      FormatCount(keys).c_str(), FormatCount(value_bytes).c_str(),
      FormatCount(ops).c_str(),
      static_cast<unsigned long long>(depth_lo),
      static_cast<unsigned long long>(depth_hi));
  Table table("Mixed ops/s over compacted keyspace (delta + merge reads)",
              {"mix", "depth", "ops/s", "reads", "updates+rmw", "deletes",
               "hit%", "folded", "verified"});

  std::vector<std::uint64_t> depths;
  depths.push_back(depth_lo);
  if (depth_hi != depth_lo) depths.push_back(depth_hi);

  bool all_ok = true;
  for (const MixSpec& mix : kMixes) {
    for (std::uint64_t depth : depths) {
      TestbedConfig config = TestbedConfig::Scaled();
      config.queues.sq_depth_cap = static_cast<std::uint32_t>(depth + 1);
      CsdTestbed bed(config);

      client::KeyspaceHandle ks;
      bool loaded = false;
      bed.sim().Spawn(
          LoadAndCompact(&bed.client(), keys, value_bytes, &ks, &loaded));
      bed.sim().Run();
      if (!loaded) {
        std::fprintf(stderr, "mix %s depth %llu: load failed\n", mix.name,
                     static_cast<unsigned long long>(depth));
        all_ok = false;
        continue;
      }

      // Host-side model: key id -> live version (absent = deleted).
      std::map<std::uint64_t, std::uint64_t> model;
      for (std::uint64_t i = 0; i < keys; ++i) model[i] = 0;

      PointResult point;
      bed.sim().Spawn(MixedPhase(&bed.sim(), ks, mix, keys, ops,
                                 value_bytes, depth, seed, &model, &point));
      bed.sim().Run();
      if (!point.ok) {
        all_ok = false;
        continue;
      }

      bed.sim().Spawn(
          FoldAndVerify(ks, keys, value_bytes, model, &point));
      bed.sim().Run();
      point.recompactions =
          bed.sim().stats().counter_value("device.recompact.done");
      point.delta_keys_folded =
          bed.sim().stats().counter_value("device.recompact.delta_keys");
      const bool wrote =
          point.updates + point.rmws + point.deletes > 0;
      if (!point.ok || (wrote && point.recompactions == 0)) {
        std::fprintf(stderr, "mix %s depth %llu: verification failed\n",
                     mix.name, static_cast<unsigned long long>(depth));
        all_ok = false;
      }

      const double ops_per_sec =
          point.mixed_end > point.mixed_start
              ? static_cast<double>(ops) * 1e9 /
                    static_cast<double>(point.mixed_end - point.mixed_start)
              : 0.0;
      const std::uint64_t lookups = point.reads + point.rmws;
      const std::string tag = std::string("csd.ycsb.") + mix.name + ".d" +
                              std::to_string(depth);
      report.AddMetric(tag + ".ops_per_sec", ops_per_sec);
      report.AddMetric(tag + ".read_hit_ratio",
                       lookups ? static_cast<double>(point.read_hits) /
                                     static_cast<double>(lookups)
                               : 0.0);
      report.AddMetric(tag + ".delta_keys_folded", point.delta_keys_folded);
      report.AddMetric(tag + ".fingerprint",
                       static_cast<std::uint64_t>(point.scan_crc));
      report.AddMetric(
          tag + ".delta_hits",
          bed.sim().stats().counter_value("device.query.delta_hits"));

      table.AddRow(
          {mix.name, std::to_string(depth),
           FormatCount(static_cast<std::uint64_t>(ops_per_sec)),
           FormatCount(point.reads),
           FormatCount(point.updates + point.rmws),
           FormatCount(point.deletes),
           lookups ? std::to_string(100 * point.read_hits / lookups) + "%"
                   : "-",
           FormatCount(point.delta_keys_folded),
           point.ok ? "yes" : "NO"});

      // Reference point for the p99 gate: the update-heavy mix at the
      // deepest window stresses merge reads and the delta append path.
      if (&mix == &kMixes[0] && depth == depths.back()) {
        report.AddStats(bed.sim().stats(), "client.cmd.");
        report.AddStats(bed.sim().stats(), "device.cmd.");
        report.AddStats(bed.sim().stats(), "device.recompact.");
      }
    }
  }
  table.Print();
  report.AddTable(table);
  report.WriteIfRequested();
  std::printf("\nall mixes verified against host model: %s\n",
              all_ok ? "yes" : "NO (merge/fold bug!)");
  return all_ok ? 0 : 1;
}
