#include "vpic_common.h"

namespace kvcsd::bench {

CsdVpicTimes LoadVpicIntoCsd(CsdTestbed& bed, const vpic::Dump& dump,
                             std::vector<client::KeyspaceHandle>* handles) {
  const std::uint32_t files = dump.num_files();
  handles->assign(files, client::KeyspaceHandle{});
  CsdVpicTimes times;

  sim::WaitGroup inserted(&bed.sim());
  sim::WaitGroup compacted(&bed.sim());
  sim::WaitGroup indexed(&bed.sim());
  inserted.Add(files);
  compacted.Add(files);
  indexed.Add(files);

  for (std::uint32_t t = 0; t < files; ++t) {
    bed.sim().Spawn([](CsdTestbed* tb, const vpic::Dump* d,
                       std::vector<client::KeyspaceHandle>* out,
                       sim::WaitGroup* ins, sim::WaitGroup* comp,
                       sim::WaitGroup* idx,
                       std::uint32_t thread) -> sim::Task<void> {
      auto ks = (co_await tb->client().CreateKeyspace(
                     "vpic" + std::to_string(thread)))
                    .value();
      (*out)[thread] = ks;
      auto writer = ks.NewBulkWriter();
      for (const vpic::Particle* p : d->FileParticles(thread)) {
        (void)co_await writer.Add(p->Key(), p->Payload());
      }
      (void)co_await writer.Flush();
      (void)co_await ks.Compact();  // returns immediately; device works
      ins->Done();
      (void)co_await ks.WaitCompaction();
      comp->Done();
      co_await comp->Wait();  // paper builds indexes after compaction
      (void)co_await ks.CreateSecondaryIndexF32("energy",
                                                vpic::kEnergyOffset);
      idx->Done();
    }(&bed, &dump, handles, &inserted, &compacted, &indexed, t));
  }

  bed.sim().Spawn([](CsdTestbed* tb, CsdVpicTimes* out, sim::WaitGroup* ins,
                     sim::WaitGroup* comp,
                     sim::WaitGroup* idx) -> sim::Task<void> {
    const Tick start = tb->sim().Now();
    co_await ins->Wait();
    out->insert = tb->sim().Now() - start;
    co_await comp->Wait();
    out->compaction = tb->sim().Now() - start - out->insert;
    co_await idx->Wait();
    out->index = tb->sim().Now() - start - out->insert - out->compaction;
  }(&bed, &times, &inserted, &compacted, &indexed));

  bed.sim().Run();
  return times;
}

LsmVpicTimes LoadVpicIntoLsm(LsmTestbed& bed, const vpic::Dump& dump,
                             std::vector<std::unique_ptr<lsm::Db>>* dbs) {
  const std::uint32_t files = dump.num_files();
  dbs->clear();
  dbs->resize(files);
  LsmVpicTimes times;

  sim::WaitGroup inserted(&bed.sim());
  sim::WaitGroup settled(&bed.sim());
  inserted.Add(files);
  settled.Add(files);

  for (std::uint32_t t = 0; t < files; ++t) {
    bed.sim().Spawn([](LsmTestbed* tb, const vpic::Dump* d,
                       std::vector<std::unique_ptr<lsm::Db>>* out,
                       sim::WaitGroup* ins, sim::WaitGroup* done,
                       std::uint32_t thread) -> sim::Task<void> {
      auto db = (co_await tb->OpenDb("vpic" + std::to_string(thread),
                                     lsm::CompactionMode::kAuto))
                    .value();
      lsm::Db* handle = db.get();
      (*out)[thread] = std::move(db);
      for (const vpic::Particle* p : d->FileParticles(thread)) {
        // Primary record plus the auxiliary energy-index record.
        (void)co_await handle->Put(PrimaryKey(*p), p->Payload());
        (void)co_await handle->Put(AuxKey(*p), p->Key());
      }
      ins->Done();
      // Automatic compactions may still be running; the paper's program
      // waits for them before exiting.
      (void)co_await handle->Flush();
      co_await handle->WaitForIdle();
      done->Done();
    }(&bed, &dump, dbs, &inserted, &settled, t));
  }

  bed.sim().Spawn([](LsmTestbed* tb, LsmVpicTimes* out, sim::WaitGroup* ins,
                     sim::WaitGroup* done) -> sim::Task<void> {
    const Tick start = tb->sim().Now();
    co_await ins->Wait();
    out->insert = tb->sim().Now() - start;
    co_await done->Wait();
    out->compaction_wait = tb->sim().Now() - start - out->insert;
  }(&bed, &times, &inserted, &settled));

  bed.sim().Run();
  return times;
}

}  // namespace kvcsd::bench
