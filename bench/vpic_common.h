// Shared VPIC macro-benchmark plumbing for Fig. 11 (write phase) and
// Fig. 12 (query phase).
//
// KV-CSD side: 16 loader threads, one VPIC file -> one keyspace each;
// particle ID (16 B) is the primary key, the 32 B payload the value; the
// device builds the primary index via deferred compaction and a secondary
// index on the kinetic energy (f32 at payload offset 28).
//
// RocksDB side (paper §VI-C): the loader inserts auxiliary key-value pairs
// alongside the primary ones — a 1 B prefix distinguishes them. Auxiliary
// keys embed the order-encoded energy (plus the particle id to keep keys
// unique); querying is a two-step process: range-scan the auxiliary keys,
// then GET each returned primary key.
#pragma once

#include <string>
#include <vector>

#include "common/keys.h"
#include "harness/testbed.h"
#include "nvme/skey.h"
#include "sim/sync.h"
#include "vpic/vpic.h"

namespace kvcsd::bench {

using harness::CsdTestbed;
using harness::LsmTestbed;

constexpr char kPrimaryPrefix = '\x00';
constexpr char kAuxPrefix = '\x01';

inline std::string PrimaryKey(const vpic::Particle& p) {
  return kPrimaryPrefix + p.Key();
}

inline std::string AuxKey(const vpic::Particle& p) {
  std::string key(1, kAuxPrefix);
  key += nvme::EncodeSecondaryF32(p.energy);
  AppendBigEndian64(&key, p.id);  // uniquify identical energies
  return key;
}

inline std::string AuxRangeStart(float threshold) {
  std::string key(1, kAuxPrefix);
  key += nvme::EncodeSecondaryF32(threshold);
  return key;
}

inline std::string AuxRangeEnd() {
  // One past every possible aux key.
  return std::string(1, kAuxPrefix) + std::string(13, '\xff');
}

struct CsdVpicTimes {
  Tick insert = 0;      // what the application experiences
  Tick compaction = 0;  // asynchronous, device-side
  Tick index = 0;       // secondary-index construction, device-side
};

// Loads the dump into `bed` (one keyspace per file), compacts, and builds
// the energy index. Returns phase times and fills `handles`.
CsdVpicTimes LoadVpicIntoCsd(CsdTestbed& bed, const vpic::Dump& dump,
                             std::vector<client::KeyspaceHandle>* handles);

struct LsmVpicTimes {
  Tick insert = 0;           // puts acknowledged (stalls included)
  Tick compaction_wait = 0;  // extra wait for background compaction
};

// Loads the dump into per-thread RocksLite instances with auxiliary energy
// keys; automatic compaction runs during the load (paper's setup).
LsmVpicTimes LoadVpicIntoLsm(LsmTestbed& bed, const vpic::Dump& dump,
                             std::vector<std::unique_ptr<lsm::Db>>* dbs);

}  // namespace kvcsd::bench
