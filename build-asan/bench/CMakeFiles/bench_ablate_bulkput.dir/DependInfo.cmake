
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablate_bulkput.cc" "bench/CMakeFiles/bench_ablate_bulkput.dir/bench_ablate_bulkput.cc.o" "gcc" "bench/CMakeFiles/bench_ablate_bulkput.dir/bench_ablate_bulkput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/harness/CMakeFiles/kvcsd_harness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/client/CMakeFiles/kvcsd_client.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/kvcsd/CMakeFiles/kvcsd_device.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nvme/CMakeFiles/kvcsd_nvme.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lsm/CMakeFiles/kvcsd_lsm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hostenv/CMakeFiles/kvcsd_hostenv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/kvcsd_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vpic/CMakeFiles/kvcsd_vpic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
