file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_bulkput.dir/bench_ablate_bulkput.cc.o"
  "CMakeFiles/bench_ablate_bulkput.dir/bench_ablate_bulkput.cc.o.d"
  "bench_ablate_bulkput"
  "bench_ablate_bulkput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_bulkput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
