# Empty dependencies file for bench_ablate_bulkput.
# This may be replaced when dependencies are built.
