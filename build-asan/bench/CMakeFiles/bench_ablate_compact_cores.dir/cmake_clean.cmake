file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_compact_cores.dir/bench_ablate_compact_cores.cc.o"
  "CMakeFiles/bench_ablate_compact_cores.dir/bench_ablate_compact_cores.cc.o.d"
  "bench_ablate_compact_cores"
  "bench_ablate_compact_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_compact_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
