# Empty dependencies file for bench_ablate_compact_cores.
# This may be replaced when dependencies are built.
