file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dram.dir/bench_ablate_dram.cc.o"
  "CMakeFiles/bench_ablate_dram.dir/bench_ablate_dram.cc.o.d"
  "bench_ablate_dram"
  "bench_ablate_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
