# Empty dependencies file for bench_ablate_dram.
# This may be replaced when dependencies are built.
