file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_fused_index.dir/bench_ablate_fused_index.cc.o"
  "CMakeFiles/bench_ablate_fused_index.dir/bench_ablate_fused_index.cc.o.d"
  "bench_ablate_fused_index"
  "bench_ablate_fused_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_fused_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
