# Empty dependencies file for bench_ablate_fused_index.
# This may be replaced when dependencies are built.
