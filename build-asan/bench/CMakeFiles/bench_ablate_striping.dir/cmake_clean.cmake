file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_striping.dir/bench_ablate_striping.cc.o"
  "CMakeFiles/bench_ablate_striping.dir/bench_ablate_striping.cc.o.d"
  "bench_ablate_striping"
  "bench_ablate_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
