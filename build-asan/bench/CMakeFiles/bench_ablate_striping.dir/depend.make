# Empty dependencies file for bench_ablate_striping.
# This may be replaced when dependencies are built.
