file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_get.dir/bench_fig10_get.cc.o"
  "CMakeFiles/bench_fig10_get.dir/bench_fig10_get.cc.o.d"
  "bench_fig10_get"
  "bench_fig10_get.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_get.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
