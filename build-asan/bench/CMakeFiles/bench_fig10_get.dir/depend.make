# Empty dependencies file for bench_fig10_get.
# This may be replaced when dependencies are built.
