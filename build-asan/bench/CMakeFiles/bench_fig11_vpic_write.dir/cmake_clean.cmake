file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vpic_write.dir/bench_fig11_vpic_write.cc.o"
  "CMakeFiles/bench_fig11_vpic_write.dir/bench_fig11_vpic_write.cc.o.d"
  "CMakeFiles/bench_fig11_vpic_write.dir/vpic_common.cc.o"
  "CMakeFiles/bench_fig11_vpic_write.dir/vpic_common.cc.o.d"
  "bench_fig11_vpic_write"
  "bench_fig11_vpic_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vpic_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
