# Empty dependencies file for bench_fig11_vpic_write.
# This may be replaced when dependencies are built.
