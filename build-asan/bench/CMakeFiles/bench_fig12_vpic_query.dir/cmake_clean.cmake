file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vpic_query.dir/bench_fig12_vpic_query.cc.o"
  "CMakeFiles/bench_fig12_vpic_query.dir/bench_fig12_vpic_query.cc.o.d"
  "CMakeFiles/bench_fig12_vpic_query.dir/vpic_common.cc.o"
  "CMakeFiles/bench_fig12_vpic_query.dir/vpic_common.cc.o.d"
  "bench_fig12_vpic_query"
  "bench_fig12_vpic_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vpic_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
