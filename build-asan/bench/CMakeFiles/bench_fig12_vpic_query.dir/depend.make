# Empty dependencies file for bench_fig12_vpic_query.
# This may be replaced when dependencies are built.
