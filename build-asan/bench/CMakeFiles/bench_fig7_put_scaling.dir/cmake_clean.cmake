file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_put_scaling.dir/bench_fig7_put_scaling.cc.o"
  "CMakeFiles/bench_fig7_put_scaling.dir/bench_fig7_put_scaling.cc.o.d"
  "bench_fig7_put_scaling"
  "bench_fig7_put_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_put_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
