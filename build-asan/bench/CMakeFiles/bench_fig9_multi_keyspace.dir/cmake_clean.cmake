file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_multi_keyspace.dir/bench_fig9_multi_keyspace.cc.o"
  "CMakeFiles/bench_fig9_multi_keyspace.dir/bench_fig9_multi_keyspace.cc.o.d"
  "bench_fig9_multi_keyspace"
  "bench_fig9_multi_keyspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multi_keyspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
