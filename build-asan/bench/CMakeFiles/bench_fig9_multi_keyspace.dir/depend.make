# Empty dependencies file for bench_fig9_multi_keyspace.
# This may be replaced when dependencies are built.
