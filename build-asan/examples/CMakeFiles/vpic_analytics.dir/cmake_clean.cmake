file(REMOVE_RECURSE
  "CMakeFiles/vpic_analytics.dir/vpic_analytics.cpp.o"
  "CMakeFiles/vpic_analytics.dir/vpic_analytics.cpp.o.d"
  "vpic_analytics"
  "vpic_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
