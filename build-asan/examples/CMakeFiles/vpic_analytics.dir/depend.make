# Empty dependencies file for vpic_analytics.
# This may be replaced when dependencies are built.
