file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_client.dir/client.cc.o"
  "CMakeFiles/kvcsd_client.dir/client.cc.o.d"
  "libkvcsd_client.a"
  "libkvcsd_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
