file(REMOVE_RECURSE
  "libkvcsd_client.a"
)
