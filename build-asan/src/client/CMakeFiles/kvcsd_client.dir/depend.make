# Empty dependencies file for kvcsd_client.
# This may be replaced when dependencies are built.
