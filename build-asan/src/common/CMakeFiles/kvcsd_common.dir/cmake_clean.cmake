file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_common.dir/coding.cc.o"
  "CMakeFiles/kvcsd_common.dir/coding.cc.o.d"
  "CMakeFiles/kvcsd_common.dir/crc32c.cc.o"
  "CMakeFiles/kvcsd_common.dir/crc32c.cc.o.d"
  "CMakeFiles/kvcsd_common.dir/random.cc.o"
  "CMakeFiles/kvcsd_common.dir/random.cc.o.d"
  "CMakeFiles/kvcsd_common.dir/status.cc.o"
  "CMakeFiles/kvcsd_common.dir/status.cc.o.d"
  "libkvcsd_common.a"
  "libkvcsd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
