file(REMOVE_RECURSE
  "libkvcsd_common.a"
)
