# Empty dependencies file for kvcsd_common.
# This may be replaced when dependencies are built.
