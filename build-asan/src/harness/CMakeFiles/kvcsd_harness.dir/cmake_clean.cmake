file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_harness.dir/crash_sweep.cc.o"
  "CMakeFiles/kvcsd_harness.dir/crash_sweep.cc.o.d"
  "CMakeFiles/kvcsd_harness.dir/flags.cc.o"
  "CMakeFiles/kvcsd_harness.dir/flags.cc.o.d"
  "CMakeFiles/kvcsd_harness.dir/report.cc.o"
  "CMakeFiles/kvcsd_harness.dir/report.cc.o.d"
  "CMakeFiles/kvcsd_harness.dir/testbed.cc.o"
  "CMakeFiles/kvcsd_harness.dir/testbed.cc.o.d"
  "CMakeFiles/kvcsd_harness.dir/workloads.cc.o"
  "CMakeFiles/kvcsd_harness.dir/workloads.cc.o.d"
  "libkvcsd_harness.a"
  "libkvcsd_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
