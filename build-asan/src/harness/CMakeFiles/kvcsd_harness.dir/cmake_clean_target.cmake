file(REMOVE_RECURSE
  "libkvcsd_harness.a"
)
