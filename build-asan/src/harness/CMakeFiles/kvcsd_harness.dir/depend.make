# Empty dependencies file for kvcsd_harness.
# This may be replaced when dependencies are built.
