
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hostenv/fs.cc" "src/hostenv/CMakeFiles/kvcsd_hostenv.dir/fs.cc.o" "gcc" "src/hostenv/CMakeFiles/kvcsd_hostenv.dir/fs.cc.o.d"
  "/root/repo/src/hostenv/page_cache.cc" "src/hostenv/CMakeFiles/kvcsd_hostenv.dir/page_cache.cc.o" "gcc" "src/hostenv/CMakeFiles/kvcsd_hostenv.dir/page_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/storage/CMakeFiles/kvcsd_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
