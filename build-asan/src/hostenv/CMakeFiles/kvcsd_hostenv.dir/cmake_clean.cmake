file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_hostenv.dir/fs.cc.o"
  "CMakeFiles/kvcsd_hostenv.dir/fs.cc.o.d"
  "CMakeFiles/kvcsd_hostenv.dir/page_cache.cc.o"
  "CMakeFiles/kvcsd_hostenv.dir/page_cache.cc.o.d"
  "libkvcsd_hostenv.a"
  "libkvcsd_hostenv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_hostenv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
