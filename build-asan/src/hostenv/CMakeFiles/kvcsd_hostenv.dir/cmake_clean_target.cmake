file(REMOVE_RECURSE
  "libkvcsd_hostenv.a"
)
