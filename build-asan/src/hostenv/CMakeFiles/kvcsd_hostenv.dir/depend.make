# Empty dependencies file for kvcsd_hostenv.
# This may be replaced when dependencies are built.
