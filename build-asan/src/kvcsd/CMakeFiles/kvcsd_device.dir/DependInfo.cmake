
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvcsd/compactor.cc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/compactor.cc.o" "gcc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/compactor.cc.o.d"
  "/root/repo/src/kvcsd/device.cc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/device.cc.o" "gcc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/device.cc.o.d"
  "/root/repo/src/kvcsd/keyspace_manager.cc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/keyspace_manager.cc.o" "gcc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/keyspace_manager.cc.o.d"
  "/root/repo/src/kvcsd/query.cc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/query.cc.o" "gcc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/query.cc.o.d"
  "/root/repo/src/kvcsd/recovery.cc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/recovery.cc.o" "gcc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/recovery.cc.o.d"
  "/root/repo/src/kvcsd/zone_manager.cc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/zone_manager.cc.o" "gcc" "src/kvcsd/CMakeFiles/kvcsd_device.dir/zone_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/nvme/CMakeFiles/kvcsd_nvme.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/kvcsd_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
