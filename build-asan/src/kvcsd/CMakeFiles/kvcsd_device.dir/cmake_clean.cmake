file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_device.dir/compactor.cc.o"
  "CMakeFiles/kvcsd_device.dir/compactor.cc.o.d"
  "CMakeFiles/kvcsd_device.dir/device.cc.o"
  "CMakeFiles/kvcsd_device.dir/device.cc.o.d"
  "CMakeFiles/kvcsd_device.dir/keyspace_manager.cc.o"
  "CMakeFiles/kvcsd_device.dir/keyspace_manager.cc.o.d"
  "CMakeFiles/kvcsd_device.dir/query.cc.o"
  "CMakeFiles/kvcsd_device.dir/query.cc.o.d"
  "CMakeFiles/kvcsd_device.dir/recovery.cc.o"
  "CMakeFiles/kvcsd_device.dir/recovery.cc.o.d"
  "CMakeFiles/kvcsd_device.dir/zone_manager.cc.o"
  "CMakeFiles/kvcsd_device.dir/zone_manager.cc.o.d"
  "libkvcsd_device.a"
  "libkvcsd_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
