file(REMOVE_RECURSE
  "libkvcsd_device.a"
)
