# Empty dependencies file for kvcsd_device.
# This may be replaced when dependencies are built.
