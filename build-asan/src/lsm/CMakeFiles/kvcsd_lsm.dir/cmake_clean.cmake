file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_lsm.dir/block_cache.cc.o"
  "CMakeFiles/kvcsd_lsm.dir/block_cache.cc.o.d"
  "CMakeFiles/kvcsd_lsm.dir/bloom.cc.o"
  "CMakeFiles/kvcsd_lsm.dir/bloom.cc.o.d"
  "CMakeFiles/kvcsd_lsm.dir/db.cc.o"
  "CMakeFiles/kvcsd_lsm.dir/db.cc.o.d"
  "CMakeFiles/kvcsd_lsm.dir/memtable.cc.o"
  "CMakeFiles/kvcsd_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/kvcsd_lsm.dir/sstable.cc.o"
  "CMakeFiles/kvcsd_lsm.dir/sstable.cc.o.d"
  "CMakeFiles/kvcsd_lsm.dir/version.cc.o"
  "CMakeFiles/kvcsd_lsm.dir/version.cc.o.d"
  "CMakeFiles/kvcsd_lsm.dir/wal.cc.o"
  "CMakeFiles/kvcsd_lsm.dir/wal.cc.o.d"
  "libkvcsd_lsm.a"
  "libkvcsd_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
