file(REMOVE_RECURSE
  "libkvcsd_lsm.a"
)
