# Empty dependencies file for kvcsd_lsm.
# This may be replaced when dependencies are built.
