file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_nvme.dir/command.cc.o"
  "CMakeFiles/kvcsd_nvme.dir/command.cc.o.d"
  "libkvcsd_nvme.a"
  "libkvcsd_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
