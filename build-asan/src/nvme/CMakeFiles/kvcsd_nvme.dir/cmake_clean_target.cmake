file(REMOVE_RECURSE
  "libkvcsd_nvme.a"
)
