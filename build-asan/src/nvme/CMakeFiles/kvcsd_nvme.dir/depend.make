# Empty dependencies file for kvcsd_nvme.
# This may be replaced when dependencies are built.
