file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_sim.dir/fault.cc.o"
  "CMakeFiles/kvcsd_sim.dir/fault.cc.o.d"
  "CMakeFiles/kvcsd_sim.dir/simulation.cc.o"
  "CMakeFiles/kvcsd_sim.dir/simulation.cc.o.d"
  "CMakeFiles/kvcsd_sim.dir/stats.cc.o"
  "CMakeFiles/kvcsd_sim.dir/stats.cc.o.d"
  "libkvcsd_sim.a"
  "libkvcsd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
