file(REMOVE_RECURSE
  "libkvcsd_sim.a"
)
