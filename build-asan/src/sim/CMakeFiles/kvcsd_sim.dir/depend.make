# Empty dependencies file for kvcsd_sim.
# This may be replaced when dependencies are built.
