
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_ssd.cc" "src/storage/CMakeFiles/kvcsd_storage.dir/block_ssd.cc.o" "gcc" "src/storage/CMakeFiles/kvcsd_storage.dir/block_ssd.cc.o.d"
  "/root/repo/src/storage/nand.cc" "src/storage/CMakeFiles/kvcsd_storage.dir/nand.cc.o" "gcc" "src/storage/CMakeFiles/kvcsd_storage.dir/nand.cc.o.d"
  "/root/repo/src/storage/zns.cc" "src/storage/CMakeFiles/kvcsd_storage.dir/zns.cc.o" "gcc" "src/storage/CMakeFiles/kvcsd_storage.dir/zns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
