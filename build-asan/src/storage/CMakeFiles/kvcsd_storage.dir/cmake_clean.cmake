file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_storage.dir/block_ssd.cc.o"
  "CMakeFiles/kvcsd_storage.dir/block_ssd.cc.o.d"
  "CMakeFiles/kvcsd_storage.dir/nand.cc.o"
  "CMakeFiles/kvcsd_storage.dir/nand.cc.o.d"
  "CMakeFiles/kvcsd_storage.dir/zns.cc.o"
  "CMakeFiles/kvcsd_storage.dir/zns.cc.o.d"
  "libkvcsd_storage.a"
  "libkvcsd_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
