file(REMOVE_RECURSE
  "libkvcsd_storage.a"
)
