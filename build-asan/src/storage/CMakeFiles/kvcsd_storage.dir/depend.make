# Empty dependencies file for kvcsd_storage.
# This may be replaced when dependencies are built.
