file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_vpic.dir/vpic.cc.o"
  "CMakeFiles/kvcsd_vpic.dir/vpic.cc.o.d"
  "libkvcsd_vpic.a"
  "libkvcsd_vpic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_vpic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
