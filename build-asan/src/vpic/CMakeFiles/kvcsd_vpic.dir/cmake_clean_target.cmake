file(REMOVE_RECURSE
  "libkvcsd_vpic.a"
)
