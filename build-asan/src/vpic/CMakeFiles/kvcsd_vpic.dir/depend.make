# Empty dependencies file for kvcsd_vpic.
# This may be replaced when dependencies are built.
