
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hostenv/fs_test.cc" "tests/CMakeFiles/hostenv_test.dir/hostenv/fs_test.cc.o" "gcc" "tests/CMakeFiles/hostenv_test.dir/hostenv/fs_test.cc.o.d"
  "/root/repo/tests/hostenv/page_cache_test.cc" "tests/CMakeFiles/hostenv_test.dir/hostenv/page_cache_test.cc.o" "gcc" "tests/CMakeFiles/hostenv_test.dir/hostenv/page_cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/hostenv/CMakeFiles/kvcsd_hostenv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/kvcsd_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
