file(REMOVE_RECURSE
  "CMakeFiles/hostenv_test.dir/hostenv/fs_test.cc.o"
  "CMakeFiles/hostenv_test.dir/hostenv/fs_test.cc.o.d"
  "CMakeFiles/hostenv_test.dir/hostenv/page_cache_test.cc.o"
  "CMakeFiles/hostenv_test.dir/hostenv/page_cache_test.cc.o.d"
  "hostenv_test"
  "hostenv_test.pdb"
  "hostenv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostenv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
