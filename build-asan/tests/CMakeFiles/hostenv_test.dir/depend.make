# Empty dependencies file for hostenv_test.
# This may be replaced when dependencies are built.
