
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kvcsd/compact_pipeline_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/compact_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/compact_pipeline_test.cc.o.d"
  "/root/repo/tests/kvcsd/device_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/device_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/device_test.cc.o.d"
  "/root/repo/tests/kvcsd/fused_index_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/fused_index_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/fused_index_test.cc.o.d"
  "/root/repo/tests/kvcsd/keyspace_manager_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/keyspace_manager_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/keyspace_manager_test.cc.o.d"
  "/root/repo/tests/kvcsd/merge_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/merge_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/merge_test.cc.o.d"
  "/root/repo/tests/kvcsd/property_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/property_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/property_test.cc.o.d"
  "/root/repo/tests/kvcsd/recovery_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/recovery_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/recovery_test.cc.o.d"
  "/root/repo/tests/kvcsd/zone_manager_test.cc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/zone_manager_test.cc.o" "gcc" "tests/CMakeFiles/kvcsd_test.dir/kvcsd/zone_manager_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/kvcsd/CMakeFiles/kvcsd_device.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/client/CMakeFiles/kvcsd_client.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/harness/CMakeFiles/kvcsd_harness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nvme/CMakeFiles/kvcsd_nvme.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lsm/CMakeFiles/kvcsd_lsm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hostenv/CMakeFiles/kvcsd_hostenv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/kvcsd_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vpic/CMakeFiles/kvcsd_vpic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
