file(REMOVE_RECURSE
  "CMakeFiles/kvcsd_test.dir/kvcsd/compact_pipeline_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/compact_pipeline_test.cc.o.d"
  "CMakeFiles/kvcsd_test.dir/kvcsd/device_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/device_test.cc.o.d"
  "CMakeFiles/kvcsd_test.dir/kvcsd/fused_index_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/fused_index_test.cc.o.d"
  "CMakeFiles/kvcsd_test.dir/kvcsd/keyspace_manager_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/keyspace_manager_test.cc.o.d"
  "CMakeFiles/kvcsd_test.dir/kvcsd/merge_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/merge_test.cc.o.d"
  "CMakeFiles/kvcsd_test.dir/kvcsd/property_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/property_test.cc.o.d"
  "CMakeFiles/kvcsd_test.dir/kvcsd/recovery_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/recovery_test.cc.o.d"
  "CMakeFiles/kvcsd_test.dir/kvcsd/zone_manager_test.cc.o"
  "CMakeFiles/kvcsd_test.dir/kvcsd/zone_manager_test.cc.o.d"
  "kvcsd_test"
  "kvcsd_test.pdb"
  "kvcsd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcsd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
