# Empty dependencies file for kvcsd_test.
# This may be replaced when dependencies are built.
