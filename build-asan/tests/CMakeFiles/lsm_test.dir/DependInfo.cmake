
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lsm/bloom_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/bloom_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/bloom_test.cc.o.d"
  "/root/repo/tests/lsm/db_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/db_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/db_test.cc.o.d"
  "/root/repo/tests/lsm/memtable_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o.d"
  "/root/repo/tests/lsm/property_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/property_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/property_test.cc.o.d"
  "/root/repo/tests/lsm/sstable_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/sstable_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/sstable_test.cc.o.d"
  "/root/repo/tests/lsm/wal_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/wal_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/lsm/CMakeFiles/kvcsd_lsm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hostenv/CMakeFiles/kvcsd_hostenv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/kvcsd_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
