
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/fault_test.cc" "tests/CMakeFiles/sim_test.dir/sim/fault_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/fault_test.cc.o.d"
  "/root/repo/tests/sim/parallel_test.cc" "tests/CMakeFiles/sim_test.dir/sim/parallel_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/parallel_test.cc.o.d"
  "/root/repo/tests/sim/resources_test.cc" "tests/CMakeFiles/sim_test.dir/sim/resources_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/resources_test.cc.o.d"
  "/root/repo/tests/sim/stats_test.cc" "tests/CMakeFiles/sim_test.dir/sim/stats_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/stats_test.cc.o.d"
  "/root/repo/tests/sim/sync_test.cc" "tests/CMakeFiles/sim_test.dir/sim/sync_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/sync_test.cc.o.d"
  "/root/repo/tests/sim/task_test.cc" "tests/CMakeFiles/sim_test.dir/sim/task_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/task_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/kvcsd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/kvcsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
