file(REMOVE_RECURSE
  "CMakeFiles/vpic_test.dir/vpic/vpic_test.cc.o"
  "CMakeFiles/vpic_test.dir/vpic/vpic_test.cc.o.d"
  "vpic_test"
  "vpic_test.pdb"
  "vpic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
