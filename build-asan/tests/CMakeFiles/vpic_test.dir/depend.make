# Empty dependencies file for vpic_test.
# This may be replaced when dependencies are built.
