# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/storage_test[1]_include.cmake")
include("/root/repo/build-asan/tests/hostenv_test[1]_include.cmake")
include("/root/repo/build-asan/tests/nvme_test[1]_include.cmake")
include("/root/repo/build-asan/tests/vpic_test[1]_include.cmake")
include("/root/repo/build-asan/tests/harness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/kvcsd_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lsm_test[1]_include.cmake")
