// Side-by-side demo: the same bulk-load-then-query workload against
// KV-CSD (offloaded, deferred compaction) and the RocksLite software
// baseline (host compaction over a filesystem) — a one-screen version of
// the paper's evaluation story.
//
// Build & run:  ./build/examples/baseline_comparison [--keys=N]
#include <cstdio>

#include "common/keys.h"
#include "harness/flags.h"
#include "harness/report.h"
#include "harness/workloads.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t keys = flags.GetUint("keys", 1 << 20);

  TestbedConfig config = TestbedConfig::Scaled();
  config.ScaleLsmTreeTo(keys / 16 * 48);  // per-instance share of the data
  std::printf("%s", config.Describe().c_str());

  InsertSpec spec;
  spec.total_keys = keys;
  spec.threads = 16;
  spec.shared_keyspace = false;  // one keyspace / instance per thread

  std::printf("\nLoading %s 16B/32B pairs with %u threads...\n",
              FormatCount(keys).c_str(), spec.threads);

  CsdInsertOutcome csd = RunCsdInsert(config, 32, spec);
  LsmInsertOutcome rocks =
      RunLsmInsert(config, 32, spec, lsm::CompactionMode::kAuto);

  Table table("Bulk load: what the application waits for",
              {"system", "load time", "notes"});
  table.AddRow({"KV-CSD", FormatSeconds(csd.insert_done),
                "compaction deferred + offloaded (finished at " +
                    FormatSeconds(csd.compaction_done) + ")"});
  table.AddRow({"RocksLite", FormatSeconds(rocks.total_done),
                "auto compaction on host, " +
                    std::to_string(rocks.compactions) + " compactions, " +
                    std::to_string(rocks.stalls) + " write stalls"});
  table.Print();
  std::printf("\nSpeedup: %s\n",
              FormatRatio(static_cast<double>(rocks.total_done) /
                          static_cast<double>(csd.insert_done))
                  .c_str());
  return 0;
}
