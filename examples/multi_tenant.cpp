// Multi-tenant keyspaces: several independent applications share one
// KV-CSD device without coordinating key names (paper §IV: keyspaces
// "prevent unrelated applications from having to frequently synchronize
// with each other"), each with its own lifecycle — including deletion,
// whose zone reclamation the device handles via ZNS resets.
//
// Build & run:  ./build/examples/multi_tenant
#include <cstdio>

#include "client/client.h"
#include "common/keys.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "sim/sync.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

// Each tenant writes the SAME key ids into its own keyspace — no clashes.
sim::Task<void> Tenant(CsdTestbed* bed, int id, sim::WaitGroup* wg) {
  client::Client& db = bed->client();
  const std::string name = "tenant-" + std::to_string(id);
  auto ks = (co_await db.CreateKeyspace(name)).value();

  auto writer = ks.NewBulkWriter();
  for (std::uint64_t k = 0; k < 20000; ++k) {
    (void)co_await writer.Add(
        MakeFixedKey(k), name + ":payload-" + std::to_string(k));
  }
  (void)co_await writer.Flush();
  (void)co_await ks.Compact();
  (void)co_await ks.WaitCompaction();

  auto value = (co_await ks.Get(MakeFixedKey(7))).value();
  std::printf("[t=%s] %s reads key 7 -> \"%s\"\n",
              FormatSeconds(bed->sim().Now()).c_str(), name.c_str(),
              value.c_str());
  wg->Done();
}

}  // namespace

int main() {
  TestbedConfig config = TestbedConfig::Scaled();
  CsdTestbed bed(config);

  sim::WaitGroup wg(&bed.sim());
  constexpr int kTenants = 4;
  wg.Add(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    bed.sim().Spawn(Tenant(&bed, t, &wg));
  }

  // A supervisor retires tenant 2 once everyone is done and shows the
  // device reclaiming its zones.
  bed.sim().Spawn([](CsdTestbed* b, sim::WaitGroup* done) -> sim::Task<void> {
    co_await done->Wait();
    const std::size_t free_before = b->dev().zones().free_zones();
    (void)co_await b->client().DropKeyspace("tenant-2");
    std::printf("[t=%s] dropped tenant-2: free zones %zu -> %zu\n",
                FormatSeconds(b->sim().Now()).c_str(), free_before,
                b->dev().zones().free_zones());
    auto gone = co_await b->client().OpenKeyspace("tenant-2");
    std::printf("open(tenant-2) after drop: %s\n",
                gone.status().ToString().c_str());
    auto alive = co_await b->client().OpenKeyspace("tenant-1");
    std::printf("open(tenant-1) still: %s\n",
                alive.ok() ? "OK" : alive.status().ToString().c_str());
  }(&bed, &wg));

  bed.sim().Run();
  return 0;
}
