// Quickstart: the minimal end-to-end KV-CSD workflow.
//
//   1. bring up a simulated KV-CSD device and a client
//   2. create a keyspace and insert key-value pairs (bulk PUT)
//   3. invoke deferred compaction (runs asynchronously in the device)
//   4. point-lookup and range-scan the compacted keyspace
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "client/client.h"
#include "common/keys.h"
#include "harness/report.h"
#include "harness/testbed.h"

using namespace kvcsd;  // NOLINT

sim::Task<void> Quickstart(harness::CsdTestbed* bed) {
  client::Client& db = bed->client();

  // -- create & load ------------------------------------------------------
  auto keyspace = (co_await db.CreateKeyspace("quickstart")).value();
  auto writer = keyspace.NewBulkWriter();
  for (std::uint64_t i = 0; i < 100000; ++i) {
    (void)co_await writer.Add(MakeFixedKey(i),
                              "value-" + std::to_string(i));
  }
  (void)co_await writer.Flush();
  std::printf("inserted 100000 pairs at t=%s\n",
              harness::FormatSeconds(bed->sim().Now()).c_str());

  // -- compact (offloaded + asynchronous) ---------------------------------
  (void)co_await keyspace.Compact();
  std::printf("compaction invoked at t=%s (device works in background)\n",
              harness::FormatSeconds(bed->sim().Now()).c_str());
  (void)co_await keyspace.WaitCompaction();
  std::printf("compaction finished at t=%s\n",
              harness::FormatSeconds(bed->sim().Now()).c_str());

  // -- query ---------------------------------------------------------------
  auto value = co_await keyspace.Get(MakeFixedKey(4242));
  std::printf("Get(4242) -> %s\n",
              value.ok() ? value->c_str() : value.status().ToString().c_str());

  std::vector<std::pair<std::string, std::string>> window;
  (void)co_await keyspace.Scan(MakeFixedKey(100), MakeFixedKey(104), 0,
                               &window);
  for (const auto& [key, val] : window) {
    std::printf("Scan hit: id=%llu -> %s\n",
                static_cast<unsigned long long>(FixedKeyId(key)),
                val.c_str());
  }

  auto stat = co_await keyspace.GetStat();
  std::printf("keyspace: %llu pairs, state %s\n",
              static_cast<unsigned long long>(stat->num_kvs),
              stat->state.c_str());
}

int main() {
  harness::TestbedConfig config = harness::TestbedConfig::Scaled();
  harness::CsdTestbed bed(config);
  bed.sim().Spawn(Quickstart(&bed));
  bed.sim().Run();
  std::printf("simulated wall time: %s\n",
              harness::FormatSeconds(bed.sim().Now()).c_str());
  return 0;
}
