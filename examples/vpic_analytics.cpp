// VPIC analytics: the paper's motivating scenario end to end.
//
// A plasma simulation dumps particles as fast as it can (no time to sort
// or index); a scientist later asks highly selective questions like "which
// particles exceeded energy E?". With KV-CSD the dump lands as unsorted
// logs, the device sorts and indexes asynchronously, and the selective
// query streams back only the matching particles.
//
// Build & run:  ./build/examples/vpic_analytics [--particles=N]
#include <cstdio>

#include "client/client.h"
#include "harness/flags.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "sim/sync.h"
#include "vpic/vpic.h"

using namespace kvcsd;           // NOLINT
using namespace kvcsd::harness;  // NOLINT

namespace {

sim::Task<void> LoadFile(CsdTestbed* bed, const vpic::Dump* dump,
                         std::uint32_t file_index, sim::WaitGroup* wg,
                         std::vector<client::KeyspaceHandle>* handles) {
  // One loader process per dump file, like the paper's 16-thread loader.
  auto ks = (co_await bed->client().CreateKeyspace(
                 "vpic.file" + std::to_string(file_index)))
                .value();
  auto writer = ks.NewBulkWriter();
  for (const vpic::Particle* p : dump->FileParticles(file_index)) {
    (void)co_await writer.Add(p->Key(), p->Payload());
  }
  (void)co_await writer.Flush();
  (void)co_await ks.Compact();  // deferred + offloaded: returns at once
  (*handles)[file_index] = ks;
  wg->Done();
}

sim::Task<void> Analyze(CsdTestbed* bed, const vpic::Dump* dump,
                        std::vector<client::KeyspaceHandle>* handles) {
  // Wait for the device to finish sorting, then attach the energy index.
  for (auto& ks : *handles) {
    (void)co_await ks.WaitCompaction();
    (void)co_await ks.CreateSecondaryIndexF32("energy",
                                              vpic::kEnergyOffset);
  }
  std::printf("[t=%s] all keyspaces compacted + indexed\n",
              FormatSeconds(bed->sim().Now()).c_str());

  // Highly selective query: the top ~0.1% most energetic particles.
  const float threshold = dump->EnergyThresholdForSelectivity(0.001);
  std::uint64_t hits = 0;
  float max_energy = 0;
  for (auto& ks : *handles) {
    std::vector<std::pair<std::string, std::string>> out;
    (void)co_await ks.QuerySecondaryRangeF32("energy", threshold, 1e30f, 0,
                                             &out);
    hits += out.size();
    for (const auto& [pkey, payload] : out) {
      vpic::Particle p;
      if (vpic::ParsePayload(payload, &p) && p.energy > max_energy) {
        max_energy = p.energy;
      }
    }
  }
  std::printf(
      "[t=%s] energy > %.3f matched %llu of %llu particles "
      "(max energy %.3f)\n",
      FormatSeconds(bed->sim().Now()).c_str(), threshold,
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(dump->num_particles()), max_energy);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  vpic::GeneratorConfig gen;
  gen.num_particles = flags.GetUint("particles", 256 << 10);
  const vpic::Dump dump(gen);
  std::printf("generated %llu synthetic VPIC particles in %u files\n",
              static_cast<unsigned long long>(dump.num_particles()),
              dump.num_files());

  TestbedConfig config = TestbedConfig::Scaled();
  CsdTestbed bed(config);
  std::vector<client::KeyspaceHandle> handles(dump.num_files());

  sim::WaitGroup loaded(&bed.sim());
  loaded.Add(dump.num_files());
  for (std::uint32_t f = 0; f < dump.num_files(); ++f) {
    bed.sim().Spawn(LoadFile(&bed, &dump, f, &loaded, &handles));
  }
  bed.sim().Spawn([](CsdTestbed* b, const vpic::Dump* d,
                     std::vector<client::KeyspaceHandle>* h,
                     sim::WaitGroup* wg) -> sim::Task<void> {
    co_await wg->Wait();
    std::printf("[t=%s] dump loaded; device is sorting in the background\n",
                FormatSeconds(b->sim().Now()).c_str());
    co_await Analyze(b, d, h);
  }(&bed, &dump, &handles, &loaded));
  bed.sim().Run();
  return 0;
}
