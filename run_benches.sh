#!/bin/sh
# Runs every benchmark binary in sequence (the repository's "regenerate
# all paper figures" entry point) with full observability: each bench
# writes its JSON report, Chrome trace, telemetry time-series, and
# device health page(s) into a timestamped results/ directory. Pass extra flags through the
# environment, e.g. KVCSD_BENCH_FLAGS="--keys=32000000" for paper scale.
#
# Inspect any run afterwards with
#   tools/analyze_trace.py results/<stamp>/<bench>.trace.json \
#       results/<stamp>/<bench>.telemetry.json
set -e
stamp=$(date +%Y%m%d-%H%M%S)
outdir="results/$stamp"
mkdir -p "$outdir"
echo "### writing reports, traces, and telemetry to $outdir"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "### $b"
  "$b" ${KVCSD_BENCH_FLAGS:-} \
    --json="$outdir/$name.json" \
    --trace="$outdir/$name.trace.json" \
    --telemetry="$outdir/$name.telemetry.json" \
    --health="$outdir/$name.health.json"
  echo
done
echo "### done: $outdir"
