#!/bin/sh
# Runs every benchmark binary in sequence (the repository's "regenerate
# all paper figures" entry point). Pass extra flags through the
# environment, e.g. KVCSD_BENCH_FLAGS="--keys=32000000" for paper scale.
set -e
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $b"
  "$b" ${KVCSD_BENCH_FLAGS:-}
  echo
done
