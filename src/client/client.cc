#include "client/client.h"

#include <algorithm>

#include "common/coding.h"
#include "sim/simulation.h"

namespace kvcsd::client {

sim::Stats& Client::stats() { return queue_->sim()->stats(); }

sim::Task<nvme::Completion> Client::Call(nvme::Command command) {
  const nvme::Opcode op = command.opcode;
  sim::Simulation* sim = queue_->sim();
  const Tick begin = sim->Now();
  // Stamp the causal id: everything this command touches — queue wait,
  // dispatch, execution, any compaction it spawns — traces back to it.
  command.cmd_id = sim->AllocateCmdId();
  command.submit_tick = begin;
  sim::TraceSpan span(sim, "client", nvme::OpcodeName(op));
  span.Arg("cmd_id", command.cmd_id);
  if (sim->tracer().enabled()) {
    sim->tracer().FlowBegin(sim->tracer().Track("client"), "cmd",
                            command.cmd_id, begin);
  }
  // Userspace driver work on the host: packing + doorbell. No kernel.
  co_await host_cpu_->Compute(costs_.syscall_overhead);
  nvme::Completion completion = co_await queue_->Submit(std::move(command));
  // Host-visible round trip, including the client-side driver compute —
  // what an application would measure around a Put/Get call.
  if (const char* cls = nvme::OpcodeLatencyClass(op)) {
    sim->stats()
        .histogram(std::string("client.cmd.") + cls + "_ns")
        .Record(sim->Now() - begin);
  }
  co_return completion;
}

sim::Task<Result<KeyspaceHandle>> Client::CreateKeyspace(
    const std::string& name) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceCreate;
  cmd.name = name;
  auto completion = co_await Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  co_return KeyspaceHandle(this, completion.keyspace_id);
}

sim::Task<Result<KeyspaceHandle>> Client::OpenKeyspace(
    const std::string& name) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceOpen;
  cmd.name = name;
  auto completion = co_await Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  co_return KeyspaceHandle(this, completion.keyspace_id);
}

sim::Task<Status> Client::DropKeyspace(const std::string& name) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceDrop;
  cmd.name = name;
  auto completion = co_await Call(std::move(cmd));
  co_return completion.status;
}

// ---------------------------------------------------------------------------
// KeyspaceHandle
// ---------------------------------------------------------------------------

sim::Task<Status> KeyspaceHandle::Put(const std::string& key,
                                      const std::string& value) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvStore;
  cmd.keyspace_id = id_;
  cmd.key = key;
  cmd.value = value;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::BulkWriter::Add(const std::string& key,
                                                  const std::string& value) {
  // Frame format consumed by Device::DoBulkPut: length-prefixed key then
  // length-prefixed value, repeated.
  PutLengthPrefixedSlice(&frame_, Slice(key));
  PutLengthPrefixedSlice(&frame_, Slice(value));
  if (frame_.size() >= client_->config().bulk_frame_bytes) {
    co_return co_await Flush();
  }
  co_return Status::Ok();
}

sim::Task<Status> KeyspaceHandle::BulkWriter::Flush() {
  if (frame_.empty()) co_return Status::Ok();
  // Client-side packing cost for the whole frame.
  co_await client_->host_cpu_->ComputeBytes(
      frame_.size(), client_->costs_.memcpy_bytes_per_sec);
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kBulkStore;
  cmd.keyspace_id = keyspace_id_;
  cmd.value = std::move(frame_);
  frame_.clear();
  ++frames_sent_;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::Sync() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kSync;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::SyncWithRetry(std::uint32_t attempts) {
  Status last = Status::Ok();
  for (std::uint32_t i = 0; i < std::max<std::uint32_t>(attempts, 1); ++i) {
    last = co_await Sync();
    if (last.ok() || !last.IsRetryable()) co_return last;
  }
  co_return last;
}

sim::Task<Status> KeyspaceHandle::CompactWithIndexes(
    std::vector<nvme::SecondaryIndexSpec> specs) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kCompactWithIndexes;
  cmd.keyspace_id = id_;
  cmd.sidx_list = std::move(specs);
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::Compact() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kCompact;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::WaitCompaction() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kCompactWait;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::CreateSecondaryIndex(
    nvme::SecondaryIndexSpec spec) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kSecondaryBuild;
  cmd.keyspace_id = id_;
  cmd.sidx = std::move(spec);
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::CreateSecondaryIndexF32(
    const std::string& name, std::uint32_t value_offset) {
  nvme::SecondaryIndexSpec spec;
  spec.name = name;
  spec.value_offset = value_offset;
  spec.value_length = 4;
  spec.type = nvme::SecondaryKeyType::kF32;
  co_return co_await CreateSecondaryIndex(std::move(spec));
}

sim::Task<Result<std::string>> KeyspaceHandle::Get(const std::string& key) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvRetrieve;
  cmd.keyspace_id = id_;
  cmd.key = key;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  co_return std::move(completion.value);
}

sim::Task<Status> KeyspaceHandle::Scan(
    const std::string& lo, const std::string& hi, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kQueryPrimaryRange;
  cmd.keyspace_id = id_;
  cmd.key = lo;
  cmd.key_end = hi;
  cmd.limit = limit;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  for (auto& pair : completion.results) out->push_back(std::move(pair));
  co_return Status::Ok();
}

sim::Task<Status> KeyspaceHandle::QuerySecondaryRange(
    const std::string& index_name, const std::string& lo_encoded,
    const std::string& hi_encoded, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kQuerySecondaryRange;
  cmd.keyspace_id = id_;
  cmd.sidx.name = index_name;
  cmd.key = lo_encoded;
  cmd.key_end = hi_encoded;
  cmd.limit = limit;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  for (auto& pair : completion.results) out->push_back(std::move(pair));
  co_return Status::Ok();
}

sim::Task<Status> KeyspaceHandle::QuerySecondaryRangeF32(
    const std::string& index_name, float lo, float hi, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  co_return co_await QuerySecondaryRange(
      index_name, nvme::EncodeSecondaryF32(lo), nvme::EncodeSecondaryF32(hi),
      limit, out);
}

sim::Task<Result<KeyspaceHandle::Stat>> KeyspaceHandle::GetStat() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceStat;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  Stat stat;
  stat.num_kvs = completion.count;
  stat.state = std::move(completion.value);
  co_return stat;
}

}  // namespace kvcsd::client
