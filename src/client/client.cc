#include "client/client.h"

#include <algorithm>

#include "common/coding.h"
#include "sim/simulation.h"

namespace kvcsd::client {

Client::Client(nvme::QueueSet* queues, sim::CpuPool* host_cpu,
               const hostenv::CostModel& host_costs, ClientConfig config)
    : queues_(queues),
      host_cpu_(host_cpu),
      costs_(host_costs),
      config_(std::move(config)),
      window_(queues->sim(), std::max<std::uint32_t>(config_.max_inflight, 1)),
      batch_gate_(queues->sim(), 1),
      cq_ring_(queues->sim()) {}

sim::Stats& Client::stats() { return queues_->sim()->stats(); }

nvme::QueuePair* Client::SubmitPair() {
  const std::uint32_t n = queues_->num_queues();
  if (config_.queue_id != ClientConfig::kAnyQueue) {
    return queues_->pair(config_.queue_id % n);
  }
  const std::uint32_t q = rr_cursor_;
  rr_cursor_ = (rr_cursor_ + 1) % n;
  return queues_->pair(q);
}

void Client::StampCommand(nvme::Command* command, Tick begin) {
  sim::Simulation* sim = queues_->sim();
  // Stamp the causal id: everything this command touches — queue wait,
  // dispatch, execution, any compaction it spawns — traces back to it.
  command->cmd_id = sim->AllocateCmdId();
  command->submit_tick = begin;
  if (sim->tracer().enabled()) {
    sim->tracer().FlowBegin(sim->tracer().Track("client"), "cmd",
                            command->cmd_id, begin);
  }
}

sim::Task<nvme::Completion> Client::Call(nvme::Command command) {
  const nvme::Opcode op = command.opcode;
  sim::Simulation* sim = queues_->sim();
  const Tick begin = sim->Now();
  sim::TraceSpan span(sim, "client", nvme::OpcodeName(op));
  StampCommand(&command, begin);
  span.Arg("cmd_id", command.cmd_id);
  // Userspace driver work on the host: packing + doorbell. No kernel.
  co_await host_cpu_->Compute(costs_.syscall_overhead);
  nvme::Completion completion =
      co_await SubmitPair()->Submit(std::move(command));
  // Host-visible round trip, including the client-side driver compute —
  // what an application would measure around a Put/Get call.
  if (const char* cls = nvme::OpcodeLatencyClass(op)) {
    sim->stats()
        .histogram(config_.stats_prefix + "cmd." + cls + "_ns")
        .Record(sim->Now() - begin);
  }
  co_return completion;
}

sim::Task<void> Client::Reactor() {
  sim::Simulation* sim = queues_->sim();
  for (;;) {
    std::shared_ptr<nvme::ReplyState> state = co_await cq_ring_.Pop();
    const Tick now = sim->Now();
    if (const char* cls = nvme::OpcodeLatencyClass(state->opcode)) {
      sim->stats()
          .histogram(config_.stats_prefix + "cmd." + cls + "_ns")
          .Record(now - state->submit_begin);
    }
    if (sim->tracer().enabled() && state->cmd_id != 0) {
      // The async client span: submit stamp -> reap. Mirrors what the
      // RAII span records on the synchronous path.
      sim->tracer().CompleteSpan(
          sim->tracer().Track("client"), nvme::OpcodeName(state->opcode),
          state->submit_begin, now,
          {{"cmd_id", std::to_string(state->cmd_id)}});
    }
    --async_inflight_;
    window_.Release();
    state->done.Set();
  }
}

void Client::EnsureReactor() {
  if (reactor_started_) return;
  reactor_started_ = true;
  queues_->sim()->Spawn(Reactor());
}

sim::Task<CallFuture> Client::CallAsync(nvme::Command command) {
  sim::Simulation* sim = queues_->sim();
  const Tick begin = sim->Now();
  StampCommand(&command, begin);
  EnsureReactor();
  co_await window_.Acquire();
  ++async_inflight_;
  co_await host_cpu_->Compute(costs_.syscall_overhead);
  std::shared_ptr<nvme::ReplyState> state =
      co_await SubmitPair()->SubmitAsync(std::move(command), &cq_ring_);
  co_return CallFuture(std::move(state));
}

sim::Task<std::vector<CallFuture>> Client::CallBatchAsync(
    std::vector<nvme::Command> commands) {
  sim::Simulation* sim = queues_->sim();
  std::vector<CallFuture> futures;
  futures.reserve(commands.size());
  if (commands.empty()) co_return futures;
  EnsureReactor();
  const std::uint32_t window_cap = std::max<std::uint32_t>(
      config_.max_inflight, 1);
  std::size_t next = 0;
  while (next < commands.size()) {
    // Chunk to the admission window so the permit acquisition below can
    // never wait on completions of this very batch.
    const std::size_t chunk =
        std::min<std::size_t>(commands.size() - next, window_cap);
    // Only one batch may hold partial window permits at a time. With
    // several batch submitters racing, interleaved acquisition could
    // carve the window up among callers that each park waiting for the
    // rest — nothing submitted, nothing completes, nothing released.
    // The gate holder's missing permits always come from commands that
    // are already in flight (if none were, the window would be whole and
    // the chunk-sized acquisition below could not block), so holding the
    // gate across the acquisition loop cannot stall.
    co_await batch_gate_.Acquire();
    const Tick begin = sim->Now();
    std::vector<nvme::Command> batch;
    batch.reserve(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      StampCommand(&commands[next + i], begin);
      batch.push_back(std::move(commands[next + i]));
    }
    for (std::size_t i = 0; i < chunk; ++i) {
      co_await window_.Acquire();
      ++async_inflight_;
    }
    // All permits held: the gate has done its job. Release before the
    // doorbell so concurrent batches pipeline on the submit path instead
    // of serializing behind each other's DMA setup.
    batch_gate_.Release();
    // One doorbell ring on the host side for the whole chunk.
    co_await host_cpu_->Compute(costs_.syscall_overhead);
    nvme::QueuePair* pair = SubmitPair();
    std::vector<std::shared_ptr<nvme::ReplyState>> states =
        co_await pair->SubmitBatch(std::move(batch), &cq_ring_);
    for (auto& state : states) {
      futures.push_back(CallFuture(std::move(state)));
    }
    next += chunk;
  }
  co_return futures;
}

sim::Task<nvme::Completion> CallFuture::AwaitImpl(
    std::shared_ptr<nvme::ReplyState> state) {
  co_await state->done.Wait();
  co_return std::move(state->completion);
}

sim::Task<Status> StatusFuture::AwaitImpl(CallFuture call) {
  nvme::Completion completion = co_await call.Await();
  co_return completion.status;
}

sim::Task<Result<std::string>> GetFuture::AwaitImpl(CallFuture call) {
  nvme::Completion completion = co_await call.Await();
  if (!completion.status.ok()) co_return completion.status;
  co_return std::move(completion.value);
}

sim::Task<Result<SelectFuture::Rows>> SelectFuture::AwaitImpl(
    CallFuture call) {
  nvme::Completion completion = co_await call.Await();
  if (!completion.status.ok()) co_return completion.status;
  co_return std::move(completion.results);
}

sim::Task<Result<nvme::AggregateResult>> AggregateFuture::AwaitImpl(
    CallFuture call) {
  nvme::Completion completion = co_await call.Await();
  if (!completion.status.ok()) co_return completion.status;
  co_return completion.agg;
}

sim::Task<Result<nvme::HealthPage>> HealthFuture::AwaitImpl(CallFuture call) {
  nvme::Completion completion = co_await call.Await();
  if (!completion.status.ok()) co_return completion.status;
  nvme::HealthPage page;
  if (!nvme::DecodeHealthPage(completion.value, &page)) {
    co_return Status::Corruption("bad health log page");
  }
  co_return page;
}

sim::Task<Result<nvme::StatsPage>> StatsPageFuture::AwaitImpl(
    CallFuture call) {
  nvme::Completion completion = co_await call.Await();
  if (!completion.status.ok()) co_return completion.status;
  nvme::StatsPage page;
  if (!nvme::DecodeStatsPage(completion.value, &page)) {
    co_return Status::Corruption("bad stats log page");
  }
  co_return page;
}

sim::Task<Result<KeyspaceHandle>> Client::CreateKeyspace(
    const std::string& name) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceCreate;
  cmd.name = name;
  auto completion = co_await Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  co_return KeyspaceHandle(this, completion.keyspace_id);
}

sim::Task<Result<KeyspaceHandle>> Client::OpenKeyspace(
    const std::string& name) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceOpen;
  cmd.name = name;
  auto completion = co_await Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  co_return KeyspaceHandle(this, completion.keyspace_id);
}

sim::Task<Status> Client::DropKeyspace(const std::string& name) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceDrop;
  cmd.name = name;
  auto completion = co_await Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Result<nvme::HealthPage>> Client::GetHealth() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kGetLogPage;
  cmd.log_page = nvme::LogPageId::kHealth;
  auto completion = co_await Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  nvme::HealthPage page;
  if (!nvme::DecodeHealthPage(completion.value, &page)) {
    co_return Status::Corruption("bad health log page");
  }
  co_return page;
}

sim::Task<Result<nvme::StatsPage>> Client::GetStats() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kGetLogPage;
  cmd.log_page = nvme::LogPageId::kStats;
  auto completion = co_await Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  nvme::StatsPage page;
  if (!nvme::DecodeStatsPage(completion.value, &page)) {
    co_return Status::Corruption("bad stats log page");
  }
  co_return page;
}

sim::Task<HealthFuture> Client::GetHealthAsync() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kGetLogPage;
  cmd.log_page = nvme::LogPageId::kHealth;
  CallFuture call = co_await CallAsync(std::move(cmd));
  co_return HealthFuture(std::move(call));
}

sim::Task<StatsPageFuture> Client::GetStatsAsync() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kGetLogPage;
  cmd.log_page = nvme::LogPageId::kStats;
  CallFuture call = co_await CallAsync(std::move(cmd));
  co_return StatsPageFuture(std::move(call));
}

// ---------------------------------------------------------------------------
// KeyspaceHandle
// ---------------------------------------------------------------------------

sim::Task<Status> KeyspaceHandle::Put(const std::string& key,
                                      const std::string& value) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvStore;
  cmd.keyspace_id = id_;
  cmd.key = key;
  cmd.value = value;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<StatusFuture> KeyspaceHandle::PutAsync(const std::string& key,
                                                 const std::string& value) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvStore;
  cmd.keyspace_id = id_;
  cmd.key = key;
  cmd.value = value;
  CallFuture call = co_await client_->CallAsync(std::move(cmd));
  co_return StatusFuture(std::move(call));
}

sim::Task<Status> KeyspaceHandle::Delete(const std::string& key) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvDelete;
  cmd.keyspace_id = id_;
  cmd.key = key;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<StatusFuture> KeyspaceHandle::DeleteAsync(const std::string& key) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvDelete;
  cmd.keyspace_id = id_;
  cmd.key = key;
  CallFuture call = co_await client_->CallAsync(std::move(cmd));
  co_return StatusFuture(std::move(call));
}

sim::Task<std::vector<StatusFuture>> KeyspaceHandle::PutBatchAsync(
    std::vector<std::pair<std::string, std::string>> pairs) {
  std::vector<nvme::Command> commands;
  commands.reserve(pairs.size());
  for (auto& [key, value] : pairs) {
    nvme::Command cmd;
    cmd.opcode = nvme::Opcode::kKvStore;
    cmd.keyspace_id = id_;
    cmd.key = std::move(key);
    cmd.value = std::move(value);
    commands.push_back(std::move(cmd));
  }
  std::vector<CallFuture> calls =
      co_await client_->CallBatchAsync(std::move(commands));
  std::vector<StatusFuture> futures;
  futures.reserve(calls.size());
  for (auto& call : calls) futures.push_back(StatusFuture(std::move(call)));
  co_return futures;
}

sim::Task<GetFuture> KeyspaceHandle::GetAsync(const std::string& key) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvRetrieve;
  cmd.keyspace_id = id_;
  cmd.key = key;
  CallFuture call = co_await client_->CallAsync(std::move(cmd));
  co_return GetFuture(std::move(call));
}

sim::Task<Status> KeyspaceHandle::BulkWriter::Add(const std::string& key,
                                                  const std::string& value) {
  // Frame format consumed by Device::DoBulkPut: length-prefixed key then
  // length-prefixed value, repeated.
  PutLengthPrefixedSlice(&frame_, Slice(key));
  PutLengthPrefixedSlice(&frame_, Slice(value));
  if (frame_.size() >= client_->config().bulk_frame_bytes) {
    co_return co_await Flush();
  }
  co_return Status::Ok();
}

sim::Task<void> KeyspaceHandle::BulkWriter::ReapOldest() {
  CallFuture oldest = std::move(window_.front());
  window_.pop_front();
  nvme::Completion completion = co_await oldest.Await();
  if (first_error_.ok() && !completion.status.ok()) {
    first_error_ = completion.status;
  }
}

sim::Task<Status> KeyspaceHandle::BulkWriter::Flush() {
  if (frame_.empty()) co_return first_error_;
  // Client-side packing cost for the whole frame.
  co_await client_->host_cpu_->ComputeBytes(
      frame_.size(), client_->costs_.memcpy_bytes_per_sec);
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kBulkStore;
  cmd.keyspace_id = keyspace_id_;
  cmd.value = std::move(frame_);
  frame_.clear();
  ++frames_sent_;
  const std::uint32_t depth =
      std::max<std::uint32_t>(client_->config().bulk_inflight_frames, 1);
  if (depth <= 1) {
    auto completion = co_await client_->Call(std::move(cmd));
    co_return completion.status;
  }
  // Pipelined: keep up to `depth` frames on the wire; ship this frame as
  // soon as a window slot frees. Errors from earlier frames surface here
  // (and definitively at Drain()).
  while (window_.size() >= depth) co_await ReapOldest();
  CallFuture future = co_await client_->CallAsync(std::move(cmd));
  window_.push_back(std::move(future));
  co_return first_error_;
}

sim::Task<Status> KeyspaceHandle::BulkWriter::Drain() {
  Status flush_status = co_await Flush();
  while (!window_.empty()) co_await ReapOldest();
  if (!flush_status.ok()) co_return flush_status;
  co_return std::exchange(first_error_, Status::Ok());
}

sim::Task<Status> KeyspaceHandle::Sync() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kSync;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::SyncWithRetry(std::uint32_t attempts) {
  sim::Simulation* sim = client_->queues_->sim();
  const ClientConfig& config = client_->config();
  Status last = Status::Ok();
  const std::uint32_t bounded = std::max<std::uint32_t>(attempts, 1);
  for (std::uint32_t i = 0; i < bounded; ++i) {
    if (i > 0) {
      // Exponential backoff before each retry: base << (attempt-1),
      // capped. Hammering immediate retries would re-flush into the same
      // transient fault window.
      const std::uint32_t shift = std::min<std::uint32_t>(i - 1, 20);
      const Tick backoff = std::min<Tick>(
          config.retry_backoff_base << shift, config.retry_backoff_cap);
      client_->stats().counter(config.stats_prefix + "sync.retries")
          .Increment();
      co_await sim->Delay(backoff);
    }
    last = co_await Sync();
    if (last.ok() || !last.IsRetryable()) co_return last;
  }
  co_return last;
}

sim::Task<Status> KeyspaceHandle::CompactWithIndexes(
    std::vector<nvme::SecondaryIndexSpec> specs) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kCompactWithIndexes;
  cmd.keyspace_id = id_;
  cmd.sidx_list = std::move(specs);
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::Compact() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kCompact;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::WaitCompaction() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kCompactWait;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::CreateSecondaryIndex(
    nvme::SecondaryIndexSpec spec) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kSecondaryBuild;
  cmd.keyspace_id = id_;
  cmd.sidx = std::move(spec);
  auto completion = co_await client_->Call(std::move(cmd));
  co_return completion.status;
}

sim::Task<Status> KeyspaceHandle::CreateSecondaryIndexF32(
    const std::string& name, std::uint32_t value_offset) {
  nvme::SecondaryIndexSpec spec;
  spec.name = name;
  spec.value_offset = value_offset;
  spec.value_length = 4;
  spec.type = nvme::SecondaryKeyType::kF32;
  co_return co_await CreateSecondaryIndex(std::move(spec));
}

sim::Task<Result<std::string>> KeyspaceHandle::Get(const std::string& key) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKvRetrieve;
  cmd.keyspace_id = id_;
  cmd.key = key;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  co_return std::move(completion.value);
}

sim::Task<Status> KeyspaceHandle::Scan(
    const std::string& lo, const std::string& hi, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kQueryPrimaryRange;
  cmd.keyspace_id = id_;
  cmd.key = lo;
  cmd.key_end = hi;
  cmd.limit = limit;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  for (auto& pair : completion.results) out->push_back(std::move(pair));
  co_return Status::Ok();
}

sim::Task<Status> KeyspaceHandle::QuerySecondaryRange(
    const std::string& index_name, const std::string& lo_encoded,
    const std::string& hi_encoded, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kQuerySecondaryRange;
  cmd.keyspace_id = id_;
  cmd.sidx.name = index_name;
  cmd.key = lo_encoded;
  cmd.key_end = hi_encoded;
  cmd.limit = limit;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  for (auto& pair : completion.results) out->push_back(std::move(pair));
  co_return Status::Ok();
}

sim::Task<Status> KeyspaceHandle::QuerySecondaryRangeF32(
    const std::string& index_name, float lo, float hi, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  co_return co_await QuerySecondaryRange(
      index_name, nvme::EncodeSecondaryF32(lo), nvme::EncodeSecondaryF32(hi),
      limit, out);
}

namespace {

nvme::Command MakePushdownCommand(std::uint64_t keyspace_id, nvme::Opcode op,
                                  const std::string& lo,
                                  const std::string& hi,
                                  const KeyspaceHandle::SelectOptions& opts) {
  nvme::Command cmd;
  cmd.opcode = op;
  cmd.keyspace_id = keyspace_id;
  cmd.key = lo;
  cmd.key_end = hi;
  cmd.limit = opts.limit;
  cmd.pred = opts.pred;
  cmd.proj = opts.proj;
  cmd.sidx.name = opts.index_name;
  return cmd;
}

}  // namespace

sim::Task<Status> KeyspaceHandle::Select(
    const std::string& lo, const std::string& hi, const SelectOptions& opts,
    std::vector<std::pair<std::string, std::string>>* out) {
  return SelectCall(
      MakePushdownCommand(id_, nvme::Opcode::kKvSelect, lo, hi, opts), out);
}

sim::Task<SelectFuture> KeyspaceHandle::SelectAsync(
    const std::string& lo, const std::string& hi, const SelectOptions& opts) {
  return SelectCallAsync(
      MakePushdownCommand(id_, nvme::Opcode::kKvSelect, lo, hi, opts));
}

sim::Task<Result<nvme::AggregateResult>> KeyspaceHandle::Aggregate(
    const std::string& lo, const std::string& hi,
    const nvme::AggregateSpec& agg, const SelectOptions& opts) {
  nvme::Command cmd =
      MakePushdownCommand(id_, nvme::Opcode::kKvAggregate, lo, hi, opts);
  cmd.agg = agg;
  return AggregateCall(std::move(cmd));
}

sim::Task<AggregateFuture> KeyspaceHandle::AggregateAsync(
    const std::string& lo, const std::string& hi,
    const nvme::AggregateSpec& agg, const SelectOptions& opts) {
  nvme::Command cmd =
      MakePushdownCommand(id_, nvme::Opcode::kKvAggregate, lo, hi, opts);
  cmd.agg = agg;
  return AggregateCallAsync(std::move(cmd));
}

sim::Task<Result<nvme::AggregateResult>> KeyspaceHandle::Aggregate(
    const std::string& lo, const std::string& hi,
    const nvme::AggregateSpec& agg) {
  SelectOptions opts;
  return Aggregate(lo, hi, agg, opts);
}

sim::Task<AggregateFuture> KeyspaceHandle::AggregateAsync(
    const std::string& lo, const std::string& hi,
    const nvme::AggregateSpec& agg) {
  SelectOptions opts;
  return AggregateAsync(lo, hi, agg, opts);
}

sim::Task<Status> KeyspaceHandle::SelectCall(
    nvme::Command cmd,
    std::vector<std::pair<std::string, std::string>>* out) {
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  for (auto& pair : completion.results) out->push_back(std::move(pair));
  co_return Status::Ok();
}

sim::Task<SelectFuture> KeyspaceHandle::SelectCallAsync(nvme::Command cmd) {
  CallFuture call = co_await client_->CallAsync(std::move(cmd));
  co_return SelectFuture(std::move(call));
}

sim::Task<Result<nvme::AggregateResult>> KeyspaceHandle::AggregateCall(
    nvme::Command cmd) {
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  co_return completion.agg;
}

sim::Task<AggregateFuture> KeyspaceHandle::AggregateCallAsync(
    nvme::Command cmd) {
  CallFuture call = co_await client_->CallAsync(std::move(cmd));
  co_return AggregateFuture(std::move(call));
}

sim::Task<Result<KeyspaceHandle::Stat>> KeyspaceHandle::GetStat() {
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kKeyspaceStat;
  cmd.keyspace_id = id_;
  auto completion = co_await client_->Call(std::move(cmd));
  if (!completion.status.ok()) co_return completion.status;
  Stat stat;
  stat.num_kvs = completion.count;
  stat.state = std::move(completion.value);
  co_return stat;
}

}  // namespace kvcsd::client
