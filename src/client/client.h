// KV-CSD host client library — the public API of this repository.
//
// This is the "lightweight client library" of the paper (Fig. 1, §VI): a
// userspace driver that packs key-value calls into NVMe commands and DMAs
// them to the device, bypassing the host kernel entirely. All methods are
// simulation coroutines; a typical application process looks like:
//
//   sim::Task<void> App(client::Client* db) {
//     auto ks = (co_await db->CreateKeyspace("particles")).value();
//     auto writer = ks.NewBulkWriter();
//     for (...) co_await writer.Add(key, value);
//     co_await writer.Drain();
//     co_await ks.Compact();          // returns immediately (offloaded)
//     co_await ks.WaitCompaction();   // barrier before querying
//     co_await ks.CreateSecondaryIndexF32("energy", 28);
//     std::vector<std::pair<std::string, std::string>> hits;
//     co_await ks.QuerySecondaryRangeF32("energy", 1.2f, 9e9f, 0, &hits);
//   }
//
// Async path (DESIGN.md §11): PutAsync/GetAsync return futures immediately
// after the submission DMA; a per-client reactor coroutine reaps
// completions off the client's CQ ring, so many commands ride the wire
// concurrently under one bounded in-flight window:
//
//   std::deque<client::StatusFuture> window;
//   for (...) {
//     if (window.size() >= depth) {
//       co_await window.front().Await();
//       window.pop_front();
//     }
//     window.push_back(co_await ks.PutAsync(key, value));
//   }
//   while (!window.empty()) {
//     co_await window.front().Await();
//     window.pop_front();
//   }
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hostenv/cost_model.h"
#include "nvme/command.h"
#include "nvme/log_page.h"
#include "nvme/queue.h"
#include "nvme/skey.h"
#include "sim/resources.h"
#include "sim/task.h"

namespace kvcsd::client {

struct ClientConfig {
  // Bulk-put frame capacity (the paper's prototype uses 128 KB messages).
  std::uint64_t bulk_frame_bytes = KiB(128);

  // --- async path ---
  // Admission window: CallAsync blocks once this many commands from this
  // client are submitted-but-unreaped (bounds memory and queue depth).
  std::uint32_t max_inflight = 64;
  // BulkWriter pipelining: how many bulk frames may be in flight at once.
  // 1 recovers the fully synchronous flush-per-frame behavior.
  std::uint32_t bulk_inflight_frames = 1;
  // Pin every command from this client to one SQ of the queue set;
  // kAnyQueue spreads submissions round-robin across all pairs.
  static constexpr std::uint32_t kAnyQueue = 0xffffffffu;
  std::uint32_t queue_id = kAnyQueue;
  // Prefix for this client's stats ("client." -> client.cmd.put_ns).
  // Multi-tenant benches use distinct prefixes (client.t3.) so per-tenant
  // latency distributions stay separable.
  std::string stats_prefix = "client.";

  // SyncWithRetry backoff: base doubles per retryable failure, capped.
  Tick retry_backoff_base = Microseconds(50);
  Tick retry_backoff_cap = Milliseconds(5);
};

class Client;

// Awaitable handle to one in-flight command. Copyable (shared state);
// Await() the same future once — the completion payload is moved out.
class CallFuture {
 public:
  CallFuture() = default;

  bool valid() const { return state_ != nullptr; }
  // True once the device's completion has DMA'd back (Await won't block).
  bool completed() const { return state_ != nullptr && state_->completed; }

  sim::Task<nvme::Completion> Await() { return AwaitImpl(state_); }

 private:
  friend class Client;
  explicit CallFuture(std::shared_ptr<nvme::ReplyState> state)
      : state_(std::move(state)) {}
  // Static so the coroutine frame owns its own reference and the future
  // object itself may die while the await is pending.
  static sim::Task<nvme::Completion> AwaitImpl(
      std::shared_ptr<nvme::ReplyState> state);
  std::shared_ptr<nvme::ReplyState> state_;
};

// Typed wrappers over CallFuture for the hot ops.
class StatusFuture {
 public:
  StatusFuture() = default;
  bool valid() const { return call_.valid(); }
  bool completed() const { return call_.completed(); }
  sim::Task<Status> Await() { return AwaitImpl(call_); }

 private:
  friend class Client;
  friend class KeyspaceHandle;
  explicit StatusFuture(CallFuture call) : call_(std::move(call)) {}
  static sim::Task<Status> AwaitImpl(CallFuture call);
  CallFuture call_;
};

class GetFuture {
 public:
  GetFuture() = default;
  bool valid() const { return call_.valid(); }
  bool completed() const { return call_.completed(); }
  sim::Task<Result<std::string>> Await() { return AwaitImpl(call_); }

 private:
  friend class KeyspaceHandle;
  explicit GetFuture(CallFuture call) : call_(std::move(call)) {}
  static sim::Task<Result<std::string>> AwaitImpl(CallFuture call);
  CallFuture call_;
};

// Matched (key, value) rows from an in-flight pushdown select.
class SelectFuture {
 public:
  using Rows = std::vector<std::pair<std::string, std::string>>;
  SelectFuture() = default;
  bool valid() const { return call_.valid(); }
  bool completed() const { return call_.completed(); }
  sim::Task<Result<Rows>> Await() { return AwaitImpl(call_); }

 private:
  friend class KeyspaceHandle;
  explicit SelectFuture(CallFuture call) : call_(std::move(call)) {}
  static sim::Task<Result<Rows>> AwaitImpl(CallFuture call);
  CallFuture call_;
};

// Scalars from an in-flight pushdown aggregate.
class AggregateFuture {
 public:
  AggregateFuture() = default;
  bool valid() const { return call_.valid(); }
  bool completed() const { return call_.completed(); }
  sim::Task<Result<nvme::AggregateResult>> Await() {
    return AwaitImpl(call_);
  }

 private:
  friend class KeyspaceHandle;
  explicit AggregateFuture(CallFuture call) : call_(std::move(call)) {}
  static sim::Task<Result<nvme::AggregateResult>> AwaitImpl(CallFuture call);
  CallFuture call_;
};

// Decoded device health page from an in-flight log-page pull.
class HealthFuture {
 public:
  HealthFuture() = default;
  bool valid() const { return call_.valid(); }
  bool completed() const { return call_.completed(); }
  sim::Task<Result<nvme::HealthPage>> Await() { return AwaitImpl(call_); }

 private:
  friend class Client;
  explicit HealthFuture(CallFuture call) : call_(std::move(call)) {}
  static sim::Task<Result<nvme::HealthPage>> AwaitImpl(CallFuture call);
  CallFuture call_;
};

// Decoded device stats page from an in-flight log-page pull.
class StatsPageFuture {
 public:
  StatsPageFuture() = default;
  bool valid() const { return call_.valid(); }
  bool completed() const { return call_.completed(); }
  sim::Task<Result<nvme::StatsPage>> Await() { return AwaitImpl(call_); }

 private:
  friend class Client;
  explicit StatsPageFuture(CallFuture call) : call_(std::move(call)) {}
  static sim::Task<Result<nvme::StatsPage>> AwaitImpl(CallFuture call);
  CallFuture call_;
};

// A handle to one keyspace. Cheap to copy.
class KeyspaceHandle {
 public:
  KeyspaceHandle() = default;

  std::uint64_t id() const { return id_; }
  bool valid() const { return client_ != nullptr; }

  // --- writes ---
  sim::Task<Status> Put(const std::string& key, const std::string& value);
  // Async variant: returns after the submission DMA; the device's answer
  // arrives through the future.
  sim::Task<StatusFuture> PutAsync(const std::string& key,
                                   const std::string& value);
  // Batched async puts: every pair ships in one doorbell ring (the
  // per-command request latency is paid once per batch).
  sim::Task<std::vector<StatusFuture>> PutBatchAsync(
      std::vector<std::pair<std::string, std::string>> pairs);

  // Blind point delete: writes a tombstone; deleting an absent key is Ok.
  // Valid while the keyspace is WRITABLE and after compaction (delta
  // mode); kBusy while a (re)compaction is running.
  sim::Task<Status> Delete(const std::string& key);
  sim::Task<StatusFuture> DeleteAsync(const std::string& key);

  // Accumulates pairs into bulk frames; each full frame ships as one
  // NVMe command. With config.bulk_inflight_frames > 1, Flush() only
  // *launches* the frame and errors surface on a later Flush/Drain —
  // always Drain() before Compact() or reading your own writes.
  class BulkWriter {
   public:
    sim::Task<Status> Add(const std::string& key, const std::string& value);
    sim::Task<Status> Flush();
    // Flushes the partial frame and awaits every in-flight frame; returns
    // the first error any of them produced. Terminal barrier — call
    // before Compact()/Sync().
    sim::Task<Status> Drain();
    std::uint64_t frames_sent() const { return frames_sent_; }
    std::uint64_t frames_inflight() const { return window_.size(); }

   private:
    friend class KeyspaceHandle;
    BulkWriter(Client* client, std::uint64_t keyspace_id)
        : client_(client), keyspace_id_(keyspace_id) {}
    // Awaits the oldest in-flight frame, folding its status into
    // first_error_.
    sim::Task<void> ReapOldest();
    Client* client_;
    std::uint64_t keyspace_id_;
    std::string frame_;
    std::uint64_t frames_sent_ = 0;
    std::deque<CallFuture> window_;
    Status first_error_ = Status::Ok();
  };
  BulkWriter NewBulkWriter() { return BulkWriter(client_, id_); }

  // Explicit fsync: persists buffered PUTs to the device's log zones
  // before returning (paper §VI; most bulk-load pipelines skip this and
  // rely on checkpoint-restart instead).
  //
  // Status classification: kIoError and kBusy are RETRYABLE — the write
  // may not have reached flash, but the request is safe to reissue
  // (Sync/Put are idempotent at the log level). Anything else
  // (kInvalidArgument, kNotFound, kOutOfSpace, ...) is FATAL for the
  // request: retrying cannot succeed. Status::IsRetryable() encodes the
  // split.
  sim::Task<Status> Sync();

  // Sync with bounded retries on retryable failures (transient injected
  // I/O errors), sleeping with exponential backoff between attempts
  // (config.retry_backoff_base doubling up to retry_backoff_cap) and
  // counting each retry in "<stats_prefix>sync.retries". The device
  // re-queues a failed flush batch into the keyspace's write buffer, so
  // the retry re-flushes the same entries and re-persists — success here
  // means everything put so far IS durable, not merely that the retry
  // found an empty buffer.
  sim::Task<Status> SyncWithRetry(std::uint32_t attempts = 3);

  // --- lifecycle ---
  // Triggers compaction; the device runs it asynchronously and this call
  // returns as soon as the command completes.
  sim::Task<Status> Compact();
  // Fused variant (paper §V future work): compaction plus the given
  // secondary indexes, built in one pass without re-reading the keyspace.
  sim::Task<Status> CompactWithIndexes(
      std::vector<nvme::SecondaryIndexSpec> specs);
  // Blocks until the device reports the keyspace COMPACTED.
  sim::Task<Status> WaitCompaction();

  // --- secondary indexes ---
  sim::Task<Status> CreateSecondaryIndex(nvme::SecondaryIndexSpec spec);
  // Convenience: float32 key at byte `value_offset` of every value.
  sim::Task<Status> CreateSecondaryIndexF32(const std::string& name,
                                            std::uint32_t value_offset);

  // --- queries (keyspace must be COMPACTED) ---
  sim::Task<Result<std::string>> Get(const std::string& key);
  sim::Task<GetFuture> GetAsync(const std::string& key);
  sim::Task<Status> Scan(const std::string& lo, const std::string& hi,
                         std::uint32_t limit,
                         std::vector<std::pair<std::string, std::string>>*
                             out);
  // Secondary range with pre-encoded bounds.
  sim::Task<Status> QuerySecondaryRange(
      const std::string& index_name, const std::string& lo_encoded,
      const std::string& hi_encoded, std::uint32_t limit,
      std::vector<std::pair<std::string, std::string>>* out);
  sim::Task<Status> QuerySecondaryRangeF32(
      const std::string& index_name, float lo, float hi, std::uint32_t limit,
      std::vector<std::pair<std::string, std::string>>* out);

  // --- query pushdown (DESIGN.md §13) ---
  // Shared scan shape for Select/Aggregate. With `index_name` empty the
  // device runs a primary range scan over [lo, hi]; set it to drive the
  // scan through that secondary index instead (lo/hi are then
  // order-encoded secondary keys, e.g. nvme::EncodeSecondaryF32). `pred`
  // filters on raw value bytes beyond the scan bounds — build typed
  // predicates with nvme::PredicateF32 / PredicateBytes. `proj` trims
  // each select match to a byte range before it crosses PCIe (ignored —
  // rejected — by Aggregate). `limit` caps *matched* rows.
  struct SelectOptions {
    nvme::ValuePredicate pred;
    nvme::Projection proj;
    std::uint32_t limit = 0;
    std::string index_name;
  };
  // Device-filtered scan: only matching (possibly projected) records
  // cross the link. These are deliberately NOT coroutines: they encode
  // the descriptor structs into the wire command synchronously and hand
  // a self-contained nvme::Command to the private *Call coroutines, so
  // caller temporaries (e.g. a literal `{}` for opts) never become
  // coroutine parameters.
  sim::Task<Status> Select(const std::string& lo, const std::string& hi,
                           const SelectOptions& opts,
                           std::vector<std::pair<std::string, std::string>>*
                               out);
  sim::Task<SelectFuture> SelectAsync(const std::string& lo,
                                      const std::string& hi,
                                      const SelectOptions& opts);
  // Device-computed count/min/max/sum over an attribute of every match;
  // the completion carries four scalars regardless of row count. The
  // opts-free overloads scan unfiltered over the primary range — prefer
  // them over spelling `SelectOptions{}` at the call site.
  sim::Task<Result<nvme::AggregateResult>> Aggregate(
      const std::string& lo, const std::string& hi,
      const nvme::AggregateSpec& agg, const SelectOptions& opts);
  sim::Task<Result<nvme::AggregateResult>> Aggregate(
      const std::string& lo, const std::string& hi,
      const nvme::AggregateSpec& agg);
  sim::Task<AggregateFuture> AggregateAsync(const std::string& lo,
                                            const std::string& hi,
                                            const nvme::AggregateSpec& agg,
                                            const SelectOptions& opts);
  sim::Task<AggregateFuture> AggregateAsync(const std::string& lo,
                                            const std::string& hi,
                                            const nvme::AggregateSpec& agg);

  // --- metadata ---
  struct Stat {
    std::uint64_t num_kvs = 0;
    std::string state;
  };
  sim::Task<Result<Stat>> GetStat();

 private:
  friend class Client;
  KeyspaceHandle(Client* client, std::uint64_t id)
      : client_(client), id_(id) {}

  // Coroutine bodies behind Select/Aggregate: own the fully-built command
  // by value, so no argument lifetime leaks into the frame.
  sim::Task<Status> SelectCall(
      nvme::Command cmd,
      std::vector<std::pair<std::string, std::string>>* out);
  sim::Task<SelectFuture> SelectCallAsync(nvme::Command cmd);
  sim::Task<Result<nvme::AggregateResult>> AggregateCall(nvme::Command cmd);
  sim::Task<AggregateFuture> AggregateCallAsync(nvme::Command cmd);

  Client* client_ = nullptr;
  std::uint64_t id_ = 0;
};

class Client {
 public:
  Client(nvme::QueueSet* queues, sim::CpuPool* host_cpu,
         const hostenv::CostModel& host_costs, ClientConfig config = {});

  sim::Task<Result<KeyspaceHandle>> CreateKeyspace(const std::string& name);
  sim::Task<Result<KeyspaceHandle>> OpenKeyspace(const std::string& name);
  sim::Task<Status> DropKeyspace(const std::string& name);

  // --- in-band telemetry (DESIGN.md §14) ---
  // Pulls a device log page over the wire (kGetLogPage) and decodes it.
  // Health: point-in-time gauges (zone pool, per-role zns.* usage, util.*
  // windowed utilization, delta-index sizes, inflight/compaction state).
  // Stats: device.* counters and histogram digests, encoded at one tick —
  // a same-tick host snapshot of the device series matches exactly.
  sim::Task<Result<nvme::HealthPage>> GetHealth();
  sim::Task<Result<nvme::StatsPage>> GetStats();
  sim::Task<HealthFuture> GetHealthAsync();
  sim::Task<StatsPageFuture> GetStatsAsync();

  const ClientConfig& config() const { return config_; }
  nvme::QueueSet& queue() { return *queues_; }

  // The simulation-wide stats registry. The client records host-visible
  // round-trip latency histograms ("<prefix>cmd.<class>_ns") for the
  // put/get/range/secondary_range classes.
  sim::Stats& stats();

  // Commands submitted through CallAsync and not yet reaped.
  std::uint64_t async_inflight() const { return async_inflight_; }

 private:
  friend class KeyspaceHandle;

  // Client-side cost (packing, doorbell) + submit + await completion.
  sim::Task<nvme::Completion> Call(nvme::Command command);
  // Decoupled variant: returns once the command is on the device's SQ;
  // completion arrives through the future, reaped by the reactor.
  sim::Task<CallFuture> CallAsync(nvme::Command command);
  // Batched variant: all commands ring one doorbell on one SQ (split into
  // admission-window-sized chunks), so the per-command DMA-setup latency
  // amortizes across the batch.
  sim::Task<std::vector<CallFuture>> CallBatchAsync(
      std::vector<nvme::Command> commands);

  // Reaps completions off cq_ring_: records round-trip latency, releases
  // the admission window, and resolves the future. Parked forever once
  // the simulation drains (reclaimed by ~Simulation).
  sim::Task<void> Reactor();
  void EnsureReactor();
  // The SQ this client submits on next (config.queue_id, or rotating).
  nvme::QueuePair* SubmitPair();
  // Stamps cmd_id/submit_tick and opens the causal flow for one command.
  void StampCommand(nvme::Command* command, Tick begin);

  nvme::QueueSet* queues_;
  sim::CpuPool* host_cpu_;
  hostenv::CostModel costs_;
  ClientConfig config_;
  sim::Semaphore window_;
  // Serializes window-permit acquisition across concurrent batch
  // submitters (see CallBatchAsync). Single callers bypass it.
  sim::Semaphore batch_gate_;
  nvme::CqRing cq_ring_;
  bool reactor_started_ = false;
  std::uint32_t rr_cursor_ = 0;
  std::uint64_t async_inflight_ = 0;
};

}  // namespace kvcsd::client
