// KV-CSD host client library — the public API of this repository.
//
// This is the "lightweight client library" of the paper (Fig. 1, §VI): a
// userspace driver that packs key-value calls into NVMe commands and DMAs
// them to the device, bypassing the host kernel entirely. All methods are
// simulation coroutines; a typical application process looks like:
//
//   sim::Task<void> App(client::Client* db) {
//     auto ks = (co_await db->CreateKeyspace("particles")).value();
//     auto writer = ks.NewBulkWriter();
//     for (...) co_await writer.Add(key, value);
//     co_await writer.Flush();
//     co_await ks.Compact();          // returns immediately (offloaded)
//     co_await ks.WaitCompaction();   // barrier before querying
//     co_await ks.CreateSecondaryIndexF32("energy", 28);
//     std::vector<std::pair<std::string, std::string>> hits;
//     co_await ks.QuerySecondaryRangeF32("energy", 1.2f, 9e9f, 0, &hits);
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hostenv/cost_model.h"
#include "nvme/command.h"
#include "nvme/queue.h"
#include "nvme/skey.h"
#include "sim/resources.h"
#include "sim/task.h"

namespace kvcsd::client {

struct ClientConfig {
  // Bulk-put frame capacity (the paper's prototype uses 128 KB messages).
  std::uint64_t bulk_frame_bytes = KiB(128);
};

class Client;

// A handle to one keyspace. Cheap to copy.
class KeyspaceHandle {
 public:
  KeyspaceHandle() = default;

  std::uint64_t id() const { return id_; }
  bool valid() const { return client_ != nullptr; }

  // --- writes ---
  sim::Task<Status> Put(const std::string& key, const std::string& value);

  // Accumulates pairs into bulk frames; each full frame ships as one
  // NVMe command. Always Flush() before Compact().
  class BulkWriter {
   public:
    sim::Task<Status> Add(const std::string& key, const std::string& value);
    sim::Task<Status> Flush();
    std::uint64_t frames_sent() const { return frames_sent_; }

   private:
    friend class KeyspaceHandle;
    BulkWriter(Client* client, std::uint64_t keyspace_id)
        : client_(client), keyspace_id_(keyspace_id) {}
    Client* client_;
    std::uint64_t keyspace_id_;
    std::string frame_;
    std::uint64_t frames_sent_ = 0;
  };
  BulkWriter NewBulkWriter() { return BulkWriter(client_, id_); }

  // Explicit fsync: persists buffered PUTs to the device's log zones
  // before returning (paper §VI; most bulk-load pipelines skip this and
  // rely on checkpoint-restart instead).
  //
  // Status classification: kIoError and kBusy are RETRYABLE — the write
  // may not have reached flash, but the request is safe to reissue
  // (Sync/Put are idempotent at the log level). Anything else
  // (kInvalidArgument, kNotFound, kOutOfSpace, ...) is FATAL for the
  // request: retrying cannot succeed. Status::IsRetryable() encodes the
  // split.
  sim::Task<Status> Sync();

  // Sync with bounded retries on retryable failures (transient injected
  // I/O errors). The device re-queues a failed flush batch into the
  // keyspace's write buffer, so the retry re-flushes the same entries and
  // re-persists — success here means everything put so far IS durable,
  // not merely that the retry found an empty buffer.
  sim::Task<Status> SyncWithRetry(std::uint32_t attempts = 3);

  // --- lifecycle ---
  // Triggers compaction; the device runs it asynchronously and this call
  // returns as soon as the command completes.
  sim::Task<Status> Compact();
  // Fused variant (paper §V future work): compaction plus the given
  // secondary indexes, built in one pass without re-reading the keyspace.
  sim::Task<Status> CompactWithIndexes(
      std::vector<nvme::SecondaryIndexSpec> specs);
  // Blocks until the device reports the keyspace COMPACTED.
  sim::Task<Status> WaitCompaction();

  // --- secondary indexes ---
  sim::Task<Status> CreateSecondaryIndex(nvme::SecondaryIndexSpec spec);
  // Convenience: float32 key at byte `value_offset` of every value.
  sim::Task<Status> CreateSecondaryIndexF32(const std::string& name,
                                            std::uint32_t value_offset);

  // --- queries (keyspace must be COMPACTED) ---
  sim::Task<Result<std::string>> Get(const std::string& key);
  sim::Task<Status> Scan(const std::string& lo, const std::string& hi,
                         std::uint32_t limit,
                         std::vector<std::pair<std::string, std::string>>*
                             out);
  // Secondary range with pre-encoded bounds.
  sim::Task<Status> QuerySecondaryRange(
      const std::string& index_name, const std::string& lo_encoded,
      const std::string& hi_encoded, std::uint32_t limit,
      std::vector<std::pair<std::string, std::string>>* out);
  sim::Task<Status> QuerySecondaryRangeF32(
      const std::string& index_name, float lo, float hi, std::uint32_t limit,
      std::vector<std::pair<std::string, std::string>>* out);

  // --- metadata ---
  struct Stat {
    std::uint64_t num_kvs = 0;
    std::string state;
  };
  sim::Task<Result<Stat>> GetStat();

 private:
  friend class Client;
  KeyspaceHandle(Client* client, std::uint64_t id)
      : client_(client), id_(id) {}
  Client* client_ = nullptr;
  std::uint64_t id_ = 0;
};

class Client {
 public:
  Client(nvme::QueuePair* queue, sim::CpuPool* host_cpu,
         const hostenv::CostModel& host_costs, ClientConfig config = {})
      : queue_(queue),
        host_cpu_(host_cpu),
        costs_(host_costs),
        config_(config) {}

  sim::Task<Result<KeyspaceHandle>> CreateKeyspace(const std::string& name);
  sim::Task<Result<KeyspaceHandle>> OpenKeyspace(const std::string& name);
  sim::Task<Status> DropKeyspace(const std::string& name);

  const ClientConfig& config() const { return config_; }
  nvme::QueuePair& queue() { return *queue_; }

  // The simulation-wide stats registry. The client records host-visible
  // round-trip latency histograms ("client.cmd.<class>_ns") for the
  // put/get/range/secondary_range classes.
  sim::Stats& stats();

 private:
  friend class KeyspaceHandle;

  // Client-side cost (packing, doorbell) + submit + await completion.
  sim::Task<nvme::Completion> Call(nvme::Command command);

  nvme::QueuePair* queue_;
  sim::CpuPool* host_cpu_;
  hostenv::CostModel costs_;
  ClientConfig config_;
};

}  // namespace kvcsd::client
