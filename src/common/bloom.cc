#include "common/bloom.h"

#include <algorithm>

namespace kvcsd {

std::uint32_t BloomHash(const Slice& key) {
  // Murmur-inspired one-pass hash (LevelDB's Hash() simplified).
  const std::uint32_t seed = 0xbc9f1d34;
  const std::uint32_t m = 0xc6a4a793;
  std::uint32_t h = seed ^ (static_cast<std::uint32_t>(key.size()) * m);
  const char* data = key.data();
  std::size_t n = key.size();
  while (n >= 4) {
    std::uint32_t w;
    std::memcpy(&w, data, 4);
    h += w;
    h *= m;
    h ^= (h >> 16);
    data += 4;
    n -= 4;
  }
  switch (n) {
    case 3:
      h += static_cast<unsigned char>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<unsigned char>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<unsigned char>(data[0]);
      h *= m;
      h ^= (h >> 24);
      break;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = ln(2) * bits/key, clamped like LevelDB.
  num_probes_ = static_cast<int>(bits_per_key * 0.69);
  num_probes_ = std::clamp(num_probes_, 1, 30);
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  std::size_t bits = hashes_.size() * static_cast<std::size_t>(bits_per_key_);
  bits = std::max<std::size_t>(bits, 64);
  const std::size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (std::uint32_t h : hashes_) {
    std::uint32_t delta = (h >> 17) | (h << 15);  // double hashing
    for (int p = 0; p < num_probes_; ++p) {
      const std::size_t bit = h % bits;
      filter[bit / 8] |= static_cast<char>(1 << (bit % 8));
      h += delta;
    }
  }
  filter.push_back(static_cast<char>(num_probes_));
  hashes_.clear();
  return filter;
}

void BloomFilterAddKey(std::string* filter, const Slice& key) {
  if (filter->size() < 2) return;
  const std::size_t bytes = filter->size() - 1;
  const std::size_t bits = bytes * 8;
  const int num_probes = static_cast<unsigned char>((*filter)[bytes]);
  if (num_probes > 30) return;  // reserved encodings: leave untouched

  std::uint32_t h = BloomHash(key);
  std::uint32_t delta = (h >> 17) | (h << 15);
  for (int p = 0; p < num_probes; ++p) {
    const std::size_t bit = h % bits;
    (*filter)[bit / 8] |= static_cast<char>(1 << (bit % 8));
    h += delta;
  }
}

bool BloomFilterMayContain(const Slice& filter, const Slice& key) {
  if (filter.size() < 2) return true;  // degenerate: treat as "maybe"
  const std::size_t bytes = filter.size() - 1;
  const std::size_t bits = bytes * 8;
  const int num_probes = static_cast<unsigned char>(filter[bytes]);
  if (num_probes > 30) return true;  // reserved encodings: be permissive

  std::uint32_t h = BloomHash(key);
  std::uint32_t delta = (h >> 17) | (h << 15);
  for (int p = 0; p < num_probes; ++p) {
    const std::size_t bit = h % bits;
    if ((filter[bit / 8] & (1 << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace kvcsd
