// Bloom filter over user keys, LevelDB-style double hashing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace kvcsd {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(const Slice& key);

  // Serializes the filter: bit array followed by a 1-byte probe count.
  std::string Finish();

  std::size_t num_keys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<std::uint32_t> hashes_;
};

// True if the key may be in the set; false means definitely absent.
bool BloomFilterMayContain(const Slice& filter, const Slice& key);

// Sets the key's probe bits in an already-serialized filter in place
// (incremental re-compaction folds new keys into the compaction-built
// filter without rebuilding it). The filter only ever gains bits, so the
// no-false-negative guarantee holds; the false-positive rate drifts up
// until the next full compaction resizes the filter. No-op on an empty or
// degenerate filter.
void BloomFilterAddKey(std::string* filter, const Slice& key);

// FNV-1a-flavoured hash used by both sides.
std::uint32_t BloomHash(const Slice& key);

}  // namespace kvcsd
