#include "common/coding.h"

namespace kvcsd {

void PutFixed16(std::string* dst, std::uint16_t v) {
  char buf[sizeof(v)];
  EncodeFixed16(buf, v);
  dst->append(buf, sizeof(buf));
}

void PutFixed32(std::string* dst, std::uint32_t v) {
  char buf[sizeof(v)];
  EncodeFixed32(buf, v);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, std::uint64_t v) {
  char buf[sizeof(v)];
  EncodeFixed64(buf, v);
  dst->append(buf, sizeof(buf));
}

namespace {

char* EncodeVarint64To(char* dst, std::uint64_t v) {
  auto* ptr = reinterpret_cast<unsigned char*>(dst);
  while (v >= 0x80) {
    *(ptr++) = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  *(ptr++) = static_cast<unsigned char>(v);
  return reinterpret_cast<char*>(ptr);
}

}  // namespace

void PutVarint32(std::string* dst, std::uint32_t v) {
  PutVarint64(dst, v);
}

void PutVarint64(std::string* dst, std::uint64_t v) {
  char buf[10];
  char* end = EncodeVarint64To(buf, v);
  dst->append(buf, static_cast<std::size_t>(end - buf));
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed32(Slice* input, std::uint32_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

bool GetFixed64(Slice* input, std::uint64_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

bool GetVarint64(Slice* input, std::uint64_t* value) {
  std::uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (std::uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    std::uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      input->remove_prefix(static_cast<std::size_t>(p - input->data()));
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, std::uint32_t* value) {
  std::uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<std::uint32_t>(v64);
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  std::uint64_t len;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(std::uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace kvcsd
