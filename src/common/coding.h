// Little-endian fixed and varint codecs shared by the WAL, SSTable, KLOG,
// PIDX/SIDX block formats, and the NVMe command payloads.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace kvcsd {

inline void EncodeFixed16(char* dst, std::uint16_t v) {
  std::memcpy(dst, &v, sizeof(v));
}
inline void EncodeFixed32(char* dst, std::uint32_t v) {
  std::memcpy(dst, &v, sizeof(v));
}
inline void EncodeFixed64(char* dst, std::uint64_t v) {
  std::memcpy(dst, &v, sizeof(v));
}

inline std::uint16_t DecodeFixed16(const char* src) {
  std::uint16_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline std::uint32_t DecodeFixed32(const char* src) {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline std::uint64_t DecodeFixed64(const char* src) {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, std::uint16_t v);
void PutFixed32(std::string* dst, std::uint32_t v);
void PutFixed64(std::string* dst, std::uint64_t v);

void PutVarint32(std::string* dst, std::uint32_t v);
void PutVarint64(std::string* dst, std::uint64_t v);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Each Get* consumes the parsed bytes from *input and returns false on
// malformed/short input (callers translate into Status::Corruption).
bool GetFixed32(Slice* input, std::uint32_t* value);
bool GetFixed64(Slice* input, std::uint64_t* value);
bool GetVarint32(Slice* input, std::uint32_t* value);
bool GetVarint64(Slice* input, std::uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

int VarintLength(std::uint64_t v);

}  // namespace kvcsd
