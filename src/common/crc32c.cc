#include "common/crc32c.h"

#include <array>

namespace kvcsd::crc32c {

namespace {

// Table-driven CRC32C; the table is generated at static-init time from the
// Castagnoli polynomial (reflected form 0x82f63b78).
constexpr std::uint32_t kPoly = 0x82f63b78u;

std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Extend(std::uint32_t init_crc, const char* data,
                     std::size_t n) {
  std::uint32_t crc = ~init_crc;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace kvcsd::crc32c
