// CRC32C (Castagnoli) used to checksum WAL records, SSTable blocks, the
// KV-CSD metadata zone, and PIDX/SIDX blocks.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kvcsd::crc32c {

// Returns the crc32c of data[0..n-1], seeded with `init_crc` (pass 0 for a
// fresh computation; pass a previous result to extend it).
std::uint32_t Extend(std::uint32_t init_crc, const char* data, std::size_t n);

inline std::uint32_t Value(const char* data, std::size_t n) {
  return Extend(0, data, n);
}

// Masked crcs are stored on disk so that computing the crc of a string that
// embeds a crc does not yield a trivially correlated value (LevelDB trick).
inline std::uint32_t Mask(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}
inline std::uint32_t Unmask(std::uint32_t masked) {
  std::uint32_t rot = masked - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace kvcsd::crc32c
