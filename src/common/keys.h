// Order-preserving key encodings.
//
// Primary keys in benchmarks are fixed-width byte strings compared
// lexicographically. Secondary index keys are typed values extracted from a
// byte range of the stored value (paper §V, "Secondary Index Construction"):
// the application tells KV-CSD "bytes [off, off+len) of the value, treated
// as type T". To index them with plain memcmp ordering we re-encode each
// typed value into a byte string whose lexicographic order equals the
// numeric order of the original value.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace kvcsd {

// Big-endian encode: lexicographic order == unsigned numeric order.
inline void AppendBigEndian64(std::string* dst, std::uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  dst->append(buf, sizeof(buf));
}

inline void AppendBigEndian32(std::string* dst, std::uint32_t v) {
  char buf[4];
  for (int i = 3; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  dst->append(buf, sizeof(buf));
}

inline std::uint64_t ReadBigEndian64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline std::uint32_t ReadBigEndian32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

// Signed integers: flip the sign bit so that two's-complement order maps to
// unsigned order.
inline std::uint32_t OrderEncodeI32(std::int32_t v) {
  return static_cast<std::uint32_t>(v) ^ 0x80000000u;
}
inline std::int32_t OrderDecodeI32(std::uint32_t e) {
  return static_cast<std::int32_t>(e ^ 0x80000000u);
}
inline std::uint64_t OrderEncodeI64(std::int64_t v) {
  return static_cast<std::uint64_t>(v) ^ 0x8000000000000000ull;
}
inline std::int64_t OrderDecodeI64(std::uint64_t e) {
  return static_cast<std::int64_t>(e ^ 0x8000000000000000ull);
}

// IEEE-754 floats: if the sign bit is clear, set it; otherwise invert all
// bits. The resulting unsigned order equals the total order of the floats
// (with -0.0 < +0.0; NaNs sort above +inf or below -inf by payload, which
// is fine for index purposes).
inline std::uint32_t OrderEncodeF32(float f) {
  std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  return (u & 0x80000000u) ? ~u : (u | 0x80000000u);
}
inline float OrderDecodeF32(std::uint32_t e) {
  std::uint32_t u = (e & 0x80000000u) ? (e & ~0x80000000u) : ~e;
  return std::bit_cast<float>(u);
}
inline std::uint64_t OrderEncodeF64(double d) {
  std::uint64_t u = std::bit_cast<std::uint64_t>(d);
  return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
}
inline double OrderDecodeF64(std::uint64_t e) {
  std::uint64_t u =
      (e & 0x8000000000000000ull) ? (e & ~0x8000000000000000ull) : ~e;
  return std::bit_cast<double>(u);
}

// Fixed-width primary key from a uint64 id (benchmarks use 16 B keys: an
// 8 B big-endian id plus an 8 B zero pad, matching the paper's 16 B keys).
inline std::string MakeFixedKey(std::uint64_t id, std::size_t width = 16) {
  std::string key;
  key.reserve(width);
  AppendBigEndian64(&key, id);
  if (width > 8) key.append(width - 8, '\0');
  key.resize(width);
  return key;
}

inline std::uint64_t FixedKeyId(const Slice& key) {
  return key.size() >= 8 ? ReadBigEndian64(key.data()) : 0;
}

}  // namespace kvcsd
