#include "common/random.h"

#include <cmath>

namespace kvcsd {

double Rng::Exponential(double rate) {
  // Inverse-CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace kvcsd
