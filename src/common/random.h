// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed:
// workload generation, zone-cluster start offsets, VPIC attribute synthesis.
// Never std::random_device — simulation runs must be exactly reproducible.
#pragma once

#include <cstdint>

namespace kvcsd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  std::uint64_t Uniform(std::uint64_t n) { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Standard exponential variate with the given rate.
  double Exponential(double rate);

  // Standard normal via Box-Muller (no state caching: simple & adequate).
  double Normal(double mean, double stddev);

  bool OneIn(std::uint64_t n) { return Uniform(n) == 0; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace kvcsd
