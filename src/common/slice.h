// Slice: a non-owning view of bytes with key-comparison helpers, in the
// LevelDB tradition but built on std::string_view semantics.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace kvcsd {

class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, std::size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT
  Slice(std::span<const std::byte> s)                                // NOLINT
      : data_(reinterpret_cast<const char*>(s.data())), size_(s.size()) {}

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  void remove_prefix(std::size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }
  std::span<const std::byte> bytes() const {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(data_), size_);
  }

  int compare(const Slice& b) const {
    const std::size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = std::memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) return -1;
      if (size_ > b.size_) return +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  std::size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace kvcsd
