#include "common/status.h"

namespace kvcsd {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfSpace:
      return "OutOfSpace";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s(StatusCodeName(code_));
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace kvcsd
