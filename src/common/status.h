// Status / Result<T>: lightweight error propagation used across the whole
// library. Follows the C++ Core Guidelines preference for explicit,
// value-based error handling on hot paths (no exceptions in the I/O and
// simulation core).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace kvcsd {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,  // e.g. keyspace in the wrong lifecycle state
  kOutOfSpace,
  kCorruption,
  kIoError,
  kBusy,      // resource temporarily unavailable (e.g. compaction running)
  kAborted,   // operation cancelled (e.g. keyspace deleted mid-flight)
  kUnimplemented,
};

std::string_view StatusCodeName(StatusCode code);

// A Status is either OK (cheap: no allocation) or a code plus a message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = {}) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = {}) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = {}) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m = {}) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfSpace(std::string m = {}) {
    return Status(StatusCode::kOutOfSpace, std::move(m));
  }
  static Status Corruption(std::string m = {}) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status IoError(std::string m = {}) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Busy(std::string m = {}) {
    return Status(StatusCode::kBusy, std::move(m));
  }
  static Status Aborted(std::string m = {}) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unimplemented(std::string m = {}) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  // Transient failures a client may retry verbatim (the device stays in a
  // consistent state): injected/transient media errors and busy devices.
  // Corruption, FailedPrecondition, etc. are fatal for the operation.
  bool IsRetryable() const {
    return code_ == StatusCode::kIoError || code_ == StatusCode::kBusy;
  }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : rep_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace kvcsd

// Propagate a non-OK Status from an expression (plain functions).
#define KVCSD_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::kvcsd::Status kvcsd_st_ = (expr);        \
    if (!kvcsd_st_.ok()) return kvcsd_st_;     \
  } while (0)

// Coroutine variant: co_returns the error from a Task<Status> coroutine.
// The expression may itself be a co_await.
#define KVCSD_CO_RETURN_IF_ERROR(expr)         \
  do {                                         \
    ::kvcsd::Status kvcsd_st_ = (expr);        \
    if (!kvcsd_st_.ok()) co_return kvcsd_st_;  \
  } while (0)
