// Size and time unit helpers. Simulated time is always nanoseconds held in
// a uint64_t "Tick".
#pragma once

#include <cstdint>

namespace kvcsd {

using Tick = std::uint64_t;  // simulated nanoseconds

constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

constexpr Tick Nanoseconds(std::uint64_t n) { return n; }
constexpr Tick Microseconds(std::uint64_t n) { return n * 1000ull; }
constexpr Tick Milliseconds(std::uint64_t n) { return n * 1000000ull; }
constexpr Tick Seconds(std::uint64_t n) { return n * 1000000000ull; }

constexpr double TicksToSeconds(Tick t) {
  return static_cast<double>(t) / 1e9;
}
constexpr double TicksToMillis(Tick t) {
  return static_cast<double>(t) / 1e6;
}
constexpr double TicksToMicros(Tick t) {
  return static_cast<double>(t) / 1e3;
}

// Ticks needed to move `bytes` through a pipe of `bytes_per_sec` capacity,
// rounded up so zero-cost transfers cannot exist.
constexpr Tick TransferTicks(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
  const Tick t = static_cast<Tick>(ns);
  return t == 0 ? 1 : t;
}

}  // namespace kvcsd
