#include "harness/crash_sweep.h"

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client.h"
#include "hostenv/cost_model.h"
#include "nvme/queue.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace kvcsd::harness {
namespace {

// The reference model: what the client believes about one keyspace. The
// verifier holds recovery to exactly this — acknowledged state must
// survive, unacknowledged state may go either way, invented state is a
// bug.
struct KeyspaceModel {
  std::string name;
  client::KeyspaceHandle handle;
  bool create_acked = false;
  bool drop_issued = false;
  bool drop_acked = false;
  std::map<std::string, std::string> sent;   // every PUT issued
  std::map<std::string, std::string> acked;  // covered by an OK Sync
};

struct SweepState {
  const CrashSweepConfig* config = nullptr;
  sim::FaultInjector* faults = nullptr;
  CrashSweepReport* report = nullptr;
  std::vector<KeyspaceModel> models;
  bool workload_done = false;
  bool verify_done = false;

  bool crashed() const { return faults->crashed(); }
  void Violation(std::string what) {
    report->violations.push_back(std::move(what));
  }
};

std::string KeyFor(std::uint32_t ks, std::uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ks%u-k%06u", ks, i);
  return buf;
}

std::string ValueFor(const CrashSweepConfig& config, const std::string& key) {
  std::string value = "v:" + key;
  value.resize(config.value_bytes, '.');
  return value;
}

// ---------------------------------------------------------------------------
// Phase 1: the workload. Every operation either succeeds (and advances
// the model) or fails because the power went out; a failure with power
// still on is itself a violation.
// ---------------------------------------------------------------------------

sim::Task<void> WorkloadBody(SweepState* st, client::Client* db) {
  const CrashSweepConfig& cfg = *st->config;

  for (std::uint32_t i = 0; i < cfg.keyspaces; ++i) {
    KeyspaceModel& m = st->models[i];
    auto created = co_await db->CreateKeyspace(m.name);
    if (created.ok()) {
      m.handle = *created;
      m.create_acked = true;
    } else if (!st->crashed()) {
      st->Violation("create failed without a crash: " +
                    created.status().message());
      co_return;
    }
    if (st->crashed()) co_return;
  }

  // Two PUT rounds per keyspace, each sealed by a Sync; an OK Sync
  // promotes everything sent so far to "acknowledged".
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t i = 0; i < cfg.keyspaces; ++i) {
      KeyspaceModel& m = st->models[i];
      const std::uint32_t half = cfg.keys_per_keyspace / 2;
      const std::uint32_t begin = round == 0 ? 0 : half;
      const std::uint32_t end = round == 0 ? half : cfg.keys_per_keyspace;
      for (std::uint32_t k = begin; k < end; ++k) {
        const std::string key = KeyFor(i, k);
        const std::string value = ValueFor(cfg, key);
        Status put = co_await m.handle.Put(key, value);
        if (put.ok()) {
          m.sent[key] = value;
        } else if (!st->crashed()) {
          st->Violation("put failed without a crash: " + put.message());
          co_return;
        }
        if (st->crashed()) co_return;
      }
      Status sync = co_await m.handle.Sync();
      if (sync.ok()) {
        m.acked = m.sent;
      } else if (!st->crashed()) {
        st->Violation("sync failed without a crash: " + sync.message());
        co_return;
      }
      if (st->crashed()) co_return;
    }
  }

  // Drop the first keyspace (exercises drop.before_persist and the
  // release path). With one keyspace, keep it instead.
  if (cfg.keyspaces > 1) {
    KeyspaceModel& m = st->models.front();
    m.drop_issued = true;
    Status dropped = co_await db->DropKeyspace(m.name);
    if (dropped.ok()) {
      m.drop_acked = true;
    } else if (!st->crashed()) {
      st->Violation("drop failed without a crash: " + dropped.message());
      co_return;
    }
    if (st->crashed()) co_return;
  }

  // Drop a keyspace WHILE it is compacting: the deferred drop's ack
  // rides on a durable tombstone, so a crash any time after the ack —
  // including mid-compaction, before the deferred drop ever runs — must
  // still leave the keyspace dropped after recovery.
  if (cfg.keyspaces > 2) {
    KeyspaceModel& dm = st->models[1];
    Status s = co_await dm.handle.Compact();
    if (!s.ok() && !st->crashed()) {
      st->Violation("compact of deferred-drop target failed without a "
                    "crash: " + s.message());
      co_return;
    }
    if (st->crashed()) co_return;
    dm.drop_issued = true;
    Status dropped = co_await db->DropKeyspace(dm.name);
    if (dropped.ok()) {
      dm.drop_acked = true;
    } else if (!st->crashed()) {
      st->Violation("deferred drop failed without a crash: " +
                    dropped.message());
      co_return;
    }
    if (st->crashed()) co_return;
  }

  // Compact the last keyspace and read it back, covering the compaction
  // crash points and the query path.
  KeyspaceModel& m = st->models.back();
  Status s = co_await m.handle.Compact();
  if (!s.ok() && !st->crashed()) {
    st->Violation("compact failed without a crash: " + s.message());
    co_return;
  }
  if (st->crashed()) co_return;
  s = co_await m.handle.WaitCompaction();
  if (!s.ok() && !st->crashed()) {
    st->Violation("compaction wait failed without a crash: " + s.message());
    co_return;
  }
  if (st->crashed()) co_return;

  const std::uint32_t last = cfg.keyspaces - 1;
  for (std::uint32_t k = 0; k < cfg.keys_per_keyspace;
       k += cfg.keys_per_keyspace / 4 + 1) {
    const std::string key = KeyFor(last, k);
    auto got = co_await m.handle.Get(key);
    if (st->crashed()) co_return;
    if (!got.ok()) {
      st->Violation("pre-crash get failed without a crash: " +
                    got.status().message());
    } else if (*got != ValueFor(cfg, key)) {
      st->Violation("pre-crash get returned a wrong value for " + key);
    }
  }
}

sim::Task<void> RunWorkload(SweepState* st, client::Client* db) {
  co_await WorkloadBody(st, db);
  st->workload_done = true;
}

// ---------------------------------------------------------------------------
// Phase 2: power-cycle verification.
// ---------------------------------------------------------------------------

// Zone accounting must partition the device: reserved metadata zones,
// cluster-owned zones, free zones. Unowned zones must hold no data.
void CheckZoneAccounting(SweepState* st, device::Device* dev) {
  const std::uint32_t reserved = dev->config().zones.reserved_zones;
  const std::uint32_t num_zones = dev->ssd().num_zones();
  std::vector<std::uint32_t> owners(num_zones, 0);
  std::size_t owned = 0;
  for (const auto& [cluster, type] : dev->zones().LiveClusters()) {
    for (std::uint32_t zone : dev->zones().cluster_zones(cluster)) {
      if (zone < reserved || zone >= num_zones) {
        st->Violation("cluster " + std::to_string(cluster) +
                      " owns out-of-range zone " + std::to_string(zone));
        continue;
      }
      ++owners[zone];
      ++owned;
    }
  }
  for (std::uint32_t zone = 0; zone < num_zones; ++zone) {
    if (owners[zone] > 1) {
      st->Violation("zone " + std::to_string(zone) +
                    " owned by multiple clusters");
    }
    if (zone >= reserved && owners[zone] == 0 &&
        dev->ssd().write_pointer(zone) != 0) {
      st->Violation("unowned zone " + std::to_string(zone) +
                    " still holds data after recovery");
    }
  }
  if (reserved + owned + dev->zones().free_zones() != num_zones) {
    st->Violation("zone accounting mismatch: reserved=" +
                  std::to_string(reserved) + " owned=" +
                  std::to_string(owned) + " free=" +
                  std::to_string(dev->zones().free_zones()) + " total=" +
                  std::to_string(num_zones));
  }
}

// One keyspace against its model, through the public client API.
sim::Task<void> VerifyKeyspace(SweepState* st, client::Client* db,
                               KeyspaceModel* m) {
  auto opened = co_await db->OpenKeyspace(m->name);
  if (m->drop_acked) {
    if (opened.ok()) {
      st->Violation("acknowledged drop resurfaced: " + m->name);
    }
    co_return;
  }
  if (!opened.ok()) {
    // Absent is legal only if the create was never acknowledged or a
    // drop was at least issued.
    if (m->create_acked && !m->drop_issued) {
      st->Violation("acknowledged keyspace lost: " + m->name);
    }
    co_return;
  }
  client::KeyspaceHandle handle = *opened;

  auto stat = co_await handle.GetStat();
  if (!stat.ok()) {
    st->Violation("stat failed after recovery for " + m->name + ": " +
                  stat.status().message());
    co_return;
  }
  if (stat->state == "COMPACTING") {
    st->Violation("keyspace recovered in COMPACTING state: " + m->name);
    co_return;
  }
  if (stat->state == "EMPTY") {
    if (!m->acked.empty()) {
      st->Violation("acked data lost, keyspace recovered EMPTY: " + m->name);
    }
    co_return;
  }
  if (stat->state == "WRITABLE") {
    // Power is back and no faults are armed: compaction must succeed.
    // A device-side failure rolls the keyspace back to WRITABLE without
    // failing the commands, so check the state it actually reached.
    Status s = co_await handle.Compact();
    if (s.ok()) s = co_await handle.WaitCompaction();
    if (!s.ok()) {
      st->Violation("post-recovery compaction failed for " + m->name + ": " +
                    s.message());
      co_return;
    }
    auto after = co_await handle.GetStat();
    if (after.ok() && after->state != "COMPACTED") {
      st->Violation("post-recovery compaction rolled back for " + m->name +
                    " (state " + after->state + ")");
      co_return;
    }
  }

  auto stat2 = co_await handle.GetStat();
  if (stat2.ok()) {
    if (stat2->num_kvs < m->acked.size() ||
        stat2->num_kvs > m->sent.size()) {
      st->Violation("num_kvs=" + std::to_string(stat2->num_kvs) +
                    " outside [acked=" + std::to_string(m->acked.size()) +
                    ", sent=" + std::to_string(m->sent.size()) + "] for " +
                    m->name);
    }
  }

  // Durability: every acknowledged key readable with its exact value.
  int losses = 0;
  for (const auto& [key, value] : m->acked) {
    auto got = co_await handle.Get(key);
    if (!got.ok()) {
      st->Violation("acked key lost after recovery: " + key + " (" +
                    got.status().message() + ")");
    } else if (*got != value) {
      st->Violation("acked key has wrong value after recovery: " + key);
    } else {
      continue;
    }
    if (++losses >= 5) {
      st->Violation("... further key losses in " + m->name + " suppressed");
      break;
    }
  }

  // Nothing invented: a full scan returns only keys the client sent,
  // each with the value it sent, and at least everything acknowledged.
  std::vector<std::pair<std::string, std::string>> all;
  Status s = co_await handle.Scan("", "\x7f", 0, &all);
  if (!s.ok()) {
    st->Violation("full scan failed after recovery for " + m->name + ": " +
                  s.message());
    co_return;
  }
  int phantoms = 0;
  for (const auto& [key, value] : all) {
    auto it = m->sent.find(key);
    if (it == m->sent.end()) {
      st->Violation("recovered key was never sent: " + key);
    } else if (it->second != value) {
      st->Violation("recovered value mismatch for sent key: " + key);
    } else {
      continue;
    }
    if (++phantoms >= 5) {
      st->Violation("... further scan mismatches in " + m->name +
                    " suppressed");
      break;
    }
  }
  if (all.size() < m->acked.size()) {
    st->Violation("scan returned " + std::to_string(all.size()) +
                  " keys, fewer than the " +
                  std::to_string(m->acked.size()) + " acked in " + m->name);
  }
}

sim::Task<void> VerifyBody(SweepState* st, sim::Simulation* sim,
                           device::Device* dev, client::Client* db) {
  const Tick start = sim->Now();
  Status recovered = co_await dev->Recover();
  st->report->recovery_ticks = sim->Now() - start;
  if (!recovered.ok()) {
    st->Violation("recovery failed: " + recovered.message());
    co_return;
  }

  CheckZoneAccounting(st, dev);
  for (const auto& [id, ks] : dev->keyspaces().all()) {
    if (ks->state == device::KeyspaceState::kCompacting) {
      st->Violation("keyspace table holds a COMPACTING keyspace: " +
                    ks->name);
    }
  }

  for (KeyspaceModel& m : st->models) {
    co_await VerifyKeyspace(st, db, &m);
  }
}

sim::Task<void> RunVerify(SweepState* st, sim::Simulation* sim,
                          device::Device* dev, client::Client* db) {
  co_await VerifyBody(st, sim, dev, db);
  st->verify_done = true;
}

}  // namespace

Result<CrashSweepReport> RunCrashSweepCase(const CrashSweepConfig& config,
                                           std::uint64_t crash_at_hit) {
  if (config.keyspaces == 0) {
    return Status::InvalidArgument("crash sweep needs at least one keyspace");
  }

  sim::Simulation sim;
  sim::FaultInjector faults(config.seed);
  faults.set_torn_tail_keep(config.torn_tail_keep);
  if (crash_at_hit > 0) faults.ArmCrashAtHit(crash_at_hit);

  CrashSweepReport report;
  SweepState state;
  state.config = &config;
  state.faults = &faults;
  state.report = &report;
  state.models.resize(config.keyspaces);
  for (std::uint32_t i = 0; i < config.keyspaces; ++i) {
    state.models[i].name = "sweep" + std::to_string(i);
  }

  const device::DeviceConfig dcfg = config.DeviceConfigFor(&faults);
  nvme::QueueSet queue(&sim, nvme::PcieConfig{});
  auto dev = std::make_unique<device::Device>(&sim, dcfg, &queue);
  dev->Start();
  sim::CpuPool host_cpu(&sim, "host", 8);
  client::Client db(&queue, &host_cpu, hostenv::CostModel::Host());

  sim.Spawn(RunWorkload(&state, &db));
  sim.Run();
  if (!state.workload_done) {
    return Status::Aborted("crash-sweep workload never completed");
  }
  report.hits = faults.hits();
  report.fired = faults.crashed();
  report.crash_point = faults.crash_point();

  // Power cycle: a fresh device + queue over the surviving flash bytes.
  // The old device stays parked on its dead queue pair.
  nvme::QueueSet queue2(&sim, nvme::PcieConfig{});
  auto dev2 = device::Device::Restart(&sim, dcfg, &queue2, *dev);
  dev2->Start();
  client::Client db2(&queue2, &host_cpu, hostenv::CostModel::Host());

  sim.Spawn(RunVerify(&state, &sim, dev2.get(), &db2));
  sim.Run();
  if (!state.verify_done) {
    return Status::Aborted("crash-sweep verification never completed");
  }
  return report;
}

}  // namespace kvcsd::harness
