#include "harness/crash_sweep.h"

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/client.h"
#include "hostenv/cost_model.h"
#include "nvme/queue.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace kvcsd::harness {
namespace {

// The reference model: what the client believes about one keyspace. The
// verifier holds recovery to exactly this — acknowledged state must
// survive, unacknowledged state may go either way, invented state is a
// bug.
struct KeyspaceModel {
  std::string name;
  client::KeyspaceHandle handle;
  bool create_acked = false;
  bool drop_issued = false;
  bool drop_acked = false;
  // Latest issued value per key (a DELETE erases the key here).
  std::map<std::string, std::string> sent;
  // Snapshot of `sent` at the last OK Sync.
  std::map<std::string, std::string> acked;
  // Every value ever issued for a key: after a crash any prefix of the
  // log may survive, so a recovered value is legal iff it was sent once.
  std::map<std::string, std::set<std::string>> values_ever;
  // Values issued since the last OK Sync: an acked key may legally come
  // back with one of these instead of its acked value (the newer, still
  // unacknowledged overwrite reached flash before the power cut).
  std::map<std::string, std::set<std::string>> unacked_values;
  std::set<std::string> tombstones_sent;   // DELETE issued
  std::set<std::string> tombstones_acked;  // snapshot at the last OK Sync
  // Mutations issued after the keyspace first reached COMPACTED: each
  // lands in the delta log, where an overwrite double-counts against
  // num_kvs until an incremental re-compaction folds it into the run.
  std::uint64_t post_compact_mutations = 0;

  // Deletes issued but never sealed by an OK Sync: their tombstones may
  // or may not have reached flash, so each relaxes the acked lower
  // bounds by one.
  std::uint64_t UnackedDeletes() const {
    std::uint64_t n = 0;
    for (const std::string& key : tombstones_sent) {
      if (tombstones_acked.count(key) == 0) ++n;
    }
    return n;
  }
};

struct SweepState {
  const CrashSweepConfig* config = nullptr;
  sim::FaultInjector* faults = nullptr;
  CrashSweepReport* report = nullptr;
  std::vector<KeyspaceModel> models;
  bool workload_done = false;
  bool verify_done = false;

  bool crashed() const { return faults->crashed(); }
  void Violation(std::string what) {
    report->violations.push_back(std::move(what));
  }
};

std::string KeyFor(std::uint32_t ks, std::uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ks%u-k%06u", ks, i);
  return buf;
}

std::string ValueFor(const CrashSweepConfig& config, const std::string& key) {
  std::string value = "v:" + key;
  value.resize(config.value_bytes, '.');
  return value;
}

// ---------------------------------------------------------------------------
// Phase 1: the workload. Every operation either succeeds (and advances
// the model) or fails because the power went out; a failure with power
// still on is itself a violation.
// ---------------------------------------------------------------------------

sim::Task<void> WorkloadBody(SweepState* st, client::Client* db) {
  const CrashSweepConfig& cfg = *st->config;

  for (std::uint32_t i = 0; i < cfg.keyspaces; ++i) {
    KeyspaceModel& m = st->models[i];
    auto created = co_await db->CreateKeyspace(m.name);
    if (created.ok()) {
      m.handle = *created;
      m.create_acked = true;
    } else if (!st->crashed()) {
      st->Violation("create failed without a crash: " +
                    created.status().message());
      co_return;
    }
    if (st->crashed()) co_return;
  }

  // Two PUT rounds per keyspace, each sealed by a Sync; an OK Sync
  // promotes everything sent so far to "acknowledged".
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t i = 0; i < cfg.keyspaces; ++i) {
      KeyspaceModel& m = st->models[i];
      const std::uint32_t half = cfg.keys_per_keyspace / 2;
      const std::uint32_t begin = round == 0 ? 0 : half;
      const std::uint32_t end = round == 0 ? half : cfg.keys_per_keyspace;
      for (std::uint32_t k = begin; k < end; ++k) {
        const std::string key = KeyFor(i, k);
        const std::string value = ValueFor(cfg, key);
        Status put = co_await m.handle.Put(key, value);
        if (put.ok()) {
          m.sent[key] = value;
          m.values_ever[key].insert(value);
          m.unacked_values[key].insert(value);
        } else if (!st->crashed()) {
          st->Violation("put failed without a crash: " + put.message());
          co_return;
        }
        if (st->crashed()) co_return;
      }
      Status sync = co_await m.handle.Sync();
      if (sync.ok()) {
        m.acked = m.sent;
        m.tombstones_acked = m.tombstones_sent;
        m.unacked_values.clear();
      } else if (!st->crashed()) {
        st->Violation("sync failed without a crash: " + sync.message());
        co_return;
      }
      if (st->crashed()) co_return;
    }
  }

  // Drop the first keyspace (exercises drop.before_persist and the
  // release path). With one keyspace, keep it instead.
  if (cfg.keyspaces > 1) {
    KeyspaceModel& m = st->models.front();
    m.drop_issued = true;
    Status dropped = co_await db->DropKeyspace(m.name);
    if (dropped.ok()) {
      m.drop_acked = true;
    } else if (!st->crashed()) {
      st->Violation("drop failed without a crash: " + dropped.message());
      co_return;
    }
    if (st->crashed()) co_return;
  }

  // Drop a keyspace WHILE it is compacting: the deferred drop's ack
  // rides on a durable tombstone, so a crash any time after the ack —
  // including mid-compaction, before the deferred drop ever runs — must
  // still leave the keyspace dropped after recovery.
  if (cfg.keyspaces > 2) {
    KeyspaceModel& dm = st->models[1];
    Status s = co_await dm.handle.Compact();
    if (!s.ok() && !st->crashed()) {
      st->Violation("compact of deferred-drop target failed without a "
                    "crash: " + s.message());
      co_return;
    }
    if (st->crashed()) co_return;
    dm.drop_issued = true;
    Status dropped = co_await db->DropKeyspace(dm.name);
    if (dropped.ok()) {
      dm.drop_acked = true;
    } else if (!st->crashed()) {
      st->Violation("deferred drop failed without a crash: " +
                    dropped.message());
      co_return;
    }
    if (st->crashed()) co_return;
  }

  // Compact the last keyspace and read it back, covering the compaction
  // crash points and the query path.
  KeyspaceModel& m = st->models.back();
  Status s = co_await m.handle.Compact();
  if (!s.ok() && !st->crashed()) {
    st->Violation("compact failed without a crash: " + s.message());
    co_return;
  }
  if (st->crashed()) co_return;
  s = co_await m.handle.WaitCompaction();
  if (!s.ok() && !st->crashed()) {
    st->Violation("compaction wait failed without a crash: " + s.message());
    co_return;
  }
  if (st->crashed()) co_return;

  const std::uint32_t last = cfg.keyspaces - 1;
  for (std::uint32_t k = 0; k < cfg.keys_per_keyspace;
       k += cfg.keys_per_keyspace / 4 + 1) {
    const std::string key = KeyFor(last, k);
    auto got = co_await m.handle.Get(key);
    if (st->crashed()) co_return;
    if (!got.ok()) {
      st->Violation("pre-crash get failed without a crash: " +
                    got.status().message());
    } else if (*got != ValueFor(cfg, key)) {
      st->Violation("pre-crash get returned a wrong value for " + key);
    }
  }

  // Post-compaction mutation leg on the now-COMPACTED last keyspace:
  // overwrites and point deletes land in the delta log, a Sync seals
  // them, and an incremental re-compaction folds the delta into the run.
  // Walks the delta-append crash points (flush/sync over delta chains)
  // and the recompact.* commit protocol.
  const std::uint32_t stride = cfg.keys_per_keyspace / 8 + 1;
  const std::uint32_t half = cfg.keys_per_keyspace / 2;
  for (std::uint32_t k = 0; k < half; k += stride) {
    const std::string key = KeyFor(last, k);
    std::string value = "w:" + key;
    value.resize(cfg.value_bytes, '.');
    Status put = co_await m.handle.Put(key, value);
    if (put.ok()) {
      m.sent[key] = value;
      m.values_ever[key].insert(value);
      m.unacked_values[key].insert(value);
      ++m.post_compact_mutations;
    } else if (!st->crashed()) {
      st->Violation("delta put failed without a crash: " + put.message());
      co_return;
    }
    if (st->crashed()) co_return;
  }
  for (std::uint32_t k = half; k < cfg.keys_per_keyspace; k += stride) {
    const std::string key = KeyFor(last, k);
    Status del = co_await m.handle.Delete(key);
    if (del.ok()) {
      m.sent.erase(key);
      m.tombstones_sent.insert(key);
      ++m.post_compact_mutations;
    } else if (!st->crashed()) {
      st->Violation("delta delete failed without a crash: " + del.message());
      co_return;
    }
    if (st->crashed()) co_return;
  }
  for (std::uint32_t k = cfg.keys_per_keyspace;
       k < cfg.keys_per_keyspace + 3; ++k) {
    const std::string key = KeyFor(last, k);
    const std::string value = ValueFor(cfg, key);
    Status put = co_await m.handle.Put(key, value);
    if (put.ok()) {
      m.sent[key] = value;
      m.values_ever[key].insert(value);
      m.unacked_values[key].insert(value);
      ++m.post_compact_mutations;
    } else if (!st->crashed()) {
      st->Violation("delta insert failed without a crash: " + put.message());
      co_return;
    }
    if (st->crashed()) co_return;
  }
  Status delta_sync = co_await m.handle.Sync();
  if (delta_sync.ok()) {
    m.acked = m.sent;
    m.tombstones_acked = m.tombstones_sent;
    m.unacked_values.clear();
  } else if (!st->crashed()) {
    st->Violation("delta sync failed without a crash: " +
                  delta_sync.message());
    co_return;
  }
  if (st->crashed()) co_return;

  s = co_await m.handle.Compact();  // incremental re-compaction
  if (!s.ok() && !st->crashed()) {
    st->Violation("re-compaction failed without a crash: " + s.message());
    co_return;
  }
  if (st->crashed()) co_return;
  s = co_await m.handle.WaitCompaction();
  if (!s.ok() && !st->crashed()) {
    st->Violation("re-compaction wait failed without a crash: " +
                  s.message());
    co_return;
  }
  if (st->crashed()) co_return;

  // Merged read-back over the folded run.
  for (std::uint32_t k = 0; k < half; k += stride) {
    const std::string key = KeyFor(last, k);
    auto got = co_await m.handle.Get(key);
    if (st->crashed()) co_return;
    if (!got.ok()) {
      st->Violation("post-fold get failed without a crash: " +
                    got.status().message());
    } else if (*got != m.sent[key]) {
      st->Violation("post-fold get returned a stale value for " + key);
    }
  }
  for (std::uint32_t k = half; k < cfg.keys_per_keyspace; k += stride) {
    auto got = co_await m.handle.Get(KeyFor(last, k));
    if (st->crashed()) co_return;
    if (!got.status().IsNotFound()) {
      st->Violation("post-fold get of a deleted key did not return "
                    "NotFound: " + KeyFor(last, k));
    }
  }
}

sim::Task<void> RunWorkload(SweepState* st, client::Client* db) {
  co_await WorkloadBody(st, db);
  st->workload_done = true;
}

// ---------------------------------------------------------------------------
// Phase 2: power-cycle verification.
// ---------------------------------------------------------------------------

// Zone accounting must partition the device: reserved metadata zones,
// cluster-owned zones, free zones. Unowned zones must hold no data.
void CheckZoneAccounting(SweepState* st, device::Device* dev) {
  const std::uint32_t reserved = dev->config().zones.reserved_zones;
  const std::uint32_t num_zones = dev->ssd().num_zones();
  std::vector<std::uint32_t> owners(num_zones, 0);
  std::size_t owned = 0;
  for (const auto& [cluster, type] : dev->zones().LiveClusters()) {
    for (std::uint32_t zone : dev->zones().cluster_zones(cluster)) {
      if (zone < reserved || zone >= num_zones) {
        st->Violation("cluster " + std::to_string(cluster) +
                      " owns out-of-range zone " + std::to_string(zone));
        continue;
      }
      ++owners[zone];
      ++owned;
    }
  }
  for (std::uint32_t zone = 0; zone < num_zones; ++zone) {
    if (owners[zone] > 1) {
      st->Violation("zone " + std::to_string(zone) +
                    " owned by multiple clusters");
    }
    if (zone >= reserved && owners[zone] == 0 &&
        dev->ssd().write_pointer(zone) != 0) {
      st->Violation("unowned zone " + std::to_string(zone) +
                    " still holds data after recovery");
    }
  }
  if (reserved + owned + dev->zones().free_zones() != num_zones) {
    st->Violation("zone accounting mismatch: reserved=" +
                  std::to_string(reserved) + " owned=" +
                  std::to_string(owned) + " free=" +
                  std::to_string(dev->zones().free_zones()) + " total=" +
                  std::to_string(num_zones));
  }
}

// One keyspace against its model, through the public client API.
sim::Task<void> VerifyKeyspace(SweepState* st, client::Client* db,
                               KeyspaceModel* m) {
  auto opened = co_await db->OpenKeyspace(m->name);
  if (m->drop_acked) {
    if (opened.ok()) {
      st->Violation("acknowledged drop resurfaced: " + m->name);
    }
    co_return;
  }
  if (!opened.ok()) {
    // Absent is legal only if the create was never acknowledged or a
    // drop was at least issued.
    if (m->create_acked && !m->drop_issued) {
      st->Violation("acknowledged keyspace lost: " + m->name);
    }
    co_return;
  }
  client::KeyspaceHandle handle = *opened;

  auto stat = co_await handle.GetStat();
  if (!stat.ok()) {
    st->Violation("stat failed after recovery for " + m->name + ": " +
                  stat.status().message());
    co_return;
  }
  if (stat->state == "COMPACTING" || stat->state == "RECOMPACTING") {
    st->Violation("keyspace recovered in " + stat->state + " state: " +
                  m->name);
    co_return;
  }
  if (stat->state == "EMPTY") {
    if (!m->acked.empty()) {
      st->Violation("acked data lost, keyspace recovered EMPTY: " + m->name);
    }
    co_return;
  }
  if (stat->state == "WRITABLE") {
    // Power is back and no faults are armed: compaction must succeed.
    // A device-side failure rolls the keyspace back to WRITABLE without
    // failing the commands, so check the state it actually reached.
    Status s = co_await handle.Compact();
    if (s.ok()) s = co_await handle.WaitCompaction();
    if (!s.ok()) {
      st->Violation("post-recovery compaction failed for " + m->name + ": " +
                    s.message());
      co_return;
    }
    auto after = co_await handle.GetStat();
    if (after.ok() && after->state != "COMPACTED") {
      st->Violation("post-recovery compaction rolled back for " + m->name +
                    " (state " + after->state + ")");
      co_return;
    }
  }

  // Bounds carry delta slack: until the replayed delta is folded, an
  // overwrite double-counts and a tombstone does not subtract from the
  // run, so num_kvs may exceed the live-key count by up to one per
  // post-compaction mutation; unacked deletes relax the lower bound.
  auto stat2 = co_await handle.GetStat();
  if (stat2.ok()) {
    const std::uint64_t slack = m->UnackedDeletes();
    const std::uint64_t lower =
        m->acked.size() > slack ? m->acked.size() - slack : 0;
    const std::uint64_t upper = m->sent.size() + m->tombstones_sent.size() +
                                m->post_compact_mutations;
    if (stat2->num_kvs < lower || stat2->num_kvs > upper) {
      st->Violation("num_kvs=" + std::to_string(stat2->num_kvs) +
                    " outside [" + std::to_string(lower) + ", " +
                    std::to_string(upper) + "] for " + m->name);
    }
  }

  // Durability: every acknowledged key readable with its acked value —
  // or with a newer, unacknowledged overwrite that reached flash before
  // the cut. A key with an unacked DELETE in flight may be absent.
  int losses = 0;
  for (const auto& [key, value] : m->acked) {
    auto got = co_await handle.Get(key);
    if (!got.ok()) {
      if (got.status().IsNotFound() &&
          m->tombstones_sent.count(key) > 0) {
        continue;  // the unacked tombstone legally survived
      }
      st->Violation("acked key lost after recovery: " + key + " (" +
                    got.status().message() + ")");
    } else if (*got != value) {
      auto newer = m->unacked_values.find(key);
      if (newer != m->unacked_values.end() &&
          newer->second.count(*got) > 0) {
        continue;  // a newer unacked overwrite survived — legal
      }
      st->Violation("acked key has wrong value after recovery: " + key);
    } else {
      continue;
    }
    if (++losses >= 5) {
      st->Violation("... further key losses in " + m->name + " suppressed");
      break;
    }
  }

  // Acked deletes stay deleted (no later re-insert was issued for these
  // keys in this workload).
  for (const std::string& key : m->tombstones_acked) {
    if (m->sent.count(key) > 0) continue;
    auto got = co_await handle.Get(key);
    if (!got.status().IsNotFound()) {
      st->Violation("acked delete resurfaced after recovery: " + key);
      break;
    }
  }

  // Nothing invented: a full scan returns only keys the client sent,
  // each with the value it sent, and at least everything acknowledged.
  std::vector<std::pair<std::string, std::string>> all;
  Status s = co_await handle.Scan("", "\x7f", 0, &all);
  if (!s.ok()) {
    st->Violation("full scan failed after recovery for " + m->name + ": " +
                  s.message());
    co_return;
  }
  int phantoms = 0;
  for (const auto& [key, value] : all) {
    auto ever = m->values_ever.find(key);
    if (ever == m->values_ever.end()) {
      st->Violation("recovered key was never sent: " + key);
    } else if (ever->second.count(value) == 0) {
      st->Violation("recovered value was never sent for key: " + key);
    } else if (m->tombstones_acked.count(key) > 0 &&
               m->sent.count(key) == 0) {
      st->Violation("acked delete resurfaced in scan: " + key);
    } else {
      continue;
    }
    if (++phantoms >= 5) {
      st->Violation("... further scan mismatches in " + m->name +
                    " suppressed");
      break;
    }
  }
  if (all.size() + m->UnackedDeletes() < m->acked.size()) {
    st->Violation("scan returned " + std::to_string(all.size()) +
                  " keys, fewer than the " +
                  std::to_string(m->acked.size()) + " acked in " + m->name);
  }

  // The pushdown path walks the same run+delta state through a different
  // code path (select.cc); a device-counted unfiltered aggregate must agree
  // with the scan above exactly. Power is on here, so no crash can fire
  // mid-select.
  nvme::AggregateSpec count_spec;
  count_spec.func = nvme::AggregateFunc::kCount;
  auto agg_count = co_await handle.Aggregate("", "\x7f", count_spec);
  if (!agg_count.ok()) {
    st->Violation("count aggregate failed after recovery for " + m->name +
                  ": " + agg_count.status().message());
  } else if (agg_count->rows != all.size()) {
    st->Violation("count aggregate disagrees with scan in " + m->name +
                  ": aggregate=" + std::to_string(agg_count->rows) +
                  " scan=" + std::to_string(all.size()));
  }
}

sim::Task<void> VerifyBody(SweepState* st, sim::Simulation* sim,
                           device::Device* dev, client::Client* db) {
  const Tick start = sim->Now();
  Status recovered = co_await dev->Recover();
  st->report->recovery_ticks = sim->Now() - start;
  if (!recovered.ok()) {
    st->Violation("recovery failed: " + recovered.message());
    co_return;
  }

  CheckZoneAccounting(st, dev);
  for (const auto& [id, ks] : dev->keyspaces().all()) {
    if (ks->state == device::KeyspaceState::kCompacting ||
        ks->state == device::KeyspaceState::kRecompacting) {
      st->Violation("keyspace table holds a mid-compaction keyspace: " +
                    ks->name);
    }
  }

  for (KeyspaceModel& m : st->models) {
    co_await VerifyKeyspace(st, db, &m);
  }
}

sim::Task<void> RunVerify(SweepState* st, sim::Simulation* sim,
                          device::Device* dev, client::Client* db) {
  co_await VerifyBody(st, sim, dev, db);
  st->verify_done = true;
}

}  // namespace

Result<CrashSweepReport> RunCrashSweepCase(const CrashSweepConfig& config,
                                           std::uint64_t crash_at_hit) {
  if (config.keyspaces == 0) {
    return Status::InvalidArgument("crash sweep needs at least one keyspace");
  }

  sim::Simulation sim;
  sim::FaultInjector faults(config.seed);
  faults.set_torn_tail_keep(config.torn_tail_keep);
  if (crash_at_hit > 0) faults.ArmCrashAtHit(crash_at_hit);

  CrashSweepReport report;
  SweepState state;
  state.config = &config;
  state.faults = &faults;
  state.report = &report;
  state.models.resize(config.keyspaces);
  for (std::uint32_t i = 0; i < config.keyspaces; ++i) {
    state.models[i].name = "sweep" + std::to_string(i);
  }

  const device::DeviceConfig dcfg = config.DeviceConfigFor(&faults);
  nvme::QueueSet queue(&sim, nvme::PcieConfig{});
  auto dev = std::make_unique<device::Device>(&sim, dcfg, &queue);
  dev->Start();
  sim::CpuPool host_cpu(&sim, "host", 8);
  client::Client db(&queue, &host_cpu, hostenv::CostModel::Host());

  sim.Spawn(RunWorkload(&state, &db));
  sim.Run();
  if (!state.workload_done) {
    return Status::Aborted("crash-sweep workload never completed");
  }
  report.hits = faults.hits();
  report.fired = faults.crashed();
  report.crash_point = faults.crash_point();

  // Power cycle: a fresh device + queue over the surviving flash bytes.
  // The old device stays parked on its dead queue pair.
  nvme::QueueSet queue2(&sim, nvme::PcieConfig{});
  auto dev2 = device::Device::Restart(&sim, dcfg, &queue2, *dev);
  dev2->Start();
  client::Client db2(&queue2, &host_cpu, hostenv::CostModel::Host());

  sim.Spawn(RunVerify(&state, &sim, dev2.get(), &db2));
  sim.Run();
  if (!state.verify_done) {
    return Status::Aborted("crash-sweep verification never completed");
  }
  return report;
}

}  // namespace kvcsd::harness
