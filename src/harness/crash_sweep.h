// Crash-point sweep: the fault-injection harness for the device path.
//
// One sweep case runs a fixed client workload (creates, acknowledged
// syncs, a drop, with >2 keyspaces also a drop deferred behind a running
// compaction, a compaction, queries) against a small fault-injected
// device, crashes it at the k-th crash-point pass, power-cycles it
// (Device::Restart + Recover) and verifies the recovery invariants:
//
//   * no acknowledged data is lost — every key covered by a Sync that
//     returned OK is queryable with its exact value after recovery;
//   * nothing is invented — every recovered key was actually sent;
//   * an acknowledged drop stays dropped, an acknowledged create exists;
//   * no keyspace is left COMPACTING;
//   * zone accounting is consistent — reserved + cluster-owned + free
//     zones partition the device, and unowned zones are empty.
//
// Running the case for k = 1 .. total-hit-count (the dry run, k = 0,
// reports the count) exhaustively crashes the workload at every named
// crash point it passes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "kvcsd/device.h"
#include "sim/fault.h"

namespace kvcsd::harness {

struct CrashSweepConfig {
  std::uint32_t keyspaces = 2;
  std::uint32_t keys_per_keyspace = 240;
  std::uint32_t value_bytes = 24;
  // Fraction of the in-flight append surviving a power cut (torn tail).
  double torn_tail_keep = 0.5;
  std::uint64_t seed = 42;
  // Zone geometry. Shrinking zones makes the metadata zone wrap during
  // the workload, which is the only way to reach the ping-pong crash
  // points (meta.before_reset / meta.after_reset) in a sweep. Post-crash
  // verification compacts every surviving keyspace, so the pool must fit
  // keyspaces * 2 log clusters plus compaction scratch clusters
  // (2 TEMP + SORTED_VALUES + PIDX each) — two compactions can overlap
  // when the workload runs the deferred-drop leg (keyspaces > 2), and
  // the drop that frees two clusters may not have happened yet.
  std::uint64_t zone_bytes = KiB(256);
  std::uint32_t num_zones = 64;
  std::uint64_t write_buffer_bytes = KiB(2);

  // A deliberately small device so the workload exercises multi-cluster
  // logs and real compactions in milliseconds of wall time.
  device::DeviceConfig DeviceConfigFor(sim::FaultInjector* faults) const {
    device::DeviceConfig d;
    d.zns.zone_size = zone_bytes;
    d.zns.num_zones = num_zones;
    d.zns.nand.channels = 8;
    d.zns.faults = faults;
    d.dram_bytes = KiB(512);
    d.write_buffer_bytes = write_buffer_bytes;
    // Compaction output batches are single zone appends; keep them well
    // under the zone size or every compaction fails on tiny-zone sweeps.
    d.output_batch_bytes = std::min<std::uint64_t>(KiB(16), zone_bytes / 4);
    return d;
  }
};

struct CrashSweepReport {
  std::uint64_t hits = 0;   // crash-point passes during the workload phase
  bool fired = false;       // whether the armed crash actually triggered
  std::string crash_point;  // the point that fired (empty otherwise)
  Tick recovery_ticks = 0;  // simulated duration of Device::Recover()
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Runs one sweep case, crashing at the `crash_at_hit`-th crash-point pass
// (1-based; 0 = never crash — the dry run that measures `hits`). The
// device is always power-cycled and recovered afterwards, so the k = 0
// case also verifies clean-shutdown recovery. Returns an error only for
// harness-level failures; invariant breaches land in the report.
Result<CrashSweepReport> RunCrashSweepCase(const CrashSweepConfig& config,
                                           std::uint64_t crash_at_hit);

}  // namespace kvcsd::harness
