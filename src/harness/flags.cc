#include "harness/flags.h"

#include <string_view>

// GCC 12's -Wrestrict fires a known false positive (PR105651) on
// std::string construction from short string_views at -O2.
#pragma GCC diagnostic ignored "-Wrestrict"

namespace kvcsd::harness {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";  // boolean flag
    } else {
      values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    }
  }
}

}  // namespace kvcsd::harness
