// Minimal command-line flag parsing for bench binaries:
//   --keys=1000000 --threads=32 --full --scale=0.5
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace kvcsd::harness {

class Flags {
 public:
  Flags(int argc, char** argv);

  std::uint64_t GetUint(const std::string& name,
                        std::uint64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  bool GetBool(const std::string& name, bool fallback = false) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  // Every parsed flag, for embedding the run's arguments into reports.
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace kvcsd::harness
