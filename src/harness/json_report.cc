#include "harness/json_report.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <ctime>

#include "harness/flags.h"
#include "harness/report.h"

namespace kvcsd::harness {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

// Shortest round-trip rendering; the same double always prints the same
// bytes, independent of locale or printf quirks.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  out->append(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Str(std::string_view s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::string(s);
  return v;
}

JsonValue JsonValue::Uint(std::uint64_t u) {
  JsonValue v;
  v.kind_ = Kind::kUint;
  v.uint_ = u;
  return v;
}

JsonValue JsonValue::Num(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Push(JsonValue value) {
  assert(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

double JsonValue::number_value() const {
  switch (kind_) {
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

void JsonValue::AppendTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kUint:
      *out += std::to_string(uint_);
      break;
    case Kind::kDouble:
      AppendDouble(out, double_);
      break;
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& e : elements_) {
        if (!first) *out += ',';
        first = false;
        e.AppendTo(out);
      }
      *out += ']';
      break;
    }
    case Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) *out += ',';
        first = false;
        AppendEscaped(out, k);
        *out += ':';
        v.AppendTo(out);
      }
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::ToString() const {
  std::string out;
  AppendTo(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view in;
  std::size_t pos = 0;

  void SkipWs() {
    while (pos < in.size() &&
           std::isspace(static_cast<unsigned char>(in[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < in.size() && in[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos) + ": " + what);
  }

  Result<JsonValue> Value() {
    SkipWs();
    if (pos >= in.size()) return Error("unexpected end of input");
    const char c = in[pos];
    if (c == '{') return ObjectValue();
    if (c == '[') return ArrayValue();
    if (c == '"') return StringValue();
    if (in.compare(pos, 4, "true") == 0) {
      pos += 4;
      return JsonValue::Bool(true);
    }
    if (in.compare(pos, 5, "false") == 0) {
      pos += 5;
      return JsonValue::Bool(false);
    }
    if (in.compare(pos, 4, "null") == 0) {
      pos += 4;
      return JsonValue();
    }
    return NumberValue();
  }

  Result<JsonValue> ObjectValue() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return out;
    for (;;) {
      auto key = StringValue();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      auto value = Value();
      if (!value.ok()) return value.status();
      out.Set(key->string_value(), std::move(*value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ArrayValue() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return out;
    for (;;) {
      auto value = Value();
      if (!value.ok()) return value.status();
      out.Push(std::move(*value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> StringValue() {
    SkipWs();
    if (pos >= in.size() || in[pos] != '"') return Error("expected string");
    ++pos;
    std::string out;
    while (pos < in.size() && in[pos] != '"') {
      char c = in[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= in.size()) return Error("truncated escape");
      const char e = in[pos++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos + 4 > in.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          auto [ptr, ec] = std::from_chars(in.data() + pos,
                                           in.data() + pos + 4, code, 16);
          if (ec != std::errc() || ptr != in.data() + pos + 4) {
            return Error("bad \\u escape");
          }
          pos += 4;
          if (code >= 0x80) {
            // Reports only carry ASCII + escaped control characters.
            return Error("non-ASCII \\u escape unsupported");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    if (pos >= in.size()) return Error("unterminated string");
    ++pos;  // closing quote
    return JsonValue::Str(out);
  }

  Result<JsonValue> NumberValue() {
    const std::size_t start = pos;
    if (pos < in.size() && (in[pos] == '-' || in[pos] == '+')) ++pos;
    bool fractional = false;
    while (pos < in.size()) {
      const char c = in[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        fractional = true;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) return Error("expected number");
    const std::string_view text = in.substr(start, pos - start);
    const char* first = text.data();
    const char* last = text.data() + text.size();
    if (!fractional && text[0] != '-') {
      std::uint64_t u = 0;
      auto [ptr, ec] = std::from_chars(first, last, u);
      if (ec == std::errc() && ptr == last) return JsonValue::Uint(u);
    }
    double d = 0.0;
    auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) return Error("bad number");
    return JsonValue::Num(d);
  }
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  Parser p{text};
  auto value = p.Value();
  if (!value.ok()) return value.status();
  p.SkipWs();
  if (p.pos != text.size()) return p.Error("trailing bytes after document");
  return value;
}

// ---------------------------------------------------------------------------
// JsonReporter
// ---------------------------------------------------------------------------

JsonReporter::JsonReporter(std::string bench, const Flags& flags)
    : bench_(std::move(bench)), json_path_(flags.GetString("json", "")) {
  for (const auto& [name, value] : flags.values()) {
    // Output destinations are not workload parameters; keeping them out of
    // "args" lets the regression checker compare runs that differ only in
    // where they dump their observability files.
    if (name == "json" || name == "trace" || name == "telemetry" ||
        name == "telemetry_interval_us") {
      continue;
    }
    args_.Set(name, JsonValue::Str(value));
  }
}

void JsonReporter::AddMetric(const std::string& name, std::uint64_t value) {
  metrics_.Set(name, JsonValue::Uint(value));
}

void JsonReporter::AddMetric(const std::string& name, double value) {
  metrics_.Set(name, JsonValue::Num(value));
}

void JsonReporter::AddHistogram(const std::string& name,
                                const sim::Histogram& h) {
  const sim::HistogramSummary s = h.Summary();
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue::Uint(s.count));
  out.Set("mean", JsonValue::Num(s.mean));
  out.Set("min", JsonValue::Uint(s.min));
  out.Set("max", JsonValue::Uint(s.max));
  out.Set("p50", JsonValue::Num(s.p50));
  out.Set("p95", JsonValue::Num(s.p95));
  out.Set("p99", JsonValue::Num(s.p99));
  out.Set("p999", JsonValue::Num(s.p999));
  histograms_.Set(name, std::move(out));
}

void JsonReporter::AddStats(const sim::Stats& stats, std::string_view prefix) {
  for (const auto& [name, counter] : stats.counters()) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    counters_.Set(name, JsonValue::Uint(counter.value()));
  }
  for (const auto& [name, histogram] : stats.histograms()) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    AddHistogram(name, histogram);
  }
}

void JsonReporter::AddCompactionStats(const device::CompactionStats& stats) {
  compaction_.Set("bytes_read", JsonValue::Uint(stats.bytes_read));
  compaction_.Set("bytes_written", JsonValue::Uint(stats.bytes_written));
  compaction_.Set("runs_spilled", JsonValue::Uint(stats.runs_spilled));
  compaction_.Set("max_merge_fanin", JsonValue::Uint(stats.max_merge_fanin));
  compaction_.Set("phase1_ticks", JsonValue::Uint(stats.phase1_ticks));
  compaction_.Set("phase2_ticks", JsonValue::Uint(stats.phase2_ticks));
}

void JsonReporter::AddTable(const Table& table) {
  JsonValue out = JsonValue::Object();
  out.Set("title", JsonValue::Str(table.title()));
  JsonValue columns = JsonValue::Array();
  for (const std::string& c : table.columns()) columns.Push(JsonValue::Str(c));
  out.Set("columns", std::move(columns));
  JsonValue rows = JsonValue::Array();
  for (const auto& row : table.rows()) {
    JsonValue cells = JsonValue::Array();
    for (const std::string& cell : row) cells.Push(JsonValue::Str(cell));
    rows.Push(std::move(cells));
  }
  out.Set("rows", std::move(rows));
  tables_.Push(std::move(out));
}

std::string JsonReporter::ToJson(bool include_wall_clock) const {
  JsonValue root = JsonValue::Object();
  root.Set("schema_version", JsonValue::Uint(kSchemaVersion));
  root.Set("bench", JsonValue::Str(bench_));
  if (include_wall_clock) {
    root.Set("wall_clock_unix",
             JsonValue::Uint(static_cast<std::uint64_t>(std::time(nullptr))));
  }
  root.Set("args", args_);
  root.Set("metrics", metrics_);
  root.Set("counters", counters_);
  root.Set("histograms", histograms_);
  root.Set("compaction", compaction_);
  root.Set("tables", tables_);
  std::string out = root.ToString();
  out += '\n';
  return out;
}

Status JsonReporter::WriteFile(const std::string& path,
                               bool include_wall_clock) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open report file: " + path);
  }
  const std::string json = ToJson(include_wall_clock);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return Status::IoError("short write to report file: " + path);
  }
  return Status::Ok();
}

bool JsonReporter::WriteIfRequested() const {
  if (json_path_.empty()) return false;
  Status s = WriteFile(json_path_);
  if (s.ok()) {
    std::printf("JSON report written to %s\n", json_path_.c_str());
  } else {
    std::printf("FAILED to write JSON report: %s\n", s.ToString().c_str());
  }
  return s.ok();
}

}  // namespace kvcsd::harness
