// Machine-readable bench reports.
//
// Every bench_* binary accepts --json=<path> and writes a schema-versioned
// JSON report next to its human-readable tables: throughput metrics,
// latency percentiles pulled from the sim::Stats histograms, compaction
// counters, and the rendered tables themselves. CI consumes these with
// tools/check_bench_regression.py to gate performance regressions against
// checked-in baselines.
//
// Serialization is deterministic by construction — object keys keep
// insertion order, doubles print via std::to_chars shortest round-trip —
// so two runs of the same deterministic simulation produce byte-identical
// reports apart from the "wall_clock_unix" field (which ToJson can omit;
// the determinism test and the regression checker both ignore it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "kvcsd/device.h"
#include "sim/stats.h"

namespace kvcsd::harness {

class Flags;
class Table;

// A JSON document node. Objects preserve key insertion order; Set on an
// existing key overwrites in place (order unchanged).
class JsonValue {
 public:
  JsonValue() = default;  // null

  static JsonValue Object();
  static JsonValue Array();
  static JsonValue Str(std::string_view s);
  static JsonValue Uint(std::uint64_t v);
  static JsonValue Num(double v);
  static JsonValue Bool(bool v);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Object member access (asserts this is an object).
  JsonValue& Set(std::string_view key, JsonValue value);
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Array element access (asserts this is an array).
  JsonValue& Push(JsonValue value);
  const std::vector<JsonValue>& elements() const { return elements_; }

  std::string_view string_value() const { return string_; }
  double number_value() const;
  std::uint64_t uint_value() const { return uint_; }

  void AppendTo(std::string* out) const;
  std::string ToString() const;

 private:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses a JSON document produced by JsonValue/JsonReporter (objects,
// arrays, strings, numbers, bools, null). Used by the schema round-trip
// test; the CI checker parses with Python instead.
Result<JsonValue> ParseJson(std::string_view text);

// Collects one bench run's results and writes the report. Typical use:
//
//   Flags flags(argc, argv);
//   JsonReporter report("fig7_put_scaling", flags);
//   report.AddMetric("csd.put.cores4.keys_per_sec", rate);
//   report.AddStats(bed.sim().stats(), "client.cmd.");
//   report.AddTable(time_table);
//   report.WriteIfRequested();  // honours --json=<path>
class JsonReporter {
 public:
  static constexpr int kSchemaVersion = 1;

  // Captures the bench name, the parsed flags as the report's "args"
  // (minus the output-path flags "json" and "trace", which differ between
  // otherwise identical runs), and the --json path for WriteIfRequested.
  JsonReporter(std::string bench, const Flags& flags);

  void AddMetric(const std::string& name, std::uint64_t value);
  void AddMetric(const std::string& name, double value);

  // One histogram as {count, mean, min, max, p50, p95, p99} under
  // "histograms".<name>.
  void AddHistogram(const std::string& name, const sim::Histogram& h);

  // Every counter and histogram in the registry whose name starts with
  // `prefix` (empty = all): counters under "counters", histograms via
  // AddHistogram.
  void AddStats(const sim::Stats& stats, std::string_view prefix = {});

  // The device's cumulative compaction counters under "compaction".
  void AddCompactionStats(const device::CompactionStats& stats);

  // A rendered table as {title, columns, rows} under "tables".
  void AddTable(const Table& table);

  // The full report. With include_wall_clock the report carries the
  // "wall_clock_unix" stamp; without it the output is a pure function of
  // the simulated run.
  std::string ToJson(bool include_wall_clock = true) const;

  Status WriteFile(const std::string& path,
                   bool include_wall_clock = true) const;

  // Writes to the --json path when one was given; reports success or
  // failure on stdout. Returns false when --json was absent.
  bool WriteIfRequested() const;

  const std::string& json_path() const { return json_path_; }

 private:
  std::string bench_;
  std::string json_path_;
  JsonValue args_ = JsonValue::Object();
  JsonValue metrics_ = JsonValue::Object();
  JsonValue counters_ = JsonValue::Object();
  JsonValue histograms_ = JsonValue::Object();
  JsonValue compaction_ = JsonValue::Object();
  JsonValue tables_ = JsonValue::Array();
};

}  // namespace kvcsd::harness
