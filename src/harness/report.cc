#include "harness/report.h"

#include <algorithm>
#include <cstdio>

namespace kvcsd::harness {

std::string FormatSeconds(Tick ticks) {
  char buf[64];
  const double s = TicksToSeconds(ticks);
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

std::string FormatBytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= GiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(GiB(1)));
  } else if (bytes >= MiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / static_cast<double>(MiB(1)));
  } else if (bytes >= KiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / static_cast<double>(KiB(1)));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
  return buf;
}

std::string FormatCount(std::uint64_t n) {
  char buf[32];
  if (n >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fB", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
  }
  return buf;
}

void PrintCompactionStats(const std::string& title,
                          const device::CompactionStats& stats) {
  Table table(title, {"counter", "value"});
  table.AddRow({"flash bytes read", FormatBytes(stats.bytes_read)});
  table.AddRow({"flash bytes written", FormatBytes(stats.bytes_written)});
  table.AddRow({"runs spilled", FormatCount(stats.runs_spilled)});
  table.AddRow({"max merge fan-in", FormatCount(stats.max_merge_fanin)});
  table.AddRow({"phase-1 (run generation)", FormatSeconds(stats.phase1_ticks)});
  table.AddRow({"phase-2 (merge + index)", FormatSeconds(stats.phase2_ticks)});
  table.Print();
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace kvcsd::harness
