// Bench output helpers: fixed-width tables mirroring the paper's figures,
// plus unit formatting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "kvcsd/device.h"

namespace kvcsd::harness {

std::string FormatSeconds(Tick ticks);          // "12.34 s" / "56.7 ms"
std::string FormatBytes(std::uint64_t bytes);   // "1.5 GiB"
std::string FormatRatio(double ratio);          // "4.2x"
std::string FormatCount(std::uint64_t n);       // "32M" / "1.0B"

// Renders the device's cumulative compaction counters (device.h) as a
// two-column table, e.g. after a bench's compaction phase.
void PrintCompactionStats(const std::string& title,
                          const device::CompactionStats& stats);

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  // Renders with column auto-sizing to stdout.
  void Print() const;

  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kvcsd::harness
