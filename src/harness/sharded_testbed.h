// Multi-device testbed: N independent KV-CSDs behind one shard router,
// all on one shared simulation.
//
// Each shard gets the full single-device stack — its own ZNS SSD + SoC
// (Device), its own PCIe link and SQ/CQ set (QueueSet), and its own
// async client with a private admission window — so shards contend for
// nothing but host CPU. Per-shard series are kept separable by prefixing
// ("shard0." on device stats/tracks and queue resources, "client.shard0."
// on client latency series); the fleet-level router series live under
// "router.". DESIGN.md §15 describes the scaling model this assembles.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client.h"
#include "harness/testbed.h"
#include "harness/tracing.h"
#include "kvcsd/device.h"
#include "nvme/queue.h"
#include "router/sharded_client.h"
#include "sim/simulation.h"

namespace kvcsd::harness {

struct ShardedTestbedConfig {
  // Per-shard hardware; reused for every shard. Scale the DATASET with
  // shard count, not this config: the point of the sweep is fixed
  // per-device hardware.
  TestbedConfig shard = TestbedConfig::Scaled();
  std::uint32_t num_shards = 4;
  router::ShardedClientConfig router;
};

class ShardedTestbed {
 public:
  explicit ShardedTestbed(const ShardedTestbedConfig& config,
                          std::unique_ptr<router::Partitioner> partitioner =
                              std::make_unique<router::HashPartitioner>())
      : config_(WithProcessFlightFlags(config)),
        host_cpu_(&sim_, "host", config_.shard.host_cores) {
    shards_.reserve(config_.num_shards);
    std::vector<client::Client*> clients;
    clients.reserve(config_.num_shards);
    for (std::uint32_t i = 0; i < config_.num_shards; ++i) {
      const std::string prefix = "shard" + std::to_string(i) + ".";
      auto shard = std::make_unique<Shard>();
      nvme::QueueSetConfig queues = config_.shard.queues;
      queues.name_prefix = prefix;
      shard->queue = std::make_unique<nvme::QueueSet>(&sim_, queues);
      device::DeviceConfig dev = config_.shard.device;
      dev.stats_prefix = prefix;
      shard->device = std::make_unique<device::Device>(&sim_, dev,
                                                       shard->queue.get());
      client::ClientConfig cc;
      cc.stats_prefix = "client." + prefix;
      shard->client = std::make_unique<client::Client>(
          shard->queue.get(), &host_cpu_, config_.shard.host_costs, cc);
      clients.push_back(shard->client.get());
      shards_.push_back(std::move(shard));
    }
    router_ = std::make_unique<router::ShardedClient>(
        &sim_, std::move(clients), std::move(partitioner), config_.router);
    TraceRequest::EnableOn(&sim_);
    TelemetryRequest::EnableOn(&sim_);
    for (auto& shard : shards_) shard->device->Start();
  }
  ~ShardedTestbed() {
    TraceRequest::Dump(&sim_);
    TelemetryRequest::Dump(&sim_);
  }
  ShardedTestbed(const ShardedTestbed&) = delete;
  ShardedTestbed& operator=(const ShardedTestbed&) = delete;

  sim::Simulation& sim() { return sim_; }
  router::ShardedClient& router() { return *router_; }
  std::uint32_t num_shards() const { return config_.num_shards; }
  client::Client& client(std::uint32_t i) { return *shards_[i]->client; }
  device::Device& dev(std::uint32_t i) { return *shards_[i]->device; }
  nvme::QueueSet& queue(std::uint32_t i) { return *shards_[i]->queue; }
  sim::CpuPool& host_cpu() { return host_cpu_; }

 private:
  struct Shard {
    std::unique_ptr<nvme::QueueSet> queue;
    std::unique_ptr<device::Device> device;
    std::unique_ptr<client::Client> client;
  };

  static ShardedTestbedConfig WithProcessFlightFlags(
      ShardedTestbedConfig config) {
    FlightRequest::Configure(&config.shard.device.flight);
    return config;
  }

  ShardedTestbedConfig config_;
  sim::Simulation sim_;
  sim::CpuPool host_cpu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<router::ShardedClient> router_;
};

}  // namespace kvcsd::harness
