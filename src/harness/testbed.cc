#include "harness/testbed.h"

#include <cstdio>

#include "harness/report.h"

namespace kvcsd::harness {

std::string TestbedConfig::Describe() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "Testbed (paper Table I, scaled):\n"
      "  Host   : %u cores, page cache %s, block cache %s, "
      "conventional SSD %u ch\n"
      "  KV-CSD : %u ARM cores, %s SoC DRAM, ZNS %u zones x %s (%u ch), "
      "write buffer %s\n"
      "  PCIe   : %.1f GB/s, %s request latency, %u SQ/CQ pair(s)\n",
      host_cores, FormatBytes(page_cache_bytes).c_str(),
      FormatBytes(block_cache_bytes).c_str(), host_ssd.nand.channels,
      device.soc_cores, FormatBytes(device.dram_bytes).c_str(),
      device.zns.num_zones, FormatBytes(device.zns.zone_size).c_str(),
      device.zns.nand.channels,
      FormatBytes(device.write_buffer_bytes).c_str(),
      queues.pcie.bytes_per_sec / 1e9,
      FormatSeconds(queues.pcie.request_latency).c_str(),
      queues.num_queues);
  return buf;
}

}  // namespace kvcsd::harness
