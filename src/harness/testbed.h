// Experiment testbeds: one-stop assembly of the two systems under test,
// dimensioned after the paper's Table I.
//
//   Host:   32× AMD EPYC cores, 512 GB DRAM (page cache scaled), Ubuntu —
//           runs RocksLite (the RocksDB stand-in) over ext4-ish Fs on a
//           conventional NVMe SSD.
//   KV-CSD: 4× ARM Cortex-A53 + 8 GB DRAM SoC over a 15 TB NVMe ZNS SSD,
//           PCIe Gen3 ×16 to the host.
//
// Benchmarks typically scale the dataset down (--keys) while keeping the
// hardware ratios fixed; DESIGN.md §5 explains why the comparison shapes
// are scale-invariant.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "client/client.h"
#include "harness/tracing.h"
#include "hostenv/fs.h"
#include "kvcsd/device.h"
#include "lsm/db.h"
#include "nvme/queue.h"
#include "sim/simulation.h"
#include "vpic/vpic.h"

namespace kvcsd::harness {

struct TestbedConfig {
  // --- host (Table I, left column) ---
  std::uint32_t host_cores = 32;
  std::uint64_t page_cache_bytes = GiB(8);   // OS page cache budget
  std::uint64_t block_cache_bytes = MiB(512);  // RocksDB block cache
  hostenv::CostModel host_costs = hostenv::CostModel::Host();
  storage::BlockSsdConfig host_ssd;

  // --- KV-CSD (Table I, right column) ---
  device::DeviceConfig device;
  // PCIe link plus SQ/CQ topology: queues.num_queues pairs (default 1),
  // queues.sq_depth_cap per-queue depth, queues.arbitration policy.
  nvme::QueueSetConfig queues;

  // --- RocksLite instance defaults ---
  lsm::DbOptions db_options;

  // Scaled default: zone sizes and DRAM shrunk so multi-GiB experiments
  // are unnecessary; ratios (SoC:host core speed, PCIe:NAND bandwidth)
  // stay at Table I values.
  static TestbedConfig Scaled() {
    TestbedConfig c;
    c.device.zns.zone_size = MiB(8);
    c.device.zns.num_zones = 8192;       // 64 GiB virtual ZNS capacity
    c.device.zns.nand.channels = 16;
    c.device.dram_bytes = MiB(256);      // SoC DRAM (scaled from 8 GB)
    c.host_ssd.nand.channels = 16;
    // A deeper tree at scaled data sizes keeps the compaction burden per
    // byte comparable to the paper's full-size runs.
    c.db_options.memtable_size = MiB(4);
    c.db_options.level_base_size = MiB(16);
    c.db_options.max_file_size = MiB(4);
    return c;
  }

  // Human-readable header for bench output (stands in for Table I).
  std::string Describe() const;

  // Scales the RocksLite tree to the per-instance dataset size so that a
  // scaled-down run exercises the same relative flush/compaction burden as
  // the paper's full-size datasets (roughly a dozen memtables of data, a
  // multi-level tree).
  void ScaleLsmTreeTo(std::uint64_t bytes_per_instance) {
    std::uint64_t memtable = bytes_per_instance / 12;
    memtable = std::max<std::uint64_t>(memtable, KiB(128));
    memtable = std::min<std::uint64_t>(memtable, MiB(64));
    db_options.memtable_size = memtable;
    db_options.level_base_size = 4 * memtable;
    db_options.max_file_size = memtable;
  }
};

// The KV-CSD system under test: device + client on a shared simulation.
class CsdTestbed {
 public:
  explicit CsdTestbed(const TestbedConfig& config,
                      std::uint32_t host_cores_override = 0)
      : config_(WithProcessFlightFlags(config)),
        queue_(&sim_, config_.queues),
        device_(&sim_, config_.device, &queue_),
        host_cpu_(&sim_, "host",
                  host_cores_override ? host_cores_override
                                      : config_.host_cores),
        client_(&queue_, &host_cpu_, config_.host_costs) {
    TraceRequest::EnableOn(&sim_);
    TelemetryRequest::EnableOn(&sim_);
    device_.Start();
  }
  ~CsdTestbed() {
    HealthRequest::Dump(&device_);
    TraceRequest::Dump(&sim_);
    TelemetryRequest::Dump(&sim_);
  }
  CsdTestbed(const CsdTestbed&) = delete;
  CsdTestbed& operator=(const CsdTestbed&) = delete;

  sim::Simulation& sim() { return sim_; }
  client::Client& client() { return client_; }
  device::Device& dev() { return device_; }
  nvme::QueueSet& queue() { return queue_; }
  sim::CpuPool& host_cpu() { return host_cpu_; }

 private:
  // Overlays the process-wide --flight_* flags onto this testbed's device
  // config before the device is constructed.
  static TestbedConfig WithProcessFlightFlags(TestbedConfig config) {
    FlightRequest::Configure(&config.device.flight);
    return config;
  }

  TestbedConfig config_;
  sim::Simulation sim_;
  nvme::QueueSet queue_;
  device::Device device_;
  sim::CpuPool host_cpu_;
  client::Client client_;
};

// The software-baseline system under test: RocksLite on ext4-ish Fs.
class LsmTestbed {
 public:
  explicit LsmTestbed(const TestbedConfig& config,
                      std::uint32_t host_cores_override = 0)
      : config_(config),
        host_cpu_(&sim_, "host",
                  host_cores_override ? host_cores_override
                                      : config.host_cores),
        ssd_(&sim_, config.host_ssd),
        page_cache_(config.page_cache_bytes),
        fs_(&sim_, &host_cpu_, &ssd_, &page_cache_, config.host_costs),
        env_{&sim_, &fs_, &host_cpu_, config.host_costs, &sim_.stats()},
        block_cache_(config.block_cache_bytes) {
    TraceRequest::EnableOn(&sim_);
    TelemetryRequest::EnableOn(&sim_);
  }
  ~LsmTestbed() {
    TraceRequest::Dump(&sim_);
    TelemetryRequest::Dump(&sim_);
  }
  LsmTestbed(const LsmTestbed&) = delete;
  LsmTestbed& operator=(const LsmTestbed&) = delete;

  // Opens one RocksLite instance named `name` in the given mode.
  sim::Task<Result<std::unique_ptr<lsm::Db>>> OpenDb(
      const std::string& name, lsm::CompactionMode mode) {
    lsm::DbOptions options = config_.db_options;
    options.name = name;
    options.compaction_mode = mode;
    return lsm::Db::Open(&env_, &block_cache_, options);
  }

  sim::Simulation& sim() { return sim_; }
  hostenv::Fs& fs() { return fs_; }
  hostenv::PageCache& page_cache() { return page_cache_; }
  lsm::BlockCache& block_cache() { return block_cache_; }
  storage::BlockSsd& ssd() { return ssd_; }
  sim::CpuPool& host_cpu() { return host_cpu_; }
  lsm::LsmEnv& env() { return env_; }

 private:
  TestbedConfig config_;
  sim::Simulation sim_;
  sim::CpuPool host_cpu_;
  storage::BlockSsd ssd_;
  hostenv::PageCache page_cache_;
  hostenv::Fs fs_;
  lsm::LsmEnv env_;
  lsm::BlockCache block_cache_;
};

}  // namespace kvcsd::harness
