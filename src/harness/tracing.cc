#include "harness/tracing.h"

#include <cstdio>

namespace kvcsd::harness {

namespace {
std::string g_trace_path;        // NOLINT: process-wide bench config
unsigned g_dumps = 0;            // NOLINT
}  // namespace

void TraceRequest::Set(std::string path) {
  g_trace_path = std::move(path);
  g_dumps = 0;
}

bool TraceRequest::active() { return !g_trace_path.empty(); }

void TraceRequest::EnableOn(sim::Simulation* sim) {
  if (active()) sim->tracer().Enable();
}

void TraceRequest::Dump(sim::Simulation* sim) {
  if (!active() || !sim->tracer().enabled()) return;
  if (sim->tracer().size() == 0) return;
  std::string path = g_trace_path;
  if (g_dumps > 0) path += "." + std::to_string(g_dumps);
  ++g_dumps;
  Status s = sim->tracer().WriteFile(path);
  if (s.ok()) {
    std::printf("trace written to %s (%zu events", path.c_str(),
                sim->tracer().size());
    if (sim->tracer().dropped() > 0) {
      std::printf(", %llu dropped",
                  static_cast<unsigned long long>(sim->tracer().dropped()));
    }
    std::printf(")\n");
  } else {
    std::printf("FAILED to write trace: %s\n", s.ToString().c_str());
  }
}

}  // namespace kvcsd::harness
