#include "harness/tracing.h"

#include <cstdio>
#include <fstream>

#include "kvcsd/device.h"
#include "kvcsd/flight_recorder.h"

namespace kvcsd::harness {

namespace {
std::string g_trace_path;            // NOLINT: process-wide bench config
unsigned g_dumps = 0;                // NOLINT
std::string g_telemetry_path;        // NOLINT
Tick g_telemetry_interval = 0;       // NOLINT
unsigned g_telemetry_dumps = 0;      // NOLINT
std::string g_health_path;           // NOLINT
unsigned g_health_dumps = 0;         // NOLINT
std::string g_flight_dump_path;      // NOLINT
Tick g_flight_slo_exec_ns = 0;       // NOLINT
bool g_flight_dump_on_busy = false;  // NOLINT
}  // namespace

void TraceRequest::Set(std::string path) {
  g_trace_path = std::move(path);
  g_dumps = 0;
}

bool TraceRequest::active() { return !g_trace_path.empty(); }

void TraceRequest::EnableOn(sim::Simulation* sim) {
  if (active()) sim->tracer().Enable();
}

void TraceRequest::Dump(sim::Simulation* sim) {
  if (!active() || !sim->tracer().enabled()) return;
  if (sim->tracer().size() == 0) return;
  std::string path = g_trace_path;
  if (g_dumps > 0) path += "." + std::to_string(g_dumps);
  ++g_dumps;
  Status s = sim->tracer().WriteFile(path);
  if (s.ok()) {
    std::printf("trace written to %s (%zu events", path.c_str(),
                sim->tracer().size());
    if (sim->tracer().dropped() > 0) {
      std::printf(", %llu dropped",
                  static_cast<unsigned long long>(sim->tracer().dropped()));
    }
    std::printf(")\n");
  } else {
    std::printf("FAILED to write trace: %s\n", s.ToString().c_str());
  }
}

void TelemetryRequest::Set(std::string path, Tick interval) {
  g_telemetry_path = std::move(path);
  g_telemetry_interval = interval;
  g_telemetry_dumps = 0;
}

bool TelemetryRequest::active() { return !g_telemetry_path.empty(); }

void TelemetryRequest::EnableOn(sim::Simulation* sim) {
  if (active()) sim->telemetry().Enable(g_telemetry_interval);
}

void TelemetryRequest::Dump(sim::Simulation* sim) {
  if (!active() || !sim->telemetry().enabled()) return;
  if (sim->telemetry().size() == 0) return;
  std::string path = g_telemetry_path;
  if (g_telemetry_dumps > 0) path += "." + std::to_string(g_telemetry_dumps);
  ++g_telemetry_dumps;
  Status s = sim->telemetry().WriteFile(path);
  if (s.ok()) {
    std::printf("telemetry written to %s (%zu samples", path.c_str(),
                sim->telemetry().size());
    if (sim->telemetry().dropped() > 0) {
      std::printf(", %llu dropped",
                  static_cast<unsigned long long>(sim->telemetry().dropped()));
    }
    std::printf(")\n");
  } else {
    std::printf("FAILED to write telemetry: %s\n", s.ToString().c_str());
  }
}

void HealthRequest::Set(std::string path) {
  g_health_path = std::move(path);
  g_health_dumps = 0;
}

bool HealthRequest::active() { return !g_health_path.empty(); }

void HealthRequest::Dump(device::Device* device) {
  if (!active()) return;
  std::string path = g_health_path;
  if (g_health_dumps > 0) path += "." + std::to_string(g_health_dumps);
  ++g_health_dumps;
  std::ofstream out(path);
  if (!out) {
    std::printf("FAILED to write health page: %s\n", path.c_str());
    return;
  }
  out << device->HealthJson();
  std::printf("health page written to %s\n", path.c_str());
}

void FlightRequest::Set(std::string dump_path, Tick slo_exec_ns,
                        bool dump_on_busy) {
  g_flight_dump_path = std::move(dump_path);
  g_flight_slo_exec_ns = slo_exec_ns;
  g_flight_dump_on_busy = dump_on_busy;
}

void FlightRequest::Configure(device::FlightRecorderConfig* config) {
  if (!g_flight_dump_path.empty()) config->dump_path = g_flight_dump_path;
  if (g_flight_slo_exec_ns != 0) config->slo_exec_ns = g_flight_slo_exec_ns;
  if (g_flight_dump_on_busy) config->dump_on_busy = true;
}

void ApplyObservabilityFlags(const Flags& flags) {
  TraceRequest::Set(flags.GetString("trace", ""));
  TelemetryRequest::Set(
      flags.GetString("telemetry", ""),
      Microseconds(flags.GetUint("telemetry_interval_us", 1000)));
  HealthRequest::Set(flags.GetString("health", ""));
  FlightRequest::Set(flags.GetString("flight_dump", ""),
                     Microseconds(flags.GetUint("flight_slo_us", 0)),
                     flags.GetBool("flight_busy", false));
}

}  // namespace kvcsd::harness
