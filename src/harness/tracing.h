// Process-wide observability requests for bench binaries.
//
// Benches pass --trace=<path> / --telemetry=<path>; main() forwards both
// here once via ApplyObservabilityFlags. Every simulation the harness
// testbeds construct afterwards records span events (sim/tracer.h) and
// gauge time-series (sim/telemetry.h), and each testbed dumps its
// simulation's outputs when it is destroyed: the first dump writes
// <path>, subsequent ones <path>.1, <path>.2, ... (benches that sweep a
// parameter build one testbed per point). Empty dumps are skipped. Load
// trace files in chrome://tracing or https://ui.perfetto.dev; feed both
// files to tools/analyze_trace.py for the latency breakdown.
#pragma once

#include <string>

#include "harness/flags.h"
#include "sim/simulation.h"

namespace kvcsd::device {
class Device;
struct FlightRecorderConfig;
}  // namespace kvcsd::device

namespace kvcsd::harness {

class TraceRequest {
 public:
  // Empty path = tracing stays off (the default).
  static void Set(std::string path);
  static bool active();

  // Called by testbed constructors: turns the sim's tracer on when a
  // trace was requested.
  static void EnableOn(sim::Simulation* sim);

  // Called by testbed destructors: writes the sim's trace file (if
  // tracing is active and the sim recorded any events).
  static void Dump(sim::Simulation* sim);
};

class TelemetryRequest {
 public:
  // Empty path = telemetry stays off. `interval` is the simulated-time
  // sampling cadence.
  static void Set(std::string path, Tick interval = Microseconds(1000));
  static bool active();

  static void EnableOn(sim::Simulation* sim);
  static void Dump(sim::Simulation* sim);
};

// --health=<path>: each CsdTestbed dumps its device's health page (the
// same gauges a wire-level GetHealth() pull returns) as JSON when it is
// destroyed — <path>, then <path>.1, <path>.2, ... like the trace dumps.
class HealthRequest {
 public:
  static void Set(std::string path);
  static bool active();
  static void Dump(device::Device* device);
};

// --flight_dump=<path> / --flight_slo_us=<n> / --flight_busy: process-wide
// flight-recorder overrides, overlaid onto every CsdTestbed's device
// config (DESIGN.md §14). Unset flags leave the bench's own settings.
class FlightRequest {
 public:
  static void Set(std::string dump_path, Tick slo_exec_ns, bool dump_on_busy);
  static void Configure(device::FlightRecorderConfig* config);
};

// One-stop bench wiring: forwards --trace=<path>, --telemetry=<path>,
// --telemetry_interval_us=<n>, --health=<path>, and the --flight_* flags
// to the requests above. Every bench main calls this right after parsing
// flags.
void ApplyObservabilityFlags(const Flags& flags);

}  // namespace kvcsd::harness
