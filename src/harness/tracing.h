// Process-wide trace request for bench binaries.
//
// Benches pass --trace=<path>; main() forwards it here once. Every
// simulation the harness testbeds construct afterwards records span events
// (sim/tracer.h), and each testbed dumps its simulation's trace when it is
// destroyed: the first dump writes <path>, subsequent ones <path>.1,
// <path>.2, ... (benches that sweep a parameter build one testbed per
// point). Traces with no events are skipped. Load the files in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <string>

#include "sim/simulation.h"

namespace kvcsd::harness {

class TraceRequest {
 public:
  // Empty path = tracing stays off (the default).
  static void Set(std::string path);
  static bool active();

  // Called by testbed constructors: turns the sim's tracer on when a
  // trace was requested.
  static void EnableOn(sim::Simulation* sim);

  // Called by testbed destructors: writes the sim's trace file (if
  // tracing is active and the sim recorded any events).
  static void Dump(sim::Simulation* sim);
};

}  // namespace kvcsd::harness
