#include "harness/workloads.h"

#include <cstdio>
#include <string>

#include "common/keys.h"
#include "common/random.h"
#include "sim/sync.h"

namespace kvcsd::harness {

namespace {

// Deterministic per-thread key stream: random 8 B ids widened to
// `key_bytes` (duplicates across threads are possible and harmless, as
// with the paper's random workload).
std::string RandomKey(Rng& rng, std::uint32_t key_bytes) {
  return MakeFixedKey(rng.Next(), key_bytes);
}

std::string MakeValue(std::uint32_t value_bytes, std::uint64_t salt) {
  std::string value(value_bytes, 'v');
  for (std::size_t i = 0; i < value.size() && i < 8; ++i) {
    value[i] = static_cast<char>('a' + ((salt >> (i * 8)) & 0x0f));
  }
  return value;
}

}  // namespace

CsdInsertOutcome RunCsdInsert(const TestbedConfig& config,
                              std::uint32_t host_cores,
                              const InsertSpec& spec) {
  CsdTestbed bed(config, host_cores);
  CsdInsertOutcome outcome;

  sim::WaitGroup inserts_done(&bed.sim());
  sim::WaitGroup compactions_done(&bed.sim());
  inserts_done.Add(spec.threads);
  compactions_done.Add(spec.shared_keyspace ? 1 : spec.threads);

  // Shared-keyspace mode: thread 0 creates, others open by name.
  for (std::uint32_t t = 0; t < spec.threads; ++t) {
    bed.sim().Spawn([](CsdTestbed* tb, const InsertSpec* s,
                       sim::WaitGroup* ins_wg, sim::WaitGroup* comp_wg,
                       std::uint32_t thread) -> sim::Task<void> {
      client::Client& db = tb->client();
      client::KeyspaceHandle ks;
      if (s->shared_keyspace) {
        if (thread == 0) {
          ks = (co_await db.CreateKeyspace("shared")).value();
        } else {
          // Later threads open after thread 0 created it; retry briefly.
          for (;;) {
            auto opened = co_await db.OpenKeyspace("shared");
            if (opened.ok()) {
              ks = *opened;
              break;
            }
            co_await tb->sim().Delay(Microseconds(50));
          }
        }
      } else {
        ks = (co_await db.CreateKeyspace("ks" + std::to_string(thread)))
                 .value();
      }

      Rng rng(s->seed * 7919 + thread);
      const std::uint64_t keys = s->total_keys / s->threads;
      if (s->use_bulk_put) {
        auto writer = ks.NewBulkWriter();
        for (std::uint64_t i = 0; i < keys; ++i) {
          (void)co_await writer.Add(RandomKey(rng, s->key_bytes),
                                    MakeValue(s->value_bytes, rng.Next()));
        }
        (void)co_await writer.Flush();
      } else {
        for (std::uint64_t i = 0; i < keys; ++i) {
          (void)co_await ks.Put(RandomKey(rng, s->key_bytes),
                                MakeValue(s->value_bytes, rng.Next()));
        }
      }

      ins_wg->Done();
      if (s->shared_keyspace) {
        if (thread == 0) {
          // Invoke compaction once everyone has finished writing.
          co_await ins_wg->Wait();
          (void)co_await ks.Compact();
          (void)co_await ks.WaitCompaction();
          comp_wg->Done();
        }
      } else {
        (void)co_await ks.Compact();
        (void)co_await ks.WaitCompaction();
        comp_wg->Done();
      }
    }(&bed, &spec, &inserts_done, &compactions_done, t));
  }

  // Observer records the two timestamps the paper separates: when the
  // application is done (insert time) and when the device finishes the
  // offloaded compaction.
  bed.sim().Spawn([](CsdTestbed* tb, sim::WaitGroup* ins_wg,
                     sim::WaitGroup* comp_wg,
                     CsdInsertOutcome* out) -> sim::Task<void> {
    co_await ins_wg->Wait();
    out->insert_done = tb->sim().Now();
    co_await comp_wg->Wait();
    out->compaction_done = tb->sim().Now();
  }(&bed, &inserts_done, &compactions_done, &outcome));

  bed.sim().Run();
  outcome.zns_bytes_written = bed.dev().ssd().nand().bytes_written();
  outcome.zns_bytes_read = bed.dev().ssd().nand().bytes_read();
  outcome.pcie_h2d_bytes = bed.queue().host_to_device_bytes();
  outcome.pcie_d2h_bytes = bed.queue().device_to_host_bytes();
  return outcome;
}

LsmInsertOutcome RunLsmInsert(const TestbedConfig& config,
                              std::uint32_t host_cores,
                              const InsertSpec& spec,
                              lsm::CompactionMode mode) {
  LsmTestbed bed(config, host_cores);
  LsmInsertOutcome outcome;
  std::vector<std::unique_ptr<lsm::Db>> dbs;

  bed.sim().Spawn([](LsmTestbed* tb, const InsertSpec* s,
                     lsm::CompactionMode m, LsmInsertOutcome* out,
                     std::vector<std::unique_ptr<lsm::Db>>* instances)
                      -> sim::Task<void> {
    const std::uint32_t num_instances = s->shared_keyspace ? 1 : s->threads;
    for (std::uint32_t d = 0; d < num_instances; ++d) {
      auto db = co_await tb->OpenDb("db" + std::to_string(d), m);
      instances->push_back(std::move(db).value());
    }

    sim::WaitGroup wg(&tb->sim());
    wg.Add(s->threads);
    std::uint64_t put_failures = 0;
    for (std::uint32_t t = 0; t < s->threads; ++t) {
      lsm::Db* db =
          (*instances)[s->shared_keyspace ? 0 : t].get();
      // Each thread finishes its own instance (flush / deferred compact),
      // exactly like the paper's per-thread test program — end-of-run work
      // runs in parallel across instances.
      tb->sim().Spawn([](const InsertSpec* s2, lsm::Db* d,
                         lsm::CompactionMode mode2, bool owns_instance,
                         sim::WaitGroup* group, std::uint64_t* failures,
                         std::uint32_t thread) -> sim::Task<void> {
        Rng rng(s2->seed * 7919 + thread);
        const std::uint64_t keys = s2->total_keys / s2->threads;
        for (std::uint64_t i = 0; i < keys; ++i) {
          Status st = co_await d->Put(RandomKey(rng, s2->key_bytes),
                                      MakeValue(s2->value_bytes, rng.Next()));
          if (!st.ok()) ++*failures;
        }
        if (owns_instance) {
          switch (mode2) {
            case lsm::CompactionMode::kAuto:
            case lsm::CompactionMode::kNone: {
              Status st = co_await d->Flush();
              if (!st.ok()) ++*failures;
              co_await d->WaitForIdle();
              break;
            }
            case lsm::CompactionMode::kDeferred: {
              Status st = co_await d->CompactRange();
              if (!st.ok()) ++*failures;
              break;
            }
          }
        }
        group->Done();
      }(s, db, m, !s->shared_keyspace, &wg, &put_failures, t));
    }
    co_await wg.Wait();

    // Shared-instance mode: one end-of-run pass for the single DB.
    if (s->shared_keyspace) {
      lsm::Db* db = (*instances)[0].get();
      switch (m) {
        case lsm::CompactionMode::kAuto:
        case lsm::CompactionMode::kNone:
          (void)co_await db->Flush();
          co_await db->WaitForIdle();
          break;
        case lsm::CompactionMode::kDeferred:
          (void)co_await db->CompactRange();
          break;
      }
    }
    if (put_failures > 0) {
      std::fprintf(stderr, "RunLsmInsert: %llu operations FAILED\n",
                   static_cast<unsigned long long>(put_failures));
    }
    out->total_done = tb->sim().Now();
    for (auto& db : *instances) {
      out->stalls += db->stats().stalls;
      out->stall_time += db->stats().stall_time;
      out->compactions += db->stats().compactions;
      (void)co_await db->Close();
    }
  }(&bed, &spec, mode, &outcome, &dbs));

  bed.sim().Run();
  outcome.device_bytes_read = bed.ssd().total_bytes_read();
  outcome.device_bytes_written = bed.ssd().total_bytes_written();
  return outcome;
}

QueryOutcome RunCsdGets(CsdTestbed& bed,
                        std::vector<client::KeyspaceHandle>& keyspaces,
                        const GetSpec& spec) {
  QueryOutcome outcome;
  const Tick start = bed.sim().Now();
  const std::uint64_t nand_read_start = bed.dev().ssd().nand().bytes_read();
  const std::uint64_t d2h_start = bed.queue().device_to_host_bytes();

  sim::WaitGroup wg(&bed.sim());
  wg.Add(spec.threads);
  for (std::uint32_t t = 0; t < spec.threads; ++t) {
    bed.sim().Spawn([](client::KeyspaceHandle ks, const GetSpec* s,
                       sim::WaitGroup* group,
                       std::uint32_t thread) -> sim::Task<void> {
      Rng rng(s->seed * 104729 + thread);
      const std::uint64_t gets = s->total_gets / s->threads;
      for (std::uint64_t i = 0; i < gets; ++i) {
        const std::uint64_t id = rng.Uniform(s->keys_per_keyspace);
        (void)co_await ks.Get(MakeFixedKey(id));
      }
      group->Done();
    }(keyspaces[t % keyspaces.size()], &spec, &wg, t));
  }
  bed.sim().Run();

  outcome.query_time = bed.sim().Now() - start;
  outcome.device_bytes_read =
      bed.dev().ssd().nand().bytes_read() - nand_read_start;
  outcome.pcie_d2h_bytes = bed.queue().device_to_host_bytes() - d2h_start;
  return outcome;
}

QueryOutcome RunLsmGets(LsmTestbed& bed, std::vector<lsm::Db*>& dbs,
                        const GetSpec& spec, bool drop_page_cache) {
  QueryOutcome outcome;
  if (drop_page_cache) bed.page_cache().DropAll();
  const Tick start = bed.sim().Now();
  const std::uint64_t read_start = bed.ssd().total_bytes_read();

  sim::WaitGroup wg(&bed.sim());
  wg.Add(spec.threads);
  for (std::uint32_t t = 0; t < spec.threads; ++t) {
    bed.sim().Spawn([](lsm::Db* db, const GetSpec* s, sim::WaitGroup* group,
                       std::uint32_t thread) -> sim::Task<void> {
      Rng rng(s->seed * 104729 + thread);
      const std::uint64_t gets = s->total_gets / s->threads;
      std::string value;
      for (std::uint64_t i = 0; i < gets; ++i) {
        const std::uint64_t id = rng.Uniform(s->keys_per_keyspace);
        (void)co_await db->Get(MakeFixedKey(id), &value);
      }
      group->Done();
    }(dbs[t % dbs.size()], &spec, &wg, t));
  }
  bed.sim().Run();

  outcome.query_time = bed.sim().Now() - start;
  outcome.device_bytes_read = bed.ssd().total_bytes_read() - read_start;
  return outcome;
}

}  // namespace kvcsd::harness
