// Reusable experiment drivers behind the figure benches: multi-threaded
// insertion and query phases against both systems, with the timing
// separations the paper reports (insert time vs compaction wait vs query
// time) and the I/O statistics behind Fig. 7b / 10b.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/testbed.h"
#include "lsm/db.h"

namespace kvcsd::harness {

struct InsertSpec {
  std::uint64_t total_keys = 1 << 20;
  std::uint32_t key_bytes = 16;   // paper micro benches: 16 B keys
  std::uint32_t value_bytes = 32; // and 32 B values
  std::uint32_t threads = 1;
  bool shared_keyspace = true;    // one keyspace/DB vs one per thread
  bool use_bulk_put = true;       // KV-CSD bulk PUT vs regular PUT
  std::uint64_t seed = 1;
};

struct CsdInsertOutcome {
  Tick insert_done = 0;       // all PUTs acknowledged + compaction invoked
  Tick compaction_done = 0;   // device finished the offloaded compaction
  std::uint64_t zns_bytes_written = 0;
  std::uint64_t zns_bytes_read = 0;
  std::uint64_t pcie_h2d_bytes = 0;
  std::uint64_t pcie_d2h_bytes = 0;
};

// Runs the paper's PUT experiment against a fresh KV-CSD: `threads`
// processes insert random keys (bulk-put frames by default), then invoke
// compaction and exit; the device compacts asynchronously. `host_cores`
// models the CPU-pinning of Fig. 7a.
CsdInsertOutcome RunCsdInsert(const TestbedConfig& config,
                              std::uint32_t host_cores,
                              const InsertSpec& spec);

struct LsmInsertOutcome {
  Tick total_done = 0;  // inserts + any compaction the user must wait for
  std::uint64_t device_bytes_read = 0;
  std::uint64_t device_bytes_written = 0;
  std::uint64_t stalls = 0;
  Tick stall_time = 0;
  std::uint64_t compactions = 0;
};

// Same workload against RocksLite in the given compaction mode. In kAuto
// the run waits for background compaction to finish (the paper includes
// this wait); kDeferred issues one CompactRange at the end; kNone skips
// compaction entirely.
LsmInsertOutcome RunLsmInsert(const TestbedConfig& config,
                              std::uint32_t host_cores,
                              const InsertSpec& spec,
                              lsm::CompactionMode mode);

// --- GET phase (Fig. 10): random point lookups over a pre-built dataset ---

struct GetSpec {
  std::uint64_t total_gets = 32000;
  std::uint64_t keys_per_keyspace = 1 << 20;  // key id range per keyspace
  std::uint32_t threads = 32;                 // one per keyspace
  std::uint64_t seed = 99;
};

struct QueryOutcome {
  Tick query_time = 0;
  std::uint64_t device_bytes_read = 0;  // ZNS or host SSD
  std::uint64_t pcie_d2h_bytes = 0;     // KV-CSD only
};

// Both functions assume the dataset was already inserted+compacted on the
// given testbed (so the caller can reuse one build across GET counts).
QueryOutcome RunCsdGets(CsdTestbed& bed,
                        std::vector<client::KeyspaceHandle>& keyspaces,
                        const GetSpec& spec);
QueryOutcome RunLsmGets(LsmTestbed& bed, std::vector<lsm::Db*>& dbs,
                        const GetSpec& spec, bool drop_page_cache);

}  // namespace kvcsd::harness
