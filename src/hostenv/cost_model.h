// Central cost model: every CPU/software cost charged to the simulated
// clock is defined here, in one place, so calibration is auditable.
//
// Two presets exist: Host() (32× AMD EPYC class) and Soc() (4× ARM
// Cortex-A53 class). The host pays the full kernel storage stack per I/O
// (syscall + filesystem + block layer; §II "Host Software Overhead"); the
// SoC runs an SPDK userspace driver and pays a few microseconds per NVMe
// command (§III "Userspace Drivers").
#pragma once

#include "common/units.h"

namespace kvcsd::hostenv {

struct CostModel {
  // --- per-I/O software path cost (charged to the owning CPU pool) ---
  Tick io_path_overhead = Microseconds(15);  // syscall+FS+block layer
  Tick syscall_overhead = Microseconds(2);   // cached / no-device syscalls

  // --- bulk data processing rates, per core ---
  double memcpy_bytes_per_sec = 4e9;        // buffer copies, packing
  double merge_bytes_per_sec = 650e6;       // k-way merge-sort streaming
  double checksum_bytes_per_sec = 2e9;      // crc32c etc.
  double extract_bytes_per_sec = 800e6;     // secondary-key extraction scan

  // --- per-operation costs ---
  Tick memtable_insert = Nanoseconds(2500);  // write-group + WAL framing + skiplist
  Tick memtable_lookup = Nanoseconds(400);
  Tick block_search = Nanoseconds(1500);    // binary search within 4KB block
  Tick bloom_check = Nanoseconds(120);
  Tick kv_op_fixed = Nanoseconds(250);      // per-record handling overhead

  // 32-core host running a full kernel storage stack.
  static CostModel Host() { return CostModel{}; }

  // 4-core A53 SoC running SPDK: weak cores (lower rates, higher per-op
  // costs) but a very short I/O path.
  static CostModel Soc() {
    CostModel m;
    m.io_path_overhead = Microseconds(3);
    m.syscall_overhead = Nanoseconds(300);  // function call, no kernel
    m.memcpy_bytes_per_sec = 1.2e9;
    m.merge_bytes_per_sec = 150e6;
    m.checksum_bytes_per_sec = 600e6;
    m.extract_bytes_per_sec = 250e6;
    m.memtable_insert = Microseconds(2);
    m.memtable_lookup = Nanoseconds(1200);
    m.block_search = Microseconds(4);
    m.bloom_check = Nanoseconds(400);
    m.kv_op_fixed = Nanoseconds(600);
    return m;
  }
};

}  // namespace kvcsd::hostenv
