#include "hostenv/fs.h"

#include <algorithm>
#include <cstring>

namespace kvcsd::hostenv {

Fs::Fs(sim::Simulation* sim, sim::CpuPool* cpu, storage::BlockSsd* ssd,
       PageCache* page_cache, const CostModel& costs, FsConfig config)
    : sim_(sim),
      cpu_(cpu),
      ssd_(ssd),
      page_cache_(page_cache),
      costs_(costs),
      config_(config) {}

Result<FileHandle> Fs::Create(const std::string& name) {
  if (names_.contains(name)) {
    return Status::AlreadyExists("file exists: " + name);
  }
  auto rep = std::make_unique<FileRep>();
  rep->id = next_file_id_++;
  rep->name = name;
  FileHandle handle(this, rep->id);
  names_[name] = rep->id;
  files_[rep->id] = std::move(rep);
  return handle;
}

Result<FileHandle> Fs::Open(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) return Status::NotFound("no such file: " + name);
  return FileHandle(const_cast<Fs*>(this), it->second);
}

bool Fs::Exists(const std::string& name) const {
  return names_.contains(name);
}

Result<std::uint64_t> Fs::FileSize(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) return Status::NotFound("no such file: " + name);
  return files_.at(it->second)->data.size();
}

std::vector<std::string> Fs::ListFiles() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [name, id] : names_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

Result<Fs::FileRep*> Fs::Resolve(FileHandle h) const {
  if (!h.valid() || h.fs_ != this) {
    return Status::InvalidArgument("invalid file handle");
  }
  auto it = files_.find(h.id());
  if (it == files_.end() || it->second->deleted) {
    return Status::NotFound("file was deleted");
  }
  return it->second.get();
}

std::uint64_t Fs::DeviceOffsetFor(const FileRep& file,
                                  std::uint64_t file_offset) const {
  // Extents are appended in file order; binary search the covering extent.
  auto it = std::upper_bound(
      file.extents.begin(), file.extents.end(), file_offset,
      [](std::uint64_t off, const Extent& e) { return off < e.file_offset; });
  if (it == file.extents.begin()) return file_offset;  // not yet flushed
  --it;
  return it->device_offset + (file_offset - it->file_offset);
}

sim::Task<Status> Fs::Writeback(FileRep* file) {
  while (file->flushed < file->data.size()) {
    const std::uint64_t chunk = std::min<std::uint64_t>(
        config_.max_device_request, file->data.size() - file->flushed);
    const std::uint64_t device_offset = alloc_cursor_;
    alloc_cursor_ += (chunk + config_.block_size - 1) / config_.block_size *
                     config_.block_size;
    file->extents.push_back(Extent{file->flushed, device_offset, chunk});

    // One pass through the kernel I/O path per device request.
    co_await cpu_->Compute(costs_.io_path_overhead);
    co_await ssd_->Write(device_offset, chunk);
    device_bytes_written_ += chunk;

    // Freshly written pages are resident in the page cache.
    const std::uint64_t first_block = file->flushed / config_.block_size;
    const std::uint64_t last_block =
        (file->flushed + chunk - 1) / config_.block_size;
    for (std::uint64_t b = first_block; b <= last_block; ++b) {
      page_cache_->Insert(file->id, b);
    }
    file->flushed += chunk;
  }
  co_return Status::Ok();
}

sim::Task<Status> Fs::Append(FileHandle h, std::span<const std::byte> data) {
  auto file = Resolve(h);
  if (!file.ok()) co_return file.status();
  FileRep* rep = *file;

  co_await cpu_->Compute(costs_.syscall_overhead);
  co_await cpu_->ComputeBytes(data.size(), costs_.memcpy_bytes_per_sec);
  rep->data.insert(rep->data.end(), data.begin(), data.end());

  // Delayed allocation: write back once enough dirty bytes accumulate,
  // modelling kernel writeback throttling for streaming writers.
  if (rep->data.size() - rep->flushed >= config_.writeback_threshold) {
    co_await Writeback(rep);
  }
  co_return Status::Ok();
}

sim::Task<Status> Fs::Pread(FileHandle h, std::uint64_t offset,
                            std::span<std::byte> out) {
  auto file = Resolve(h);
  if (!file.ok()) co_return file.status();
  FileRep* rep = *file;
  if (offset + out.size() > rep->data.size()) {
    co_return Status::InvalidArgument("pread beyond EOF");
  }
  co_await cpu_->Compute(costs_.syscall_overhead);

  // Walk the touched blocks; group consecutive cache misses into single
  // device requests (readahead-style coalescing).
  const std::uint32_t bs = config_.block_size;
  const std::uint64_t first_block = offset / bs;
  const std::uint64_t last_block =
      out.empty() ? first_block : (offset + out.size() - 1) / bs;
  std::uint64_t miss_run_start = 0;
  bool in_miss_run = false;
  for (std::uint64_t b = first_block; b <= last_block + 1; ++b) {
    const bool miss = b <= last_block && !page_cache_->Lookup(rep->id, b);
    if (miss && !in_miss_run) {
      in_miss_run = true;
      miss_run_start = b;
    } else if (!miss && in_miss_run) {
      in_miss_run = false;
      std::uint64_t run_bytes = (b - miss_run_start) * bs;
      const std::uint64_t run_off = miss_run_start * bs;
      if (run_off + run_bytes > rep->flushed) {
        // Unflushed tail lives only in memory: no device read needed for
        // that part.
        run_bytes = run_off < rep->flushed ? rep->flushed - run_off : 0;
      }
      if (run_bytes > 0) {
        std::uint64_t done = 0;
        while (done < run_bytes) {
          const std::uint64_t req = std::min<std::uint64_t>(
              config_.max_device_request, run_bytes - done);
          co_await cpu_->Compute(costs_.io_path_overhead);
          co_await ssd_->Read(DeviceOffsetFor(*rep, run_off + done), req);
          device_bytes_read_ += req;
          done += req;
        }
      }
      for (std::uint64_t blk = miss_run_start; blk < b; ++blk) {
        page_cache_->Insert(rep->id, blk);
      }
    }
  }
  cache_bytes_read_ += out.size();

  co_await cpu_->ComputeBytes(out.size(), costs_.memcpy_bytes_per_sec);
  std::memcpy(out.data(), rep->data.data() + offset, out.size());
  co_return Status::Ok();
}

sim::Task<Status> Fs::PreadDirect(FileHandle h, std::uint64_t offset,
                                  std::span<std::byte> out) {
  auto file = Resolve(h);
  if (!file.ok()) co_return file.status();
  FileRep* rep = *file;
  if (offset + out.size() > rep->data.size()) {
    co_return Status::InvalidArgument("pread beyond EOF");
  }
  co_await cpu_->Compute(costs_.syscall_overhead);

  // Only the flushed extent lives on the device; the unflushed tail is
  // memory-resident and free to read.
  const std::uint64_t flushed_end =
      std::min<std::uint64_t>(rep->flushed, offset + out.size());
  if (flushed_end > offset) {
    std::uint64_t done = offset;
    while (done < flushed_end) {
      const std::uint64_t req = std::min<std::uint64_t>(
          config_.max_device_request, flushed_end - done);
      co_await cpu_->Compute(costs_.io_path_overhead);
      co_await ssd_->Read(DeviceOffsetFor(*rep, done), req);
      device_bytes_read_ += req;
      done += req;
    }
  }
  co_await cpu_->ComputeBytes(out.size(), costs_.memcpy_bytes_per_sec);
  std::memcpy(out.data(), rep->data.data() + offset, out.size());
  co_return Status::Ok();
}

sim::Task<Status> Fs::Sync(FileHandle h) {
  auto file = Resolve(h);
  if (!file.ok()) co_return file.status();
  co_await Writeback(*file);
  // Journal commit: one 4 KB metadata block plus a device flush barrier.
  co_await cpu_->Compute(costs_.io_path_overhead);
  co_await ssd_->Write(alloc_cursor_, config_.block_size);
  alloc_cursor_ += config_.block_size;
  co_await ssd_->Flush();
  ++journal_commits_;
  co_return Status::Ok();
}

sim::Task<Status> Fs::Delete(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) co_return Status::NotFound("no such file: " + name);
  co_await cpu_->Compute(costs_.syscall_overhead);
  page_cache_->InvalidateFile(it->second);
  // Keep a tombstoned rep so stale handles fail cleanly instead of
  // dangling; release the payload immediately.
  FileRep* rep = files_[it->second].get();
  rep->deleted = true;
  rep->data.clear();
  rep->data.shrink_to_fit();
  rep->extents.clear();
  names_.erase(it);
  co_return Status::Ok();
}

}  // namespace kvcsd::hostenv
