// Extent-based host filesystem model ("ext4-ish") that the software
// key-value baseline runs on.
//
// Functional contract: files are named byte arrays with append/pread
// semantics — real bytes, so SSTables and WALs written through this layer
// read back exactly. Timing contract: every operation charges the host CPU
// for its software path (syscall / full I/O path) and the block SSD for
// device time; reads go through the page cache at 4 KB granularity, which
// is where the paper's read amplification and cache-warming effects
// (Fig. 10) come from. Appends are buffered and written back in large
// sequential requests (delayed allocation), and Sync() adds a journal
// commit, which is how ext4 behaves under RocksDB.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "hostenv/cost_model.h"
#include "hostenv/page_cache.h"
#include "sim/resources.h"
#include "sim/task.h"
#include "storage/block_ssd.h"

namespace kvcsd::hostenv {

struct FsConfig {
  std::uint64_t writeback_threshold = MiB(8);  // dirty bytes before flush
  std::uint64_t max_device_request = MiB(1);   // split writebacks/reads
  std::uint32_t block_size = 4096;
};

class Fs;

// A handle to an open file. Cheap to copy; validity tracked by generation
// so operations on deleted files fail cleanly instead of dangling.
class FileHandle {
 public:
  FileHandle() = default;
  bool valid() const { return fs_ != nullptr; }
  std::uint64_t id() const { return id_; }

 private:
  friend class Fs;
  FileHandle(Fs* fs, std::uint64_t id) : fs_(fs), id_(id) {}
  Fs* fs_ = nullptr;
  std::uint64_t id_ = 0;
};

class Fs {
 public:
  Fs(sim::Simulation* sim, sim::CpuPool* cpu, storage::BlockSsd* ssd,
     PageCache* page_cache, const CostModel& costs,
     FsConfig config = FsConfig{});

  // --- namespace operations (synchronous metadata, cheap) ---
  Result<FileHandle> Create(const std::string& name);
  Result<FileHandle> Open(const std::string& name) const;
  bool Exists(const std::string& name) const;
  Result<std::uint64_t> FileSize(const std::string& name) const;
  std::vector<std::string> ListFiles() const;

  // --- data path (timed) ---
  sim::Task<Status> Append(FileHandle h, std::span<const std::byte> data);
  sim::Task<Status> Pread(FileHandle h, std::uint64_t offset,
                          std::span<std::byte> out);
  // Direct read: bypasses the page cache in both directions (no lookups,
  // no pollution). Models RocksDB's fadvise(DONTNEED)/direct-I/O
  // compaction reads, which always hit the device.
  sim::Task<Status> PreadDirect(FileHandle h, std::uint64_t offset,
                                std::span<std::byte> out);
  // Writes back dirty data and commits the journal (fsync).
  sim::Task<Status> Sync(FileHandle h);
  // Deletes the file; invalidates its cached pages. Timed lightly.
  sim::Task<Status> Delete(const std::string& name);

  PageCache& page_cache() { return *page_cache_; }
  storage::BlockSsd& ssd() { return *ssd_; }

  // Traffic actually exchanged with the device through this filesystem.
  std::uint64_t device_bytes_read() const { return device_bytes_read_; }
  std::uint64_t device_bytes_written() const { return device_bytes_written_; }
  std::uint64_t cache_bytes_read() const { return cache_bytes_read_; }
  std::uint64_t journal_commits() const { return journal_commits_; }

 private:
  struct Extent {
    std::uint64_t file_offset;
    std::uint64_t device_offset;
    std::uint64_t length;
  };

  struct FileRep {
    std::uint64_t id;
    std::string name;
    std::vector<std::byte> data;
    std::uint64_t flushed = 0;  // bytes already written back to the device
    std::vector<Extent> extents;
    bool deleted = false;
  };

  Result<FileRep*> Resolve(FileHandle h) const;
  sim::Task<Status> Writeback(FileRep* file);
  std::uint64_t DeviceOffsetFor(const FileRep& file,
                                std::uint64_t file_offset) const;

  sim::Simulation* sim_;
  sim::CpuPool* cpu_;
  storage::BlockSsd* ssd_;
  PageCache* page_cache_;
  CostModel costs_;
  FsConfig config_;

  std::unordered_map<std::string, std::uint64_t> names_;
  std::unordered_map<std::uint64_t, std::unique_ptr<FileRep>> files_;
  std::uint64_t next_file_id_ = 1;
  std::uint64_t alloc_cursor_ = 0;  // bump allocator for device extents

  std::uint64_t device_bytes_read_ = 0;
  std::uint64_t device_bytes_written_ = 0;
  std::uint64_t cache_bytes_read_ = 0;
  std::uint64_t journal_commits_ = 0;
};

}  // namespace kvcsd::hostenv
