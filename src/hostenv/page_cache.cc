#include "hostenv/page_cache.h"

#include <vector>

namespace kvcsd::hostenv {

bool PageCache::Lookup(std::uint64_t file_id, std::uint64_t block) {
  auto it = map_.find(KeyOf(file_id, block));
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return true;
}

void PageCache::Insert(std::uint64_t file_id, std::uint64_t block) {
  const std::uint64_t key = KeyOf(file_id, block);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
  while (map_.size() > capacity_pages_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

void PageCache::InvalidateFile(std::uint64_t file_id) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 40) == file_id) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::DropAll() {
  lru_.clear();
  map_.clear();
}

}  // namespace kvcsd::hostenv
