// OS page cache model: an LRU over (file, block) pages. Accounting only —
// file payloads live in the Fs layer; the cache decides whether a read
// touches the device and lets benchmarks "echo 3 > drop_caches" the way the
// paper does before each RocksDB query run.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/units.h"

namespace kvcsd::hostenv {

class PageCache {
 public:
  PageCache(std::uint64_t capacity_bytes, std::uint32_t page_size = 4096)
      : capacity_pages_(capacity_bytes / page_size), page_size_(page_size) {}

  std::uint32_t page_size() const { return page_size_; }

  // True (and refreshed to MRU) if the page is resident.
  bool Lookup(std::uint64_t file_id, std::uint64_t block);

  // Inserts a page, evicting LRU pages beyond capacity.
  void Insert(std::uint64_t file_id, std::uint64_t block);

  // Removes every page of a file (file deletion / truncation).
  void InvalidateFile(std::uint64_t file_id);

  // Drops the entire cache (the benchmark's "clean OS page cache").
  void DropAll();

  std::size_t resident_pages() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static std::uint64_t KeyOf(std::uint64_t file_id, std::uint64_t block) {
    return (file_id << 40) | (block & ((1ull << 40) - 1));
  }

  std::uint64_t capacity_pages_;
  std::uint32_t page_size_;
  std::list<std::uint64_t> lru_;  // front = MRU
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace kvcsd::hostenv
