// Deferred compaction and secondary-index construction (paper §V).
//
// Compaction sorts a keyspace in two steps, exactly as the paper
// describes: (1) sort the keys — an external merge sort whose run size is
// bounded by SoC DRAM, with intermediate runs stored in temporarily
// allocated TEMP zone clusters; (2) use the sorted keys to sort the values
// — a DRAM-batched external permutation that gathers values with
// address-coalesced reads and streams them out in key order. The result is
// the SORTED_VALUES + PIDX clusters and an in-memory pivot sketch (one
// entry per 4 KB PIDX block) kept in the keyspace table.
//
// Both steps are pipelined across the SoC cores (DESIGN.md §7):
//
//  * Phase 1 fans run generation out over the KLOG zones with
//    sim::ParallelFor — each worker streams its zone in bounded chunks,
//    sorts, and spills independently. The sort budget is split into a
//    FIXED number of shares (kRunGenShares), not `soc_cores`, so the run
//    layout — and therefore the merged output — is identical no matter
//    how many cores execute the fan-out; core count changes timing only.
//  * Phase 2 merges the runs through a loser tree over double-buffered
//    TEMP readers (merge.h) and hands each gathered value batch to a
//    concurrent index-build stage over a bounded channel, so PIDX
//    building + fused extraction of batch N overlap the value gather and
//    sorted-value writes of batch N+1.
//
// Secondary indexes are built either separately (the paper's implemented
// design: a full scan of the compacted keyspace, extract, external sort)
// or fused into the compaction pass (the paper's §V future-work variant:
// keys are extracted while the values are already in DRAM during phase 2,
// skipping the re-read at the cost of extra DRAM pressure). Fused per-spec
// merges run concurrently in a TaskGroup.
#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "common/bloom.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "kvcsd/klog_stream.h"
#include "kvcsd/merge.h"
#include "kvcsd/wire.h"
#include "nvme/skey.h"
#include "sim/fault.h"
#include "sim/parallel.h"
#include "sim/tracer.h"

namespace kvcsd::device {

namespace {

// The phase-1 sort budget divides into this many fixed shares; each
// concurrent run-generation worker owns one share, and the worker count
// is min(soc_cores, kRunGenShares) so at most `run_budget` bytes of
// run-building state exist at once. A fixed divisor (rather than
// `soc_cores`) keeps the run layout independent of the core count.
constexpr std::uint64_t kRunGenShares = 4;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

// Order-preserving encoding of the secondary key bytes found in a value.
Result<std::string> ExtractSecondaryKey(const Slice& value,
                                        const nvme::SecondaryIndexSpec& spec) {
  if (spec.value_offset + spec.value_length > value.size()) {
    return Status::InvalidArgument("secondary key range beyond value");
  }
  return nvme::EncodeSecondaryKeyBytes(
      Slice(value.data() + spec.value_offset, spec.value_length), spec);
}

}  // namespace

// ---------------------------------------------------------------------------
// Phase 1: parallel run generation
// ---------------------------------------------------------------------------

// Runs and TEMP clusters produced from one KLOG zone. Each worker owns its
// output slot, so the fan-out shares no mutable state.
struct Device::RunGenOutput {
  std::vector<SpilledRun> runs;
  std::vector<ClusterId> temp_clusters;
};

sim::Task<Status> Device::GenerateZoneRuns(std::uint32_t zone,
                                           std::uint64_t run_budget,
                                           RunGenOutput* out) {
  // One track per worker share keeps concurrent run-gen spans on separate
  // viewer rows (zone index mod the share count matches the fan-out width).
  sim::TraceSpan span(sim_,
                      config_.stats_prefix + "compact.gen." +
                          std::to_string(zone % kRunGenShares),
                      "run_gen");
  span.Arg("zone", static_cast<std::uint64_t>(zone));
  std::vector<KlogEntry> current;
  std::uint64_t current_bytes = 0;

  auto spill_current = [&]() -> sim::Task<Status> {
    if (current.empty()) co_return Status::Ok();
    co_await cpu_.ComputeBytes(current_bytes,
                               config_.costs.merge_bytes_per_sec, sim::Activity::kCompact);
    // (key, seq): duplicate keys stay newest-last within the run, matching
    // KlogMergeTraits so the merge's last-writer-wins pass sees every
    // version of a key adjacently in seq order.
    std::sort(current.begin(), current.end(),
              [](const KlogEntry& a, const KlogEntry& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.seq < b.seq;
              });
    SpilledRun spilled;
    std::string chunk;
    chunk.reserve(config_.output_batch_bytes);
    auto flush_chunk = [&]() -> sim::Task<Status> {
      if (chunk.empty()) co_return Status::Ok();
      co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kCompact);
      auto addr = co_await AppendToChain(&out->temp_clusters, ZoneType::kTemp,
                                         AsBytes(chunk), sim::Activity::kCompact);
      if (!addr.ok()) co_return addr.status();
      compaction_stats_.bytes_written += chunk.size();
      spilled.segments.emplace_back(*addr,
                                    static_cast<std::uint32_t>(chunk.size()));
      chunk.clear();
      co_return Status::Ok();
    };
    for (const KlogEntry& e : current) {
      if (chunk.size() + e.key.size() + 20 > config_.output_batch_bytes) {
        KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
      }
      wire::AppendKlogEntry(&chunk, e.key, e.value_addr, e.value_len, e.seq,
                            e.tombstone);
      ++spilled.entries;
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
    ++compaction_stats_.runs_spilled;
    out->runs.push_back(std::move(spilled));
    current.clear();
    current_bytes = 0;
    co_return Status::Ok();
  };

  KlogZoneStream stream(&ssd_, zone, config_.output_batch_bytes,
                        &compaction_stats_.bytes_read,
                        sim::Activity::kCompact);
  std::vector<KlogEntry> parsed;
  for (;;) {
    parsed.clear();
    auto more = co_await stream.NextBatch(&parsed);
    if (!more.ok()) co_return more.status();
    if (!*more) break;
    for (KlogEntry& e : parsed) {
      current_bytes += e.key.size() + 12;
      current.push_back(std::move(e));
      if (current_bytes >= run_budget) {
        KVCSD_CO_RETURN_IF_ERROR(co_await spill_current());
      }
    }
  }
  co_return co_await spill_current();
}

// ---------------------------------------------------------------------------
// SIDX external sort (shared by the separate and fused index builds)
// ---------------------------------------------------------------------------

sim::Task<Status> Device::SidxSpill(SidxSortState* state) {
  if (state->current.empty()) co_return Status::Ok();
  co_await cpu_.ComputeBytes(state->current_bytes,
                             config_.costs.merge_bytes_per_sec, sim::Activity::kCompact);
  std::sort(state->current.begin(), state->current.end(),
            [](const SidxTuple& a, const SidxTuple& b) {
              if (a.skey != b.skey) return a.skey < b.skey;
              return a.pkey < b.pkey;
            });
  SpilledRun spilled;
  std::string chunk;
  auto flush_chunk = [&]() -> sim::Task<Status> {
    if (chunk.empty()) co_return Status::Ok();
    co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kCompact);
    auto addr = co_await AppendToChain(&state->temp_clusters,
                                       ZoneType::kTemp, AsBytes(chunk), sim::Activity::kCompact);
    if (!addr.ok()) co_return addr.status();
    compaction_stats_.bytes_written += chunk.size();
    spilled.segments.emplace_back(*addr,
                                  static_cast<std::uint32_t>(chunk.size()));
    chunk.clear();
    co_return Status::Ok();
  };
  for (const SidxTuple& t : state->current) {
    if (chunk.size() + wire::SidxEntrySize(t.skey, t.pkey) >
        config_.output_batch_bytes) {
      KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
    }
    wire::AppendSidxEntry(&chunk, t.skey, t.pkey, t.vaddr, t.vlen);
    ++spilled.entries;
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
  ++compaction_stats_.runs_spilled;
  state->runs.push_back(std::move(spilled));
  state->current.clear();
  state->current_bytes = 0;
  co_return Status::Ok();
}

sim::Task<Status> Device::SidxAdd(SidxSortState* state, SidxTuple tuple) {
  state->current_bytes += tuple.skey.size() + tuple.pkey.size() + 12;
  state->current.push_back(std::move(tuple));
  if (state->current_bytes >= state->run_budget) {
    KVCSD_CO_RETURN_IF_ERROR(co_await SidxSpill(state));
  }
  co_return Status::Ok();
}

sim::Task<Status> Device::SidxMergeToBlocks(
    SidxSortState* state, const nvme::SecondaryIndexSpec& spec,
    SecondaryIndex* out) {
  KVCSD_CO_RETURN_IF_ERROR(co_await SidxSpill(state));

  compaction_stats_.max_merge_fanin = std::max<std::uint64_t>(
      compaction_stats_.max_merge_fanin, state->runs.size());
  RunMerger<SidxMergeTraits> merger(sim_, &ssd_);
  KVCSD_CO_RETURN_IF_ERROR(
      co_await merger.Init(state->runs, &compaction_stats_.bytes_read));

  SecondaryIndex& sidx = *out;
  sidx.spec = spec;
  std::string block;
  wire::BeginIndexBlock(&block);
  std::uint16_t block_count = 0;
  std::string block_pivot;
  std::vector<std::pair<std::string, std::string>> pending_blocks;
  std::uint64_t pending_bytes = 0;

  auto flush_blocks = [&]() -> sim::Task<Status> {
    if (pending_blocks.empty()) co_return Status::Ok();
    std::string blob;
    blob.reserve(pending_bytes);
    for (const auto& [pivot, b] : pending_blocks) blob += b;
    co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kCompact);
    auto addr = co_await AppendToChain(&sidx.sidx_clusters, ZoneType::kSidx,
                                       AsBytes(blob), sim::Activity::kCompact);
    if (!addr.ok()) co_return addr.status();
    compaction_stats_.bytes_written += blob.size();
    for (std::size_t i = 0; i < pending_blocks.size(); ++i) {
      sidx.sketch.push_back(SketchEntry{
          pending_blocks[i].first,
          *addr + i * config_.index_block_size, config_.index_block_size});
    }
    pending_blocks.clear();
    pending_bytes = 0;
    co_return Status::Ok();
  };

  auto close_block = [&]() -> sim::Task<Status> {
    if (block_count == 0) co_return Status::Ok();
    wire::FinishIndexBlock(&block, block_count, config_.index_block_size);
    pending_blocks.emplace_back(std::move(block_pivot), std::move(block));
    pending_bytes += config_.index_block_size;
    wire::BeginIndexBlock(&block);
    block_count = 0;
    block_pivot.clear();
    if (pending_bytes >= config_.output_batch_bytes) {
      KVCSD_CO_RETURN_IF_ERROR(co_await flush_blocks());
    }
    co_return Status::Ok();
  };

  std::uint64_t merged = 0;
  while (!merger.Empty()) {
    SidxTuple t;
    KVCSD_CO_RETURN_IF_ERROR(co_await merger.Pop(&t));

    merged += t.skey.size() + t.pkey.size() + 12;
    if (merged >= MiB(1)) {
      co_await cpu_.ComputeBytes(merged, config_.costs.merge_bytes_per_sec, sim::Activity::kCompact);
      merged = 0;
    }
    if (block.size() + wire::SidxEntrySize(t.skey, t.pkey) >
        config_.index_block_size) {
      KVCSD_CO_RETURN_IF_ERROR(co_await close_block());
    }
    if (block_count == 0) block_pivot = t.skey;
    wire::AppendSidxEntry(&block, t.skey, t.pkey, t.vaddr, t.vlen);
    ++block_count;
    ++sidx.entries;
  }
  if (merged > 0) {
    co_await cpu_.ComputeBytes(merged, config_.costs.merge_bytes_per_sec, sim::Activity::kCompact);
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await close_block());
  KVCSD_CO_RETURN_IF_ERROR(co_await flush_blocks());

  co_await ReleaseClustersBestEffort(std::move(state->temp_clusters));
  state->temp_clusters.clear();
  state->runs.clear();
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// Phase 2: merge + value permutation, pipelined with index building
// ---------------------------------------------------------------------------

// One unit of hand-off between the gather/write stage and the index-build
// stage: a run of merged entries with their gathered values and the
// addresses the values were rewritten to.
struct Device::ValueBatch {
  std::vector<KlogEntry> entries;
  std::vector<std::string> values;
  std::vector<std::uint64_t> new_addrs;
  std::uint64_t value_bytes = 0;
};

struct Device::PidxPipeline {
  sim::BoundedChannel<std::unique_ptr<ValueBatch>>* channel = nullptr;
  const std::vector<nvme::SecondaryIndexSpec>* specs = nullptr;
  std::vector<SidxSortState>* sidx_states = nullptr;
  // When non-null, every merged key is also added to the keyspace's bloom
  // filter here — the one moment all primary keys stream through DRAM in
  // order, so the filter build costs no extra I/O (DESIGN.md §10).
  BloomFilterBuilder* bloom = nullptr;
  std::vector<SketchEntry> sketch;
  std::vector<ClusterId> pidx_clusters;
  std::uint64_t entries_total = 0;
  // Set when the consumer fails; the producer stops feeding new batches.
  bool failed = false;
};

sim::Task<Status> Device::IndexBuildStage(PidxPipeline* pipe) {
  std::string block;
  wire::BeginIndexBlock(&block);
  std::uint16_t block_count = 0;
  std::string block_pivot;
  std::vector<std::pair<std::string, std::string>> pending_blocks;
  std::uint64_t pending_bytes = 0;

  auto flush_blocks = [&]() -> sim::Task<Status> {
    if (pending_blocks.empty()) co_return Status::Ok();
    std::string blob;
    blob.reserve(pending_bytes);
    for (const auto& [pivot, b] : pending_blocks) blob += b;
    co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kCompact);
    auto addr = co_await AppendToChain(&pipe->pidx_clusters, ZoneType::kPidx,
                                       AsBytes(blob), sim::Activity::kCompact);
    if (!addr.ok()) co_return addr.status();
    compaction_stats_.bytes_written += blob.size();
    for (std::size_t i = 0; i < pending_blocks.size(); ++i) {
      pipe->sketch.push_back(SketchEntry{
          pending_blocks[i].first,
          *addr + i * config_.index_block_size, config_.index_block_size});
    }
    pending_blocks.clear();
    pending_bytes = 0;
    co_return Status::Ok();
  };

  auto close_block = [&]() -> sim::Task<Status> {
    if (block_count == 0) co_return Status::Ok();
    wire::FinishIndexBlock(&block, block_count, config_.index_block_size);
    pending_blocks.emplace_back(std::move(block_pivot), std::move(block));
    pending_bytes += config_.index_block_size;
    wire::BeginIndexBlock(&block);
    block_count = 0;
    block_pivot.clear();
    if (pending_bytes >= config_.output_batch_bytes) {
      KVCSD_CO_RETURN_IF_ERROR(co_await flush_blocks());
    }
    co_return Status::Ok();
  };

  auto process = [&](ValueBatch& b) -> sim::Task<Status> {
    // Fused secondary-key extraction touches every value byte while the
    // batch sits in DRAM anyway (no keyspace re-read).
    if (!pipe->specs->empty()) {
      co_await cpu_.ComputeBytes(b.value_bytes,
                                 config_.costs.extract_bytes_per_sec, sim::Activity::kCompact);
    }
    std::uint64_t bloom_key_bytes = 0;
    for (std::size_t i = 0; i < b.entries.size(); ++i) {
      const KlogEntry& e = b.entries[i];
      if (block.size() + wire::PidxEntrySize(e.key) >
          config_.index_block_size) {
        KVCSD_CO_RETURN_IF_ERROR(co_await close_block());
      }
      if (block_count == 0) block_pivot = e.key;
      wire::AppendPidxEntry(&block, e.key, b.new_addrs[i], e.value_len);
      ++block_count;
      if (pipe->bloom != nullptr) {
        pipe->bloom->AddKey(Slice(e.key));
        bloom_key_bytes += e.key.size();
      }

      for (std::size_t spec_index = 0; spec_index < pipe->specs->size();
           ++spec_index) {
        auto skey = ExtractSecondaryKey(Slice(b.values[i]),
                                        (*pipe->specs)[spec_index]);
        if (!skey.ok()) co_return skey.status();
        SidxTuple tuple{std::move(*skey), e.key, b.new_addrs[i], e.value_len};
        KVCSD_CO_RETURN_IF_ERROR(co_await SidxAdd(
            &(*pipe->sidx_states)[spec_index], std::move(tuple)));
      }
    }
    pipe->entries_total += b.entries.size();
    if (pipe->bloom != nullptr && bloom_key_bytes > 0) {
      // Hashing each key into the filter costs about one checksum pass.
      co_await cpu_.ComputeBytes(bloom_key_bytes,
                                 config_.costs.checksum_bytes_per_sec, sim::Activity::kCompact);
    }
    co_return Status::Ok();
  };

  Status result = Status::Ok();
  for (;;) {
    auto item = co_await pipe->channel->Pop();
    if (!item.has_value()) break;
    if (!result.ok()) continue;  // drain so a blocked producer always wakes
    Status s = co_await process(**item);
    if (!s.ok()) {
      result = s;
      pipe->failed = true;
    }
  }
  if (result.ok()) result = co_await close_block();
  if (result.ok()) result = co_await flush_blocks();
  if (!result.ok()) pipe->failed = true;
  co_return result;
}

// ---------------------------------------------------------------------------
// Compaction (optionally fused with secondary-index construction)
// ---------------------------------------------------------------------------

// Failure-handling shell around RunCompaction. Whatever the body
// allocated sits in `scratch`; on any failure the clusters are released
// best-effort (after a power cut the resets fail silently and recovery
// reclaims the orphans from the metadata snapshot instead) and the
// keyspace rolls back to WRITABLE so its logs stay usable. The
// completion event fires on every exit path — a waiter must never hang
// on a failed compaction.
sim::Task<Status> Device::CompactKeyspace(
    Keyspace* ks, std::vector<nvme::SecondaryIndexSpec> fused_specs,
    std::uint64_t trigger_cmd_id) {
  sim::TraceSpan span(sim_, trk_compaction_, "compact");
  span.Arg("keyspace", ks->name);
  span.Arg("fused_indexes", static_cast<std::uint64_t>(fused_specs.size()));
  if (trigger_cmd_id != 0) {
    span.Arg("trigger_cmd_id", trigger_cmd_id);
    if (sim_->tracer().enabled()) {
      // Closes the flow opened by the kCompact command's exec span: the
      // viewer draws client submit -> device exec -> this compaction.
      sim_->tracer().FlowEnd(sim_->tracer().Track(trk_compaction_), "compact",
                             trigger_cmd_id, sim_->Now());
    }
  }
  ++compactions_running_;
  std::vector<ClusterId> scratch;
  Status result = co_await RunCompaction(ks, std::move(fused_specs), &scratch);
  --compactions_running_;
  if (!result.ok()) {
    co_await ReleaseClustersBestEffort(std::move(scratch));
    if (ks->state == KeyspaceState::kCompacting) {
      ks->state = ks->klog_clusters.empty() ? KeyspaceState::kEmpty
                                            : KeyspaceState::kWritable;
    }
    if (faults_ == nullptr || !faults_->crashed()) {
      // Make the rollback durable so a later crash cannot resurrect the
      // COMPACTING state. Best-effort: the snapshot still on flash also
      // rolls back correctly at recovery.
      (void)co_await keyspace_manager_.Persist();
    }
  }
  CompactionDone(ks->id)->Set();
  co_await MaybeFinishPendingDelete(ks);
  co_return result;
}

sim::Task<Status> Device::RunCompaction(
    Keyspace* ks, std::vector<nvme::SecondaryIndexSpec> fused_specs,
    std::vector<ClusterId>* scratch) {
  // Flush whatever is still buffered in DRAM and drain in-flight flush
  // I/O: compaction must observe complete KLOG/VLOG logs.
  {
    sim::Semaphore* lock = WriteLock(ks->id);
    co_await lock->Acquire();
    Status s = co_await FlushBuffer(ks);
    lock->Release();
    if (!s.ok()) co_return s;
    co_await FlushInflight(ks->id)->Wait();
    if (auto it = flush_errors_.find(ks->id);
        it != flush_errors_.end() && !it->second.ok()) {
      Status err = it->second;
      it->second = Status::Ok();
      co_return err;
    }
  }

  // Make the COMPACTING state and the final log extents durable before
  // any output is written: recovery must know to roll this keyspace back
  // and which clusters hold its logs.
  KVCSD_CO_RETURN_IF_ERROR(co_await keyspace_manager_.Persist());

  // The DRAM budget splits between the key sort and any fused index sorts
  // (the paper's stated cost of consolidating index construction).
  const std::uint64_t budget_shares = 1 + fused_specs.size();
  const std::uint64_t run_budget =
      config_.EffectiveSortRunBytes() / budget_shares;

  std::vector<SidxSortState> fused_states(fused_specs.size());
  for (auto& state : fused_states) state.run_budget = run_budget;

  // ---- Phase 1: parallel run generation over the KLOG zones ----
  const Tick phase1_start = sim_->Now();
  std::vector<std::uint32_t> klog_zones;
  for (ClusterId cluster : ks->klog_clusters) {
    for (std::uint32_t zone : zone_manager_.cluster_zones(cluster)) {
      klog_zones.push_back(zone);
    }
  }

  const std::uint64_t gen_budget =
      std::max<std::uint64_t>(run_budget / kRunGenShares, KiB(4));
  const std::uint32_t gen_workers = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max<std::uint32_t>(config_.soc_cores, 1),
                              kRunGenShares));

  std::vector<RunGenOutput> gen_outputs(klog_zones.size());
  auto gen_fn = [&](std::size_t i) -> sim::Task<Status> {
    return GenerateZoneRuns(klog_zones[i], gen_budget, &gen_outputs[i]);
  };
  // ParallelFor joins ALL workers before returning, so every allocated
  // TEMP cluster is visible in gen_outputs even when a worker failed —
  // record them in `scratch` before acting on the status.
  const Status gen_status =
      co_await sim::ParallelFor(sim_, klog_zones.size(), gen_workers, gen_fn);

  // Concatenate in zone order — NOT completion order — so run indexes
  // (the merge tie-break) are reproducible across core counts.
  std::vector<SpilledRun> runs;
  std::vector<ClusterId> temp_clusters;
  for (RunGenOutput& out : gen_outputs) {
    for (SpilledRun& run : out.runs) runs.push_back(std::move(run));
    temp_clusters.insert(temp_clusters.end(), out.temp_clusters.begin(),
                         out.temp_clusters.end());
  }
  scratch->insert(scratch->end(), temp_clusters.begin(), temp_clusters.end());
  KVCSD_CO_RETURN_IF_ERROR(gen_status);
  if (CrashPoint("compact.after_phase1")) {
    co_return Status::IoError("simulated power loss after run generation");
  }
  compaction_stats_.phase1_ticks += sim_->Now() - phase1_start;
  stats()
      .histogram("device.compact.phase1_ns")
      .Record(sim_->Now() - phase1_start);
  if (sim_->tracer().enabled()) {
    sim_->tracer().CompleteSpan(
        sim_->tracer().Track(trk_compaction_), "phase1.run_gen", phase1_start,
        sim_->Now(),
        {{"keyspace", ks->name}, {"runs", std::to_string(runs.size())}});
  }

  // ---- Phase 2: loser-tree merge feeding the index-build stage ----
  const Tick phase2_start = sim_->Now();
  compaction_stats_.max_merge_fanin =
      std::max<std::uint64_t>(compaction_stats_.max_merge_fanin, runs.size());

  RunMerger<KlogMergeTraits> merger(sim_, &ssd_);
  KVCSD_CO_RETURN_IF_ERROR(
      co_await merger.Init(runs, &compaction_stats_.bytes_read));

  std::vector<ClusterId> value_clusters;
  sim::BoundedChannel<std::unique_ptr<ValueBatch>> batches(sim_, 1);
  std::optional<BloomFilterBuilder> bloom;
  if (config_.bloom_bits_per_key > 0) {
    bloom.emplace(static_cast<int>(config_.bloom_bits_per_key));
  }
  PidxPipeline pipe;
  pipe.channel = &batches;
  pipe.specs = &fused_specs;
  pipe.sidx_states = &fused_states;
  pipe.bloom = bloom.has_value() ? &*bloom : nullptr;
  sim::TaskGroup index_stage(sim_);
  index_stage.Spawn(IndexBuildStage(&pipe));

  // Up to three batches can be DRAM-resident at once (one being built,
  // one queued, one being indexed), so each takes a third of the budget.
  const std::uint64_t batch_budget = std::max<std::uint64_t>(
      config_.dram_bytes / 4 / budget_shares / 3, KiB(64));

  // Gathers the batch's values, rewrites them in key order (recording the
  // new addresses), and hands the batch to the index-build stage.
  auto emit_batch = [&](std::unique_ptr<ValueBatch> b) -> sim::Task<Status> {
    if (b->entries.empty()) co_return Status::Ok();
    std::vector<ValueRef> refs;
    refs.reserve(b->entries.size());
    for (const KlogEntry& e : b->entries) {
      refs.push_back(ValueRef{e.value_addr, e.value_len});
    }
    auto values = co_await GatherValues(std::move(refs), sim::Activity::kCompact);
    if (!values.ok()) co_return values.status();
    compaction_stats_.bytes_read += b->value_bytes;
    co_await cpu_.ComputeBytes(b->value_bytes,
                               config_.costs.memcpy_bytes_per_sec, sim::Activity::kCompact);
    b->values = std::move(*values);
    b->new_addrs.assign(b->entries.size(), 0);

    std::string chunk;
    chunk.reserve(config_.output_batch_bytes);
    std::size_t chunk_first = 0;
    auto flush_values = [&](std::size_t upto) -> sim::Task<Status> {
      if (chunk.empty()) co_return Status::Ok();
      co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kCompact);
      auto addr = co_await AppendToChain(&value_clusters,
                                         ZoneType::kSortedValues,
                                         AsBytes(chunk), sim::Activity::kCompact);
      if (!addr.ok()) co_return addr.status();
      compaction_stats_.bytes_written += chunk.size();
      std::uint64_t offset = 0;
      for (std::size_t i = chunk_first; i < upto; ++i) {
        b->new_addrs[i] = *addr + offset;
        offset += b->values[i].size();
      }
      chunk.clear();
      chunk_first = upto;
      co_return Status::Ok();
    };
    for (std::size_t i = 0; i < b->entries.size(); ++i) {
      if (chunk.size() + b->values[i].size() > config_.output_batch_bytes &&
          !chunk.empty()) {
        KVCSD_CO_RETURN_IF_ERROR(co_await flush_values(i));
      }
      chunk += b->values[i];
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await flush_values(b->entries.size()));

    co_await batches.Push(std::move(b));
    co_return Status::Ok();
  };

  Status pipeline_status = Status::Ok();
  {
    auto batch = std::make_unique<ValueBatch>();
    std::uint64_t merged_bytes = 0;
    // Last-writer-wins: the merge yields every version of a key
    // adjacently in ascending mutation-seq order (KlogMergeTraits), so
    // only the final entry of an equal-key group is live. `pending` holds
    // the group's newest version so far; it is admitted when the key
    // changes — unless it is a tombstone, which simply vanishes along
    // with every older version it shadowed.
    std::optional<KlogEntry> pending;
    auto admit = [&](KlogEntry&& entry) -> sim::Task<Status> {
      batch->value_bytes += entry.value_len;
      batch->entries.push_back(std::move(entry));
      if (batch->value_bytes >= batch_budget) {
        Status emitted = co_await emit_batch(std::move(batch));
        batch = std::make_unique<ValueBatch>();
        KVCSD_CO_RETURN_IF_ERROR(emitted);
      }
      co_return Status::Ok();
    };
    while (!merger.Empty() && !pipe.failed) {
      KlogEntry entry;
      Status s = co_await merger.Pop(&entry);
      if (!s.ok()) {
        pipeline_status = s;
        break;
      }
      merged_bytes += entry.key.size() + 12;
      if (merged_bytes >= MiB(1)) {
        co_await cpu_.ComputeBytes(merged_bytes,
                                   config_.costs.merge_bytes_per_sec, sim::Activity::kCompact);
        merged_bytes = 0;
      }
      if (pending.has_value() && pending->key != entry.key &&
          !pending->tombstone) {
        Status admitted = co_await admit(std::move(*pending));
        if (!admitted.ok()) {
          pipeline_status = admitted;
          break;
        }
      }
      pending = std::move(entry);
    }
    if (pipeline_status.ok() && !pipe.failed) {
      if (pending.has_value() && !pending->tombstone) {
        pipeline_status = co_await admit(std::move(*pending));
      }
      if (merged_bytes > 0) {
        co_await cpu_.ComputeBytes(merged_bytes,
                                   config_.costs.merge_bytes_per_sec, sim::Activity::kCompact);
      }
      if (pipeline_status.ok()) {
        pipeline_status = co_await emit_batch(std::move(batch));
      }
    }
  }
  // Always close + join: the consumer must see end-of-stream even on the
  // error paths, or one side would wait forever. With both stages joined,
  // every cluster the pipeline allocated is visible — record them before
  // acting on either status.
  batches.Close();
  Status index_status = co_await index_stage.Wait();
  scratch->insert(scratch->end(), value_clusters.begin(),
                  value_clusters.end());
  scratch->insert(scratch->end(), pipe.pidx_clusters.begin(),
                  pipe.pidx_clusters.end());
  for (const SidxSortState& state : fused_states) {
    scratch->insert(scratch->end(), state.temp_clusters.begin(),
                    state.temp_clusters.end());
  }
  KVCSD_CO_RETURN_IF_ERROR(pipeline_status);
  KVCSD_CO_RETURN_IF_ERROR(index_status);

  // ---- Fused secondary indexes: concurrent per-spec merges ----
  std::map<std::string, SecondaryIndex> fused_indexes;
  if (!fused_specs.empty()) {
    std::vector<SecondaryIndex> fused_out(fused_specs.size());
    sim::TaskGroup merges(sim_);
    for (std::size_t i = 0; i < fused_specs.size(); ++i) {
      merges.Spawn(
          SidxMergeToBlocks(&fused_states[i], fused_specs[i], &fused_out[i]));
    }
    const Status merge_status = co_await merges.Wait();
    // The merges may have spilled more TEMP clusters and written SIDX
    // output; duplicates with the release above are harmless (cluster ids
    // are never reused, a double release is an ignored NotFound).
    for (const SidxSortState& state : fused_states) {
      scratch->insert(scratch->end(), state.temp_clusters.begin(),
                      state.temp_clusters.end());
    }
    for (const SecondaryIndex& sidx : fused_out) {
      scratch->insert(scratch->end(), sidx.sidx_clusters.begin(),
                      sidx.sidx_clusters.end());
    }
    KVCSD_CO_RETURN_IF_ERROR(merge_status);
    for (std::size_t i = 0; i < fused_specs.size(); ++i) {
      fused_indexes[fused_specs[i].name] = std::move(fused_out[i]);
    }
  }
  compaction_stats_.phase2_ticks += sim_->Now() - phase2_start;
  stats()
      .histogram("device.compact.phase2_ns")
      .Record(sim_->Now() - phase2_start);
  if (sim_->tracer().enabled()) {
    sim_->tracer().CompleteSpan(
        sim_->tracer().Track(trk_compaction_), "phase2.merge_index",
        phase2_start,
        sim_->Now(),
        {{"keyspace", ks->name}, {"fanin", std::to_string(runs.size())}});
  }

  // ---- Commit ----
  // Phase-1 temporaries are dead weight either way; drop them first.
  co_await ReleaseClustersBestEffort(std::move(temp_clusters));
  if (CrashPoint("compact.before_commit")) {
    co_return Status::IoError("simulated power loss before commit");
  }

  // Install the outputs and persist — the commit point. The snapshot is
  // written while the OLD log clusters are still allocated, so whichever
  // snapshot recovery loads, every cluster it references exists; the
  // stale side only ever leaks clusters (reclaimed as unreferenced),
  // never dangles. On a persist failure, un-install symmetrically and
  // report the compaction as failed.
  std::vector<ClusterId> old_klog = std::move(ks->klog_clusters);
  std::vector<ClusterId> old_vlog = std::move(ks->vlog_clusters);
  const std::uint64_t old_klog_bytes = ks->klog_bytes;
  const std::uint64_t old_vlog_bytes = ks->vlog_bytes;
  const std::uint64_t old_num_kvs = ks->num_kvs;
  const std::uint64_t old_run_entries = ks->run_entries;
  ks->klog_clusters.clear();
  ks->vlog_clusters.clear();
  ks->klog_bytes = 0;
  ks->vlog_bytes = 0;
  ks->pidx_clusters = std::move(pipe.pidx_clusters);
  ks->sorted_value_clusters = std::move(value_clusters);
  ks->pidx_sketch = std::move(pipe.sketch);
  // The bloom filter rides the same snapshot as the sketch, so recovery
  // restores both or neither; empty when bloom is disabled.
  ks->pidx_bloom = bloom.has_value() ? bloom->Finish() : std::string();
  // After the LWW pass, entries_total is the exact count of distinct live
  // keys in the run (duplicates collapsed, tombstone winners dropped).
  ks->num_kvs = pipe.entries_total;
  ks->run_entries = pipe.entries_total;
  ks->delta_index.clear();
  ks->delta_live = 0;
  ks->secondary_indexes = std::move(fused_indexes);
  ks->state = KeyspaceState::kCompacted;
  Status commit = co_await keyspace_manager_.Persist();
  if (!commit.ok()) {
    ks->pidx_clusters.clear();
    ks->sorted_value_clusters.clear();
    ks->pidx_sketch.clear();
    ks->pidx_bloom.clear();
    ks->secondary_indexes.clear();
    ks->klog_clusters = std::move(old_klog);
    ks->vlog_clusters = std::move(old_vlog);
    ks->klog_bytes = old_klog_bytes;
    ks->vlog_bytes = old_vlog_bytes;
    ks->num_kvs = old_num_kvs;
    ks->run_entries = old_run_entries;
    ks->state = KeyspaceState::kCompacting;
    co_return commit;
  }
  ++compactions_done_;
  scratch->clear();  // the outputs are now owned by the durable snapshot
  // Any cached index blocks for this keyspace id predate the new PIDX
  // layout (possible only on re-compaction after a rollback); drop them so
  // queries can never read a stale block through the cache.
  index_cache_.EraseKeyspace(ks->id);

  // Past the commit point the compaction HAS happened; a crash here loses
  // nothing (recovery reclaims the old logs as unreferenced clusters) and
  // the release below is best-effort for the same reason.
  (void)CrashPoint("compact.after_commit");
  co_await ReleaseClustersBestEffort(std::move(old_klog));
  co_await ReleaseClustersBestEffort(std::move(old_vlog));
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// Separate secondary-index construction (the paper's implemented design)
// ---------------------------------------------------------------------------

sim::Task<Status> Device::BuildSecondaryIndex(
    Keyspace* ks, const nvme::SecondaryIndexSpec& spec) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition(
        "secondary indexes attach to COMPACTED keyspaces only");
  }
  if (spec.name.empty()) {
    co_return Status::InvalidArgument("secondary index needs a name");
  }
  if (ks->secondary_indexes.contains(spec.name)) {
    co_return Status::AlreadyExists("secondary index exists: " + spec.name);
  }

  SidxSortState state;
  state.run_budget = config_.EffectiveSortRunBytes();
  SecondaryIndex sidx;
  Status result = co_await BuildSecondaryIndexInner(ks, spec, &state, &sidx);
  if (result.ok()) {
    ks->secondary_indexes[spec.name] = std::move(sidx);
    result = co_await keyspace_manager_.Persist();
    if (result.ok()) co_return result;
    // Persist failed: the index exists in DRAM only; un-install so the
    // live table matches what a restart would recover, then fall through
    // to release its clusters.
    sidx = std::move(ks->secondary_indexes[spec.name]);
    ks->secondary_indexes.erase(spec.name);
  }
  std::vector<ClusterId> doomed = std::move(state.temp_clusters);
  doomed.insert(doomed.end(), sidx.sidx_clusters.begin(),
                sidx.sidx_clusters.end());
  co_await ReleaseClustersBestEffort(std::move(doomed));
  co_return result;
}

sim::Task<Status> Device::BuildSecondaryIndexInner(
    Keyspace* ks, const nvme::SecondaryIndexSpec& spec, SidxSortState* state,
    SecondaryIndex* out) {
  // Step 1 (paper): full scan extracting <skey, pkey> pairs. Walk PIDX
  // blocks via the sketch; gather values batch-wise; extract.
  std::vector<ValueRef> batch_refs;
  std::vector<std::pair<std::string, std::uint64_t>> batch_meta;
  std::vector<std::uint32_t> batch_lens;
  std::uint64_t batch_bytes = 0;

  auto process_scan_batch = [&]() -> sim::Task<Status> {
    if (batch_refs.empty()) co_return Status::Ok();
    auto values = co_await GatherValues(batch_refs, sim::Activity::kCompact);
    if (!values.ok()) co_return values.status();
    co_await cpu_.ComputeBytes(batch_bytes,
                               config_.costs.extract_bytes_per_sec, sim::Activity::kCompact);
    for (std::size_t i = 0; i < values->size(); ++i) {
      auto skey = ExtractSecondaryKey(Slice((*values)[i]), spec);
      if (!skey.ok()) co_return skey.status();
      SidxTuple tuple{std::move(*skey), batch_meta[i].first,
                      batch_meta[i].second, batch_lens[i]};
      KVCSD_CO_RETURN_IF_ERROR(co_await SidxAdd(state, std::move(tuple)));
    }
    batch_refs.clear();
    batch_meta.clear();
    batch_lens.clear();
    batch_bytes = 0;
    co_return Status::Ok();
  };

  for (const SketchEntry& block_ref : ks->pidx_sketch) {
    auto block = co_await ReadIndexBlock(ks->id, block_ref, sim::Activity::kCompact);
    if (!block.ok()) co_return block.status();
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      co_return Status::Corruption("undersized PIDX block during sidx scan");
    }
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::PidxEntry entry;
      if (!wire::ParsePidxEntry(&in, &entry)) {
        co_return Status::Corruption("bad PIDX entry during sidx scan");
      }
      batch_refs.push_back(ValueRef{entry.vaddr, entry.vlen});
      batch_meta.emplace_back(entry.key.ToString(), entry.vaddr);
      batch_lens.push_back(entry.vlen);
      batch_bytes += entry.vlen;
      if (batch_bytes >= config_.dram_bytes / 4) {
        KVCSD_CO_RETURN_IF_ERROR(co_await process_scan_batch());
      }
    }
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await process_scan_batch());

  // Step 2: merge runs into SIDX blocks + sketch.
  co_return co_await SidxMergeToBlocks(state, spec, out);
}

}  // namespace kvcsd::device
