// Deferred compaction and secondary-index construction (paper §V).
//
// Compaction sorts a keyspace in two steps, exactly as the paper
// describes: (1) sort the keys — an external merge sort whose run size is
// bounded by SoC DRAM, with intermediate runs stored in temporarily
// allocated TEMP zone clusters; (2) use the sorted keys to sort the values
// — a DRAM-batched external permutation that gathers values with
// address-coalesced reads and streams them out in key order. The result is
// the SORTED_VALUES + PIDX clusters and an in-memory pivot sketch (one
// entry per 4 KB PIDX block) kept in the keyspace table.
//
// Secondary indexes are built either separately (the paper's implemented
// design: a full scan of the compacted keyspace, extract, external sort)
// or fused into the compaction pass (the paper's §V future-work variant:
// keys are extracted while the values are already in DRAM during phase 2,
// skipping the re-read at the cost of extra DRAM pressure).
#include <algorithm>
#include <cstring>

#include "common/keys.h"
#include "kvcsd/device.h"
#include "kvcsd/wire.h"
#include "nvme/skey.h"

namespace kvcsd::device {

namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

// Order-preserving encoding of the secondary key bytes found in a value.
Result<std::string> ExtractSecondaryKey(const Slice& value,
                                        const nvme::SecondaryIndexSpec& spec) {
  if (spec.value_offset + spec.value_length > value.size()) {
    return Status::InvalidArgument("secondary key range beyond value");
  }
  return nvme::EncodeSecondaryKeyBytes(
      Slice(value.data() + spec.value_offset, spec.value_length), spec);
}

}  // namespace

sim::Task<Status> Device::ParseKlogZone(std::uint32_t zone,
                                        std::vector<KlogEntry>* out) {
  const std::uint64_t extent = ssd_.write_pointer(zone);
  if (extent == 0) co_return Status::Ok();
  std::string payload(extent, '\0');
  KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Read(
      static_cast<std::uint64_t>(zone) * ssd_.zone_size(),
      std::span<std::byte>(reinterpret_cast<std::byte*>(payload.data()),
                           payload.size())));
  Slice in(payload);
  while (!in.empty()) {
    wire::ParsedKlogEntry entry;
    if (!wire::ParseKlogEntry(&in, &entry)) {
      co_return Status::Corruption("bad KLOG entry");
    }
    out->push_back(
        KlogEntry{entry.key.ToString(), entry.vaddr, entry.vlen});
  }
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// SIDX external sort (shared by the separate and fused index builds)
// ---------------------------------------------------------------------------

sim::Task<Status> Device::SidxSpill(SidxSortState* state) {
  if (state->current.empty()) co_return Status::Ok();
  co_await cpu_.ComputeBytes(state->current_bytes,
                             config_.costs.merge_bytes_per_sec);
  std::sort(state->current.begin(), state->current.end(),
            [](const SidxTuple& a, const SidxTuple& b) {
              if (a.skey != b.skey) return a.skey < b.skey;
              return a.pkey < b.pkey;
            });
  SpilledRun spilled;
  std::string chunk;
  auto flush_chunk = [&]() -> sim::Task<Status> {
    if (chunk.empty()) co_return Status::Ok();
    co_await cpu_.Compute(config_.costs.io_path_overhead);
    auto addr = co_await AppendToChain(&state->temp_clusters,
                                       ZoneType::kTemp, AsBytes(chunk));
    if (!addr.ok()) co_return addr.status();
    spilled.segments.emplace_back(*addr,
                                  static_cast<std::uint32_t>(chunk.size()));
    chunk.clear();
    co_return Status::Ok();
  };
  for (const SidxTuple& t : state->current) {
    if (chunk.size() + wire::SidxEntrySize(t.skey, t.pkey) >
        config_.output_batch_bytes) {
      KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
    }
    wire::AppendSidxEntry(&chunk, t.skey, t.pkey, t.vaddr, t.vlen);
    ++spilled.entries;
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
  state->runs.push_back(std::move(spilled));
  state->current.clear();
  state->current_bytes = 0;
  co_return Status::Ok();
}

sim::Task<Status> Device::SidxAdd(SidxSortState* state, SidxTuple tuple) {
  state->current_bytes += tuple.skey.size() + tuple.pkey.size() + 12;
  state->current.push_back(std::move(tuple));
  if (state->current_bytes >= state->run_budget) {
    KVCSD_CO_RETURN_IF_ERROR(co_await SidxSpill(state));
  }
  co_return Status::Ok();
}

sim::Task<Result<SecondaryIndex>> Device::SidxMergeToBlocks(
    SidxSortState* state, const nvme::SecondaryIndexSpec& spec) {
  KVCSD_CO_RETURN_IF_ERROR(co_await SidxSpill(state));

  struct RunReader {
    Device* device;
    const SpilledRun* run;
    std::size_t segment = 0;
    std::string buffer;
    Slice cursor;
    SidxTuple head;
    bool valid = false;

    sim::Task<Status> Advance() {
      while (true) {
        if (!cursor.empty()) {
          wire::SidxEntry e;
          if (!wire::ParseSidxEntry(&cursor, &e)) {
            co_return Status::Corruption("bad TEMP sidx entry");
          }
          head = SidxTuple{e.skey.ToString(), e.pkey.ToString(), e.vaddr,
                           e.vlen};
          valid = true;
          co_return Status::Ok();
        }
        if (segment >= run->segments.size()) {
          valid = false;
          co_return Status::Ok();
        }
        const auto [addr, len] = run->segments[segment++];
        buffer.assign(len, '\0');
        KVCSD_CO_RETURN_IF_ERROR(co_await device->ssd_.Read(
            addr, std::span<std::byte>(
                      reinterpret_cast<std::byte*>(buffer.data()),
                      buffer.size())));
        cursor = Slice(buffer);
      }
    }
  };

  std::vector<std::unique_ptr<RunReader>> readers;
  for (const SpilledRun& run : state->runs) {
    auto reader = std::make_unique<RunReader>();
    reader->device = this;
    reader->run = &run;
    KVCSD_CO_RETURN_IF_ERROR(co_await reader->Advance());
    if (reader->valid) readers.push_back(std::move(reader));
  }

  SecondaryIndex sidx;
  sidx.spec = spec;
  std::string block;
  wire::BeginIndexBlock(&block);
  std::uint16_t block_count = 0;
  std::string block_pivot;
  std::vector<std::pair<std::string, std::string>> pending_blocks;
  std::uint64_t pending_bytes = 0;

  auto flush_blocks = [&]() -> sim::Task<Status> {
    if (pending_blocks.empty()) co_return Status::Ok();
    std::string blob;
    blob.reserve(pending_bytes);
    for (const auto& [pivot, b] : pending_blocks) blob += b;
    co_await cpu_.Compute(config_.costs.io_path_overhead);
    auto addr = co_await AppendToChain(&sidx.sidx_clusters, ZoneType::kSidx,
                                       AsBytes(blob));
    if (!addr.ok()) co_return addr.status();
    for (std::size_t i = 0; i < pending_blocks.size(); ++i) {
      sidx.sketch.push_back(SketchEntry{
          pending_blocks[i].first,
          *addr + i * config_.index_block_size, config_.index_block_size});
    }
    pending_blocks.clear();
    pending_bytes = 0;
    co_return Status::Ok();
  };

  auto close_block = [&]() -> sim::Task<Status> {
    if (block_count == 0) co_return Status::Ok();
    wire::FinishIndexBlock(&block, block_count, config_.index_block_size);
    pending_blocks.emplace_back(std::move(block_pivot), std::move(block));
    pending_bytes += config_.index_block_size;
    wire::BeginIndexBlock(&block);
    block_count = 0;
    block_pivot.clear();
    if (pending_bytes >= config_.output_batch_bytes) {
      KVCSD_CO_RETURN_IF_ERROR(co_await flush_blocks());
    }
    co_return Status::Ok();
  };

  std::uint64_t merged = 0;
  while (!readers.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < readers.size(); ++i) {
      if (readers[i]->head.skey < readers[best]->head.skey ||
          (readers[i]->head.skey == readers[best]->head.skey &&
           readers[i]->head.pkey < readers[best]->head.pkey)) {
        best = i;
      }
    }
    SidxTuple t = std::move(readers[best]->head);
    Status s = co_await readers[best]->Advance();
    if (!s.ok()) co_return s;
    if (!readers[best]->valid) {
      readers.erase(readers.begin() + static_cast<std::ptrdiff_t>(best));
    }

    merged += t.skey.size() + t.pkey.size() + 12;
    if (merged >= MiB(1)) {
      co_await cpu_.ComputeBytes(merged, config_.costs.merge_bytes_per_sec);
      merged = 0;
    }
    if (block.size() + wire::SidxEntrySize(t.skey, t.pkey) >
        config_.index_block_size) {
      KVCSD_CO_RETURN_IF_ERROR(co_await close_block());
    }
    if (block_count == 0) block_pivot = t.skey;
    wire::AppendSidxEntry(&block, t.skey, t.pkey, t.vaddr, t.vlen);
    ++block_count;
    ++sidx.entries;
  }
  if (merged > 0) {
    co_await cpu_.ComputeBytes(merged, config_.costs.merge_bytes_per_sec);
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await close_block());
  KVCSD_CO_RETURN_IF_ERROR(co_await flush_blocks());

  for (ClusterId id : state->temp_clusters) {
    KVCSD_CO_RETURN_IF_ERROR(co_await zone_manager_.ReleaseCluster(id));
  }
  state->temp_clusters.clear();
  state->runs.clear();
  co_return sidx;
}

// ---------------------------------------------------------------------------
// Compaction (optionally fused with secondary-index construction)
// ---------------------------------------------------------------------------

sim::Task<Status> Device::CompactKeyspace(
    Keyspace* ks, std::vector<nvme::SecondaryIndexSpec> fused_specs) {
  // Flush whatever is still buffered in DRAM and drain in-flight flush
  // I/O: compaction must observe complete KLOG/VLOG logs.
  {
    sim::Semaphore* lock = WriteLock(ks->id);
    co_await lock->Acquire();
    Status s = co_await FlushBuffer(ks);
    lock->Release();
    if (!s.ok()) co_return s;
    co_await FlushInflight(ks->id)->Wait();
    if (auto it = flush_errors_.find(ks->id);
        it != flush_errors_.end() && !it->second.ok()) {
      co_return it->second;
    }
  }

  // The DRAM budget splits between the key sort and any fused index sorts
  // (the paper's stated cost of consolidating index construction).
  const std::uint64_t budget_shares = 1 + fused_specs.size();
  const std::uint64_t run_budget =
      config_.EffectiveSortRunBytes() / budget_shares;
  std::vector<ClusterId> temp_clusters;

  std::vector<SidxSortState> fused_states(fused_specs.size());
  for (auto& state : fused_states) state.run_budget = run_budget;

  // ---- Phase 1: sort the keys (external merge sort) ----
  std::vector<SpilledRun> runs;
  std::vector<KlogEntry> current;
  std::uint64_t current_bytes = 0;

  auto spill_current = [&]() -> sim::Task<Status> {
    if (current.empty()) co_return Status::Ok();
    co_await cpu_.ComputeBytes(current_bytes,
                               config_.costs.merge_bytes_per_sec);
    std::sort(current.begin(), current.end(),
              [](const KlogEntry& a, const KlogEntry& b) {
                return a.key < b.key;
              });
    SpilledRun spilled;
    std::string chunk;
    chunk.reserve(config_.output_batch_bytes);
    auto flush_chunk = [&]() -> sim::Task<Status> {
      if (chunk.empty()) co_return Status::Ok();
      co_await cpu_.Compute(config_.costs.io_path_overhead);
      auto addr = co_await AppendToChain(&temp_clusters, ZoneType::kTemp,
                                         AsBytes(chunk));
      if (!addr.ok()) co_return addr.status();
      spilled.segments.emplace_back(*addr,
                                    static_cast<std::uint32_t>(chunk.size()));
      chunk.clear();
      co_return Status::Ok();
    };
    for (const KlogEntry& e : current) {
      if (chunk.size() + e.key.size() + 20 > config_.output_batch_bytes) {
        KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
      }
      wire::AppendKlogEntry(&chunk, e.key, e.value_addr, e.value_len);
      ++spilled.entries;
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await flush_chunk());
    runs.push_back(std::move(spilled));
    current.clear();
    current_bytes = 0;
    co_return Status::Ok();
  };

  for (ClusterId cluster : ks->klog_clusters) {
    for (std::uint32_t zone : zone_manager_.cluster_zones(cluster)) {
      std::vector<KlogEntry> zone_entries;
      KVCSD_CO_RETURN_IF_ERROR(co_await ParseKlogZone(zone, &zone_entries));
      for (KlogEntry& e : zone_entries) {
        current_bytes += e.key.size() + 12;
        current.push_back(std::move(e));
        if (current_bytes >= run_budget) {
          KVCSD_CO_RETURN_IF_ERROR(co_await spill_current());
        }
      }
    }
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await spill_current());

  // ---- Merge the key runs while streaming phase 2 ----
  struct RunReader {
    Device* device;
    const SpilledRun* run;
    std::size_t segment = 0;
    std::string buffer;
    Slice cursor;
    KlogEntry head;
    bool valid = false;

    sim::Task<Status> Advance() {
      while (true) {
        if (!cursor.empty()) {
          wire::ParsedKlogEntry e;
          if (!wire::ParseKlogEntry(&cursor, &e)) {
            co_return Status::Corruption("bad TEMP run entry");
          }
          head = KlogEntry{e.key.ToString(), e.vaddr, e.vlen};
          valid = true;
          co_return Status::Ok();
        }
        if (segment >= run->segments.size()) {
          valid = false;
          co_return Status::Ok();
        }
        const auto [addr, len] = run->segments[segment++];
        buffer.assign(len, '\0');
        KVCSD_CO_RETURN_IF_ERROR(co_await device->ssd_.Read(
            addr, std::span<std::byte>(
                      reinterpret_cast<std::byte*>(buffer.data()),
                      buffer.size())));
        cursor = Slice(buffer);
      }
    }
  };

  std::vector<std::unique_ptr<RunReader>> readers;
  for (const SpilledRun& run : runs) {
    auto reader = std::make_unique<RunReader>();
    reader->device = this;
    reader->run = &run;
    KVCSD_CO_RETURN_IF_ERROR(co_await reader->Advance());
    if (reader->valid) readers.push_back(std::move(reader));
  }

  // ---- Phase 2 state: batched value permutation + output building ----
  std::vector<SketchEntry> sketch;
  std::vector<ClusterId> pidx_clusters;
  std::vector<ClusterId> value_clusters;
  std::uint64_t total_entries = 0;

  std::vector<KlogEntry> batch;
  std::uint64_t batch_value_bytes = 0;
  const std::uint64_t batch_budget = config_.dram_bytes / 4 / budget_shares;

  std::string pidx_block;
  wire::BeginIndexBlock(&pidx_block);
  std::uint16_t pidx_block_count = 0;
  std::string pidx_pivot;
  std::vector<std::pair<std::string, std::string>> pending_blocks;
  std::uint64_t pending_blocks_bytes = 0;

  auto flush_pending_blocks = [&]() -> sim::Task<Status> {
    if (pending_blocks.empty()) co_return Status::Ok();
    std::string blob;
    blob.reserve(pending_blocks_bytes);
    for (const auto& [pivot, block] : pending_blocks) blob += block;
    co_await cpu_.Compute(config_.costs.io_path_overhead);
    auto addr = co_await AppendToChain(&pidx_clusters, ZoneType::kPidx,
                                       AsBytes(blob));
    if (!addr.ok()) co_return addr.status();
    for (std::size_t i = 0; i < pending_blocks.size(); ++i) {
      sketch.push_back(SketchEntry{
          pending_blocks[i].first,
          *addr + i * config_.index_block_size, config_.index_block_size});
    }
    pending_blocks.clear();
    pending_blocks_bytes = 0;
    co_return Status::Ok();
  };

  auto close_pidx_block = [&]() -> sim::Task<Status> {
    if (pidx_block_count == 0) co_return Status::Ok();
    wire::FinishIndexBlock(&pidx_block, pidx_block_count,
                           config_.index_block_size);
    pending_blocks.emplace_back(std::move(pidx_pivot),
                                std::move(pidx_block));
    pending_blocks_bytes += config_.index_block_size;
    wire::BeginIndexBlock(&pidx_block);
    pidx_block_count = 0;
    pidx_pivot.clear();
    if (pending_blocks_bytes >= config_.output_batch_bytes) {
      KVCSD_CO_RETURN_IF_ERROR(co_await flush_pending_blocks());
    }
    co_return Status::Ok();
  };

  auto process_batch = [&]() -> sim::Task<Status> {
    if (batch.empty()) co_return Status::Ok();
    std::vector<ValueRef> refs;
    refs.reserve(batch.size());
    for (const KlogEntry& e : batch) {
      refs.push_back(ValueRef{e.value_addr, e.value_len});
    }
    auto values = co_await GatherValues(std::move(refs));
    if (!values.ok()) co_return values.status();
    co_await cpu_.ComputeBytes(batch_value_bytes,
                               config_.costs.memcpy_bytes_per_sec);

    // Emit values in key order, packing whole values per append.
    std::string chunk;
    chunk.reserve(config_.output_batch_bytes);
    std::vector<std::uint64_t> new_addrs(batch.size());
    std::size_t chunk_first = 0;
    auto flush_values = [&](std::size_t upto) -> sim::Task<Status> {
      if (chunk.empty()) co_return Status::Ok();
      co_await cpu_.Compute(config_.costs.io_path_overhead);
      auto addr = co_await AppendToChain(&value_clusters,
                                         ZoneType::kSortedValues,
                                         AsBytes(chunk));
      if (!addr.ok()) co_return addr.status();
      std::uint64_t offset = 0;
      for (std::size_t i = chunk_first; i < upto; ++i) {
        new_addrs[i] = *addr + offset;
        offset += (*values)[i].size();
      }
      chunk.clear();
      chunk_first = upto;
      co_return Status::Ok();
    };
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (chunk.size() + (*values)[i].size() > config_.output_batch_bytes &&
          !chunk.empty()) {
        KVCSD_CO_RETURN_IF_ERROR(co_await flush_values(i));
      }
      chunk += (*values)[i];
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await flush_values(batch.size()));

    // PIDX entries for the batch, plus fused secondary-key extraction
    // while the value bytes are in DRAM anyway (no keyspace re-read).
    if (!fused_specs.empty()) {
      co_await cpu_.ComputeBytes(batch_value_bytes,
                                 config_.costs.extract_bytes_per_sec);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const KlogEntry& e = batch[i];
      if (pidx_block.size() + wire::PidxEntrySize(e.key) >
          config_.index_block_size) {
        KVCSD_CO_RETURN_IF_ERROR(co_await close_pidx_block());
      }
      if (pidx_block_count == 0) pidx_pivot = e.key;
      wire::AppendPidxEntry(&pidx_block, e.key, new_addrs[i], e.value_len);
      ++pidx_block_count;

      for (std::size_t spec_index = 0; spec_index < fused_specs.size();
           ++spec_index) {
        auto skey =
            ExtractSecondaryKey(Slice((*values)[i]), fused_specs[spec_index]);
        if (!skey.ok()) co_return skey.status();
        SidxTuple tuple{std::move(*skey), e.key, new_addrs[i], e.value_len};
        KVCSD_CO_RETURN_IF_ERROR(
            co_await SidxAdd(&fused_states[spec_index], std::move(tuple)));
      }
    }
    total_entries += batch.size();
    batch.clear();
    batch_value_bytes = 0;
    co_return Status::Ok();
  };

  std::uint64_t merged_bytes = 0;
  while (!readers.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < readers.size(); ++i) {
      if (readers[i]->head.key < readers[best]->head.key) best = i;
    }
    KlogEntry entry = std::move(readers[best]->head);
    Status s = co_await readers[best]->Advance();
    if (!s.ok()) co_return s;
    if (!readers[best]->valid) {
      readers.erase(readers.begin() + static_cast<std::ptrdiff_t>(best));
    }

    merged_bytes += entry.key.size() + 12;
    if (merged_bytes >= MiB(1)) {
      co_await cpu_.ComputeBytes(merged_bytes,
                                 config_.costs.merge_bytes_per_sec);
      merged_bytes = 0;
    }
    batch_value_bytes += entry.value_len;
    batch.push_back(std::move(entry));
    if (batch_value_bytes >= batch_budget) {
      KVCSD_CO_RETURN_IF_ERROR(co_await process_batch());
    }
  }
  if (merged_bytes > 0) {
    co_await cpu_.ComputeBytes(merged_bytes,
                               config_.costs.merge_bytes_per_sec);
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await process_batch());
  KVCSD_CO_RETURN_IF_ERROR(co_await close_pidx_block());
  KVCSD_CO_RETURN_IF_ERROR(co_await flush_pending_blocks());

  // ---- Fused secondary indexes: merge their runs into SIDX blocks ----
  std::map<std::string, SecondaryIndex> fused_indexes;
  for (std::size_t i = 0; i < fused_specs.size(); ++i) {
    auto sidx = co_await SidxMergeToBlocks(&fused_states[i], fused_specs[i]);
    if (!sidx.ok()) co_return sidx.status();
    fused_indexes[fused_specs[i].name] = std::move(*sidx);
  }

  // ---- Install results, release inputs and temporaries ----
  for (ClusterId id : temp_clusters) {
    KVCSD_CO_RETURN_IF_ERROR(co_await zone_manager_.ReleaseCluster(id));
  }
  for (ClusterId id : ks->klog_clusters) {
    KVCSD_CO_RETURN_IF_ERROR(co_await zone_manager_.ReleaseCluster(id));
  }
  for (ClusterId id : ks->vlog_clusters) {
    KVCSD_CO_RETURN_IF_ERROR(co_await zone_manager_.ReleaseCluster(id));
  }
  ks->klog_clusters.clear();
  ks->vlog_clusters.clear();
  ks->klog_bytes = 0;
  ks->vlog_bytes = 0;
  ks->pidx_clusters = std::move(pidx_clusters);
  ks->sorted_value_clusters = std::move(value_clusters);
  ks->pidx_sketch = std::move(sketch);
  ks->num_kvs = total_entries;
  ks->secondary_indexes = std::move(fused_indexes);
  ks->state = KeyspaceState::kCompacted;
  ++compactions_done_;
  KVCSD_CO_RETURN_IF_ERROR(co_await keyspace_manager_.Persist());
  CompactionDone(ks->id)->Set();

  if (ks->pending_delete) {
    ks->pending_delete = false;
    co_return co_await DropKeyspace(ks);
  }
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// Separate secondary-index construction (the paper's implemented design)
// ---------------------------------------------------------------------------

sim::Task<Status> Device::BuildSecondaryIndex(
    Keyspace* ks, const nvme::SecondaryIndexSpec& spec) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition(
        "secondary indexes attach to COMPACTED keyspaces only");
  }
  if (spec.name.empty()) {
    co_return Status::InvalidArgument("secondary index needs a name");
  }
  if (ks->secondary_indexes.contains(spec.name)) {
    co_return Status::AlreadyExists("secondary index exists: " + spec.name);
  }

  SidxSortState state;
  state.run_budget = config_.EffectiveSortRunBytes();

  // Step 1 (paper): full scan extracting <skey, pkey> pairs. Walk PIDX
  // blocks via the sketch; gather values batch-wise; extract.
  std::vector<ValueRef> batch_refs;
  std::vector<std::pair<std::string, std::uint64_t>> batch_meta;
  std::vector<std::uint32_t> batch_lens;
  std::uint64_t batch_bytes = 0;

  auto process_scan_batch = [&]() -> sim::Task<Status> {
    if (batch_refs.empty()) co_return Status::Ok();
    auto values = co_await GatherValues(batch_refs);
    if (!values.ok()) co_return values.status();
    co_await cpu_.ComputeBytes(batch_bytes,
                               config_.costs.extract_bytes_per_sec);
    for (std::size_t i = 0; i < values->size(); ++i) {
      auto skey = ExtractSecondaryKey(Slice((*values)[i]), spec);
      if (!skey.ok()) co_return skey.status();
      SidxTuple tuple{std::move(*skey), batch_meta[i].first,
                      batch_meta[i].second, batch_lens[i]};
      KVCSD_CO_RETURN_IF_ERROR(co_await SidxAdd(&state, std::move(tuple)));
    }
    batch_refs.clear();
    batch_meta.clear();
    batch_lens.clear();
    batch_bytes = 0;
    co_return Status::Ok();
  };

  for (const SketchEntry& block_ref : ks->pidx_sketch) {
    auto block = co_await ReadIndexBlock(block_ref);
    if (!block.ok()) co_return block.status();
    Slice in(block->data() + 2, block->size() - 2);
    const std::uint16_t count = DecodeFixed16(block->data());
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::PidxEntry entry;
      if (!wire::ParsePidxEntry(&in, &entry)) {
        co_return Status::Corruption("bad PIDX entry during sidx scan");
      }
      batch_refs.push_back(ValueRef{entry.vaddr, entry.vlen});
      batch_meta.emplace_back(entry.key.ToString(), entry.vaddr);
      batch_lens.push_back(entry.vlen);
      batch_bytes += entry.vlen;
      if (batch_bytes >= config_.dram_bytes / 4) {
        KVCSD_CO_RETURN_IF_ERROR(co_await process_scan_batch());
      }
    }
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await process_scan_batch());

  // Step 2: merge runs into SIDX blocks + sketch.
  auto sidx = co_await SidxMergeToBlocks(&state, spec);
  if (!sidx.ok()) co_return sidx.status();
  ks->secondary_indexes[spec.name] = std::move(*sidx);
  co_return co_await keyspace_manager_.Persist();
}

}  // namespace kvcsd::device
