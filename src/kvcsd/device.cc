#include "kvcsd/device.h"

#include <algorithm>

#include "common/coding.h"
#include "kvcsd/wire.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "sim/tracer.h"

namespace kvcsd::device {

namespace {

// Opcodes whose handlers run with a resolved, pinned keyspace. Everything
// else reaching Dispatch's default branch is unknown and must fail
// Unimplemented before any keyspace-id lookup can turn it into NotFound.
bool IsKeyspaceScoped(nvme::Opcode op) {
  switch (op) {
    case nvme::Opcode::kKvStore:
    case nvme::Opcode::kKvDelete:
    case nvme::Opcode::kBulkStore:
    case nvme::Opcode::kCompact:
    case nvme::Opcode::kCompactWithIndexes:
    case nvme::Opcode::kSync:
    case nvme::Opcode::kCompactWait:
    case nvme::Opcode::kSecondaryBuild:
    case nvme::Opcode::kKvRetrieve:
    case nvme::Opcode::kQueryPrimaryRange:
    case nvme::Opcode::kQuerySecondaryRange:
    case nvme::Opcode::kKvSelect:
    case nvme::Opcode::kKvAggregate:
    case nvme::Opcode::kKeyspaceStat:
      return true;
    default:
      return false;
  }
}

}  // namespace

DeviceConfig Device::Prefixed(DeviceConfig config) {
  // One prefix knob for the whole device: push it down to the SSD so the
  // NAND meter and zns.<tag>.* counters carry it too.
  config.zns.stats_prefix = config.stats_prefix;
  return config;
}

Device::Device(sim::Simulation* sim, const DeviceConfig& config,
               nvme::QueueSet* queues)
    : sim_(sim),
      config_(Prefixed(config)),
      stats_view_(&sim->stats(), config_.stats_prefix),
      trk_device_(config_.stats_prefix + "device"),
      trk_nvme_sq_(config_.stats_prefix + "nvme.sq"),
      trk_compaction_(config_.stats_prefix + "compaction"),
      trk_query_(config_.stats_prefix + "query"),
      trk_recovery_(config_.stats_prefix + "recovery"),
      queues_(queues),
      ssd_(sim, config_.zns),
      zone_manager_(&ssd_, config_.zones),
      keyspace_manager_(&ssd_, &zone_manager_),
      cpu_(sim, config_.stats_prefix + "soc", config_.soc_cores),
      index_cache_(config_.EffectiveIndexCacheBytes()),
      faults_(config_.zns.faults),
      dispatch_meter_(sim, config_.stats_prefix + "dispatch", 1.0),
      flight_(std::make_shared<FlightRecorder>(config_.flight)) {
  if (faults_ != nullptr) faults_->set_log(&sim_->log());
  // Key "<prefix>device" on purpose: a Device::Restart over the same
  // simulation re-registers and supersedes the powered-off device's gauges.
  telemetry_token_ = sim_->telemetry().AddSource(
      config_.stats_prefix + "device",
      [this](sim::TelemetrySampler::Gauges* out) { CollectTelemetry(out); });
  flight_->set_snapshot_provider(
      [this](sim::TelemetrySampler::Gauges* out) { CollectTelemetry(out); });
  if (faults_ != nullptr && config_.flight.dump_on_crash) {
    // Dump the ring the instant power dies, before any state is torn
    // down — the hook list is cleared by the injector after the crash.
    flight_crash_token_ = faults_->AddCrashHook([this] {
      flight_->Dump("crash", sim_->Now(), faults_->crash_point());
    });
  }
}

Device::~Device() {
  sim_->telemetry().RemoveSource(telemetry_token_);
  if (faults_ != nullptr && flight_crash_token_ != 0) {
    faults_->RemoveCrashHook(flight_crash_token_);
  }
}

void Device::CollectTelemetry(sim::TelemetrySampler::Gauges* out) const {
  // Gauge names carry the instance prefix (empty in single-device sims,
  // "shard<i>." in fleets); the utilization meters below self-prefix via
  // the names they were constructed with.
  const std::string& p = config_.stats_prefix;
  out->emplace_back(p + "nvme.sq_depth", queues_->sq_depth());
  out->emplace_back(p + "nvme.inflight", queues_->inflight());
  if (queues_->num_queues() > 1) {
    // Per-queue gauges so multi-queue runs can see imbalance; single-queue
    // runs keep the exact legacy gauge set.
    for (std::uint32_t q = 0; q < queues_->num_queues(); ++q) {
      const std::string prefix = p + "nvme.q" + std::to_string(q) + ".";
      out->emplace_back(prefix + "sq_depth", queues_->pair(q)->sq_depth());
      out->emplace_back(prefix + "inflight", queues_->pair(q)->inflight());
    }
  }
  out->emplace_back(p + "device.inflight_cmds", inflight_commands_);
  out->emplace_back(p + "device.compactions_running", compactions_running_);
  out->emplace_back(p + "device.compact.bytes_read",
                    compaction_stats_.bytes_read);
  out->emplace_back(p + "device.compact.bytes_written",
                    compaction_stats_.bytes_written);
  out->emplace_back(p + "device.read_cache.bytes", index_cache_.charge());
  out->emplace_back(p + "device.read_cache.entries", index_cache_.entries());
  out->emplace_back(p + "zns.free_zones", zone_manager_.free_zones());
  // Per-role zone utilization, one pass over the live cluster table.
  struct RoleUsage {
    std::uint64_t zones = 0;
    std::uint64_t bytes = 0;
  };
  std::map<ZoneType, RoleUsage> by_role;
  for (const auto& [id, type] : zone_manager_.LiveClusters()) {
    RoleUsage& usage = by_role[type];
    usage.zones += zone_manager_.cluster_zones(id).size();
    usage.bytes += zone_manager_.ClusterBytes(id);
  }
  for (const auto& [type, usage] : by_role) {
    const std::string role = ZoneTypeName(type);
    out->emplace_back(p + "zns." + role + ".zones", usage.zones);
    out->emplace_back(p + "zns." + role + ".bytes", usage.bytes);
  }
  std::uint64_t delta_index_bytes_total = 0;
  for (const auto& [id, ks] : keyspace_manager_.all()) {
    const std::string prefix = p + "device.ks." + ks->name + ".";
    out->emplace_back(prefix + "state",
                      static_cast<std::uint64_t>(ks->state));
    out->emplace_back(prefix + "num_kvs", ks->num_kvs);
    out->emplace_back(prefix + "klog_bytes", ks->klog_bytes);
    out->emplace_back(prefix + "vlog_bytes", ks->vlog_bytes);
    auto it = buffers_.find(id);
    out->emplace_back(prefix + "buffer_bytes",
                      it == buffers_.end() ? 0 : it->second.bytes);
    out->emplace_back(prefix + "delta_entries", ks->delta_index.size());
    out->emplace_back(prefix + "delta_live", ks->delta_live);
    out->emplace_back(prefix + "delta_index_bytes", ks->delta_index_bytes);
    delta_index_bytes_total += ks->delta_index_bytes;
  }
  // Aggregate DRAM footprint of every keyspace's delta index — the series
  // the delta_fold_watermark_bytes knob bounds (DESIGN.md §12).
  out->emplace_back(p + "device.delta.index_bytes", delta_index_bytes_total);
  // Windowed utilization by activity class (DESIGN.md §14): who is burning
  // the SoC cores, the NAND channels, the PCIe link, and the dispatch core
  // right now. Permille-of-window gauges, see ResourceMeter::AppendGauges.
  cpu_.meter().AppendGauges(out);
  dispatch_meter_.AppendGauges(out);
  ssd_.nand().meter().AppendGauges(out);
  queues_->h2d_meter().AppendGauges(out);
  queues_->d2h_meter().AppendGauges(out);
  out->emplace_back(p + "device.flight.trips", flight_->trips());
}

// ---------------------------------------------------------------------------
// In-band telemetry (DESIGN.md §14)
// ---------------------------------------------------------------------------

nvme::HealthPage Device::BuildHealthPage() const {
  nvme::HealthPage page;
  page.tick = sim_->Now();
  CollectTelemetry(&page.gauges);
  return page;
}

nvme::StatsPage Device::BuildStatsPage() const {
  nvme::StatsPage page;
  page.tick = sim_->Now();
  // Device-owned series only: the host can already see its own client.*
  // numbers, and pulling them back over the wire would just be noise.
  // device.stage.* histograms are excluded because the pull command itself
  // records into them mid-dispatch — with them, a page could never equal a
  // same-tick host snapshot, and the acceptance test depends on exactly
  // that equality.
  // Names in the page are device-local (prefix stripped): the host decodes
  // the same series whether the device runs alone or as shard N of a fleet.
  const std::string dev = config_.stats_prefix + "device.";
  const std::string stage = config_.stats_prefix + "device.stage.";
  const std::size_t strip = config_.stats_prefix.size();
  for (const auto& [name, counter] : stats_view_.base().counters()) {
    if (name.rfind(dev, 0) == 0) {
      page.counters.emplace_back(name.substr(strip), counter.value());
    }
  }
  for (const auto& [name, hist] : stats_view_.base().histograms()) {
    if (name.rfind(dev, 0) == 0 && name.rfind(stage, 0) != 0) {
      page.histograms.emplace_back(name.substr(strip), hist.Summary());
    }
  }
  return page;
}

std::string Device::HealthJson() const {
  const nvme::HealthPage page = BuildHealthPage();
  std::string json = "{\n  \"tick\": " + std::to_string(page.tick);
  json += ",\n  \"gauges\": {";
  bool first = true;
  for (const auto& [name, value] : page.gauges) {
    if (!first) json += ",";
    first = false;
    json += "\n    \"" + name + "\": " + std::to_string(value);
  }
  if (!first) json += "\n  ";
  json += "}\n}\n";
  return json;
}

void Device::Start() {
  if (started_) return;
  started_ = true;
  sim_->Spawn(MainLoop());
}

std::unique_ptr<Device> Device::Restart(sim::Simulation* sim,
                                        const DeviceConfig& config,
                                        nvme::QueueSet* queues,
                                        const Device& prior) {
  // Clear the crashed flag (and stale crash hooks/error rules) BEFORE the
  // new device constructs its ZnsSsd, which re-registers a torn-tail hook
  // bound to the new object.
  if (config.zns.faults != nullptr) config.zns.faults->ResetForRestart();
  auto device = std::make_unique<Device>(sim, config, queues);
  device->ssd_.CloneStateFrom(prior.ssd_);
  // The flight recorder survives the power cycle (like sim::Log): the
  // pre-crash command history stays readable from the restarted device.
  // Re-bind the snapshot provider so a post-restart dump reflects the live
  // device, not the powered-off one.
  device->flight_ = prior.flight_;
  Device* raw = device.get();
  device->flight_->set_snapshot_provider(
      [raw](sim::TelemetrySampler::Gauges* out) { raw->CollectTelemetry(out); });
  return device;
}

sim::Task<Status> Device::RecoverMetadata() {
  auto recovered = co_await keyspace_manager_.Recover();
  co_return recovered.status();
}

bool Device::CrashPoint(const char* point) {
  return faults_ != nullptr && faults_->Hit(point);
}

sim::StatsView& Device::stats() { return stats_view_; }
const sim::StatsView& Device::stats() const { return stats_view_; }

sim::Semaphore* Device::WriteLock(std::uint64_t keyspace_id) {
  auto& lock = write_locks_[keyspace_id];
  if (!lock) lock = std::make_unique<sim::Semaphore>(sim_, 1);
  return lock.get();
}

sim::Event* Device::CompactionDone(std::uint64_t keyspace_id) {
  auto& event = compaction_done_[keyspace_id];
  if (!event) event = std::make_unique<sim::Event>(sim_);
  return event.get();
}

sim::Event* Device::ReadersIdle(std::uint64_t keyspace_id) {
  auto& event = readers_idle_[keyspace_id];
  if (!event) event = std::make_unique<sim::Event>(sim_);
  return event.get();
}

sim::Task<void> Device::MainLoop() {
  for (;;) {
    nvme::QueuePair::Incoming incoming = co_await queues_->NextCommand();
    incoming.dequeue_tick = sim_->Now();
    sim_->stats()
        .histogram("client.stage.queue_wait_ns")
        .Record(incoming.dequeue_tick - incoming.enqueue_tick);
    if (sim_->tracer().enabled() && incoming.cmd_id != 0) {
      sim_->tracer().CompleteSpan(
          sim_->tracer().Track(trk_nvme_sq_), "queue_wait",
          incoming.enqueue_tick,
          incoming.dequeue_tick,
          {{"cmd_id", std::to_string(incoming.cmd_id)},
           {"op", nvme::OpcodeName(incoming.opcode)},
           {"q", std::to_string(incoming.queue_id)}});
    }
    // Every command pays the SPDK-ish userspace dispatch cost once.
    // Metered as wall time on a capacity-1 "dispatch" resource: the single
    // main loop is the serial bottleneck (ROADMAP item 1), and the meter
    // includes any wait for a free SoC core, so util.dispatch.dispatch
    // pins near 1000 permille exactly when command pop rate saturates.
    const Tick dispatch_begin = sim_->Now();
    co_await cpu_.Compute(config_.costs.syscall_overhead,
                          sim::Activity::kDispatch);
    dispatch_meter_.Add(sim::Activity::kDispatch,
                        sim_->Now() - dispatch_begin);
    sim_->Spawn(HandleCommand(std::move(incoming)));
  }
}

sim::Task<void> Device::HandleCommand(nvme::QueuePair::Incoming incoming) {
  if (faults_ != nullptr && faults_->crashed()) {
    // Power is gone: fail fast without touching device state. Still close
    // the command's flow so the trace has no dangling arrows.
    if (sim_->tracer().enabled() && incoming.cmd_id != 0) {
      const std::uint32_t track = sim_->tracer().Track(trk_device_);
      const Tick now = sim_->Now();
      sim_->tracer().CompleteSpan(
          track, "powered_off", now, now,
          {{"cmd_id", std::to_string(incoming.cmd_id)}});
      sim_->tracer().FlowEnd(track, "cmd", incoming.cmd_id, now);
    }
    nvme::Completion dead;
    dead.status = Status::IoError("device powered off");
    co_await queues_->Complete(std::move(incoming), std::move(dead));
    co_return;
  }
  const nvme::Opcode op = incoming.command.opcode;
  const Tick begin = sim_->Now();
  stats()
      .histogram("device.stage.dispatch_ns")
      .Record(begin - incoming.dequeue_tick);
  ++inflight_commands_;
  nvme::Completion completion;
  {
    // Span covers the device-side processing; the completion DMA below is
    // on the nvme track. The flow arrow from the client's submit span
    // terminates here ("bp":"e" binds it to this enclosing span).
    sim::TraceSpan span(sim_, trk_device_, nvme::OpcodeName(op));
    span.Arg("cmd_id", incoming.cmd_id);
    span.Arg("keyspace_id", incoming.command.keyspace_id);
    if (sim_->tracer().enabled() && incoming.cmd_id != 0) {
      sim_->tracer().FlowEnd(sim_->tracer().Track(trk_device_), "cmd",
                             incoming.cmd_id, begin);
    }
    completion = co_await Dispatch(incoming.command);
  }
  stats().histogram("device.stage.exec_ns").Record(sim_->Now() - begin);
  --inflight_commands_;
  stats()
      .counter(std::string("device.cmd.") + nvme::OpcodeName(op))
      .Increment();
  if (const char* cls = nvme::OpcodeLatencyClass(op)) {
    stats()
        .histogram(std::string("device.cmd.") + cls + "_ns")
        .Record(sim_->Now() - begin);
  }
  if (!completion.status.ok()) {
    stats().counter("device.cmd.errors").Increment();
    // Per-opcode error breakdown alongside the aggregate, so a workload
    // can tell rejected deletes from failed compactions at a glance.
    stats()
        .counter(std::string("device.cmd.") + nvme::OpcodeName(op) + ".errors")
        .Increment();
  }
  if (faults_ != nullptr && faults_->crashed()) {
    // The power cut landed mid-command; whatever Dispatch claims, the
    // host must treat the operation as failed.
    completion = nvme::Completion{};
    completion.status = Status::IoError("device powered off (in flight)");
  }
  // Flight recorder: one summary per completed command, recorded before
  // the completion DMA so a breach dump never misses its own trigger.
  FlightRecorder::Entry fe;
  fe.cmd_id = incoming.cmd_id;
  fe.opcode = op;
  fe.queue_id = incoming.queue_id;
  fe.tick = sim_->Now();
  fe.queue_wait_ns = incoming.dequeue_tick - incoming.enqueue_tick;
  fe.dispatch_ns = begin - incoming.dequeue_tick;
  fe.exec_ns = sim_->Now() - begin;
  fe.status = completion.status.code();
  flight_->Record(fe);
  if (const char* reason = flight_->BreachReason(fe)) {
    stats().counter("device.flight.trips_total").Increment();
    flight_->Dump(reason, sim_->Now());
  }
  co_await queues_->Complete(std::move(incoming), std::move(completion));
}

sim::Task<nvme::Completion> Device::Dispatch(nvme::Command& cmd) {
  nvme::Completion out;
  switch (cmd.opcode) {
    case nvme::Opcode::kKeyspaceCreate: {
      auto ks = keyspace_manager_.Create(cmd.name);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.keyspace_id = (*ks)->id;
      out.status = co_await keyspace_manager_.Persist();
      break;
    }
    case nvme::Opcode::kKeyspaceOpen: {
      auto ks = keyspace_manager_.Find(cmd.name);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.keyspace_id = (*ks)->id;
      break;
    }
    case nvme::Opcode::kKeyspaceDrop: {
      auto ks = keyspace_manager_.Find(cmd.name);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.status = co_await DropKeyspace(*ks);
      break;
    }
    case nvme::Opcode::kGetLogPage: {
      // Admin pull of a device log page (DESIGN.md §14). Encoded inline at
      // the current tick, so every value in the page is from one instant —
      // a host-side Stats snapshot taken at the same tick decodes equal.
      co_await cpu_.Compute(config_.costs.kv_op_fixed);
      switch (cmd.log_page) {
        case nvme::LogPageId::kHealth:
          out.value = nvme::EncodeHealthPage(BuildHealthPage());
          break;
        case nvme::LogPageId::kStats:
          out.value = nvme::EncodeStatsPage(BuildStatsPage());
          break;
        default:
          out.status = Status::InvalidArgument(
              "unknown log page " +
              std::to_string(static_cast<unsigned>(cmd.log_page)));
          break;
      }
      break;
    }
    default: {
      if (!IsKeyspaceScoped(cmd.opcode)) {
        // Unknown opcode: Unimplemented must win over whatever a
        // keyspace-id lookup would report (no silent OK, no NotFound
        // masking).
        out.status = Status::Unimplemented(
            "unhandled opcode " +
            std::to_string(static_cast<unsigned>(cmd.opcode)));
        break;
      }
      // Keyspace-scoped command: resolve and pin the keyspace BEFORE the
      // first suspension, so a concurrent drop defers until the handler
      // coroutine is done with the raw pointer.
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      Keyspace* keyspace = *ks;
      ++keyspace->inflight;
      const Tick ks_begin = sim_->Now();
      out = co_await DispatchKeyspaceCommand(cmd, keyspace);
      // Record while still pinned: the name is safe to read until Unpin
      // lets a deferred drop free the keyspace.
      if (const char* cls = nvme::OpcodeLatencyClass(cmd.opcode)) {
        stats()
            .histogram("device.ks." + keyspace->name + "." + cls + "_ns")
            .Record(sim_->Now() - ks_begin);
      }
      co_await Unpin(keyspace);
      break;
    }
  }
  co_return out;
}

sim::Task<nvme::Completion> Device::DispatchKeyspaceCommand(nvme::Command& cmd,
                                                            Keyspace* ks) {
  nvme::Completion out;
  switch (cmd.opcode) {
    case nvme::Opcode::kKvStore:
      out.status = co_await DoPut(ks, std::move(cmd.key),
                                  std::move(cmd.value));
      break;
    case nvme::Opcode::kKvDelete:
      out.status = co_await DoDelete(ks, std::move(cmd.key));
      break;
    case nvme::Opcode::kBulkStore:
      out.status = co_await DoBulkPut(ks, cmd.value);
      break;
    case nvme::Opcode::kCompact:
    case nvme::Opcode::kCompactWithIndexes: {
      if (cmd.opcode == nvme::Opcode::kCompact &&
          ks->state == KeyspaceState::kCompacted) {
        // Re-compaction: fold the delta log into the existing sorted run
        // incrementally (DESIGN.md §12) instead of re-sorting everything.
        if (ks->delta_index.empty()) {
          out.status = Status::Ok();  // no delta: nothing to fold
          break;
        }
        ks->state = KeyspaceState::kRecompacting;
        CompactionDone(ks->id)->Reset();
        if (sim_->tracer().enabled() && cmd.cmd_id != 0) {
          sim_->tracer().FlowBegin(sim_->tracer().Track(trk_device_),
                                   "compact", cmd.cmd_id, sim_->Now());
        }
        sim_->Spawn([](Device* device, Keyspace* target,
                       std::uint64_t trigger) -> sim::Task<void> {
          Status s = co_await device->RecompactKeyspace(target, trigger);
          (void)s;  // failure rolls back to COMPACTED; surfaced via Stat
        }(this, ks, cmd.cmd_id));
        out.status = Status::Ok();
        break;
      }
      if (ks->state != KeyspaceState::kWritable &&
          ks->state != KeyspaceState::kEmpty) {
        out.status = Status::FailedPrecondition(
            "compaction requires a WRITABLE keyspace (state " +
            std::string(KeyspaceStateName(ks->state)) + ")");
        break;
      }
      ks->state = KeyspaceState::kCompacting;
      CompactionDone(ks->id)->Reset();
      // Deferred + offloaded: runs asynchronously on the device; the
      // command completes immediately (paper §V "Compaction"). The fused
      // variant also builds the requested secondary indexes in the same
      // pass (§V future work). The COMPACTING state (not the inflight
      // pin, which this command drops on completion) is what holds off a
      // concurrent drop.
      std::vector<nvme::SecondaryIndexSpec> specs;
      if (cmd.opcode == nvme::Opcode::kCompactWithIndexes) {
        specs = std::move(cmd.sidx_list);
      }
      if (sim_->tracer().enabled() && cmd.cmd_id != 0) {
        // Second flow hop: from this command's exec span to the async
        // compaction span it spawns.
        sim_->tracer().FlowBegin(sim_->tracer().Track(trk_device_), "compact",
                                 cmd.cmd_id, sim_->Now());
      }
      sim_->Spawn([](Device* device, Keyspace* target,
                     std::vector<nvme::SecondaryIndexSpec> fused,
                     std::uint64_t trigger) -> sim::Task<void> {
        Status s =
            co_await device->CompactKeyspace(target, std::move(fused), trigger);
        (void)s;  // failure rolls back to WRITABLE; surfaced via Stat
      }(this, ks, std::move(specs), cmd.cmd_id));
      out.status = Status::Ok();
      break;
    }
    case nvme::Opcode::kSync:
      out.status = co_await DoSync(ks);
      break;
    case nvme::Opcode::kCompactWait:
      while (ks->state == KeyspaceState::kCompacting ||
             ks->state == KeyspaceState::kRecompacting) {
        co_await CompactionDone(ks->id)->Wait();
      }
      out.status = Status::Ok();
      break;
    case nvme::Opcode::kSecondaryBuild:
      out.status = co_await BuildSecondaryIndex(ks, cmd.sidx);
      break;
    case nvme::Opcode::kKvRetrieve: {
      ++queries_;
      auto value = co_await QueryPoint(ks, cmd.key);
      out.status = value.status();
      if (value.ok()) out.value = std::move(*value);
      break;
    }
    case nvme::Opcode::kQueryPrimaryRange:
      ++queries_;
      out.status = co_await QueryPrimaryRange(ks, cmd.key, cmd.key_end,
                                              cmd.limit, &out.results);
      out.count = out.results.size();
      break;
    case nvme::Opcode::kQuerySecondaryRange:
      ++queries_;
      out.status = co_await QuerySecondaryRange(
          ks, cmd.sidx.name, cmd.key, cmd.key_end, cmd.limit, &out.results);
      out.count = out.results.size();
      break;
    case nvme::Opcode::kKvSelect:
    case nvme::Opcode::kKvAggregate:
      ++queries_;
      out.status = co_await QueryPushdown(ks, cmd, &out);
      break;
    case nvme::Opcode::kKeyspaceStat:
      out.count = ks->num_kvs;
      out.value = std::string(KeyspaceStateName(ks->state));
      out.status = Status::Ok();
      break;
    default:
      // Unreachable: Dispatch only routes IsKeyspaceScoped opcodes here.
      // Still no silent OK if the two ever fall out of step.
      out.status = Status::Unimplemented(
          "unhandled opcode " +
          std::to_string(static_cast<unsigned>(cmd.opcode)));
      break;
  }
  co_return out;
}

sim::Task<void> Device::Unpin(Keyspace* ks) {
  --ks->inflight;
  co_await MaybeFinishPendingDelete(ks);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

sim::Task<Result<std::uint64_t>> Device::AppendToChain(
    std::vector<ClusterId>* chain, ZoneType type,
    std::span<const std::byte> data, sim::Activity act) {
  if (!chain->empty()) {
    auto addr = co_await zone_manager_.Append(chain->back(), data, act);
    if (addr.ok() || addr.status().code() != StatusCode::kOutOfSpace) {
      co_return addr;
    }
  }
  auto cluster = zone_manager_.AllocateCluster(type);
  if (!cluster.ok()) co_return cluster.status();
  chain->push_back(*cluster);
  co_return co_await zone_manager_.Append(*cluster, data, act);
}

Status Device::CheckMutable(Keyspace* ks) const {
  switch (ks->state) {
    case KeyspaceState::kEmpty:
    case KeyspaceState::kWritable:
    case KeyspaceState::kCompacted:  // delta mode: mutations land in a
                                     // fresh KLOG/VLOG log beside the run
      return Status::Ok();
    case KeyspaceState::kCompacting:
    case KeyspaceState::kRecompacting:
      // The compactor owns the logs right now; the host retries once the
      // keyspace settles (kBusy is retryable, unlike the old blanket
      // FailedPrecondition).
      return Status::Busy("keyspace is compacting; retry");
  }
  return Status::FailedPrecondition("keyspace not writable");
}

void Device::ApplyDeltaMutation(Keyspace* ks, const std::string& key,
                                std::string value, std::uint64_t seq,
                                bool tombstone) {
  DeltaEntry& entry = ks->delta_index[key];
  if (entry.seq == 0) {
    // Fresh key: charge the node, the key bytes, and the value below.
    ks->delta_index_bytes += kDeltaEntryOverhead + key.size();
  } else {
    // Overwrite: node + key stay, the old inline value is released.
    ks->delta_index_bytes -= entry.value.size();
  }
  ks->delta_index_bytes += value.size();
  if (entry.seq != 0 && !entry.tombstone) --ks->delta_live;
  entry.seq = seq;
  entry.tombstone = tombstone;
  entry.vaddr = 0;
  entry.vlen = static_cast<std::uint32_t>(value.size());
  entry.has_value = !tombstone;
  entry.value = std::move(value);
  if (!tombstone) ++ks->delta_live;
  // Estimate: run overwrites double-count and run deletes don't subtract
  // (telling them apart needs an index lookup); re-compaction restores the
  // exact count. Recovery's delta replay computes the same value.
  ks->num_kvs = ks->run_entries + ks->delta_live;
}

// The self-triggered counterpart of kCompact-on-COMPACTED: once the delta
// index crosses the configured watermark, fold it back into the sorted run
// so the DRAM it occupies stays bounded no matter how long the host defers
// an explicit re-compaction. Called after the write lock is released (the
// fold re-acquires it); a no-op while a fold or drop is already pending.
void Device::MaybeRequestDeltaFold(Keyspace* ks) {
  if (config_.delta_fold_watermark_bytes == 0) return;
  if (ks->state != KeyspaceState::kCompacted) return;
  if (ks->pending_delete || ks->delta_index.empty()) return;
  if (ks->delta_index_bytes < config_.delta_fold_watermark_bytes) return;
  stats().counter("device.delta.watermark_folds").Increment();
  sim_->log().Info("device",
                   "delta watermark: keyspace '" + ks->name + "' index at " +
                       std::to_string(ks->delta_index_bytes) + " B >= " +
                       std::to_string(config_.delta_fold_watermark_bytes) +
                       " B, folding");
  ks->state = KeyspaceState::kRecompacting;
  CompactionDone(ks->id)->Reset();
  sim_->Spawn([](Device* device, Keyspace* target) -> sim::Task<void> {
    Status s = co_await device->RecompactKeyspace(target);
    (void)s;  // failure rolls back to COMPACTED; retried at next crossing
  }(this, ks));
}

sim::Task<Status> Device::DoPut(Keyspace* ks, std::string key,
                                std::string value) {
  if (ks->state == KeyspaceState::kEmpty) {
    ks->state = KeyspaceState::kWritable;
  }
  KVCSD_CO_RETURN_IF_ERROR(CheckMutable(ks));
  sim::Semaphore* lock = WriteLock(ks->id);
  co_await lock->Acquire();
  // Re-check under the lock: a re-compaction can start while this command
  // waits for the lock, and a mutation admitted past its delta snapshot
  // would be silently dropped by the fold's commit.
  if (Status admit = CheckMutable(ks); !admit.ok()) {
    lock->Release();
    co_return admit;
  }

  co_await cpu_.Compute(config_.costs.kv_op_fixed, sim::Activity::kHostWrite);
  WriteBuffer& buffer = buffers_[ks->id];
  buffer.bytes += key.size() + value.size();
  ++puts_;
  if (ks->min_key.empty() || key < ks->min_key) ks->min_key = key;
  if (ks->max_key.empty() || key > ks->max_key) ks->max_key = key;
  const std::uint64_t seq = ks->next_seq++;
  if (ks->state == KeyspaceState::kCompacted) {
    ApplyDeltaMutation(ks, key, value, seq, /*tombstone=*/false);
  } else {
    ++ks->num_kvs;
  }
  buffer.entries.push_back(
      WriteEntry{std::move(key), std::move(value), seq, false});

  Status s = Status::Ok();
  if (buffer.bytes >= config_.write_buffer_bytes) {
    s = co_await FlushBuffer(ks);
  }
  lock->Release();
  MaybeRequestDeltaFold(ks);
  co_return s;
}

// Blind point delete: appends a tombstone record to the (delta) log and
// acknowledges whether or not the key exists — existence would cost an
// index lookup on the write path. Visibility is immediate (the delta
// index/write buffer shadows the run); durability follows the same
// flush + Sync contract as PUT.
sim::Task<Status> Device::DoDelete(Keyspace* ks, std::string key) {
  if (ks->state == KeyspaceState::kEmpty) {
    ks->state = KeyspaceState::kWritable;
  }
  KVCSD_CO_RETURN_IF_ERROR(CheckMutable(ks));
  sim::Semaphore* lock = WriteLock(ks->id);
  co_await lock->Acquire();
  if (Status admit = CheckMutable(ks); !admit.ok()) {
    lock->Release();
    co_return admit;
  }

  co_await cpu_.Compute(config_.costs.kv_op_fixed, sim::Activity::kHostWrite);
  WriteBuffer& buffer = buffers_[ks->id];
  buffer.bytes += key.size();
  const std::uint64_t seq = ks->next_seq++;
  if (ks->state == KeyspaceState::kCompacted) {
    ApplyDeltaMutation(ks, key, std::string(), seq, /*tombstone=*/true);
  } else {
    // WRITABLE: num_kvs counts log records (replay recomputes the same);
    // compaction's last-writer-wins pass collapses it to live keys.
    ++ks->num_kvs;
  }
  buffer.entries.push_back(WriteEntry{std::move(key), std::string(), seq,
                                      /*tombstone=*/true});

  Status s = Status::Ok();
  if (buffer.bytes >= config_.write_buffer_bytes) {
    s = co_await FlushBuffer(ks);
  }
  lock->Release();
  MaybeRequestDeltaFold(ks);
  co_return s;
}

sim::Task<Status> Device::DoBulkPut(Keyspace* ks, const std::string& frame) {
  if (ks->state == KeyspaceState::kEmpty) {
    ks->state = KeyspaceState::kWritable;
  }
  KVCSD_CO_RETURN_IF_ERROR(CheckMutable(ks));
  sim::Semaphore* lock = WriteLock(ks->id);
  co_await lock->Acquire();
  if (Status admit = CheckMutable(ks); !admit.ok()) {
    lock->Release();
    co_return admit;
  }

  // Unpack the 128 KB bulk frame. The frame transfer is cheap, but each
  // record still costs per-record handling on the weak SoC cores — this is
  // what bounds the prototype's ingest rate; bulk puts win over singles by
  // amortizing the command/DMA overhead, not the record handling (§V).
  co_await cpu_.ComputeBytes(frame.size(), config_.costs.memcpy_bytes_per_sec,
                             sim::Activity::kHostWrite);

  Status s = Status::Ok();
  WriteBuffer& buffer = buffers_[ks->id];
  Slice in(frame);
  std::uint32_t records_uncharged = 0;
  while (!in.empty()) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      s = Status::InvalidArgument("malformed bulk-put frame");
      break;
    }
    buffer.bytes += key.size() + value.size();
    ++puts_;
    ++records_uncharged;
    if (ks->min_key.empty() || key.view() < ks->min_key) {
      ks->min_key = key.ToString();
    }
    if (ks->max_key.empty() || key.view() > ks->max_key) {
      ks->max_key = key.ToString();
    }
    const std::uint64_t seq = ks->next_seq++;
    if (ks->state == KeyspaceState::kCompacted) {
      ApplyDeltaMutation(ks, key.ToString(), value.ToString(), seq,
                         /*tombstone=*/false);
    } else {
      ++ks->num_kvs;
    }
    buffer.entries.push_back(
        WriteEntry{key.ToString(), value.ToString(), seq, false});
    if (records_uncharged >= 512) {
      co_await cpu_.Compute(records_uncharged * config_.costs.kv_op_fixed,
                            sim::Activity::kHostWrite);
      records_uncharged = 0;
    }
    if (buffer.bytes >= config_.write_buffer_bytes) {
      s = co_await FlushBuffer(ks);
      if (!s.ok()) break;
    }
  }
  if (records_uncharged > 0) {
    co_await cpu_.Compute(records_uncharged * config_.costs.kv_op_fixed,
                            sim::Activity::kHostWrite);
  }
  lock->Release();
  MaybeRequestDeltaFold(ks);
  co_return s;
}

sim::Semaphore* Device::FlushSlots(std::uint64_t keyspace_id) {
  auto& sem = flush_slots_[keyspace_id];
  if (!sem) sem = std::make_unique<sim::Semaphore>(sim_, kMaxInflightFlushes);
  return sem.get();
}

sim::WaitGroup* Device::FlushInflight(std::uint64_t keyspace_id) {
  auto& wg = flush_inflight_[keyspace_id];
  if (!wg) wg = std::make_unique<sim::WaitGroup>(sim_);
  return wg.get();
}

// Kicks off the timed flush I/O. The buffer swap is synchronous (caller
// holds the write lock); the NAND work pipelines with up to
// kMaxInflightFlushes batches in flight, spread over the cluster's zones
// by the zone manager's rotation.
sim::Task<Status> Device::FlushBuffer(Keyspace* ks) {
  WriteBuffer& buffer = buffers_[ks->id];
  if (buffer.entries.empty()) co_return Status::Ok();
  WriteBuffer batch = std::move(buffer);
  buffer = WriteBuffer{};
  ++flushes_;

  co_await FlushSlots(ks->id)->Acquire();  // backpressure
  FlushInflight(ks->id)->Add(1);
  // Pin before spawning: the detached FlushIo holds the raw pointer past
  // this command's lifetime, so a drop must defer until it lands.
  ++ks->inflight;
  sim_->Spawn(FlushIo(ks, std::move(batch)));
  co_return Status::Ok();
}

sim::Task<void> Device::FlushIo(Keyspace* ks, WriteBuffer batch) {
  Status result = Status::Ok();

  if (CrashPoint("flush.before_vlog")) {
    result = Status::IoError("simulated power loss (before VLOG append)");
  }

  if (result.ok()) {
    // Values: one contiguous VLOG record. Tombstones carry no value, so a
    // tombstone-only batch skips the VLOG append entirely.
    std::string values;
    values.reserve(batch.bytes);
    for (const auto& e : batch.entries) values += e.value;
    co_await cpu_.ComputeBytes(values.size(),
                               config_.costs.memcpy_bytes_per_sec,
                               sim::Activity::kHostWrite);
    co_await cpu_.Compute(config_.costs.io_path_overhead,
                          sim::Activity::kHostWrite);
    Result<std::uint64_t> vaddr{std::uint64_t{0}};
    if (!values.empty()) {
      vaddr = co_await AppendToChain(
          &ks->vlog_clusters, ZoneType::kVlog,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(values.data()),
              values.size()),
          sim::Activity::kHostWrite);
    }
    if (vaddr.ok() && CrashPoint("flush.between_logs")) {
      // Values landed, keys did not: the VLOG record is unreachable
      // garbage recovery must not resurrect (nothing references it).
      result = Status::IoError("simulated power loss (between log appends)");
    } else if (vaddr.ok()) {
      ks->vlog_bytes += values.size();

      // Keys + value pointers: one framed KLOG record, so a torn append
      // is detectably incomplete at recovery.
      std::string payload;
      payload.reserve(batch.bytes / 2 + batch.entries.size() * 12);
      std::uint64_t offset = 0;
      for (const auto& e : batch.entries) {
        wire::AppendKlogEntry(&payload, e.key,
                              e.tombstone ? 0 : *vaddr + offset,
                              static_cast<std::uint32_t>(e.value.size()),
                              e.seq, e.tombstone);
        offset += e.value.size();
      }
      std::string klog;
      klog.reserve(payload.size() + 16);
      wire::AppendKlogFrame(&klog, Slice(payload));
      co_await cpu_.ComputeBytes(klog.size(),
                                 config_.costs.memcpy_bytes_per_sec,
                                 sim::Activity::kHostWrite);
      co_await cpu_.Compute(config_.costs.io_path_overhead,
                            sim::Activity::kHostWrite);
      auto kaddr = co_await AppendToChain(
          &ks->klog_clusters, ZoneType::kKlog,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(klog.data()), klog.size()),
          sim::Activity::kHostWrite);
      if (kaddr.ok()) {
        ks->klog_bytes += klog.size();
        // Both logs durable; a crash here loses only the acknowledgement.
        CrashPoint("flush.after_klog");
      } else {
        result = kaddr.status();
      }
    } else {
      result = vaddr.status();
    }
  }

  if (!result.ok()) {
    if (flush_errors_[ks->id].ok()) flush_errors_[ks->id] = result;
    // The batch never became durable, but its entries are still counted
    // in num_kvs/min/max and still owed to the client. Re-queue it in
    // front of anything written since (this block has no suspension
    // point, so no put can interleave with the splice) — a retried Sync
    // then re-flushes the same data instead of persisting an empty
    // buffer and falsely reporting it durable. A VLOG record the failure
    // stranded without KLOG entries is unreferenced garbage; compaction
    // and recovery never resurrect it.
    WriteBuffer& buffer = buffers_[ks->id];
    batch.bytes += buffer.bytes;
    batch.entries.insert(batch.entries.end(),
                         std::make_move_iterator(buffer.entries.begin()),
                         std::make_move_iterator(buffer.entries.end()));
    buffer = std::move(batch);
  }
  FlushSlots(ks->id)->Release();
  FlushInflight(ks->id)->Done();
  co_await Unpin(ks);
}

// Explicit "fsync" (paper §VI): persists whatever PUTs are still sitting
// in the keyspace's DRAM write buffer, waits for the log I/O to land, and
// commits the cluster references to the metadata zone — only then is the
// data guaranteed to survive a power cut.
sim::Task<Status> Device::DoSync(Keyspace* ks) {
  if (ks->state == KeyspaceState::kCompacting ||
      ks->state == KeyspaceState::kRecompacting) {
    // The compactor owns the logs and drained every flush before taking
    // over; mutations have been rejected (kBusy) since, so there is
    // nothing buffered to persist.
    co_return Status::Ok();
  }
  sim::Semaphore* lock = WriteLock(ks->id);
  co_await lock->Acquire();
  Status s = co_await FlushBuffer(ks);
  lock->Release();
  KVCSD_CO_RETURN_IF_ERROR(s);
  co_await FlushInflight(ks->id)->Wait();
  if (auto it = flush_errors_.find(ks->id);
      it != flush_errors_.end() && !it->second.ok()) {
    // Surface the flush failure once, then clear it: the failed batch
    // was re-queued into the write buffer by FlushIo, so a retried Sync
    // re-flushes the data for real instead of failing forever on a
    // stale latched error (or, worse, persisting an empty buffer).
    Status err = it->second;
    it->second = Status::Ok();
    co_return err;
  }
  if (CrashPoint("sync.before_persist")) {
    co_return Status::IoError("simulated power loss (before sync persist)");
  }
  co_return co_await keyspace_manager_.Persist();
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

sim::Task<void> Device::ReleaseClustersBestEffort(std::vector<ClusterId> ids) {
  for (ClusterId id : ids) {
    Status s = co_await zone_manager_.ReleaseCluster(id);
    (void)s;  // NotFound after double release / IoError after power cut
  }
}

sim::Task<Status> Device::DropKeyspace(Keyspace* ks) {
  if (ks->state == KeyspaceState::kCompacting ||
      ks->state == KeyspaceState::kRecompacting || ks->inflight > 0) {
    // Deferred deletion: the compactor or the pinned handlers finish
    // first (paper: "deletion may be deferred due to on-going
    // compaction"). The tombstone must be durable BEFORE the ack — an
    // acknowledged drop has to stay dropped even if power dies before
    // the deferred FinishDrop runs, so recovery completes it from the
    // persisted pending_delete flag. ks may already be freed when
    // Persist returns: the compaction can finish during the await and
    // run the deferred drop itself.
    ks->pending_delete = true;
    co_return co_await keyspace_manager_.Persist();
  }
  co_return co_await FinishDrop(ks);
}

sim::Task<Status> Device::FinishDrop(Keyspace* ks) {
  // Snapshot what the drop needs, then remove the table entry before the
  // first suspension: from here no command can find — let alone pin — the
  // dying keyspace, so freeing it is safe.
  const std::uint64_t id = ks->id;
  std::vector<ClusterId> doomed;
  auto take = [&doomed](std::vector<ClusterId>* chain) {
    doomed.insert(doomed.end(), chain->begin(), chain->end());
    chain->clear();
  };
  take(&ks->klog_clusters);
  take(&ks->vlog_clusters);
  take(&ks->pidx_clusters);
  take(&ks->sorted_value_clusters);
  for (auto& [name, sidx] : ks->secondary_indexes) {
    take(&sidx.sidx_clusters);
  }
  KVCSD_CO_RETURN_IF_ERROR(keyspace_manager_.Erase(id));  // frees *ks
  index_cache_.EraseKeyspace(id);
  buffers_.erase(id);
  write_locks_.erase(id);
  compaction_done_.erase(id);
  flush_slots_.erase(id);
  flush_inflight_.erase(id);
  flush_errors_.erase(id);

  if (CrashPoint("drop.before_persist")) {
    co_return Status::IoError("simulated power loss (before drop persist)");
  }
  // Commit point: once the snapshot without the keyspace is durable, the
  // clusters are garbage whether or not the releases below finish —
  // recovery reclaims whatever a crash leaves orphaned.
  KVCSD_CO_RETURN_IF_ERROR(co_await keyspace_manager_.Persist());
  co_await ReleaseClustersBestEffort(std::move(doomed));
  co_return Status::Ok();
}

sim::Task<void> Device::MaybeFinishPendingDelete(Keyspace* ks) {
  if (!ks->pending_delete || ks->inflight > 0 ||
      ks->state == KeyspaceState::kCompacting ||
      ks->state == KeyspaceState::kRecompacting) {
    co_return;
  }
  // Clear before the first await so concurrent callers cannot double-drop.
  ks->pending_delete = false;
  Status s = co_await FinishDrop(ks);
  (void)s;  // deferred drops have no command to answer to
}

}  // namespace kvcsd::device
