#include "kvcsd/device.h"

#include <algorithm>

#include "common/coding.h"
#include "kvcsd/wire.h"

namespace kvcsd::device {

Device::Device(sim::Simulation* sim, const DeviceConfig& config,
               nvme::QueuePair* queue)
    : sim_(sim),
      config_(config),
      queue_(queue),
      ssd_(sim, config.zns),
      zone_manager_(&ssd_, config.zones),
      keyspace_manager_(&ssd_),
      cpu_(sim, "soc", config.soc_cores) {}

void Device::Start() {
  if (started_) return;
  started_ = true;
  sim_->Spawn(MainLoop());
}

sim::Task<Status> Device::RecoverMetadata() {
  auto recovered = co_await keyspace_manager_.Recover();
  co_return recovered.status();
}

sim::Semaphore* Device::WriteLock(std::uint64_t keyspace_id) {
  auto& lock = write_locks_[keyspace_id];
  if (!lock) lock = std::make_unique<sim::Semaphore>(sim_, 1);
  return lock.get();
}

sim::Event* Device::CompactionDone(std::uint64_t keyspace_id) {
  auto& event = compaction_done_[keyspace_id];
  if (!event) event = std::make_unique<sim::Event>(sim_);
  return event.get();
}

sim::Task<void> Device::MainLoop() {
  for (;;) {
    nvme::QueuePair::Incoming incoming = co_await queue_->NextCommand();
    // Every command pays the SPDK-ish userspace dispatch cost once.
    co_await cpu_.Compute(config_.costs.syscall_overhead);
    sim_->Spawn(HandleCommand(std::move(incoming)));
  }
}

sim::Task<void> Device::HandleCommand(nvme::QueuePair::Incoming incoming) {
  nvme::Completion completion = co_await Dispatch(incoming.command);
  co_await queue_->Complete(std::move(incoming), std::move(completion));
}

sim::Task<nvme::Completion> Device::Dispatch(nvme::Command& cmd) {
  nvme::Completion out;
  switch (cmd.opcode) {
    case nvme::Opcode::kKeyspaceCreate: {
      auto ks = keyspace_manager_.Create(cmd.name);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.keyspace_id = (*ks)->id;
      out.status = co_await keyspace_manager_.Persist();
      break;
    }
    case nvme::Opcode::kKeyspaceOpen: {
      auto ks = keyspace_manager_.Find(cmd.name);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.keyspace_id = (*ks)->id;
      break;
    }
    case nvme::Opcode::kKeyspaceDrop: {
      auto ks = keyspace_manager_.Find(cmd.name);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.status = co_await DropKeyspace(*ks);
      break;
    }
    case nvme::Opcode::kKvStore: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.status =
          co_await DoPut(*ks, std::move(cmd.key), std::move(cmd.value));
      break;
    }
    case nvme::Opcode::kBulkStore: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.status = co_await DoBulkPut(*ks, cmd.value);
      break;
    }
    case nvme::Opcode::kCompact:
    case nvme::Opcode::kCompactWithIndexes: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      Keyspace* keyspace = *ks;
      if (keyspace->state != KeyspaceState::kWritable &&
          keyspace->state != KeyspaceState::kEmpty) {
        out.status = Status::FailedPrecondition(
            "compaction requires a WRITABLE keyspace (state " +
            std::string(KeyspaceStateName(keyspace->state)) + ")");
        break;
      }
      keyspace->state = KeyspaceState::kCompacting;
      CompactionDone(keyspace->id)->Reset();
      // Deferred + offloaded: runs asynchronously on the device; the
      // command completes immediately (paper §V "Compaction"). The fused
      // variant also builds the requested secondary indexes in the same
      // pass (§V future work).
      std::vector<nvme::SecondaryIndexSpec> specs;
      if (cmd.opcode == nvme::Opcode::kCompactWithIndexes) {
        specs = std::move(cmd.sidx_list);
      }
      sim_->Spawn([](Device* device, Keyspace* target,
                     std::vector<nvme::SecondaryIndexSpec> fused)
                      -> sim::Task<void> {
        Status s = co_await device->CompactKeyspace(target, std::move(fused));
        (void)s;  // failure leaves state COMPACTING; surfaced via Stat
      }(this, keyspace, std::move(specs)));
      out.status = Status::Ok();
      break;
    }
    case nvme::Opcode::kSync: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.status = co_await DoSync(*ks);
      break;
    }
    case nvme::Opcode::kCompactWait: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      if ((*ks)->state == KeyspaceState::kCompacting) {
        co_await CompactionDone((*ks)->id)->Wait();
      }
      out.status = Status::Ok();
      break;
    }
    case nvme::Opcode::kSecondaryBuild: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.status = co_await BuildSecondaryIndex(*ks, cmd.sidx);
      break;
    }
    case nvme::Opcode::kKvRetrieve: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      ++queries_;
      auto value = co_await QueryPoint(*ks, cmd.key);
      out.status = value.status();
      if (value.ok()) out.value = std::move(*value);
      break;
    }
    case nvme::Opcode::kQueryPrimaryRange: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      ++queries_;
      out.status = co_await QueryPrimaryRange(*ks, cmd.key, cmd.key_end,
                                              cmd.limit, &out.results);
      out.count = out.results.size();
      break;
    }
    case nvme::Opcode::kQuerySecondaryRange: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      ++queries_;
      out.status = co_await QuerySecondaryRange(
          *ks, cmd.sidx.name, cmd.key, cmd.key_end, cmd.limit, &out.results);
      out.count = out.results.size();
      break;
    }
    case nvme::Opcode::kKeyspaceStat: {
      auto ks = keyspace_manager_.FindById(cmd.keyspace_id);
      if (!ks.ok()) {
        out.status = ks.status();
        break;
      }
      out.count = (*ks)->num_kvs;
      out.value = std::string(KeyspaceStateName((*ks)->state));
      out.status = Status::Ok();
      break;
    }
    case nvme::Opcode::kKvDelete:
      out.status = Status::Unimplemented(
          "point deletes are not part of the simulation-pipeline workflow");
      break;
  }
  co_return out;
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

sim::Task<Result<std::uint64_t>> Device::AppendToChain(
    std::vector<ClusterId>* chain, ZoneType type,
    std::span<const std::byte> data) {
  if (!chain->empty()) {
    auto addr = co_await zone_manager_.Append(chain->back(), data);
    if (addr.ok() || addr.status().code() != StatusCode::kOutOfSpace) {
      co_return addr;
    }
  }
  auto cluster = zone_manager_.AllocateCluster(type);
  if (!cluster.ok()) co_return cluster.status();
  chain->push_back(*cluster);
  co_return co_await zone_manager_.Append(*cluster, data);
}

sim::Task<Status> Device::DoPut(Keyspace* ks, std::string key,
                                std::string value) {
  if (ks->state == KeyspaceState::kEmpty) {
    ks->state = KeyspaceState::kWritable;
  }
  if (ks->state != KeyspaceState::kWritable) {
    co_return Status::FailedPrecondition("keyspace not writable");
  }
  sim::Semaphore* lock = WriteLock(ks->id);
  co_await lock->Acquire();

  co_await cpu_.Compute(config_.costs.kv_op_fixed);
  WriteBuffer& buffer = buffers_[ks->id];
  buffer.bytes += key.size() + value.size();
  ++ks->num_kvs;
  ++puts_;
  if (ks->min_key.empty() || key < ks->min_key) ks->min_key = key;
  if (ks->max_key.empty() || key > ks->max_key) ks->max_key = key;
  buffer.entries.emplace_back(std::move(key), std::move(value));

  Status s = Status::Ok();
  if (buffer.bytes >= config_.write_buffer_bytes) {
    s = co_await FlushBuffer(ks);
  }
  lock->Release();
  co_return s;
}

sim::Task<Status> Device::DoBulkPut(Keyspace* ks, const std::string& frame) {
  if (ks->state == KeyspaceState::kEmpty) {
    ks->state = KeyspaceState::kWritable;
  }
  if (ks->state != KeyspaceState::kWritable) {
    co_return Status::FailedPrecondition("keyspace not writable");
  }
  sim::Semaphore* lock = WriteLock(ks->id);
  co_await lock->Acquire();

  // Unpack the 128 KB bulk frame. The frame transfer is cheap, but each
  // record still costs per-record handling on the weak SoC cores — this is
  // what bounds the prototype's ingest rate; bulk puts win over singles by
  // amortizing the command/DMA overhead, not the record handling (§V).
  co_await cpu_.ComputeBytes(frame.size(), config_.costs.memcpy_bytes_per_sec);

  Status s = Status::Ok();
  WriteBuffer& buffer = buffers_[ks->id];
  Slice in(frame);
  std::uint32_t records_uncharged = 0;
  while (!in.empty()) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      s = Status::InvalidArgument("malformed bulk-put frame");
      break;
    }
    buffer.bytes += key.size() + value.size();
    ++ks->num_kvs;
    ++puts_;
    ++records_uncharged;
    if (ks->min_key.empty() || key.view() < ks->min_key) {
      ks->min_key = key.ToString();
    }
    if (ks->max_key.empty() || key.view() > ks->max_key) {
      ks->max_key = key.ToString();
    }
    buffer.entries.emplace_back(key.ToString(), value.ToString());
    if (records_uncharged >= 512) {
      co_await cpu_.Compute(records_uncharged * config_.costs.kv_op_fixed);
      records_uncharged = 0;
    }
    if (buffer.bytes >= config_.write_buffer_bytes) {
      s = co_await FlushBuffer(ks);
      if (!s.ok()) break;
    }
  }
  if (records_uncharged > 0) {
    co_await cpu_.Compute(records_uncharged * config_.costs.kv_op_fixed);
  }
  lock->Release();
  co_return s;
}

sim::Semaphore* Device::FlushSlots(std::uint64_t keyspace_id) {
  auto& sem = flush_slots_[keyspace_id];
  if (!sem) sem = std::make_unique<sim::Semaphore>(sim_, kMaxInflightFlushes);
  return sem.get();
}

sim::WaitGroup* Device::FlushInflight(std::uint64_t keyspace_id) {
  auto& wg = flush_inflight_[keyspace_id];
  if (!wg) wg = std::make_unique<sim::WaitGroup>(sim_);
  return wg.get();
}

// Kicks off the timed flush I/O. The buffer swap is synchronous (caller
// holds the write lock); the NAND work pipelines with up to
// kMaxInflightFlushes batches in flight, spread over the cluster's zones
// by the zone manager's rotation.
sim::Task<Status> Device::FlushBuffer(Keyspace* ks) {
  WriteBuffer& buffer = buffers_[ks->id];
  if (buffer.entries.empty()) co_return Status::Ok();
  WriteBuffer batch = std::move(buffer);
  buffer = WriteBuffer{};
  ++flushes_;

  co_await FlushSlots(ks->id)->Acquire();  // backpressure
  FlushInflight(ks->id)->Add(1);
  sim_->Spawn(FlushIo(ks, std::move(batch)));
  co_return Status::Ok();
}

sim::Task<void> Device::FlushIo(Keyspace* ks, WriteBuffer batch) {
  Status result = Status::Ok();

  // Values: one contiguous VLOG record.
  std::string values;
  values.reserve(batch.bytes);
  for (const auto& [key, value] : batch.entries) values += value;
  co_await cpu_.ComputeBytes(values.size(),
                             config_.costs.memcpy_bytes_per_sec);
  co_await cpu_.Compute(config_.costs.io_path_overhead);
  auto vaddr = co_await AppendToChain(
      &ks->vlog_clusters, ZoneType::kVlog,
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(values.data()), values.size()));
  if (vaddr.ok()) {
    ks->vlog_bytes += values.size();

    // Keys + value pointers: one KLOG record.
    std::string klog;
    klog.reserve(batch.bytes / 2 + batch.entries.size() * 12);
    std::uint64_t offset = 0;
    for (const auto& [key, value] : batch.entries) {
      wire::AppendKlogEntry(&klog, key, *vaddr + offset,
                            static_cast<std::uint32_t>(value.size()));
      offset += value.size();
    }
    co_await cpu_.ComputeBytes(klog.size(),
                               config_.costs.memcpy_bytes_per_sec);
    co_await cpu_.Compute(config_.costs.io_path_overhead);
    auto kaddr = co_await AppendToChain(
        &ks->klog_clusters, ZoneType::kKlog,
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(klog.data()), klog.size()));
    if (kaddr.ok()) {
      ks->klog_bytes += klog.size();
    } else {
      result = kaddr.status();
    }
  } else {
    result = vaddr.status();
  }

  if (!result.ok() && flush_errors_[ks->id].ok()) {
    flush_errors_[ks->id] = result;
  }
  FlushSlots(ks->id)->Release();
  FlushInflight(ks->id)->Done();
}

// Explicit "fsync" (paper §VI): persists whatever PUTs are still sitting
// in the keyspace's DRAM write buffer and waits for the log I/O to land.
sim::Task<Status> Device::DoSync(Keyspace* ks) {
  if (ks->state != KeyspaceState::kWritable &&
      ks->state != KeyspaceState::kEmpty) {
    co_return Status::Ok();  // compacted data is already durable
  }
  sim::Semaphore* lock = WriteLock(ks->id);
  co_await lock->Acquire();
  Status s = co_await FlushBuffer(ks);
  lock->Release();
  KVCSD_CO_RETURN_IF_ERROR(s);
  co_await FlushInflight(ks->id)->Wait();
  if (auto it = flush_errors_.find(ks->id);
      it != flush_errors_.end() && !it->second.ok()) {
    co_return it->second;
  }
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

sim::Task<Status> Device::ReleaseAllClusters(Keyspace* ks) {
  auto release = [this](std::vector<ClusterId>* chain) -> sim::Task<Status> {
    for (ClusterId id : *chain) {
      KVCSD_CO_RETURN_IF_ERROR(co_await zone_manager_.ReleaseCluster(id));
    }
    chain->clear();
    co_return Status::Ok();
  };
  KVCSD_CO_RETURN_IF_ERROR(co_await release(&ks->klog_clusters));
  KVCSD_CO_RETURN_IF_ERROR(co_await release(&ks->vlog_clusters));
  KVCSD_CO_RETURN_IF_ERROR(co_await release(&ks->pidx_clusters));
  KVCSD_CO_RETURN_IF_ERROR(co_await release(&ks->sorted_value_clusters));
  for (auto& [name, sidx] : ks->secondary_indexes) {
    for (ClusterId id : sidx.sidx_clusters) {
      KVCSD_CO_RETURN_IF_ERROR(co_await zone_manager_.ReleaseCluster(id));
    }
    sidx.sidx_clusters.clear();
  }
  co_return Status::Ok();
}

sim::Task<Status> Device::DropKeyspace(Keyspace* ks) {
  if (ks->state == KeyspaceState::kCompacting) {
    // Deferred deletion: the compactor finishes (or aborts) first.
    ks->pending_delete = true;
    co_return Status::Ok();
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await ReleaseAllClusters(ks));
  buffers_.erase(ks->id);
  write_locks_.erase(ks->id);
  compaction_done_.erase(ks->id);
  flush_slots_.erase(ks->id);
  flush_inflight_.erase(ks->id);
  flush_errors_.erase(ks->id);
  KVCSD_CO_RETURN_IF_ERROR(keyspace_manager_.Erase(ks->id));
  co_return co_await keyspace_manager_.Persist();
}

}  // namespace kvcsd::device
