// The KV-CSD device: the paper's core contribution.
//
// A Device models the Sidewinder-100 SoC running the on-device key-value
// store as an SPDK userspace driver: 4 weak ARM cores (a CpuPool), a DRAM
// budget that bounds merge-sort runs, and direct NVMe access to the ZNS
// SSD with a ~3 µs software path per I/O (no filesystem, no kernel).
//
// Request flow (paper Fig. 3b/4):
//   client --PCIe/NVMe--> main loop --> per-command handler coroutine
//     PUT/bulk PUT  -> 192 KB DRAM write buffer -> KLOG + VLOG clusters
//                      (keys and values stored separately, §V)
//     COMPACT       -> asynchronous on-device external merge sort: keys
//                      first, then values; produces PIDX +
//                      SORTED_VALUES and the in-memory pivot sketch
//     SIDX BUILD    -> full scan + extract + external sort -> SIDX blocks
//     QUERIES       -> sketch -> 4 KB index blocks -> value gather; only
//                      results cross PCIe back to the host
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hostenv/cost_model.h"
#include "kvcsd/flight_recorder.h"
#include "kvcsd/index_cache.h"
#include "kvcsd/keyspace_manager.h"
#include "kvcsd/zone_manager.h"
#include "nvme/log_page.h"
#include "nvme/queue.h"
#include "sim/activity.h"
#include "sim/resources.h"
#include "sim/sync.h"
#include "sim/telemetry.h"
#include "storage/zns.h"

namespace kvcsd::device {

struct DeviceConfig {
  storage::ZnsConfig zns;
  ZoneManagerConfig zones;
  std::uint32_t soc_cores = 4;
  std::uint64_t dram_bytes = GiB(8);
  std::uint64_t write_buffer_bytes = KiB(192);  // paper's prototype value
  std::uint32_t index_block_size = 4096;
  // Appends to SORTED_VALUES/PIDX/SIDX are batched to this size.
  std::uint64_t output_batch_bytes = KiB(256);
  // Merge-sort run size; 0 derives dram_bytes / 4.
  std::uint64_t sort_run_bytes = 0;
  hostenv::CostModel costs = hostenv::CostModel::Soc();

  // --- read-path acceleration (DESIGN.md §10) ---
  // DRAM carved out for the PIDX/SIDX block cache, alongside the sort-run
  // budget above; 0 derives dram_bytes / 8. Set index_cache_enabled=false
  // to turn the cache off regardless of size (for ablations).
  std::uint64_t index_cache_bytes = 0;
  bool index_cache_enabled = true;
  // Bloom bits per primary key for the per-keyspace filter built during
  // compaction and consulted by point lookups; 0 disables both the build
  // and the check.
  std::uint32_t bloom_bits_per_key = 10;
  // Maximum concurrent coalesced range reads per value gather; 1 recovers
  // the serial behavior. Values beyond the NAND channel count only add
  // queueing.
  std::uint32_t gather_fanout = 8;
  // Overlap the next index-block read with the current one in range scans.
  bool index_prefetch = true;

  // Flight recorder (DESIGN.md §14): ring capacity, SLO trip rules, dump
  // path. The ring itself is always on; dumps only happen when a rule is
  // configured (or the fault injector cuts power with dump_on_crash set).
  FlightRecorderConfig flight;

  // Stats/telemetry/trace name prefix for this device instance. Empty (the
  // default) keeps every historical name; a fleet of devices sharing one
  // simulation uses "shard0.", "shard1.", ... so each device's counters
  // ("shard0.device.*"), utilization meters ("util.shard0.soc.*"), NAND/ZNS
  // series and trace tracks stay separable. Applied transitively to the
  // embedded ZnsConfig (zns.stats_prefix is overwritten at construction).
  std::string stats_prefix;

  // Delta-index headroom bound (DESIGN.md §12): when a COMPACTED
  // keyspace's in-DRAM delta index exceeds this many bytes after a
  // mutation, the device triggers an incremental re-compaction on its own
  // (same fold the host can request with kCompact), bounding the DRAM the
  // delta can occupy. 0 (the default) disables the watermark.
  std::uint64_t delta_fold_watermark_bytes = 0;

  std::uint64_t EffectiveSortRunBytes() const {
    return sort_run_bytes != 0 ? sort_run_bytes : dram_bytes / 4;
  }
  std::uint64_t EffectiveIndexCacheBytes() const {
    if (!index_cache_enabled) return 0;
    return index_cache_bytes != 0 ? index_cache_bytes : dram_bytes / 8;
  }
};

// An unsorted log entry parsed back from KLOG (key + pointer to VLOG).
// `seq` is the keyspace mutation sequence that decides last-writer-wins
// between duplicate keys; `tombstone` marks a point DELETE.
struct KlogEntry {
  std::string key;
  std::uint64_t value_addr = 0;
  std::uint32_t value_len = 0;
  std::uint64_t seq = 0;
  bool tombstone = false;
};

// A sorted run spilled to TEMP zone clusters during an external sort: a
// list of contiguous flash segments, each holding whole serialized entries.
struct SpilledRun {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> segments;
  std::uint64_t entries = 0;
};

// One record of a secondary-index external sort: the order-encoded
// secondary key, the primary key, and the value pointer.
struct SidxTuple {
  std::string skey;
  std::string pkey;
  std::uint64_t vaddr;
  std::uint32_t vlen;
};

// Compaction observability, cumulative across every compaction and
// secondary-index build the device has run. Byte counters cover the
// compaction path only (KLOG parsing, TEMP spills and re-reads, value
// gather/rewrite, index-block output), so they separate compaction I/O
// from foreground traffic. Phase ticks are summed wall intervals; they
// can overlap when several keyspaces compact concurrently.
struct CompactionStats {
  std::uint64_t bytes_read = 0;       // flash bytes read by compaction
  std::uint64_t bytes_written = 0;    // flash bytes written by compaction
  std::uint64_t runs_spilled = 0;     // sorted runs spilled to TEMP zones
  std::uint64_t max_merge_fanin = 0;  // widest k-way merge observed
  Tick phase1_ticks = 0;  // run generation: KLOG parse + sort + spill
  Tick phase2_ticks = 0;  // merge + value permutation + index build
};

class Device {
 public:
  Device(sim::Simulation* sim, const DeviceConfig& config,
         nvme::QueueSet* queues);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  ~Device();

  // Spawns the command-service loop. Call once.
  void Start();

  // Simulated power cycle: constructs a fresh Device over the surviving
  // ZNS byte state of `prior`. Resets `prior`'s fault injector (if any)
  // so the new device's I/O is live again, then clones the zone payloads.
  // The caller Start()s the new device and runs Recover() on it; `prior`
  // must stay alive (it still parks a coroutine on its old queue set)
  // but is permanently idle. `queues` must be a fresh queue set.
  static std::unique_ptr<Device> Restart(sim::Simulation* sim,
                                         const DeviceConfig& config,
                                         nvme::QueueSet* queues,
                                         const Device& prior);

  // Crash-consistent recovery (recovery.cc): loads the newest intact
  // metadata snapshot (keyspace table + zone-cluster table), rolls
  // keyspaces caught COMPACTING back to WRITABLE (releasing orphaned
  // TEMP/PIDX/SIDX output clusters), reclaims clusters referenced by no
  // keyspace and zones owned by no cluster, and replays the KLOG chains
  // of WRITABLE keyspaces to rebuild num_kvs/min_key/max_key.
  sim::Task<Status> Recover();

  // Recovers only the keyspace table from the metadata zones (for tests
  // that exercise snapshot persistence in isolation).
  sim::Task<Status> RecoverMetadata();

  KeyspaceManager& keyspaces() { return keyspace_manager_; }
  ZoneManager& zones() { return zone_manager_; }
  storage::ZnsSsd& ssd() { return ssd_; }
  sim::CpuPool& cpu() { return cpu_; }
  const DeviceConfig& config() const { return config_; }
  const IndexBlockCache& index_cache() const { return index_cache_; }

  // Prefix-scoped view over the simulation-wide stats registry (the
  // prefix is config().stats_prefix; empty for single-device sims, so
  // names are unchanged). The device records per-opcode counters
  // ("device.cmd.<op>"), aggregate latency histograms
  // ("device.cmd.<class>_ns") and per-keyspace latency histograms
  // ("device.ks.<keyspace>.<class>_ns") for the put/get/range/
  // secondary_range classes (nvme::OpcodeLatencyClass).
  sim::StatsView& stats();
  const sim::StatsView& stats() const;

  std::uint64_t puts() const { return puts_; }
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t compactions_done() const { return compactions_done_; }
  std::uint64_t queries() const { return queries_; }
  const CompactionStats& compaction_stats() const { return compaction_stats_; }

  // Commands popped off the SQ whose handler coroutine has not finished.
  // Returns to zero once the queue drains — including across a power
  // cycle, where the powered-off fast path completes stragglers.
  std::uint64_t inflight_commands() const { return inflight_commands_; }
  // Compactions started (kCompact spawn) and not yet finished.
  std::uint64_t compactions_running() const { return compactions_running_; }

  // --- in-band telemetry (DESIGN.md §14) ---
  // The device-side builders behind the kGetLogPage admin command. Public
  // so the harness can render a health dump without a queue round-trip;
  // over the wire the host receives the same pages flat-encoded
  // (nvme/log_page.h) and decodes them with Client::GetHealth()/GetStats().
  nvme::HealthPage BuildHealthPage() const;
  nvme::StatsPage BuildStatsPage() const;
  // The health page rendered as a JSON object ({"tick":..., "gauges":{}}).
  std::string HealthJson() const;

  // Bounded ring of recent command summaries + SLO trip dumps. Shared with
  // the Restart successor so a power cycle keeps pre-crash history.
  FlightRecorder& flight() { return *flight_; }
  const FlightRecorder& flight() const { return *flight_; }

  // Windowed wall-time meter of the single-core command dispatch loop
  // (capacity 1.0): the ROADMAP's known serialization bottleneck, made
  // visible as "util.dispatch.*" gauges.
  const sim::ResourceMeter& dispatch_meter() const { return dispatch_meter_; }

 private:
  // White-box access for read-path unit tests (tests/kvcsd/*): GatherValues
  // and ReadIndexBlock are internal, but dedupe/coalescing behavior is
  // worth pinning directly.
  friend struct DeviceTestPeer;

  // --- plumbing ---
  // Services every SQ/CQ pair of the queue set: commands are popped in
  // the set's arbitration order (round-robin by default), so one full
  // queue cannot starve its neighbors.
  sim::Task<void> MainLoop();
  sim::Task<void> HandleCommand(nvme::QueuePair::Incoming incoming);
  sim::Task<nvme::Completion> Dispatch(nvme::Command& cmd);
  // Keyspace-scoped opcodes; runs with `ks` pinned (inflight counter), so
  // a concurrent drop defers instead of freeing the keyspace mid-await.
  sim::Task<nvme::Completion> DispatchKeyspaceCommand(nvme::Command& cmd,
                                                      Keyspace* ks);
  sim::Task<void> Unpin(Keyspace* ks);
  // Registers a pass through a named crash point; true = power is gone.
  bool CrashPoint(const char* point);

  // Appends to the last cluster of `chain`, allocating a new cluster of
  // `type` when full. `act` attributes the NAND channel time (host-write
  // for log flushes, compact/recompact for the background folds).
  sim::Task<Result<std::uint64_t>> AppendToChain(
      std::vector<ClusterId>* chain, ZoneType type,
      std::span<const std::byte> data,
      sim::Activity act = sim::Activity::kOther);

  // --- write path ---
  struct WriteEntry {
    std::string key;
    std::string value;
    std::uint64_t seq = 0;
    bool tombstone = false;
  };
  struct WriteBuffer {
    std::vector<WriteEntry> entries;
    std::uint64_t bytes = 0;
  };
  sim::Task<Status> DoPut(Keyspace* ks, std::string key, std::string value);
  sim::Task<Status> DoBulkPut(Keyspace* ks, const std::string& frame);
  // Point DELETE: a tombstone record in the (delta) log. Blind — deleting
  // an absent key is Ok. kBusy while a (re)compaction owns the logs.
  sim::Task<Status> DoDelete(Keyspace* ks, std::string key);
  sim::Task<Status> FlushBuffer(Keyspace* ks);
  // Shared admission for PUT/DELETE: promotes EMPTY, accepts WRITABLE and
  // COMPACTED (delta mode), rejects (kBusy) during (re)compaction.
  Status CheckMutable(Keyspace* ks) const;
  // Records one mutation in the COMPACTED delta index (newest wins) and
  // refreshes num_kvs from run_entries + delta_live.
  void ApplyDeltaMutation(Keyspace* ks, const std::string& key,
                          std::string value, std::uint64_t seq,
                          bool tombstone);
  // Delta-index headroom bound: after a delta mutation, spawns an
  // incremental re-compaction when delta_index_bytes has crossed
  // config_.delta_fold_watermark_bytes (and the keyspace is idle in
  // kCompacted). Counts "device.delta.watermark_folds" per trigger.
  void MaybeRequestDeltaFold(Keyspace* ks);

  // --- compaction (compactor.cc) ---
  // Sorts the keyspace; when `fused_specs` is non-empty, also builds those
  // secondary indexes in the same pass (the paper's §V future-work
  // optimization) by extracting keys from values already in DRAM.
  //
  // The implementation is a multi-core pipeline (see DESIGN.md §7): run
  // generation fans out across the CpuPool, the key merge runs on a loser
  // tree over double-buffered TEMP readers, and PIDX building + fused
  // extraction of one value batch overlaps the gather/write of the next.
  // `trigger_cmd_id` is the causal id of the kCompact command that spawned
  // this compaction (0 when internal); the compaction span links back to
  // it with a flow event.
  sim::Task<Status> CompactKeyspace(
      Keyspace* ks, std::vector<nvme::SecondaryIndexSpec> fused_specs = {},
      std::uint64_t trigger_cmd_id = 0);

  // The compaction body. `scratch` collects every cluster the compaction
  // allocates; on failure the CompactKeyspace wrapper releases them
  // (best-effort — after a power cut the resets fail and recovery
  // reclaims the orphans instead) and rolls the keyspace back to
  // WRITABLE. On success the commit point clears `scratch`.
  sim::Task<Status> RunCompaction(Keyspace* ks,
                                  std::vector<nvme::SecondaryIndexSpec>
                                      fused_specs,
                                  std::vector<ClusterId>* scratch);

  // Phase 1 worker: streams one KLOG zone in bounded chunks, accumulates
  // entries up to `run_budget` bytes, and spills sorted runs to TEMP
  // clusters owned by *out. Independent per zone, safe to fan out.
  struct RunGenOutput;
  sim::Task<Status> GenerateZoneRuns(std::uint32_t zone,
                                     std::uint64_t run_budget,
                                     RunGenOutput* out);

  // Phase 2 consumer stage: pops gathered value batches off a bounded
  // channel and builds PIDX blocks plus fused secondary-key tuples while
  // the producer gathers and writes the next batch.
  struct ValueBatch;
  struct PidxPipeline;
  sim::Task<Status> IndexBuildStage(PidxPipeline* pipe);

  // --- secondary index (compactor.cc) ---
  // External sort state for <skey, pkey, value pointer> tuples.
  struct SidxSortState {
    std::vector<ClusterId> temp_clusters;
    std::vector<SpilledRun> runs;
    std::vector<SidxTuple> current;
    std::uint64_t current_bytes = 0;
    std::uint64_t run_budget = 0;
  };
  sim::Task<Status> SidxAdd(SidxSortState* state, SidxTuple tuple);
  sim::Task<Status> SidxSpill(SidxSortState* state);
  // Merges the spilled runs into SIDX blocks + sketch, building in place
  // in *out so the caller can release partially written clusters on
  // failure. Releases the state's TEMP clusters on success.
  sim::Task<Status> SidxMergeToBlocks(SidxSortState* state,
                                      const nvme::SecondaryIndexSpec& spec,
                                      SecondaryIndex* out);

  sim::Task<Status> BuildSecondaryIndex(Keyspace* ks,
                                        const nvme::SecondaryIndexSpec& spec);
  sim::Task<Status> BuildSecondaryIndexInner(
      Keyspace* ks, const nvme::SecondaryIndexSpec& spec,
      SidxSortState* state, SecondaryIndex* out);

  // --- incremental re-compaction (recompact.cc) ---
  // Folds a COMPACTED keyspace's delta into the existing sorted run:
  // rewrites only the PIDX/SIDX blocks the delta keys touch (untouched
  // blocks stay in place, their old clusters retained), appends the delta
  // values to fresh SORTED_VALUES clusters, adds new keys to the bloom
  // filter in place, and commits by persisting the merged table —
  // DESIGN.md §12. Failure-handling shell mirroring CompactKeyspace.
  sim::Task<Status> RecompactKeyspace(Keyspace* ks,
                                      std::uint64_t trigger_cmd_id = 0);
  sim::Task<Status> RunRecompaction(Keyspace* ks,
                                    std::vector<ClusterId>* scratch);
  // Loads a delta entry's value bytes (inline if the device never lost
  // power since the PUT, otherwise gathered from the VLOG delta).
  sim::Task<Result<std::string>> LoadDeltaValue(
      const DeltaEntry& entry, sim::Activity act = sim::Activity::kHostRead);
  // Queries arriving while a re-compaction owns the keyspace wait here
  // (the commit swaps clusters under the reader otherwise).
  sim::Task<Status> AwaitQueryable(Keyspace* ks);

  // --- explicit persistence ---
  sim::Task<Status> DoSync(Keyspace* ks);

  // --- queries (query.cc) ---
  sim::Task<Result<std::string>> QueryPoint(Keyspace* ks,
                                            const std::string& key);
  // `act` attributes the scan's flash reads and SoC compute: host-read for
  // client-issued scans, pushdown when QueryPushdown drives them.
  sim::Task<Status> QueryPrimaryRange(
      Keyspace* ks, const std::string& lo, const std::string& hi,
      std::uint32_t limit,
      std::vector<std::pair<std::string, std::string>>* out,
      sim::Activity act = sim::Activity::kHostRead);
  sim::Task<Status> QuerySecondaryRange(
      Keyspace* ks, const std::string& index_name, const std::string& lo,
      const std::string& hi, std::uint32_t limit,
      std::vector<std::pair<std::string, std::string>>* out,
      sim::Activity act = sim::Activity::kHostRead);

  // --- pushdown (select.cc) ---
  // kKvSelect / kKvAggregate: collects candidate rows through the regular
  // range machinery above (bloom/cache/prefetch on the run side,
  // delta-merge with tombstone suppression, coalesced gather fan-out),
  // then filters on cmd.pred, projects per cmd.proj or folds cmd.agg —
  // all device-side, so only survivors or scalars cross PCIe. Records
  // "device.select.*" counters and a "query" trace span carrying the
  // bytes-scanned vs bytes-returned split.
  sim::Task<Status> QueryPushdown(Keyspace* ks, const nvme::Command& cmd,
                                  nvme::Completion* out);

  // Reads one 4 KB index block (PIDX or SIDX) given its sketch entry,
  // consulting the DRAM index cache first; `keyspace_id` scopes the cache
  // key so recycled block addresses can never alias across keyspaces.
  sim::Task<Result<std::string>> ReadIndexBlock(
      std::uint64_t keyspace_id, const SketchEntry& entry,
      sim::Activity act = sim::Activity::kHostRead);

  // One-slot pipeline stage for range scans: the next sketch block's read
  // is issued while the current block is still in flight or being parsed.
  // The owning scan MUST await `done` on every outstanding slot before
  // returning (the prefetch coroutine writes through the slot pointer).
  struct IndexPrefetch {
    bool active = false;
    std::size_t pos = 0;
    Result<std::string> block{Status::Aborted("prefetch pending")};
    std::unique_ptr<sim::Event> done;
  };
  sim::Task<void> PrefetchIndexBlock(std::uint64_t keyspace_id,
                                     SketchEntry entry, IndexPrefetch* slot,
                                     sim::Activity act =
                                         sim::Activity::kHostRead);

  // Gathers values for (addr, len) requests: identical refs are deduped,
  // address-adjacent reads are coalesced into ranges, and the range reads
  // fan out across NAND channels (config_.gather_fanout inflight).
  // Results are returned in request order regardless of I/O timing.
  struct ValueRef {
    std::uint64_t addr;
    std::uint32_t len;
  };
  sim::Task<Result<std::vector<std::string>>> GatherValues(
      std::vector<ValueRef> refs,
      sim::Activity act = sim::Activity::kHostRead);

  // --- deletion ---
  // Defers while the keyspace is compacting or has pinned commands;
  // otherwise completes the drop inline.
  sim::Task<Status> DropKeyspace(Keyspace* ks);
  // The drop itself. Removes the table entry synchronously (before any
  // suspension, so no new command can find the dying keyspace), persists
  // the removal — the commit point — then releases the clusters.
  sim::Task<Status> FinishDrop(Keyspace* ks);
  // Runs a deferred drop once the keyspace is unpinned and idle.
  sim::Task<void> MaybeFinishPendingDelete(Keyspace* ks);
  // Releases every cluster in `ids`, ignoring failures (NotFound after a
  // double release, I/O errors after a power cut).
  sim::Task<void> ReleaseClustersBestEffort(std::vector<ClusterId> ids);

  // --- recovery helpers (recovery.cc) ---
  // Streams a WRITABLE keyspace's KLOG chain to rebuild num_kvs, min_key,
  // max_key, klog_bytes and vlog_bytes after a restart.
  sim::Task<Status> ReplayKlogChains(Keyspace* ks);
  // Streams a COMPACTED keyspace's KLOG *delta* chain to rebuild the
  // in-DRAM delta index (newest seq per key), next_seq, and the byte
  // counters, truncating any torn tail.
  sim::Task<Status> ReplayDeltaChains(Keyspace* ks);

  // Per-keyspace write serialization + compaction-completion events.
  sim::Semaphore* WriteLock(std::uint64_t keyspace_id);
  sim::Event* CompactionDone(std::uint64_t keyspace_id);
  // Set when the keyspace's active_readers count drops to zero; the
  // re-compaction commit waits on it (recompact.cc).
  sim::Event* ReadersIdle(std::uint64_t keyspace_id);

  // Applies config.stats_prefix transitively (zns.stats_prefix) before
  // the members below are constructed from config_.
  static DeviceConfig Prefixed(DeviceConfig config);

  sim::Simulation* sim_;
  DeviceConfig config_;
  // Prefix-scoped stats recording for everything device-side; transparent
  // pass-through when config_.stats_prefix is empty.
  sim::StatsView stats_view_;
  // Trace track names, carrying config_.stats_prefix so per-device spans
  // stay separable ("shard0.device", "shard0.compaction", ...).
  std::string trk_device_;
  std::string trk_nvme_sq_;
  std::string trk_compaction_;
  std::string trk_query_;
  std::string trk_recovery_;
  nvme::QueueSet* queues_;
  storage::ZnsSsd ssd_;
  ZoneManager zone_manager_;
  KeyspaceManager keyspace_manager_;
  sim::CpuPool cpu_;
  IndexBlockCache index_cache_;
  // Mirrors config_.zns.faults (not owned); nullptr = no fault injection.
  sim::FaultInjector* faults_ = nullptr;
  // Wall time of the single dispatch core (MainLoop), per activity class.
  sim::ResourceMeter dispatch_meter_;
  // Shared across Device::Restart so pre-crash history survives the cycle.
  std::shared_ptr<FlightRecorder> flight_;
  // Crash-hook registration for the dump-on-crash rule (0 = none).
  std::uint64_t flight_crash_token_ = 0;

  std::map<std::uint64_t, WriteBuffer> buffers_;
  std::map<std::uint64_t, std::unique_ptr<sim::Semaphore>> write_locks_;
  std::map<std::uint64_t, std::unique_ptr<sim::Event>> compaction_done_;
  std::map<std::uint64_t, std::unique_ptr<sim::Event>> readers_idle_;
  // Flush pipelining: a bounded number of log flushes per keyspace may be
  // in flight; compaction drains them via the wait group.
  static constexpr std::uint64_t kMaxInflightFlushes = 4;
  std::map<std::uint64_t, std::unique_ptr<sim::Semaphore>> flush_slots_;
  std::map<std::uint64_t, std::unique_ptr<sim::WaitGroup>> flush_inflight_;
  std::map<std::uint64_t, Status> flush_errors_;
  sim::Semaphore* FlushSlots(std::uint64_t keyspace_id);
  sim::WaitGroup* FlushInflight(std::uint64_t keyspace_id);
  // The timed I/O part of a flush, runs detached per batch.
  sim::Task<void> FlushIo(Keyspace* ks, WriteBuffer batch);

  // Appends this device's gauges ((name, value) pairs) for one telemetry
  // sample: NVMe SQ depth and in-flight counts, per-keyspace state and log
  // bytes, free/used zones per role, compaction progress.
  void CollectTelemetry(sim::TelemetrySampler::Gauges* out) const;

  std::uint64_t puts_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t compactions_done_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t inflight_commands_ = 0;
  std::uint64_t compactions_running_ = 0;
  CompactionStats compaction_stats_;
  std::uint64_t telemetry_token_ = 0;
  bool started_ = false;
};

}  // namespace kvcsd::device
