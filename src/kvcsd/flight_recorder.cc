#include "kvcsd/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <string_view>

namespace kvcsd::device {

namespace {

// Minimal JSON string escaping — names here are opcode/status/metric
// identifiers, but a crash-point or gauge name must never break the
// document.
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.resize(config_.capacity);
}

void FlightRecorder::Record(const Entry& entry) {
  ring_[next_] = entry;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

const char* FlightRecorder::BreachReason(const Entry& entry) const {
  if (config_.slo_exec_ns != 0 && entry.exec_ns > config_.slo_exec_ns) {
    return "slo_exec";
  }
  if (config_.dump_on_busy && entry.status == StatusCode::kBusy) {
    return "busy";
  }
  return nullptr;
}

std::vector<FlightRecorder::Entry> FlightRecorder::Entries() const {
  std::vector<Entry> out;
  out.reserve(size_);
  const std::size_t start = size_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::Dump(const std::string& reason, Tick now,
                                 const std::string& crash_point) {
  ++trips_;
  std::string json = "{\n  \"reason\": ";
  AppendJsonString(&json, reason);
  json += ",\n  \"tick\": " + std::to_string(now);
  json += ",\n  \"trip\": " + std::to_string(trips_);
  if (!crash_point.empty()) {
    json += ",\n  \"crash_point\": ";
    AppendJsonString(&json, crash_point);
  }
  json += ",\n  \"utilization\": {";
  if (snapshot_) {
    std::vector<std::pair<std::string, std::uint64_t>> gauges;
    snapshot_(&gauges);
    bool first = true;
    for (const auto& [name, value] : gauges) {
      if (!first) json += ",";
      first = false;
      json += "\n    ";
      AppendJsonString(&json, name);
      json += ": " + std::to_string(value);
    }
    if (!first) json += "\n  ";
  }
  json += "},\n  \"entries\": [";
  bool first = true;
  for (const Entry& e : Entries()) {
    if (!first) json += ",";
    first = false;
    json += "\n    {\"cmd_id\": " + std::to_string(e.cmd_id) + ", \"op\": ";
    AppendJsonString(&json, nvme::OpcodeName(e.opcode));
    json += ", \"q\": " + std::to_string(e.queue_id);
    json += ", \"tick\": " + std::to_string(e.tick);
    json += ", \"queue_wait_ns\": " + std::to_string(e.queue_wait_ns);
    json += ", \"dispatch_ns\": " + std::to_string(e.dispatch_ns);
    json += ", \"exec_ns\": " + std::to_string(e.exec_ns);
    json += ", \"status\": ";
    AppendJsonString(&json, StatusCodeName(e.status));
    json += "}";
  }
  if (!first) json += "\n  ";
  json += "]\n}\n";

  last_dump_ = json;
  if (!config_.dump_path.empty()) {
    std::ofstream out(config_.dump_path + "." + std::to_string(trips_) +
                      ".json");
    out << json;
  }
  return json;
}

}  // namespace kvcsd::device
