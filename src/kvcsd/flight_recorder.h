// Device-side flight recorder (DESIGN.md §14): a bounded ring of recent
// command summaries that dumps itself — together with a utilization
// snapshot — the moment an SLO rule trips, so the commands *leading up to*
// a latency breach, a kBusy rejection storm, or a power cut are preserved
// without tracing every command of a long run.
//
// The ring is cheap enough to stay on for every bench: one POD entry per
// completed command, overwriting the oldest once `capacity` is reached.
// Three trip rules, all off by default:
//
//  * slo_exec_ns  — a command's device execution time exceeded the bound;
//  * dump_on_busy — a command completed kBusy (backpressure made visible);
//  * dump_on_crash — the fault injector cut power (the device registers a
//    crash hook; the dump then carries the crash point's name).
//
// Dumps are JSON. With `dump_path` set, each trip writes
// <dump_path>.<trip#>.json; the newest dump is always retained in memory
// (last_dump()) for tests and the harness. The recorder is shared between
// a device and its Restart successor (std::shared_ptr, like sim::Log), so
// a power cycle keeps the pre-crash history readable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "nvme/command.h"

namespace kvcsd::device {

struct FlightRecorderConfig {
  // Ring capacity in command summaries.
  std::size_t capacity = 256;
  // Dump when a command's exec latency exceeds this bound; 0 disables.
  Tick slo_exec_ns = 0;
  // Dump when a command completes kBusy (compaction backpressure).
  bool dump_on_busy = false;
  // Dump from the fault injector's crash hook (the device wires this up).
  bool dump_on_crash = true;
  // File prefix for dumps ("<path>.<trip#>.json"); empty = memory only.
  std::string dump_path;
};

class FlightRecorder {
 public:
  // One completed command, as the device saw it.
  struct Entry {
    std::uint64_t cmd_id = 0;
    nvme::Opcode opcode = nvme::Opcode::kKvStore;
    std::uint32_t queue_id = 0;
    Tick tick = 0;           // completion tick
    Tick queue_wait_ns = 0;  // SQ residency before the main loop popped it
    Tick dispatch_ns = 0;    // pop -> handler start (dispatch-core time)
    Tick exec_ns = 0;        // handler start -> completion
    StatusCode status = StatusCode::kOk;
  };

  explicit FlightRecorder(FlightRecorderConfig config);

  void Record(const Entry& entry);

  // Non-null when `entry` trips a configured SLO rule; the string is the
  // dump reason ("slo_exec" / "busy").
  const char* BreachReason(const Entry& entry) const;

  // Called at dump time to append "util.*" gauges (and anything else worth
  // snapshotting) to the dump. Re-bound by Device::Restart so the dump
  // always reflects the live device.
  using SnapshotFn =
      std::function<void(std::vector<std::pair<std::string, std::uint64_t>>*)>;
  void set_snapshot_provider(SnapshotFn fn) { snapshot_ = std::move(fn); }

  // Serializes the ring (oldest first) plus the utilization snapshot,
  // retains it as last_dump(), writes it to dump_path when configured, and
  // counts the trip. Returns the JSON document.
  std::string Dump(const std::string& reason, Tick now,
                   const std::string& crash_point = std::string());

  std::uint64_t trips() const { return trips_; }
  const std::string& last_dump() const { return last_dump_; }
  std::size_t size() const { return size_; }
  // Ring contents, oldest first.
  std::vector<Entry> Entries() const;
  const FlightRecorderConfig& config() const { return config_; }

 private:
  FlightRecorderConfig config_;
  std::vector<Entry> ring_;
  std::size_t next_ = 0;  // overwrite cursor
  std::size_t size_ = 0;
  std::uint64_t trips_ = 0;
  std::string last_dump_;
  SnapshotFn snapshot_;
};

}  // namespace kvcsd::device
