#include "kvcsd/index_cache.h"

namespace kvcsd::device {

bool IndexBlockCache::Lookup(std::uint64_t keyspace_id,
                             std::uint64_t block_addr, std::string* out) {
  if (!enabled()) return false;
  auto it = map_.find(Key{keyspace_id, block_addr});
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->block;
  return true;
}

void IndexBlockCache::Insert(std::uint64_t keyspace_id,
                             std::uint64_t block_addr,
                             const std::string& block) {
  if (!enabled() || block.size() > capacity_) return;
  const Key key{keyspace_id, block_addr};
  auto it = map_.find(key);
  if (it != map_.end()) {
    charge_ -= it->second->block.size();
    it->second->block = block;
    charge_ += block.size();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (charge_ + block.size() > capacity_) EvictOne();
  lru_.push_front(Entry{key, block});
  map_[key] = lru_.begin();
  charge_ += block.size();
}

void IndexBlockCache::EvictOne() {
  const Entry& victim = lru_.back();
  charge_ -= victim.block.size();
  map_.erase(victim.key);
  lru_.pop_back();
  ++evictions_;
}

void IndexBlockCache::EraseKeyspace(std::uint64_t keyspace_id) {
  auto it = map_.lower_bound(Key{keyspace_id, 0});
  while (it != map_.end() && it->first.first == keyspace_id) {
    charge_ -= it->second->block.size();
    lru_.erase(it->second);
    it = map_.erase(it);
  }
}

void IndexBlockCache::Clear() {
  lru_.clear();
  map_.clear();
  charge_ = 0;
}

}  // namespace kvcsd::device
