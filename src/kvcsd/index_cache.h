// DRAM-resident cache of 4 KB PIDX/SIDX index blocks (DESIGN.md §10).
//
// The device's query path re-reads index blocks from flash on every
// lookup; this cache keeps recently used blocks in the SoC DRAM budget
// carved out by DeviceConfig::EffectiveIndexCacheBytes(). Entries are
// keyed by (keyspace id, block address): keyspace ids are never reused
// within a device lifetime, so a block address recycled by a later zone
// reset can only collide under the SAME keyspace — and those entries are
// invalidated explicitly at the two points a keyspace's index blocks can
// change identity (compaction commit, keyspace drop). A power cycle
// constructs a fresh Device and with it an empty cache.
//
// Plain LRU (std::list MRU-front + map of iterators), byte-charged by
// block size. Deterministic: eviction order depends only on the access
// sequence, never on timing.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

namespace kvcsd::device {

class IndexBlockCache {
 public:
  // capacity_bytes == 0 disables the cache entirely.
  explicit IndexBlockCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  bool enabled() const { return capacity_ > 0; }

  // Copies the cached block into *out and promotes it to MRU. Counts a
  // hit or miss either way; returns false when absent (or disabled).
  bool Lookup(std::uint64_t keyspace_id, std::uint64_t block_addr,
              std::string* out);

  // Inserts (or refreshes) a block, evicting LRU entries until it fits.
  // Blocks larger than the whole capacity are not cached.
  void Insert(std::uint64_t keyspace_id, std::uint64_t block_addr,
              const std::string& block);

  // Drops every block belonging to `keyspace_id` (drop / re-compaction).
  void EraseKeyspace(std::uint64_t keyspace_id);

  void Clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t charge() const { return charge_; }
  std::uint64_t entries() const { return map_.size(); }
  std::uint64_t capacity() const { return capacity_; }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  struct Entry {
    Key key;
    std::string block;
  };
  using List = std::list<Entry>;

  void EvictOne();

  std::uint64_t capacity_;
  std::uint64_t charge_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  List lru_;  // front = most recently used
  std::map<Key, List::iterator> map_;
};

}  // namespace kvcsd::device
