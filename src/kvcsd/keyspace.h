// Keyspace metadata (paper §IV "Keyspace Manager").
//
// A keyspace is a named container of key-value pairs with the lifecycle
//   EMPTY -> WRITABLE -> COMPACTING -> COMPACTED
// Only COMPACTED keyspaces are queryable; secondary indexes attach only in
// the COMPACTED state. The keyspace table also stores the per-block pivot
// "sketches" that primary and secondary queries start from.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kvcsd/zone_manager.h"
#include "nvme/command.h"

namespace kvcsd::device {

enum class KeyspaceState : std::uint8_t {
  kEmpty = 0,
  kWritable,
  kCompacting,
  kCompacted,
};

std::string_view KeyspaceStateName(KeyspaceState state);

// One entry per 4 KB index block: the block's first (pivot) key and its
// device address + length. Kept in SoC DRAM as part of the keyspace table.
struct SketchEntry {
  std::string pivot;
  std::uint64_t block_addr = 0;
  std::uint32_t block_len = 0;
};

struct SecondaryIndex {
  nvme::SecondaryIndexSpec spec;
  std::vector<ClusterId> sidx_clusters;
  std::vector<SketchEntry> sketch;  // pivot = order-encoded secondary key
  std::uint64_t entries = 0;
};

struct Keyspace {
  std::uint64_t id = 0;
  std::string name;
  KeyspaceState state = KeyspaceState::kEmpty;

  std::uint64_t num_kvs = 0;
  std::string min_key;
  std::string max_key;

  // WRITABLE-phase storage.
  std::vector<ClusterId> klog_clusters;
  std::vector<ClusterId> vlog_clusters;
  std::uint64_t klog_bytes = 0;
  std::uint64_t vlog_bytes = 0;

  // COMPACTED-phase storage.
  std::vector<ClusterId> pidx_clusters;
  std::vector<ClusterId> sorted_value_clusters;
  std::vector<SketchEntry> pidx_sketch;
  // Serialized bloom filter over the primary keys (common/bloom.h format),
  // built while compaction streams the merged keys through the index
  // builder and persisted with the metadata snapshot so recovery restores
  // it. Empty = no filter (bloom disabled at compaction time, or the
  // keyspace is not COMPACTED); point lookups then probe flash directly.
  std::string pidx_bloom;

  std::map<std::string, SecondaryIndex> secondary_indexes;

  // Deletion requested while compaction/index build was running (paper:
  // "deletion may be deferred due to on-going compaction"). Persisted in
  // the metadata snapshot before the drop is acknowledged, so recovery
  // completes a deferred drop a crash interrupted.
  bool pending_delete = false;

  // Commands currently executing against this keyspace. A handler pins
  // the keyspace for the span of its coroutine so a concurrent drop
  // cannot free it mid-await; DropKeyspace defers until this drains.
  std::uint32_t inflight = 0;
};

}  // namespace kvcsd::device
