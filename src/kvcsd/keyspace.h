// Keyspace metadata (paper §IV "Keyspace Manager").
//
// A keyspace is a named container of key-value pairs with the lifecycle
//   EMPTY -> WRITABLE -> COMPACTING -> COMPACTED <-> RECOMPACTING
// Only COMPACTED keyspaces are queryable; secondary indexes attach only in
// the COMPACTED state. The keyspace table also stores the per-block pivot
// "sketches" that primary and secondary queries start from.
//
// A COMPACTED keyspace stays mutable (DESIGN.md §12): PUT/DELETE traffic
// lands in a fresh KLOG/VLOG *delta log* (reusing the klog/vlog chains,
// empty right after compaction) with an in-DRAM per-key delta index for
// merged reads. kCompact on a COMPACTED keyspace folds the delta back
// into the sorted run incrementally (RECOMPACTING), rewriting only the
// index blocks the delta touches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kvcsd/zone_manager.h"
#include "nvme/command.h"

namespace kvcsd::device {

enum class KeyspaceState : std::uint8_t {
  kEmpty = 0,
  kWritable,
  kCompacting,
  kCompacted,
  // Incremental re-compaction in progress: the sorted run and the delta
  // are both intact (queries wait for the fold to finish); a crash rolls
  // straight back to kCompacted.
  kRecompacting,
};

std::string_view KeyspaceStateName(KeyspaceState state);

// One entry per 4 KB index block: the block's first (pivot) key and its
// device address + length. Kept in SoC DRAM as part of the keyspace table.
struct SketchEntry {
  std::string pivot;
  std::uint64_t block_addr = 0;
  std::uint32_t block_len = 0;
};

struct SecondaryIndex {
  nvme::SecondaryIndexSpec spec;
  std::vector<ClusterId> sidx_clusters;
  std::vector<SketchEntry> sketch;  // pivot = order-encoded secondary key
  std::uint64_t entries = 0;
};

// Newest live mutation for one key of a COMPACTED keyspace's delta log.
// The durable form is the KLOG/VLOG delta; this index is the DRAM view
// merged reads consult first, rebuilt by delta replay after a power cut.
// While the device stays up the value rides inline (written by the PUT
// before its flush lands); after a replay only the VLOG pointer survives
// and readers gather the value from flash.
// Fixed DRAM cost charged per delta-index entry (map node + DeltaEntry
// fields) when maintaining Keyspace::delta_index_bytes, on top of the key
// and inline value bytes. An estimate — the gauge bounds headroom, it does
// not bill exact allocator bytes.
inline constexpr std::uint64_t kDeltaEntryOverhead = 48;

struct DeltaEntry {
  std::uint64_t seq = 0;
  std::uint64_t vaddr = 0;
  std::uint32_t vlen = 0;
  bool tombstone = false;
  bool has_value = false;  // value below is the authoritative bytes
  std::string value;
};

struct Keyspace {
  std::uint64_t id = 0;
  std::string name;
  KeyspaceState state = KeyspaceState::kEmpty;

  std::uint64_t num_kvs = 0;
  std::string min_key;
  std::string max_key;

  // WRITABLE-phase storage.
  std::vector<ClusterId> klog_clusters;
  std::vector<ClusterId> vlog_clusters;
  std::uint64_t klog_bytes = 0;
  std::uint64_t vlog_bytes = 0;

  // COMPACTED-phase storage.
  std::vector<ClusterId> pidx_clusters;
  std::vector<ClusterId> sorted_value_clusters;
  std::vector<SketchEntry> pidx_sketch;
  // Serialized bloom filter over the primary keys (common/bloom.h format),
  // built while compaction streams the merged keys through the index
  // builder and persisted with the metadata snapshot so recovery restores
  // it. Empty = no filter (bloom disabled at compaction time, or the
  // keyspace is not COMPACTED); point lookups then probe flash directly.
  std::string pidx_bloom;

  std::map<std::string, SecondaryIndex> secondary_indexes;

  // Live entries in the sorted run (exact count produced by the last
  // LWW-deduped compaction; persisted). num_kvs for a COMPACTED keyspace
  // is run_entries plus the delta's live (non-tombstone) key count — an
  // estimate, since a delta PUT may overwrite a run key.
  std::uint64_t run_entries = 0;

  // Next mutation sequence. NOT persisted: recovery derives it as
  // (max replayed seq + 1); compaction releases the logs that carried the
  // old sequences, so restarting the counter per delta generation is safe
  // — LWW only ever compares sequences within one log generation.
  std::uint64_t next_seq = 1;

  // COMPACTED-phase delta (DESIGN.md §12): newest mutation per key,
  // rebuilt from the klog/vlog delta chains at recovery. Number of
  // non-tombstone entries is tracked in delta_live.
  std::map<std::string, DeltaEntry> delta_index;
  std::uint64_t delta_live = 0;
  // Approximate DRAM footprint of delta_index (key + inline value bytes
  // plus a fixed per-entry overhead), maintained by every mutation and
  // recomputed by delta replay. Exported as the "device.delta.index_bytes"
  // gauge and compared against DeviceConfig::delta_fold_watermark_bytes to
  // trigger watermark folds. Not persisted.
  std::uint64_t delta_index_bytes = 0;

  // Deletion requested while compaction/index build was running (paper:
  // "deletion may be deferred due to on-going compaction"). Persisted in
  // the metadata snapshot before the drop is acknowledged, so recovery
  // completes a deferred drop a crash interrupted.
  bool pending_delete = false;

  // Commands currently executing against this keyspace. A handler pins
  // the keyspace for the span of its coroutine so a concurrent drop
  // cannot free it mid-await; DropKeyspace defers until this drains.
  std::uint32_t inflight = 0;

  // Queries that passed AwaitQueryable and are reading the COMPACTED
  // structures right now. A re-compaction commit waits for this to drain
  // (new readers block in AwaitQueryable once the state flips), so the
  // cluster swap can never happen under an in-flight scan. Not persisted.
  std::uint32_t active_readers = 0;
};

}  // namespace kvcsd::device
