#include "kvcsd/keyspace_manager.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "sim/fault.h"

namespace kvcsd::device {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4b534e41;  // "KSNA"

void PutString(std::string* out, const std::string& s) {
  PutLengthPrefixedSlice(out, Slice(s));
}

bool GetString(Slice* in, std::string* out) {
  Slice s;
  if (!GetLengthPrefixedSlice(in, &s)) return false;
  *out = s.ToString();
  return true;
}

void PutClusterVec(std::string* out, const std::vector<ClusterId>& v) {
  PutVarint64(out, v.size());
  for (ClusterId id : v) PutVarint64(out, id);
}

bool GetClusterVec(Slice* in, std::vector<ClusterId>* v) {
  std::uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->resize(n);
  for (auto& id : *v) {
    if (!GetVarint64(in, &id)) return false;
  }
  return true;
}

void PutSketch(std::string* out, const std::vector<SketchEntry>& sketch) {
  PutVarint64(out, sketch.size());
  for (const auto& e : sketch) {
    PutString(out, e.pivot);
    PutVarint64(out, e.block_addr);
    PutVarint32(out, e.block_len);
  }
}

bool GetSketch(Slice* in, std::vector<SketchEntry>* sketch) {
  std::uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  sketch->resize(n);
  for (auto& e : *sketch) {
    if (!GetString(in, &e.pivot) || !GetVarint64(in, &e.block_addr) ||
        !GetVarint32(in, &e.block_len)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Keyspace*> KeyspaceManager::Create(const std::string& name) {
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("keyspace exists: " + name);
  }
  auto ks = std::make_unique<Keyspace>();
  ks->id = next_id_++;
  ks->name = name;
  Keyspace* ptr = ks.get();
  by_name_[name] = ks->id;
  by_id_[ks->id] = std::move(ks);
  return ptr;
}

Result<Keyspace*> KeyspaceManager::Find(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no such keyspace: " + name);
  }
  return by_id_.at(it->second).get();
}

Result<Keyspace*> KeyspaceManager::FindById(std::uint64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("no such keyspace id");
  }
  return it->second.get();
}

Status KeyspaceManager::Erase(std::uint64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("no such keyspace id");
  by_name_.erase(it->second->name);
  by_id_.erase(it);
  return Status::Ok();
}

std::string KeyspaceManager::SerializeTable(std::uint64_t seq) const {
  std::string body;
  PutVarint64(&body, seq);
  body.push_back(zones_ != nullptr ? 1 : 0);
  if (zones_ != nullptr) {
    std::string zm;
    zones_->SerializeTo(&zm);
    PutLengthPrefixedSlice(&body, Slice(zm));
  }
  PutVarint64(&body, next_id_);
  PutVarint64(&body, by_id_.size());
  for (const auto& [id, ks] : by_id_) {
    PutVarint64(&body, ks->id);
    PutString(&body, ks->name);
    body.push_back(static_cast<char>(ks->state));
    // Deferred-drop tombstone: a drop acknowledged while compaction or
    // pinned handlers were still running. Persisted so recovery can
    // complete the drop if power dies before the deferred FinishDrop.
    body.push_back(ks->pending_delete ? 1 : 0);
    PutVarint64(&body, ks->num_kvs);
    // Exact live count of the sorted run; recovery re-derives num_kvs for
    // COMPACTED keyspaces as run_entries + replayed delta live count.
    PutVarint64(&body, ks->run_entries);
    PutString(&body, ks->min_key);
    PutString(&body, ks->max_key);
    PutClusterVec(&body, ks->klog_clusters);
    PutClusterVec(&body, ks->vlog_clusters);
    PutVarint64(&body, ks->klog_bytes);
    PutVarint64(&body, ks->vlog_bytes);
    PutClusterVec(&body, ks->pidx_clusters);
    PutClusterVec(&body, ks->sorted_value_clusters);
    PutSketch(&body, ks->pidx_sketch);
    // The serialized bloom filter travels with the sketch it guards; a
    // few bits per key, dwarfed by the metadata zone (DESIGN.md §10).
    PutString(&body, ks->pidx_bloom);
    PutVarint64(&body, ks->secondary_indexes.size());
    for (const auto& [name, sidx] : ks->secondary_indexes) {
      PutString(&body, sidx.spec.name);
      PutVarint32(&body, sidx.spec.value_offset);
      PutVarint32(&body, sidx.spec.value_length);
      body.push_back(static_cast<char>(sidx.spec.type));
      PutClusterVec(&body, sidx.sidx_clusters);
      PutSketch(&body, sidx.sketch);
      PutVarint64(&body, sidx.entries);
    }
  }

  std::string out;
  PutFixed32(&out, kSnapshotMagic);
  PutFixed32(&out,
             crc32c::Mask(crc32c::Value(body.data(), body.size())));
  PutVarint64(&out, body.size());
  out += body;
  return out;
}

Status KeyspaceManager::DeserializeTable(const std::string& raw,
                                         std::uint64_t* seq) {
  Slice in(raw);
  by_id_.clear();
  by_name_.clear();
  if (!GetVarint64(&in, seq) || in.empty()) {
    return Status::Corruption("snapshot header");
  }
  const bool has_zm = in[0] != 0;
  in.remove_prefix(1);
  if (has_zm) {
    Slice zm;
    if (!GetLengthPrefixedSlice(&in, &zm)) {
      return Status::Corruption("snapshot zone-manager section");
    }
    if (zones_ != nullptr) {
      KVCSD_RETURN_IF_ERROR(zones_->RestoreFrom(&zm));
    }
  }
  if (!GetVarint64(&in, &next_id_)) return Status::Corruption("snapshot");
  std::uint64_t count = 0;
  if (!GetVarint64(&in, &count)) return Status::Corruption("snapshot");
  for (std::uint64_t i = 0; i < count; ++i) {
    auto ks = std::make_unique<Keyspace>();
    std::uint64_t sidx_count = 0;
    bool ok = GetVarint64(&in, &ks->id) && GetString(&in, &ks->name);
    if (ok && in.size() >= 2) {
      ks->state = static_cast<KeyspaceState>(in[0]);
      ks->pending_delete = in[1] != 0;
      in.remove_prefix(2);
    } else {
      ok = false;
    }
    ok = ok && GetVarint64(&in, &ks->num_kvs) &&
         GetVarint64(&in, &ks->run_entries) &&
         GetString(&in, &ks->min_key) && GetString(&in, &ks->max_key) &&
         GetClusterVec(&in, &ks->klog_clusters) &&
         GetClusterVec(&in, &ks->vlog_clusters) &&
         GetVarint64(&in, &ks->klog_bytes) &&
         GetVarint64(&in, &ks->vlog_bytes) &&
         GetClusterVec(&in, &ks->pidx_clusters) &&
         GetClusterVec(&in, &ks->sorted_value_clusters) &&
         GetSketch(&in, &ks->pidx_sketch) &&
         GetString(&in, &ks->pidx_bloom) && GetVarint64(&in, &sidx_count);
    if (!ok) return Status::Corruption("snapshot keyspace entry");
    for (std::uint64_t j = 0; j < sidx_count; ++j) {
      SecondaryIndex sidx;
      if (!GetString(&in, &sidx.spec.name) ||
          !GetVarint32(&in, &sidx.spec.value_offset) ||
          !GetVarint32(&in, &sidx.spec.value_length) || in.empty()) {
        return Status::Corruption("snapshot sidx entry");
      }
      sidx.spec.type = static_cast<nvme::SecondaryKeyType>(in[0]);
      in.remove_prefix(1);
      if (!GetClusterVec(&in, &sidx.sidx_clusters) ||
          !GetSketch(&in, &sidx.sketch) ||
          !GetVarint64(&in, &sidx.entries)) {
        return Status::Corruption("snapshot sidx entry");
      }
      ks->secondary_indexes[sidx.spec.name] = std::move(sidx);
    }
    by_name_[ks->name] = ks->id;
    by_id_[ks->id] = std::move(ks);
  }
  return Status::Ok();
}

sim::Task<Status> KeyspaceManager::Persist() {
  // Claim the sequence number eagerly, at serialize time: concurrent
  // Persist calls (a deferred-drop ack racing the compactor's snapshots)
  // must not collide on one seq, or recovery would tie-break to the
  // earlier-serialized — staler — state. With serialize order = seq
  // order, the highest intact seq is always the newest table. Gaps from
  // failed appends are harmless; only monotonicity matters.
  const std::uint64_t seq = ++persist_seq_;
  const std::string snapshot = SerializeTable(seq);
  sim::FaultInjector* faults = ssd_->fault_injector();
  std::uint32_t target = current_meta_zone_;
  bool need_reset = reset_before_append_;
  // When recovery already demands a reset, skip the fits-check: the reset
  // empties the target anyway, and switching zones here would reset the
  // sibling — the zone holding the newest intact snapshot.
  if (!need_reset &&
      ssd_->write_pointer(target) + snapshot.size() > ssd_->zone_size()) {
    // Ping-pong: rewrite into the sibling zone. The zone holding the
    // newest intact snapshot is never the one reset, so a crash anywhere
    // in this window leaves a recoverable table.
    target = target == meta_zone_a_ ? meta_zone_b_ : meta_zone_a_;
    need_reset = true;
  }
  if (need_reset) {
    if (faults != nullptr && faults->Hit("meta.before_reset")) {
      co_return Status::IoError("simulated power loss (metadata switch)");
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd_->Reset(target));
    if (faults != nullptr && faults->Hit("meta.after_reset")) {
      co_return Status::IoError("simulated power loss (metadata switch)");
    }
  }
  auto addr = co_await ssd_->Append(
      target,
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(snapshot.data()),
          snapshot.size()));
  KVCSD_CO_RETURN_IF_ERROR(addr.status());
  current_meta_zone_ = target;
  reset_before_append_ = false;
  if (faults != nullptr && faults->Hit("meta.after_append")) {
    // Crash before the commit barrier: the torn-tail hook may truncate
    // this snapshot, so recovery falls back to the previous intact one.
    // The operation was never acknowledged, so either outcome is legal.
    co_return Status::IoError("simulated power loss (metadata append)");
  }
  // The snapshot is now the durability commit point for everything it
  // references; fence it against torn-tail truncation before callers
  // acknowledge anything to the host.
  ssd_->CommitTail();
  co_return Status::Ok();
}

sim::Task<Status> KeyspaceManager::ScanZone(std::uint32_t zone, bool* found,
                                            std::uint64_t* best_seq,
                                            std::string* best_body,
                                            std::uint32_t* best_zone) {
  const std::uint64_t written = ssd_->write_pointer(zone);
  if (written == 0) co_return Status::Ok();

  std::string log(written, '\0');
  KVCSD_CO_RETURN_IF_ERROR(co_await ssd_->Read(
      static_cast<std::uint64_t>(zone) * ssd_->zone_size(),
      std::span<std::byte>(reinterpret_cast<std::byte*>(log.data()),
                           log.size())));

  // Walk the snapshot log; remember the zone's last intact snapshot. A
  // torn or corrupt record ends the walk — everything before it is intact.
  Slice in(log);
  while (!in.empty()) {
    std::uint32_t magic = 0, masked_crc = 0;
    std::uint64_t len = 0;
    if (!GetFixed32(&in, &magic) || magic != kSnapshotMagic ||
        !GetFixed32(&in, &masked_crc) || !GetVarint64(&in, &len) ||
        in.size() < len) {
      break;
    }
    Slice body(in.data(), len);
    in.remove_prefix(len);
    if (crc32c::Unmask(masked_crc) !=
        crc32c::Value(body.data(), body.size())) {
      break;
    }
    Slice probe = body;
    std::uint64_t seq = 0;
    if (!GetVarint64(&probe, &seq)) continue;
    if (!*found || seq > *best_seq) {
      *found = true;
      *best_seq = seq;
      *best_body = body.ToString();
      *best_zone = zone;
    }
  }
  co_return Status::Ok();
}

sim::Task<Result<std::uint64_t>> KeyspaceManager::Recover() {
  bool found = false;
  std::uint64_t best_seq = 0;
  std::string best_body;
  std::uint32_t best_zone = meta_zone_a_;
  KVCSD_CO_RETURN_IF_ERROR(co_await ScanZone(meta_zone_a_, &found, &best_seq,
                                             &best_body, &best_zone));
  KVCSD_CO_RETURN_IF_ERROR(co_await ScanZone(meta_zone_b_, &found, &best_seq,
                                             &best_body, &best_zone));
  if (!found) {
    persist_seq_ = 0;
    current_meta_zone_ = meta_zone_a_;
    reset_before_append_ = false;
    co_return std::uint64_t{0};
  }
  std::uint64_t seq = 0;
  KVCSD_CO_RETURN_IF_ERROR(DeserializeTable(best_body, &seq));
  persist_seq_ = best_seq;
  // Future snapshots go to the OTHER zone, reset first: the best zone may
  // end in a torn snapshot, and appending after garbage would hide every
  // later record from the next recovery's scan.
  current_meta_zone_ =
      best_zone == meta_zone_a_ ? meta_zone_b_ : meta_zone_a_;
  reset_before_append_ = true;
  co_return static_cast<std::uint64_t>(by_id_.size());
}

std::string_view KeyspaceStateName(KeyspaceState state) {
  switch (state) {
    case KeyspaceState::kEmpty:
      return "EMPTY";
    case KeyspaceState::kWritable:
      return "WRITABLE";
    case KeyspaceState::kCompacting:
      return "COMPACTING";
    case KeyspaceState::kCompacted:
      return "COMPACTED";
    case KeyspaceState::kRecompacting:
      return "RECOMPACTING";
  }
  return "UNKNOWN";
}

}  // namespace kvcsd::device
