// Keyspace table: name -> Keyspace, persisted to the reserved metadata
// zone of the ZNS SSD (paper §IV: "an in-memory keyspace table backed by a
// metadata zone in the underlying ZNS SSD for data persistence").
//
// Persistence model: every mutation appends a full serialized snapshot of
// the table to the metadata zone; when the zone fills, it is reset and the
// newest snapshot is rewritten (log-structured metadata over one zone).
// Recovery loads the last intact snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "kvcsd/keyspace.h"
#include "kvcsd/zone_manager.h"
#include "sim/task.h"

namespace kvcsd::device {

class KeyspaceManager {
 public:
  KeyspaceManager(storage::ZnsSsd* ssd, std::uint32_t metadata_zone = 0)
      : ssd_(ssd), metadata_zone_(metadata_zone) {}

  Result<Keyspace*> Create(const std::string& name);
  Result<Keyspace*> Find(const std::string& name);
  Result<Keyspace*> FindById(std::uint64_t id);
  // Removes the in-memory entry (zone clusters are the device's job).
  Status Erase(std::uint64_t id);

  std::size_t size() const { return by_id_.size(); }
  const std::map<std::uint64_t, std::unique_ptr<Keyspace>>& all() const {
    return by_id_;
  }

  // Appends a table snapshot to the metadata zone (resetting it first if
  // the snapshot no longer fits).
  sim::Task<Status> Persist();

  // Rebuilds the table from the newest intact snapshot. Returns the number
  // of keyspaces recovered. NOTE: zone-cluster maps are restored as ids;
  // the caller re-wires them against the ZoneManager.
  sim::Task<Result<std::uint64_t>> Recover();

 private:
  std::string SerializeTable() const;
  Status DeserializeTable(const std::string& raw);

  storage::ZnsSsd* ssd_;
  std::uint32_t metadata_zone_;
  std::map<std::uint64_t, std::unique_ptr<Keyspace>> by_id_;
  std::map<std::string, std::uint64_t> by_name_;
  std::uint64_t next_id_ = 1;
};

}  // namespace kvcsd::device
