// Keyspace table: name -> Keyspace, persisted to the reserved metadata
// zones of the ZNS SSD (paper §IV: "an in-memory keyspace table backed by a
// metadata zone in the underlying ZNS SSD for data persistence").
//
// Persistence model: every mutation appends a full serialized snapshot of
// the table (and, when wired to a ZoneManager, the zone-cluster allocation
// table) to the current metadata zone. Snapshots carry a monotonic
// sequence number. When the current zone fills, persistence ping-pongs to
// the other metadata zone: the sibling is reset and the newest snapshot is
// rewritten there. Because the switch never resets the zone holding the
// latest intact snapshot, a power cut inside the Reset-then-Append window
// cannot lose the table — recovery scans both zones and loads the intact
// snapshot with the highest sequence number.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "kvcsd/keyspace.h"
#include "kvcsd/zone_manager.h"
#include "sim/task.h"

namespace kvcsd::device {

class KeyspaceManager {
 public:
  // `zones` may be null (table-only persistence, used by unit tests); when
  // set, the zone-cluster allocation table is persisted and recovered
  // alongside the keyspace table so cluster ids in snapshots stay
  // meaningful across a restart.
  explicit KeyspaceManager(storage::ZnsSsd* ssd,
                           ZoneManager* zones = nullptr,
                           std::uint32_t metadata_zone_a = 0,
                           std::uint32_t metadata_zone_b = 1)
      : ssd_(ssd), zones_(zones), meta_zone_a_(metadata_zone_a),
        meta_zone_b_(metadata_zone_b), current_meta_zone_(metadata_zone_a) {}

  Result<Keyspace*> Create(const std::string& name);
  Result<Keyspace*> Find(const std::string& name);
  Result<Keyspace*> FindById(std::uint64_t id);
  // Removes the in-memory entry (zone clusters are the device's job).
  Status Erase(std::uint64_t id);

  std::size_t size() const { return by_id_.size(); }
  const std::map<std::uint64_t, std::unique_ptr<Keyspace>>& all() const {
    return by_id_;
  }

  // Appends a table snapshot to the current metadata zone, ping-ponging to
  // the sibling zone when it no longer fits.
  sim::Task<Status> Persist();

  // Rebuilds the table from the newest intact snapshot across both
  // metadata zones. Returns the number of keyspaces recovered.
  sim::Task<Result<std::uint64_t>> Recover();

  // Sequence number of the last persisted/recovered snapshot.
  std::uint64_t persist_seq() const { return persist_seq_; }
  std::uint32_t current_meta_zone() const { return current_meta_zone_; }

 private:
  std::string SerializeTable(std::uint64_t seq) const;
  Status DeserializeTable(const std::string& raw, std::uint64_t* seq);
  // Scans one metadata zone's snapshot log; keeps (seq, body) of its last
  // intact snapshot if newer than *best_seq.
  sim::Task<Status> ScanZone(std::uint32_t zone, bool* found,
                             std::uint64_t* best_seq, std::string* best_body,
                             std::uint32_t* best_zone);

  storage::ZnsSsd* ssd_;
  ZoneManager* zones_;
  std::uint32_t meta_zone_a_;
  std::uint32_t meta_zone_b_;
  std::uint32_t current_meta_zone_;
  // Set by Recover(): the current zone must be reset before the next
  // append. Recovery redirects persistence to the sibling of the zone the
  // best snapshot came from — that zone may end in a torn snapshot, and a
  // record appended after garbage would be invisible to the next scan.
  bool reset_before_append_ = false;
  std::uint64_t persist_seq_ = 0;
  std::map<std::uint64_t, std::unique_ptr<Keyspace>> by_id_;
  std::map<std::string, std::uint64_t> by_name_;
  std::uint64_t next_id_ = 1;
};

}  // namespace kvcsd::device
