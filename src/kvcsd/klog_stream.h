// Streaming reader for one KLOG zone, shared by the compactor's run
// generation and crash recovery's log replay.
//
// The zone's written extent is fetched in bounded chunks (so the device
// never holds more than a chunk plus a partial-frame carry in DRAM) and
// parsed as a sequence of KLOG frames (wire.h): each flush batch is one
// framed record. A frame split across a chunk boundary is carried over
// and completed by the next read. The final frame of the extent may be
// torn by a power cut; it is detectably incomplete (the frame CRC lives
// in the header), never parses as data, and the stream silently drops it
// — acknowledged Syncs always sit behind completed frames, so a torn
// tail only ever holds unacknowledged writes. A complete frame whose CRC
// mismatches, or a malformed entry inside a verified frame, is genuine
// corruption and fails the stream.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "kvcsd/device.h"
#include "kvcsd/wire.h"
#include "sim/task.h"
#include "storage/zns.h"

namespace kvcsd::device {

class KlogZoneStream {
 public:
  KlogZoneStream(storage::ZnsSsd* ssd, std::uint32_t zone,
                 std::uint64_t chunk_bytes, std::uint64_t* bytes_read,
                 sim::Activity act = sim::Activity::kOther)
      : ssd_(ssd),
        chunk_bytes_(std::max<std::uint64_t>(chunk_bytes, 512)),
        base_(static_cast<std::uint64_t>(zone) * ssd->zone_size()),
        extent_(ssd->write_pointer(zone)),
        bytes_read_(bytes_read),
        act_(act),
        finished_(extent_ == 0) {}

  // Appends the next chunk's worth of entries to *out. Returns false once
  // the zone is exhausted (nothing appended).
  sim::Task<Result<bool>> NextBatch(std::vector<KlogEntry>* out) {
    if (finished_) co_return false;
    if (offset_ < extent_) {
      const std::uint64_t len = std::min(chunk_bytes_, extent_ - offset_);
      const std::size_t old_size = carry_.size();
      carry_.resize(old_size + len);
      KVCSD_CO_RETURN_IF_ERROR(co_await ssd_->Read(
          base_ + offset_,
          std::span<std::byte>(
              reinterpret_cast<std::byte*>(carry_.data()) + old_size, len),
          act_));
      offset_ += len;
      if (bytes_read_ != nullptr) *bytes_read_ += len;
    }
    Slice in(carry_);
    for (;;) {
      Slice payload;
      const wire::KlogFrameResult r = wire::ParseKlogFrame(&in, &payload);
      if (r == wire::KlogFrameResult::kFrame) {
        while (!payload.empty()) {
          wire::ParsedKlogEntry entry;
          if (!wire::ParseKlogEntry(&payload, &entry)) {
            co_return Status::Corruption(
                "bad KLOG entry inside verified frame");
          }
          out->push_back(KlogEntry{entry.key.ToString(), entry.vaddr,
                                   entry.vlen, entry.seq, entry.tombstone});
        }
        continue;
      }
      if (r == wire::KlogFrameResult::kNeedMore) {
        if (offset_ >= extent_ && !in.empty()) {
          // End of extent mid-frame: the torn tail of the last in-flight
          // append. Drop it; nothing acknowledged can live here.
          torn_bytes_ += in.size();
          in = Slice();
        }
        break;
      }
      co_return Status::Corruption(r == wire::KlogFrameResult::kBadMagic
                                       ? "bad KLOG frame magic"
                                       : "KLOG frame CRC mismatch");
    }
    std::string tail(in.data(), in.size());
    carry_ = std::move(tail);
    if (offset_ >= extent_ && carry_.empty()) finished_ = true;
    co_return true;
  }

  // Bytes discarded as a torn final frame (0 on a clean log).
  std::uint64_t torn_bytes() const { return torn_bytes_; }

 private:
  storage::ZnsSsd* ssd_;
  std::uint64_t chunk_bytes_;
  std::uint64_t base_;
  std::uint64_t extent_;
  std::uint64_t* bytes_read_;
  sim::Activity act_;  // who the zone reads are billed to
  std::uint64_t offset_ = 0;
  std::uint64_t torn_bytes_ = 0;
  bool finished_;
  std::string carry_;  // unparsed tail of the previous chunk
};

}  // namespace kvcsd::device
