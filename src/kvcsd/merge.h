// K-way merge machinery for the device compactor (paper §V).
//
// Three pieces, shared by the key merge and the SIDX merge:
//
//  * LoserTree — a tournament tree selecting the minimum of k sources in
//    O(log k) comparisons per pop, replacing the O(k) scan-per-element
//    loops the compactor used to run on every merged entry.
//  * TempRunReader — streams one spilled run back from TEMP zone
//    clusters, double-buffered: the flash read of the next segment is
//    issued as soon as the previous buffer is handed over, so merge
//    compute on the current segment overlaps the SSD read of the next.
//  * RunMerger — glues k readers to a loser tree behind a Pop() loop.
//
// Ties between runs are broken by run index (the order runs were
// generated in), which is deterministic regardless of how many SoC cores
// executed run generation — a requirement for compaction results being
// reproducible across `soc_cores` settings.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "kvcsd/device.h"
#include "kvcsd/wire.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/zns.h"

namespace kvcsd::device {

// Tournament ("loser") tree over k leaves. The caller supplies a strict
// weak order over *leaf indexes*; exhausted leaves must sort after every
// live leaf (encode that in the comparator). winner() is the index of the
// current minimum; after that leaf's head changes (advance or
// exhaustion), Replay(leaf) restores the invariant in O(log k).
class LoserTree {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Plays the full tournament bottom-up: node n's match is between the
  // winners of its children (positions 2n and 2n+1; leaf j sits at k+j),
  // the winner propagates, the loser stays at n. Successive Replay()
  // calls cannot build the tree — Replay assumes the replayed leaf was
  // the previous overall winner, which only holds in steady state.
  template <typename Less>
  void Build(std::size_t k, Less&& less) {
    k_ = k;
    tree_.assign(std::max<std::size_t>(k, 1), kNone);
    if (k == 0) return;
    if (k == 1) {
      tree_[0] = 0;
      return;
    }
    std::vector<std::size_t> winner(2 * k, kNone);
    for (std::size_t j = 0; j < k; ++j) winner[k + j] = j;
    for (std::size_t node = k - 1; node >= 1; --node) {
      const std::size_t a = winner[2 * node];
      const std::size_t b = winner[2 * node + 1];
      const bool b_wins = a == kNone || (b != kNone && less(b, a));
      winner[node] = b_wins ? b : a;
      tree_[node] = b_wins ? a : b;
    }
    tree_[0] = winner[1];
  }

  template <typename Less>
  void Replay(std::size_t leaf, Less&& less) {
    std::size_t winner = leaf;
    for (std::size_t node = (k_ + leaf) / 2; node >= 1; node /= 2) {
      std::size_t& loser = tree_[node];
      const bool loser_wins =
          loser != kNone && (winner == kNone || less(loser, winner));
      if (loser_wins) std::swap(winner, loser);
    }
    if (!tree_.empty()) tree_[0] = winner;
  }

  std::size_t winner() const { return tree_.empty() ? kNone : tree_[0]; }
  std::size_t size() const { return k_; }

 private:
  // tree_[0] holds the overall winner; nodes 1..k-1 hold the loser of the
  // match played at that node. Leaf `j` enters the bracket at (k + j) / 2.
  std::vector<std::size_t> tree_;
  std::size_t k_ = 0;
};

// Merge traits for KLOG-format runs (phase-1 key merge). Duplicate keys
// (overwrites, tombstones) order by ascending mutation seq, so the merge
// pops every version of a key adjacently with the NEWEST last — the
// consumer keeps the final entry of each equal-key group and last-writer
// -wins falls out of the stream order regardless of which run (zone) held
// which version.
struct KlogMergeTraits {
  using Entry = KlogEntry;
  static bool Parse(Slice* in, Entry* out) {
    wire::ParsedKlogEntry e;
    if (!wire::ParseKlogEntry(in, &e)) return false;
    out->key.assign(e.key.data(), e.key.size());
    out->value_addr = e.vaddr;
    out->value_len = e.vlen;
    out->seq = e.seq;
    out->tombstone = e.tombstone;
    return true;
  }
  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }
};

// Merge traits for SIDX-format runs (<skey, pkey> external sort).
struct SidxMergeTraits {
  using Entry = SidxTuple;
  static bool Parse(Slice* in, Entry* out) {
    wire::SidxEntry e;
    if (!wire::ParseSidxEntry(in, &e)) return false;
    out->skey.assign(e.skey.data(), e.skey.size());
    out->pkey.assign(e.pkey.data(), e.pkey.size());
    out->vaddr = e.vaddr;
    out->vlen = e.vlen;
    return true;
  }
  static bool Less(const Entry& a, const Entry& b) {
    if (a.skey != b.skey) return a.skey < b.skey;
    return a.pkey < b.pkey;
  }
};

// Streams one spilled run's entries back from flash. Owned by shared_ptr
// because the prefetch I/O runs as a detached process: the in-flight read
// keeps the reader alive even if the merge aborts early.
template <typename Traits>
class TempRunReader
    : public std::enable_shared_from_this<TempRunReader<Traits>> {
 public:
  using Entry = typename Traits::Entry;

  TempRunReader(sim::Simulation* sim, storage::ZnsSsd* ssd,
                const SpilledRun* run, std::uint64_t* bytes_read_counter)
      : sim_(sim),
        ssd_(ssd),
        run_(run),
        bytes_read_(bytes_read_counter),
        prefetch_ready_(sim) {}
  TempRunReader(const TempRunReader&) = delete;
  TempRunReader& operator=(const TempRunReader&) = delete;

  bool valid() const { return valid_; }
  const Entry& head() const { return head_; }
  Entry& mutable_head() { return head_; }

  // Loads the first entry (and starts prefetching the second segment).
  // Call exactly once before the first Advance().
  sim::Task<Status> Init() {
    StartPrefetch();
    co_return co_await Advance();
  }

  // Parses the next entry into head(); flips valid() off at end-of-run.
  // Swapping in a prefetched buffer immediately kicks off the read of the
  // segment after it, so the SSD stays busy while the caller merges.
  sim::Task<Status> Advance() {
    for (;;) {
      if (!cursor_.empty()) {
        if (!Traits::Parse(&cursor_, &head_)) {
          co_return Status::Corruption("bad TEMP run entry");
        }
        valid_ = true;
        co_return Status::Ok();
      }
      if (!prefetch_active_) {
        valid_ = false;
        co_return Status::Ok();
      }
      co_await prefetch_ready_.Wait();
      prefetch_active_ = false;
      KVCSD_CO_RETURN_IF_ERROR(prefetch_status_);
      buffer_ = std::move(prefetch_buffer_);
      cursor_ = Slice(buffer_);
      StartPrefetch();
    }
  }

 private:
  void StartPrefetch() {
    if (next_segment_ >= run_->segments.size()) return;
    const auto [addr, len] = run_->segments[next_segment_++];
    prefetch_active_ = true;
    prefetch_ready_.Reset();
    sim_->Spawn(PrefetchIo(this->shared_from_this(), addr, len));
  }

  static sim::Task<void> PrefetchIo(std::shared_ptr<TempRunReader> self,
                                    std::uint64_t addr, std::uint32_t len) {
    self->prefetch_buffer_.assign(len, '\0');
    self->prefetch_status_ = co_await self->ssd_->Read(
        addr, std::span<std::byte>(
                  reinterpret_cast<std::byte*>(self->prefetch_buffer_.data()),
                  self->prefetch_buffer_.size()),
        sim::Activity::kCompact);
    if (self->bytes_read_ != nullptr) *self->bytes_read_ += len;
    self->prefetch_ready_.Set();
  }

  sim::Simulation* sim_;
  storage::ZnsSsd* ssd_;
  const SpilledRun* run_;
  std::uint64_t* bytes_read_;

  std::size_t next_segment_ = 0;
  std::string buffer_;
  Slice cursor_;
  Entry head_{};
  bool valid_ = false;

  bool prefetch_active_ = false;
  std::string prefetch_buffer_;
  Status prefetch_status_;
  sim::Event prefetch_ready_;
};

// K-way merger over spilled runs: loser-tree selection over
// double-buffered readers. The SpilledRun storage must outlive the
// merger; readers hold pointers into it.
template <typename Traits>
class RunMerger {
 public:
  using Entry = typename Traits::Entry;

  RunMerger(sim::Simulation* sim, storage::ZnsSsd* ssd)
      : sim_(sim), ssd_(ssd) {}

  // Creates one reader per run and loads every head concurrently, so the
  // k first-segment reads spread across NAND channels.
  sim::Task<Status> Init(const std::vector<SpilledRun>& runs,
                         std::uint64_t* bytes_read_counter) {
    readers_.reserve(runs.size());
    for (const SpilledRun& run : runs) {
      readers_.push_back(std::make_shared<TempRunReader<Traits>>(
          sim_, ssd_, &run, bytes_read_counter));
    }
    sim::TaskGroup group(sim_);
    for (auto& reader : readers_) group.Spawn(reader->Init());
    KVCSD_CO_RETURN_IF_ERROR(co_await group.Wait());
    for (const auto& reader : readers_) {
      if (reader->valid()) ++live_;
    }
    tree_.Build(readers_.size(),
                [this](std::size_t a, std::size_t b) { return LeafLess(a, b); });
    co_return Status::Ok();
  }

  bool Empty() const { return live_ == 0; }
  std::size_t fan_in() const { return readers_.size(); }

  // Moves the smallest live entry into *out and advances its run.
  sim::Task<Status> Pop(Entry* out) {
    const std::size_t w = tree_.winner();
    *out = std::move(readers_[w]->mutable_head());
    KVCSD_CO_RETURN_IF_ERROR(co_await readers_[w]->Advance());
    if (!readers_[w]->valid()) --live_;
    tree_.Replay(w,
                 [this](std::size_t a, std::size_t b) { return LeafLess(a, b); });
    co_return Status::Ok();
  }

 private:
  bool LeafLess(std::size_t a, std::size_t b) const {
    const bool va = readers_[a]->valid();
    const bool vb = readers_[b]->valid();
    if (!va || !vb) return va && !vb;  // exhausted runs sort last
    const Entry& ha = readers_[a]->head();
    const Entry& hb = readers_[b]->head();
    if (Traits::Less(ha, hb)) return true;
    if (Traits::Less(hb, ha)) return false;
    return a < b;  // deterministic tie-break: run generation order
  }

  sim::Simulation* sim_;
  storage::ZnsSsd* ssd_;
  std::vector<std::shared_ptr<TempRunReader<Traits>>> readers_;
  LoserTree tree_;
  std::size_t live_ = 0;
};

}  // namespace kvcsd::device
