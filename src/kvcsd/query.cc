// Offloaded query processing (paper §V "Query Processing").
//
// All queries start from the in-memory pivot sketch in the keyspace table:
// binary-search the sketch, read the covering 4 KB PIDX/SIDX block(s) from
// flash, then gather exactly the matching values. Because everything runs
// in the device, only results travel back over PCIe — the mechanism behind
// the paper's selectivity-dependent speedups (Fig. 12).
//
// Read acceleration (DESIGN.md §10):
//   - ReadIndexBlock fronts a DRAM index-block cache; a hit pays only the
//     in-block search CPU, no flash read.
//   - QueryPoint consults the keyspace's compaction-built bloom filter so
//     negative lookups usually skip flash entirely.
//   - Range scans keep the next sketch block's read in flight while the
//     current one is parsed (one-slot-ahead pipeline).
//   - GatherValues dedupes identical refs, coalesces address-adjacent
//     reads, and fans the coalesced ranges out across NAND channels.
//
// Mutability (DESIGN.md §12): a COMPACTED keyspace carries a delta index
// of post-compaction mutations. Point lookups consult it first (it is
// strictly newer than the run); range and secondary scans two-way merge
// the sorted run with the key-ordered delta under last-writer-wins, with
// tombstones suppressing run entries. While an incremental re-compaction
// folds the delta back in, queries wait in AwaitQueryable and in-flight
// scans hold a reader count the fold's commit drains before swapping the
// on-flash structures.
#include <algorithm>

#include "common/bloom.h"
#include "kvcsd/device.h"
#include "kvcsd/wire.h"
#include "nvme/skey.h"
#include "sim/parallel.h"
#include "sim/tracer.h"

namespace kvcsd::device {

namespace {

// Pins the keyspace's COMPACTED structures for the lifetime of one query
// coroutine; the destructor runs on every exit path (including error
// co_returns) and wakes a re-compaction commit waiting for readers to
// drain.
class ReaderGuard {
 public:
  ReaderGuard(Keyspace* ks, sim::Event* idle) : ks_(ks), idle_(idle) {
    ++ks_->active_readers;
  }
  ReaderGuard(const ReaderGuard&) = delete;
  ReaderGuard& operator=(const ReaderGuard&) = delete;
  ~ReaderGuard() {
    if (--ks_->active_readers == 0) idle_->Set();
  }

 private:
  Keyspace* ks_;
  sim::Event* idle_;
};

// Index of the sketch block that could contain `key`: the last block whose
// pivot (first key) is <= key. Returns sketch.size() if key precedes all.
// Only valid when pivots are unique (primary keys); range queries over
// secondary keys must use SketchRangeStart instead.
std::size_t SketchLowerBlock(const std::vector<SketchEntry>& sketch,
                             const std::string& key) {
  auto it = std::upper_bound(
      sketch.begin(), sketch.end(), key,
      [](const std::string& k, const SketchEntry& e) { return k < e.pivot; });
  if (it == sketch.begin()) return sketch.size();  // key < first pivot
  return static_cast<std::size_t>(it - sketch.begin()) - 1;
}

// First block that can contain entries >= lo, correct even when several
// consecutive blocks share the same pivot (tied secondary keys): position
// at the FIRST block whose pivot >= lo and step back one block, since the
// preceding block's tail may still hold keys >= lo.
std::size_t SketchRangeStart(const std::vector<SketchEntry>& sketch,
                             const std::string& lo) {
  auto it = std::lower_bound(
      sketch.begin(), sketch.end(), lo,
      [](const SketchEntry& e, const std::string& k) { return e.pivot < k; });
  if (it != sketch.begin()) --it;
  return static_cast<std::size_t>(it - sketch.begin());
}

}  // namespace

sim::Task<Result<std::string>> Device::ReadIndexBlock(
    std::uint64_t keyspace_id, const SketchEntry& entry, sim::Activity act) {
  if (index_cache_.enabled()) {
    std::string cached;
    if (index_cache_.Lookup(keyspace_id, entry.block_addr, &cached)) {
      stats().counter("device.read_cache.hits").Increment();
      co_await cpu_.Compute(config_.costs.block_search, act);
      co_return cached;
    }
    stats().counter("device.read_cache.misses").Increment();
  }
  std::string block(entry.block_len, '\0');
  co_await cpu_.Compute(config_.costs.io_path_overhead, act);
  KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Read(
      entry.block_addr,
      std::span<std::byte>(reinterpret_cast<std::byte*>(block.data()),
                           block.size()),
      act));
  co_await cpu_.Compute(config_.costs.block_search, act);
  index_cache_.Insert(keyspace_id, entry.block_addr, block);
  co_return block;
}

sim::Task<void> Device::PrefetchIndexBlock(std::uint64_t keyspace_id,
                                           SketchEntry entry,
                                           IndexPrefetch* slot,
                                           sim::Activity act) {
  slot->block = co_await ReadIndexBlock(keyspace_id, entry, act);
  slot->done->Set();
}

sim::Task<Result<std::vector<std::string>>> Device::GatherValues(
    std::vector<ValueRef> refs, sim::Activity act) {
  std::vector<std::string> out(refs.size());
  if (refs.empty()) co_return out;

  std::vector<std::size_t> order(refs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&refs](std::size_t a, std::size_t b) {
    if (refs[a].addr != refs[b].addr) return refs[a].addr < refs[b].addr;
    if (refs[a].len != refs[b].len) return refs[a].len < refs[b].len;
    return a < b;
  });

  // Dedupe identical (addr, len) refs: repeated hits on the same value
  // (e.g. retried point gets batched together) must not issue redundant
  // flash reads or break a coalesced range at the size limit.
  std::vector<std::size_t> uniq;  // indexes into refs, one per distinct ref
  std::vector<std::size_t> owner(refs.size());  // refs index -> uniq slot
  uniq.reserve(order.size());
  std::uint64_t dup_refs = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const ValueRef& r = refs[order[k]];
    if (uniq.empty() || refs[uniq.back()].addr != r.addr ||
        refs[uniq.back()].len != r.len) {
      uniq.push_back(order[k]);
    } else {
      ++dup_refs;
    }
    owner[order[k]] = uniq.size() - 1;
  }

  // Coalesce distinct refs into ranges whose gap stays below a page, that
  // stay inside one zone, and that stay under 1 MiB. Plain CPU work: the
  // I/O is issued afterwards so ranges on different NAND channels overlap.
  const std::uint64_t zone_size = ssd_.zone_size();
  constexpr std::uint64_t kMaxGap = 4096;
  constexpr std::uint64_t kMaxRange = MiB(1);

  struct Range {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::size_t first = 0;  // [first, last) into uniq
    std::size_t last = 0;
  };
  std::vector<Range> ranges;
  std::size_t i = 0;
  while (i < uniq.size()) {
    const std::uint64_t range_start = refs[uniq[i]].addr;
    const std::uint64_t zone_end = (range_start / zone_size + 1) * zone_size;
    std::uint64_t range_end = range_start + refs[uniq[i]].len;
    std::size_t j = i + 1;
    while (j < uniq.size()) {
      const ValueRef& next = refs[uniq[j]];
      const std::uint64_t next_end = next.addr + next.len;
      if (next.addr > range_end + kMaxGap) break;
      if (next_end > zone_end) break;
      if (next_end - range_start > kMaxRange) break;
      range_end = std::max(range_end, next_end);
      ++j;
    }
    ranges.push_back(Range{range_start, range_end, i, j});
    i = j;
  }

  stats().counter("device.gather.refs").Add(refs.size());
  stats().counter("device.gather.dup_refs").Add(dup_refs);
  stats().counter("device.gather.ranges").Add(ranges.size());

  // Fan the range reads out with a bounded inflight. Each worker writes
  // disjoint uniq_values slots, so results are independent of completion
  // order — parallelism changes timing, never contents.
  std::vector<std::string> uniq_values(uniq.size());
  auto read_range = [&](std::size_t r) -> sim::Task<Status> {
    const Range& range = ranges[r];
    std::string buffer(range.end - range.start, '\0');
    co_await cpu_.Compute(config_.costs.io_path_overhead, act);
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Read(
        range.start,
        std::span<std::byte>(reinterpret_cast<std::byte*>(buffer.data()),
                             buffer.size()),
        act));
    for (std::size_t u = range.first; u < range.last; ++u) {
      const ValueRef& ref = refs[uniq[u]];
      uniq_values[u] = buffer.substr(ref.addr - range.start, ref.len);
    }
    co_return Status::Ok();
  };
  KVCSD_CO_RETURN_IF_ERROR(co_await sim::ParallelFor(
      sim_, ranges.size(), std::max<std::uint32_t>(config_.gather_fanout, 1),
      read_range));

  for (std::size_t k = 0; k < refs.size(); ++k) out[k] = uniq_values[owner[k]];
  co_return out;
}

sim::Task<Status> Device::AwaitQueryable(Keyspace* ks) {
  // A re-compaction is transparent to readers: wait it out rather than
  // failing. Any other non-COMPACTED state is a caller error, same as
  // before keyspaces were mutable.
  while (ks->state == KeyspaceState::kRecompacting) {
    co_await CompactionDone(ks->id)->Wait();
  }
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition(
        "keyspace is not queryable (state " +
        std::string(KeyspaceStateName(ks->state)) + ")");
  }
  co_return Status::Ok();
}

sim::Task<Result<std::string>> Device::QueryPoint(Keyspace* ks,
                                                  const std::string& key) {
  KVCSD_CO_RETURN_IF_ERROR(co_await AwaitQueryable(ks));
  ReaderGuard reader(ks, ReadersIdle(ks->id));
  sim::TraceSpan span(sim_, trk_query_, "point_lookup");
  // The delta index is authoritative for every key it holds — strictly
  // newer than anything in the run.
  if (auto it = ks->delta_index.find(key); it != ks->delta_index.end()) {
    co_await cpu_.Compute(config_.costs.block_search,
                          sim::Activity::kHostRead);
    if (it->second.tombstone) {
      span.Arg("src", "delta_tombstone");
      stats().counter("device.query.delta_hits").Increment();
      co_return Status::NotFound();
    }
    span.Arg("src", "delta");
    stats().counter("device.query.delta_hits").Increment();
    co_return co_await LoadDeltaValue(it->second);
  }
  // Bloom first: a definite negative answers from DRAM alone, skipping
  // both the index-block read and the value gather.
  bool bloom_said_maybe = false;
  if (!ks->pidx_bloom.empty()) {
    co_await cpu_.Compute(config_.costs.bloom_check,
                          sim::Activity::kHostRead);
    if (!BloomFilterMayContain(Slice(ks->pidx_bloom), Slice(key))) {
      stats().counter("device.bloom.negative").Increment();
      span.Arg("src", "bloom_negative");
      co_return Status::NotFound();
    }
    bloom_said_maybe = true;
    stats().counter("device.bloom.maybe").Increment();
  }
  const std::size_t pos = SketchLowerBlock(ks->pidx_sketch, key);
  if (pos >= ks->pidx_sketch.size()) {
    span.Arg("src", "miss");
    co_return Status::NotFound();
  }

  auto block = co_await ReadIndexBlock(ks->id, ks->pidx_sketch[pos]);
  if (!block.ok()) co_return block.status();
  std::uint16_t count = 0;
  Slice in;
  if (!wire::OpenIndexBlock(*block, &count, &in)) {
    co_return Status::Corruption("undersized PIDX block");
  }
  for (std::uint16_t i = 0; i < count; ++i) {
    wire::PidxEntry entry;
    if (!wire::ParsePidxEntry(&in, &entry)) {
      co_return Status::Corruption("bad PIDX block");
    }
    if (entry.key == Slice(key)) {
      std::vector<ValueRef> one;
      one.push_back(ValueRef{entry.vaddr, entry.vlen});
      auto values = co_await GatherValues(std::move(one));
      if (!values.ok()) co_return values.status();
      span.Arg("src", "run");
      co_return std::move((*values)[0]);
    }
    if (Slice(key) < entry.key) break;  // sorted: key is absent
  }
  if (bloom_said_maybe) {
    stats().counter("device.bloom.false_positive").Increment();
  }
  span.Arg("src", "miss");
  co_return Status::NotFound();
}

sim::Task<Status> Device::QueryPrimaryRange(
    Keyspace* ks, const std::string& lo, const std::string& hi,
    std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out,
    sim::Activity act) {
  KVCSD_CO_RETURN_IF_ERROR(co_await AwaitQueryable(ks));
  ReaderGuard reader(ks, ReadersIdle(ks->id));

  // Snapshot the in-range slice of the delta (the map is key-ordered, so
  // this is already sorted). Every in-range tombstone can suppress one run
  // row, so the run scan collects that many extra rows to keep `limit`
  // honest; the merge below trims back to `limit`. DeltaEntry pointers
  // stay valid across awaits: the map is node-based and the re-compaction
  // that clears it drains active_readers first.
  std::vector<std::pair<std::string, const DeltaEntry*>> delta_rows;
  std::uint32_t scan_limit = limit;
  for (auto it = ks->delta_index.lower_bound(lo);
       it != ks->delta_index.end() && it->first <= hi; ++it) {
    delta_rows.emplace_back(it->first, &it->second);
    if (limit != 0 && it->second.tombstone) ++scan_limit;
  }

  const std::vector<SketchEntry>& sketch = ks->pidx_sketch;
  std::size_t pos = sketch.empty() ? 0 : SketchRangeStart(sketch, lo);

  // Two alternating prefetch slots keep block pos+1's flash read in
  // flight while block pos is awaited and parsed; the pivot guard below
  // never fetches past `hi`, so at most one read (a mid-block limit cut)
  // is ever wasted. All error exits fall through the drain below — the
  // slots live in this frame and a detached prefetch must not outlive it.
  IndexPrefetch slots[2];
  auto issue = [&](std::size_t p) {
    IndexPrefetch& s = slots[p % 2];
    s.active = true;
    s.pos = p;
    if (!s.done) {
      s.done = std::make_unique<sim::Event>(sim_);
    } else {
      s.done->Reset();
    }
    sim_->Spawn(PrefetchIndexBlock(ks->id, sketch[p], &s, act));
  };

  Status scan_status = Status::Ok();
  std::vector<std::pair<std::string, ValueRef>> matches;
  std::string prev_key;
  bool have_prev = false;
  for (; pos < sketch.size(); ++pos) {
    if (sketch[pos].pivot > hi) break;
    Result<std::string> block = Status::Aborted("unread");
    if (config_.index_prefetch) {
      IndexPrefetch& cur = slots[pos % 2];
      if (cur.active && cur.pos != pos) {  // stale slot: drain before reuse
        co_await cur.done->Wait();
        cur.active = false;
      }
      if (!cur.active) issue(pos);
      if (pos + 1 < sketch.size() && !(sketch[pos + 1].pivot > hi) &&
          !slots[(pos + 1) % 2].active) {
        stats().counter("device.prefetch.issued").Increment();
        issue(pos + 1);
      }
      co_await cur.done->Wait();
      cur.active = false;
      block = std::move(cur.block);
    } else {
      block = co_await ReadIndexBlock(ks->id, sketch[pos], act);
    }
    if (!block.ok()) {
      scan_status = block.status();
      break;
    }
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      scan_status = Status::Corruption("undersized PIDX block");
      break;
    }
    bool past_hi = false;
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::PidxEntry entry;
      if (!wire::ParsePidxEntry(&in, &entry)) {
        scan_status = Status::Corruption("bad PIDX block");
        break;
      }
      // The merge emits PIDX entries in nondecreasing key order across
      // block boundaries; a violation means a corrupt or misdirected
      // block and would silently mis-cut `limit`, so fail loudly.
      if (have_prev && entry.key < Slice(prev_key)) {
        scan_status = Status::Corruption("PIDX entries out of key order");
        break;
      }
      prev_key = entry.key.ToString();
      have_prev = true;
      if (entry.key < Slice(lo)) continue;
      if (Slice(hi) < entry.key) {
        past_hi = true;
        break;
      }
      matches.emplace_back(entry.key.ToString(),
                           ValueRef{entry.vaddr, entry.vlen});
      if (scan_limit != 0 && matches.size() >= scan_limit) {
        past_hi = true;
        break;
      }
    }
    if (!scan_status.ok() || past_hi) break;
  }
  for (IndexPrefetch& s : slots) {
    if (s.active) {
      co_await s.done->Wait();
      s.active = false;
      stats().counter("device.prefetch.wasted").Increment();
    }
  }
  KVCSD_CO_RETURN_IF_ERROR(scan_status);

  // Two-way merge with the delta snapshot: the delta wins ties (strictly
  // newer), tombstones suppress their run rows, and delta-only keys slot
  // into key order.
  struct Row {
    std::string key;
    ValueRef ref{0, 0};
    const DeltaEntry* delta = nullptr;
  };
  std::vector<Row> rows;
  rows.reserve(matches.size() + delta_rows.size());
  std::size_t ri = 0;
  std::size_t di = 0;
  while ((ri < matches.size() || di < delta_rows.size()) &&
         (limit == 0 || rows.size() < limit)) {
    const bool run_left = ri < matches.size();
    const bool delta_left = di < delta_rows.size();
    if (delta_left && (!run_left || delta_rows[di].first <= matches[ri].first)) {
      if (run_left && delta_rows[di].first == matches[ri].first) {
        ++ri;  // the run row is stale
      }
      const DeltaEntry* d = delta_rows[di].second;
      if (!d->tombstone) {
        rows.push_back(Row{delta_rows[di].first, ValueRef{0, 0}, d});
      }
      ++di;
    } else {
      rows.push_back(
          Row{std::move(matches[ri].first), matches[ri].second, nullptr});
      ++ri;
    }
  }

  // One batched gather covers everything that lives on flash: run values
  // plus delta values that only survive as VLOG pointers after a power
  // cycle. Inline delta values copy straight from DRAM.
  std::vector<ValueRef> refs;
  std::vector<std::size_t> ref_slot;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].delta == nullptr) {
      refs.push_back(rows[r].ref);
      ref_slot.push_back(r);
    } else if (!rows[r].delta->has_value && rows[r].delta->vlen > 0) {
      refs.push_back(ValueRef{rows[r].delta->vaddr, rows[r].delta->vlen});
      ref_slot.push_back(r);
    }
  }
  auto values = co_await GatherValues(std::move(refs), act);
  if (!values.ok()) co_return values.status();
  std::vector<std::string> vals(rows.size());
  for (std::size_t k = 0; k < ref_slot.size(); ++k) {
    vals[ref_slot[k]] = std::move((*values)[k]);
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].delta != nullptr && rows[r].delta->has_value) {
      vals[r] = rows[r].delta->value;
    }
  }
  out->reserve(out->size() + rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out->emplace_back(std::move(rows[r].key), std::move(vals[r]));
  }
  co_return Status::Ok();
}

sim::Task<Status> Device::QuerySecondaryRange(
    Keyspace* ks, const std::string& index_name, const std::string& lo,
    const std::string& hi, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out,
    sim::Activity act) {
  KVCSD_CO_RETURN_IF_ERROR(co_await AwaitQueryable(ks));
  ReaderGuard reader(ks, ReadersIdle(ks->id));
  auto sidx_it = ks->secondary_indexes.find(index_name);
  if (sidx_it == ks->secondary_indexes.end()) {
    co_return Status::NotFound("no such secondary index: " + index_name);
  }
  const SecondaryIndex& sidx = sidx_it->second;

  // Every delta key's run tuple (if any) is stale — an overwrite may have
  // moved the row's secondary key, a tombstone removed it — so the scan
  // below drops run tuples whose pkey appears in the delta and this loop
  // contributes the replacement tuples: load each live delta value,
  // extract + order-encode its secondary key, keep the in-range ones.
  // Any delta key may hide one run tuple anywhere in range, so the scan
  // over-collects by the delta size to keep `limit` honest.
  struct FreshTuple {
    std::string skey;
    std::string pkey;
    std::string value;
  };
  std::vector<FreshTuple> fresh;
  std::uint32_t scan_limit = limit;
  for (const auto& [pkey, entry] : ks->delta_index) {
    if (limit != 0) ++scan_limit;
    if (entry.tombstone) continue;
    auto value = co_await LoadDeltaValue(entry, act);
    if (!value.ok()) co_return value.status();
    if (sidx.spec.value_offset + sidx.spec.value_length > value->size()) {
      co_return Status::InvalidArgument("secondary key range beyond value");
    }
    auto skey = nvme::EncodeSecondaryKeyBytes(
        Slice(value->data() + sidx.spec.value_offset, sidx.spec.value_length),
        sidx.spec);
    if (!skey.ok()) co_return skey.status();
    if (*skey < lo || hi < *skey) continue;
    fresh.push_back(FreshTuple{std::move(*skey), pkey, std::move(*value)});
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const FreshTuple& a, const FreshTuple& b) {
              if (a.skey != b.skey) return a.skey < b.skey;
              return a.pkey < b.pkey;
            });

  const std::vector<SketchEntry>& sketch = sidx.sketch;
  std::size_t pos = sketch.empty() ? 0 : SketchRangeStart(sketch, lo);

  IndexPrefetch slots[2];
  auto issue = [&](std::size_t p) {
    IndexPrefetch& s = slots[p % 2];
    s.active = true;
    s.pos = p;
    if (!s.done) {
      s.done = std::make_unique<sim::Event>(sim_);
    } else {
      s.done->Reset();
    }
    sim_->Spawn(PrefetchIndexBlock(ks->id, sketch[p], &s, act));
  };

  Status scan_status = Status::Ok();
  struct RunTuple {
    std::string skey;
    std::string pkey;
    ValueRef ref;
  };
  std::vector<RunTuple> matches;
  // SIDX blocks are globally sorted by (skey, pkey) — SidxMergeToBlocks
  // emits them in exactly that order — so when `limit` lands inside a run
  // of tied secondary keys, the cut is deterministic: the survivors are
  // always the lexicographically-smallest primary keys of the tie,
  // independent of core count, gather fan-out, or cache state. Verify the
  // invariant while scanning; a violation would silently randomize the
  // cut, so it fails loudly as corruption.
  std::string prev_skey;
  std::string prev_pkey;
  bool have_prev = false;
  for (; pos < sketch.size(); ++pos) {
    if (sketch[pos].pivot > hi) break;
    Result<std::string> block = Status::Aborted("unread");
    if (config_.index_prefetch) {
      IndexPrefetch& cur = slots[pos % 2];
      if (cur.active && cur.pos != pos) {  // stale slot: drain before reuse
        co_await cur.done->Wait();
        cur.active = false;
      }
      if (!cur.active) issue(pos);
      if (pos + 1 < sketch.size() && !(sketch[pos + 1].pivot > hi) &&
          !slots[(pos + 1) % 2].active) {
        stats().counter("device.prefetch.issued").Increment();
        issue(pos + 1);
      }
      co_await cur.done->Wait();
      cur.active = false;
      block = std::move(cur.block);
    } else {
      block = co_await ReadIndexBlock(ks->id, sketch[pos], act);
    }
    if (!block.ok()) {
      scan_status = block.status();
      break;
    }
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      scan_status = Status::Corruption("undersized SIDX block");
      break;
    }
    bool past_hi = false;
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::SidxEntry entry;
      if (!wire::ParseSidxEntry(&in, &entry)) {
        scan_status = Status::Corruption("bad SIDX block");
        break;
      }
      if (have_prev && (entry.skey < Slice(prev_skey) ||
                        (entry.skey == Slice(prev_skey) &&
                         entry.pkey < Slice(prev_pkey)))) {
        scan_status =
            Status::Corruption("SIDX entries out of (skey, pkey) order");
        break;
      }
      prev_skey = entry.skey.ToString();
      prev_pkey = entry.pkey.ToString();
      have_prev = true;
      if (entry.skey < Slice(lo)) continue;
      if (Slice(hi) < entry.skey) {
        past_hi = true;
        break;
      }
      if (ks->delta_index.contains(entry.pkey.ToString())) {
        continue;  // stale: this row was overwritten or deleted
      }
      matches.push_back(RunTuple{entry.skey.ToString(), entry.pkey.ToString(),
                                 ValueRef{entry.vaddr, entry.vlen}});
      if (scan_limit != 0 && matches.size() >= scan_limit) {
        past_hi = true;
        break;
      }
    }
    if (!scan_status.ok() || past_hi) break;
  }
  for (IndexPrefetch& s : slots) {
    if (s.active) {
      co_await s.done->Wait();
      s.active = false;
      stats().counter("device.prefetch.wasted").Increment();
    }
  }
  KVCSD_CO_RETURN_IF_ERROR(scan_status);

  // Merge run survivors with the fresh delta tuples by (skey, pkey) — the
  // two sets are disjoint by construction (run tuples whose pkey is in the
  // delta were dropped above) — and cut at `limit`.
  struct OutRow {
    std::string pkey;
    bool from_fresh = false;
    std::size_t fresh_idx = 0;
    ValueRef ref{0, 0};
  };
  std::vector<OutRow> rows;
  rows.reserve(matches.size() + fresh.size());
  std::size_t ri = 0;
  std::size_t fi = 0;
  while ((ri < matches.size() || fi < fresh.size()) &&
         (limit == 0 || rows.size() < limit)) {
    bool take_fresh;
    if (ri >= matches.size()) {
      take_fresh = true;
    } else if (fi >= fresh.size()) {
      take_fresh = false;
    } else {
      const FreshTuple& f = fresh[fi];
      const RunTuple& m = matches[ri];
      take_fresh =
          f.skey < m.skey || (f.skey == m.skey && f.pkey < m.pkey);
    }
    if (take_fresh) {
      rows.push_back(OutRow{std::move(fresh[fi].pkey), true, fi, {0, 0}});
      ++fi;
    } else {
      rows.push_back(
          OutRow{std::move(matches[ri].pkey), false, 0, matches[ri].ref});
      ++ri;
    }
  }

  std::vector<ValueRef> refs;
  std::vector<std::size_t> ref_slot;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (!rows[r].from_fresh) {
      refs.push_back(rows[r].ref);
      ref_slot.push_back(r);
    }
  }
  auto values = co_await GatherValues(std::move(refs), act);
  if (!values.ok()) co_return values.status();
  std::vector<std::string> vals(rows.size());
  for (std::size_t k = 0; k < ref_slot.size(); ++k) {
    vals[ref_slot[k]] = std::move((*values)[k]);
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].from_fresh) vals[r] = std::move(fresh[rows[r].fresh_idx].value);
  }
  out->reserve(out->size() + rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out->emplace_back(std::move(rows[r].pkey), std::move(vals[r]));
  }
  co_return Status::Ok();
}

}  // namespace kvcsd::device
