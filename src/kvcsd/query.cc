// Offloaded query processing (paper §V "Query Processing").
//
// All queries start from the in-memory pivot sketch in the keyspace table:
// binary-search the sketch, read the covering 4 KB PIDX/SIDX block(s) from
// flash, then gather exactly the matching values. Because everything runs
// in the device, only results travel back over PCIe — the mechanism behind
// the paper's selectivity-dependent speedups (Fig. 12).
#include <algorithm>

#include "kvcsd/device.h"
#include "kvcsd/wire.h"

namespace kvcsd::device {

namespace {

// Index of the sketch block that could contain `key`: the last block whose
// pivot (first key) is <= key. Returns sketch.size() if key precedes all.
// Only valid when pivots are unique (primary keys); range queries over
// secondary keys must use SketchRangeStart instead.
std::size_t SketchLowerBlock(const std::vector<SketchEntry>& sketch,
                             const std::string& key) {
  auto it = std::upper_bound(
      sketch.begin(), sketch.end(), key,
      [](const std::string& k, const SketchEntry& e) { return k < e.pivot; });
  if (it == sketch.begin()) return sketch.size();  // key < first pivot
  return static_cast<std::size_t>(it - sketch.begin()) - 1;
}

// First block that can contain entries >= lo, correct even when several
// consecutive blocks share the same pivot (tied secondary keys): position
// at the FIRST block whose pivot >= lo and step back one block, since the
// preceding block's tail may still hold keys >= lo.
std::size_t SketchRangeStart(const std::vector<SketchEntry>& sketch,
                             const std::string& lo) {
  auto it = std::lower_bound(
      sketch.begin(), sketch.end(), lo,
      [](const SketchEntry& e, const std::string& k) { return e.pivot < k; });
  if (it != sketch.begin()) --it;
  return static_cast<std::size_t>(it - sketch.begin());
}

}  // namespace

sim::Task<Result<std::string>> Device::ReadIndexBlock(
    const SketchEntry& entry) {
  std::string block(entry.block_len, '\0');
  co_await cpu_.Compute(config_.costs.io_path_overhead);
  KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Read(
      entry.block_addr,
      std::span<std::byte>(reinterpret_cast<std::byte*>(block.data()),
                           block.size())));
  co_await cpu_.Compute(config_.costs.block_search);
  co_return block;
}

sim::Task<Result<std::vector<std::string>>> Device::GatherValues(
    std::vector<ValueRef> refs) {
  std::vector<std::string> out(refs.size());
  if (refs.empty()) co_return out;

  // Read in flash-address order, coalescing requests whose gap is below a
  // page and which stay inside one zone.
  std::vector<std::size_t> order(refs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&refs](std::size_t a, std::size_t b) {
    return refs[a].addr < refs[b].addr;
  });

  const std::uint64_t zone_size = ssd_.zone_size();
  constexpr std::uint64_t kMaxGap = 4096;
  constexpr std::uint64_t kMaxRange = MiB(1);

  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint64_t range_start = refs[order[i]].addr;
    const std::uint64_t zone_end =
        (range_start / zone_size + 1) * zone_size;
    std::uint64_t range_end = range_start + refs[order[i]].len;
    std::size_t j = i + 1;
    while (j < order.size()) {
      const ValueRef& next = refs[order[j]];
      const std::uint64_t next_end = next.addr + next.len;
      if (next.addr > range_end + kMaxGap) break;
      if (next_end > zone_end) break;
      if (next_end - range_start > kMaxRange) break;
      range_end = std::max(range_end, next_end);
      ++j;
    }
    std::string buffer(range_end - range_start, '\0');
    co_await cpu_.Compute(config_.costs.io_path_overhead);
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Read(
        range_start,
        std::span<std::byte>(reinterpret_cast<std::byte*>(buffer.data()),
                             buffer.size())));
    for (std::size_t k = i; k < j; ++k) {
      const ValueRef& ref = refs[order[k]];
      out[order[k]] = buffer.substr(ref.addr - range_start, ref.len);
    }
    i = j;
  }
  co_return out;
}

sim::Task<Result<std::string>> Device::QueryPoint(Keyspace* ks,
                                                  const std::string& key) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition(
        "keyspace is not queryable (state " +
        std::string(KeyspaceStateName(ks->state)) + ")");
  }
  const std::size_t pos = SketchLowerBlock(ks->pidx_sketch, key);
  if (pos >= ks->pidx_sketch.size()) co_return Status::NotFound();

  auto block = co_await ReadIndexBlock(ks->pidx_sketch[pos]);
  if (!block.ok()) co_return block.status();
  std::uint16_t count = 0;
  Slice in;
  if (!wire::OpenIndexBlock(*block, &count, &in)) {
    co_return Status::Corruption("undersized PIDX block");
  }
  for (std::uint16_t i = 0; i < count; ++i) {
    wire::PidxEntry entry;
    if (!wire::ParsePidxEntry(&in, &entry)) {
      co_return Status::Corruption("bad PIDX block");
    }
    if (entry.key == Slice(key)) {
      std::vector<ValueRef> one;
      one.push_back(ValueRef{entry.vaddr, entry.vlen});
      auto values = co_await GatherValues(std::move(one));
      if (!values.ok()) co_return values.status();
      co_return std::move((*values)[0]);
    }
    if (Slice(key) < entry.key) break;  // sorted: key is absent
  }
  co_return Status::NotFound();
}

sim::Task<Status> Device::QueryPrimaryRange(
    Keyspace* ks, const std::string& lo, const std::string& hi,
    std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition("keyspace is not queryable");
  }
  if (ks->pidx_sketch.empty()) co_return Status::Ok();

  std::size_t pos = SketchRangeStart(ks->pidx_sketch, lo);

  std::vector<std::pair<std::string, ValueRef>> matches;
  for (; pos < ks->pidx_sketch.size(); ++pos) {
    if (ks->pidx_sketch[pos].pivot > hi) break;
    auto block = co_await ReadIndexBlock(ks->pidx_sketch[pos]);
    if (!block.ok()) co_return block.status();
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      co_return Status::Corruption("undersized PIDX block");
    }
    bool past_hi = false;
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::PidxEntry entry;
      if (!wire::ParsePidxEntry(&in, &entry)) {
        co_return Status::Corruption("bad PIDX block");
      }
      if (entry.key < Slice(lo)) continue;
      if (Slice(hi) < entry.key) {
        past_hi = true;
        break;
      }
      matches.emplace_back(entry.key.ToString(),
                           ValueRef{entry.vaddr, entry.vlen});
      if (limit != 0 && matches.size() >= limit) {
        past_hi = true;
        break;
      }
    }
    if (past_hi) break;
  }

  std::vector<ValueRef> refs;
  refs.reserve(matches.size());
  for (const auto& [key, ref] : matches) refs.push_back(ref);
  auto values = co_await GatherValues(std::move(refs));
  if (!values.ok()) co_return values.status();
  out->reserve(out->size() + matches.size());
  for (std::size_t i = 0; i < matches.size(); ++i) {
    out->emplace_back(std::move(matches[i].first), std::move((*values)[i]));
  }
  co_return Status::Ok();
}

sim::Task<Status> Device::QuerySecondaryRange(
    Keyspace* ks, const std::string& index_name, const std::string& lo,
    const std::string& hi, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition("keyspace is not queryable");
  }
  auto sidx_it = ks->secondary_indexes.find(index_name);
  if (sidx_it == ks->secondary_indexes.end()) {
    co_return Status::NotFound("no such secondary index: " + index_name);
  }
  const SecondaryIndex& sidx = sidx_it->second;
  if (sidx.sketch.empty()) co_return Status::Ok();

  std::size_t pos = SketchRangeStart(sidx.sketch, lo);

  std::vector<std::pair<std::string, ValueRef>> matches;  // pkey, value ref
  for (; pos < sidx.sketch.size(); ++pos) {
    if (sidx.sketch[pos].pivot > hi) break;
    auto block = co_await ReadIndexBlock(sidx.sketch[pos]);
    if (!block.ok()) co_return block.status();
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      co_return Status::Corruption("undersized SIDX block");
    }
    bool past_hi = false;
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::SidxEntry entry;
      if (!wire::ParseSidxEntry(&in, &entry)) {
        co_return Status::Corruption("bad SIDX block");
      }
      if (entry.skey < Slice(lo)) continue;
      if (Slice(hi) < entry.skey) {
        past_hi = true;
        break;
      }
      matches.emplace_back(entry.pkey.ToString(),
                           ValueRef{entry.vaddr, entry.vlen});
      if (limit != 0 && matches.size() >= limit) {
        past_hi = true;
        break;
      }
    }
    if (past_hi) break;
  }

  std::vector<ValueRef> refs;
  refs.reserve(matches.size());
  for (const auto& [pkey, ref] : matches) refs.push_back(ref);
  auto values = co_await GatherValues(std::move(refs));
  if (!values.ok()) co_return values.status();
  out->reserve(out->size() + matches.size());
  for (std::size_t i = 0; i < matches.size(); ++i) {
    out->emplace_back(std::move(matches[i].first), std::move((*values)[i]));
  }
  co_return Status::Ok();
}

}  // namespace kvcsd::device
