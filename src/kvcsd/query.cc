// Offloaded query processing (paper §V "Query Processing").
//
// All queries start from the in-memory pivot sketch in the keyspace table:
// binary-search the sketch, read the covering 4 KB PIDX/SIDX block(s) from
// flash, then gather exactly the matching values. Because everything runs
// in the device, only results travel back over PCIe — the mechanism behind
// the paper's selectivity-dependent speedups (Fig. 12).
//
// Read acceleration (DESIGN.md §10):
//   - ReadIndexBlock fronts a DRAM index-block cache; a hit pays only the
//     in-block search CPU, no flash read.
//   - QueryPoint consults the keyspace's compaction-built bloom filter so
//     negative lookups usually skip flash entirely.
//   - Range scans keep the next sketch block's read in flight while the
//     current one is parsed (one-slot-ahead pipeline).
//   - GatherValues dedupes identical refs, coalesces address-adjacent
//     reads, and fans the coalesced ranges out across NAND channels.
#include <algorithm>

#include "common/bloom.h"
#include "kvcsd/device.h"
#include "kvcsd/wire.h"
#include "sim/parallel.h"

namespace kvcsd::device {

namespace {

// Index of the sketch block that could contain `key`: the last block whose
// pivot (first key) is <= key. Returns sketch.size() if key precedes all.
// Only valid when pivots are unique (primary keys); range queries over
// secondary keys must use SketchRangeStart instead.
std::size_t SketchLowerBlock(const std::vector<SketchEntry>& sketch,
                             const std::string& key) {
  auto it = std::upper_bound(
      sketch.begin(), sketch.end(), key,
      [](const std::string& k, const SketchEntry& e) { return k < e.pivot; });
  if (it == sketch.begin()) return sketch.size();  // key < first pivot
  return static_cast<std::size_t>(it - sketch.begin()) - 1;
}

// First block that can contain entries >= lo, correct even when several
// consecutive blocks share the same pivot (tied secondary keys): position
// at the FIRST block whose pivot >= lo and step back one block, since the
// preceding block's tail may still hold keys >= lo.
std::size_t SketchRangeStart(const std::vector<SketchEntry>& sketch,
                             const std::string& lo) {
  auto it = std::lower_bound(
      sketch.begin(), sketch.end(), lo,
      [](const SketchEntry& e, const std::string& k) { return e.pivot < k; });
  if (it != sketch.begin()) --it;
  return static_cast<std::size_t>(it - sketch.begin());
}

}  // namespace

sim::Task<Result<std::string>> Device::ReadIndexBlock(
    std::uint64_t keyspace_id, const SketchEntry& entry) {
  if (index_cache_.enabled()) {
    std::string cached;
    if (index_cache_.Lookup(keyspace_id, entry.block_addr, &cached)) {
      stats().counter("device.read_cache.hits").Increment();
      co_await cpu_.Compute(config_.costs.block_search);
      co_return cached;
    }
    stats().counter("device.read_cache.misses").Increment();
  }
  std::string block(entry.block_len, '\0');
  co_await cpu_.Compute(config_.costs.io_path_overhead);
  KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Read(
      entry.block_addr,
      std::span<std::byte>(reinterpret_cast<std::byte*>(block.data()),
                           block.size())));
  co_await cpu_.Compute(config_.costs.block_search);
  index_cache_.Insert(keyspace_id, entry.block_addr, block);
  co_return block;
}

sim::Task<void> Device::PrefetchIndexBlock(std::uint64_t keyspace_id,
                                           SketchEntry entry,
                                           IndexPrefetch* slot) {
  slot->block = co_await ReadIndexBlock(keyspace_id, entry);
  slot->done->Set();
}

sim::Task<Result<std::vector<std::string>>> Device::GatherValues(
    std::vector<ValueRef> refs) {
  std::vector<std::string> out(refs.size());
  if (refs.empty()) co_return out;

  std::vector<std::size_t> order(refs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&refs](std::size_t a, std::size_t b) {
    if (refs[a].addr != refs[b].addr) return refs[a].addr < refs[b].addr;
    if (refs[a].len != refs[b].len) return refs[a].len < refs[b].len;
    return a < b;
  });

  // Dedupe identical (addr, len) refs: repeated hits on the same value
  // (e.g. retried point gets batched together) must not issue redundant
  // flash reads or break a coalesced range at the size limit.
  std::vector<std::size_t> uniq;  // indexes into refs, one per distinct ref
  std::vector<std::size_t> owner(refs.size());  // refs index -> uniq slot
  uniq.reserve(order.size());
  std::uint64_t dup_refs = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const ValueRef& r = refs[order[k]];
    if (uniq.empty() || refs[uniq.back()].addr != r.addr ||
        refs[uniq.back()].len != r.len) {
      uniq.push_back(order[k]);
    } else {
      ++dup_refs;
    }
    owner[order[k]] = uniq.size() - 1;
  }

  // Coalesce distinct refs into ranges whose gap stays below a page, that
  // stay inside one zone, and that stay under 1 MiB. Plain CPU work: the
  // I/O is issued afterwards so ranges on different NAND channels overlap.
  const std::uint64_t zone_size = ssd_.zone_size();
  constexpr std::uint64_t kMaxGap = 4096;
  constexpr std::uint64_t kMaxRange = MiB(1);

  struct Range {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::size_t first = 0;  // [first, last) into uniq
    std::size_t last = 0;
  };
  std::vector<Range> ranges;
  std::size_t i = 0;
  while (i < uniq.size()) {
    const std::uint64_t range_start = refs[uniq[i]].addr;
    const std::uint64_t zone_end = (range_start / zone_size + 1) * zone_size;
    std::uint64_t range_end = range_start + refs[uniq[i]].len;
    std::size_t j = i + 1;
    while (j < uniq.size()) {
      const ValueRef& next = refs[uniq[j]];
      const std::uint64_t next_end = next.addr + next.len;
      if (next.addr > range_end + kMaxGap) break;
      if (next_end > zone_end) break;
      if (next_end - range_start > kMaxRange) break;
      range_end = std::max(range_end, next_end);
      ++j;
    }
    ranges.push_back(Range{range_start, range_end, i, j});
    i = j;
  }

  stats().counter("device.gather.refs").Add(refs.size());
  stats().counter("device.gather.dup_refs").Add(dup_refs);
  stats().counter("device.gather.ranges").Add(ranges.size());

  // Fan the range reads out with a bounded inflight. Each worker writes
  // disjoint uniq_values slots, so results are independent of completion
  // order — parallelism changes timing, never contents.
  std::vector<std::string> uniq_values(uniq.size());
  auto read_range = [&](std::size_t r) -> sim::Task<Status> {
    const Range& range = ranges[r];
    std::string buffer(range.end - range.start, '\0');
    co_await cpu_.Compute(config_.costs.io_path_overhead);
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Read(
        range.start,
        std::span<std::byte>(reinterpret_cast<std::byte*>(buffer.data()),
                             buffer.size())));
    for (std::size_t u = range.first; u < range.last; ++u) {
      const ValueRef& ref = refs[uniq[u]];
      uniq_values[u] = buffer.substr(ref.addr - range.start, ref.len);
    }
    co_return Status::Ok();
  };
  KVCSD_CO_RETURN_IF_ERROR(co_await sim::ParallelFor(
      sim_, ranges.size(), std::max<std::uint32_t>(config_.gather_fanout, 1),
      read_range));

  for (std::size_t k = 0; k < refs.size(); ++k) out[k] = uniq_values[owner[k]];
  co_return out;
}

sim::Task<Result<std::string>> Device::QueryPoint(Keyspace* ks,
                                                  const std::string& key) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition(
        "keyspace is not queryable (state " +
        std::string(KeyspaceStateName(ks->state)) + ")");
  }
  // Bloom first: a definite negative answers from DRAM alone, skipping
  // both the index-block read and the value gather.
  bool bloom_said_maybe = false;
  if (!ks->pidx_bloom.empty()) {
    co_await cpu_.Compute(config_.costs.bloom_check);
    if (!BloomFilterMayContain(Slice(ks->pidx_bloom), Slice(key))) {
      stats().counter("device.bloom.negative").Increment();
      co_return Status::NotFound();
    }
    bloom_said_maybe = true;
    stats().counter("device.bloom.maybe").Increment();
  }
  const std::size_t pos = SketchLowerBlock(ks->pidx_sketch, key);
  if (pos >= ks->pidx_sketch.size()) co_return Status::NotFound();

  auto block = co_await ReadIndexBlock(ks->id, ks->pidx_sketch[pos]);
  if (!block.ok()) co_return block.status();
  std::uint16_t count = 0;
  Slice in;
  if (!wire::OpenIndexBlock(*block, &count, &in)) {
    co_return Status::Corruption("undersized PIDX block");
  }
  for (std::uint16_t i = 0; i < count; ++i) {
    wire::PidxEntry entry;
    if (!wire::ParsePidxEntry(&in, &entry)) {
      co_return Status::Corruption("bad PIDX block");
    }
    if (entry.key == Slice(key)) {
      std::vector<ValueRef> one;
      one.push_back(ValueRef{entry.vaddr, entry.vlen});
      auto values = co_await GatherValues(std::move(one));
      if (!values.ok()) co_return values.status();
      co_return std::move((*values)[0]);
    }
    if (Slice(key) < entry.key) break;  // sorted: key is absent
  }
  if (bloom_said_maybe) {
    stats().counter("device.bloom.false_positive").Increment();
  }
  co_return Status::NotFound();
}

sim::Task<Status> Device::QueryPrimaryRange(
    Keyspace* ks, const std::string& lo, const std::string& hi,
    std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition("keyspace is not queryable");
  }
  const std::vector<SketchEntry>& sketch = ks->pidx_sketch;
  if (sketch.empty()) co_return Status::Ok();

  std::size_t pos = SketchRangeStart(sketch, lo);

  // Two alternating prefetch slots keep block pos+1's flash read in
  // flight while block pos is awaited and parsed; the pivot guard below
  // never fetches past `hi`, so at most one read (a mid-block limit cut)
  // is ever wasted. All error exits fall through the drain below — the
  // slots live in this frame and a detached prefetch must not outlive it.
  IndexPrefetch slots[2];
  auto issue = [&](std::size_t p) {
    IndexPrefetch& s = slots[p % 2];
    s.active = true;
    s.pos = p;
    if (!s.done) {
      s.done = std::make_unique<sim::Event>(sim_);
    } else {
      s.done->Reset();
    }
    sim_->Spawn(PrefetchIndexBlock(ks->id, sketch[p], &s));
  };

  Status scan_status = Status::Ok();
  std::vector<std::pair<std::string, ValueRef>> matches;
  std::string prev_key;
  bool have_prev = false;
  for (; pos < sketch.size(); ++pos) {
    if (sketch[pos].pivot > hi) break;
    Result<std::string> block = Status::Aborted("unread");
    if (config_.index_prefetch) {
      IndexPrefetch& cur = slots[pos % 2];
      if (cur.active && cur.pos != pos) {  // stale slot: drain before reuse
        co_await cur.done->Wait();
        cur.active = false;
      }
      if (!cur.active) issue(pos);
      if (pos + 1 < sketch.size() && !(sketch[pos + 1].pivot > hi) &&
          !slots[(pos + 1) % 2].active) {
        stats().counter("device.prefetch.issued").Increment();
        issue(pos + 1);
      }
      co_await cur.done->Wait();
      cur.active = false;
      block = std::move(cur.block);
    } else {
      block = co_await ReadIndexBlock(ks->id, sketch[pos]);
    }
    if (!block.ok()) {
      scan_status = block.status();
      break;
    }
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      scan_status = Status::Corruption("undersized PIDX block");
      break;
    }
    bool past_hi = false;
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::PidxEntry entry;
      if (!wire::ParsePidxEntry(&in, &entry)) {
        scan_status = Status::Corruption("bad PIDX block");
        break;
      }
      // The merge emits PIDX entries in nondecreasing key order across
      // block boundaries; a violation means a corrupt or misdirected
      // block and would silently mis-cut `limit`, so fail loudly.
      if (have_prev && entry.key < Slice(prev_key)) {
        scan_status = Status::Corruption("PIDX entries out of key order");
        break;
      }
      prev_key = entry.key.ToString();
      have_prev = true;
      if (entry.key < Slice(lo)) continue;
      if (Slice(hi) < entry.key) {
        past_hi = true;
        break;
      }
      matches.emplace_back(entry.key.ToString(),
                           ValueRef{entry.vaddr, entry.vlen});
      if (limit != 0 && matches.size() >= limit) {
        past_hi = true;
        break;
      }
    }
    if (!scan_status.ok() || past_hi) break;
  }
  for (IndexPrefetch& s : slots) {
    if (s.active) {
      co_await s.done->Wait();
      s.active = false;
      stats().counter("device.prefetch.wasted").Increment();
    }
  }
  KVCSD_CO_RETURN_IF_ERROR(scan_status);

  std::vector<ValueRef> refs;
  refs.reserve(matches.size());
  for (const auto& [key, ref] : matches) refs.push_back(ref);
  auto values = co_await GatherValues(std::move(refs));
  if (!values.ok()) co_return values.status();
  out->reserve(out->size() + matches.size());
  for (std::size_t i = 0; i < matches.size(); ++i) {
    out->emplace_back(std::move(matches[i].first), std::move((*values)[i]));
  }
  co_return Status::Ok();
}

sim::Task<Status> Device::QuerySecondaryRange(
    Keyspace* ks, const std::string& index_name, const std::string& lo,
    const std::string& hi, std::uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (ks->state != KeyspaceState::kCompacted) {
    co_return Status::FailedPrecondition("keyspace is not queryable");
  }
  auto sidx_it = ks->secondary_indexes.find(index_name);
  if (sidx_it == ks->secondary_indexes.end()) {
    co_return Status::NotFound("no such secondary index: " + index_name);
  }
  const SecondaryIndex& sidx = sidx_it->second;
  const std::vector<SketchEntry>& sketch = sidx.sketch;
  if (sketch.empty()) co_return Status::Ok();

  std::size_t pos = SketchRangeStart(sketch, lo);

  IndexPrefetch slots[2];
  auto issue = [&](std::size_t p) {
    IndexPrefetch& s = slots[p % 2];
    s.active = true;
    s.pos = p;
    if (!s.done) {
      s.done = std::make_unique<sim::Event>(sim_);
    } else {
      s.done->Reset();
    }
    sim_->Spawn(PrefetchIndexBlock(ks->id, sketch[p], &s));
  };

  Status scan_status = Status::Ok();
  std::vector<std::pair<std::string, ValueRef>> matches;  // pkey, value ref
  // SIDX blocks are globally sorted by (skey, pkey) — SidxMergeToBlocks
  // emits them in exactly that order — so when `limit` lands inside a run
  // of tied secondary keys, the cut is deterministic: the survivors are
  // always the lexicographically-smallest primary keys of the tie,
  // independent of core count, gather fan-out, or cache state. Verify the
  // invariant while scanning; a violation would silently randomize the
  // cut, so it fails loudly as corruption.
  std::string prev_skey;
  std::string prev_pkey;
  bool have_prev = false;
  for (; pos < sketch.size(); ++pos) {
    if (sketch[pos].pivot > hi) break;
    Result<std::string> block = Status::Aborted("unread");
    if (config_.index_prefetch) {
      IndexPrefetch& cur = slots[pos % 2];
      if (cur.active && cur.pos != pos) {  // stale slot: drain before reuse
        co_await cur.done->Wait();
        cur.active = false;
      }
      if (!cur.active) issue(pos);
      if (pos + 1 < sketch.size() && !(sketch[pos + 1].pivot > hi) &&
          !slots[(pos + 1) % 2].active) {
        stats().counter("device.prefetch.issued").Increment();
        issue(pos + 1);
      }
      co_await cur.done->Wait();
      cur.active = false;
      block = std::move(cur.block);
    } else {
      block = co_await ReadIndexBlock(ks->id, sketch[pos]);
    }
    if (!block.ok()) {
      scan_status = block.status();
      break;
    }
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      scan_status = Status::Corruption("undersized SIDX block");
      break;
    }
    bool past_hi = false;
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::SidxEntry entry;
      if (!wire::ParseSidxEntry(&in, &entry)) {
        scan_status = Status::Corruption("bad SIDX block");
        break;
      }
      if (have_prev && (entry.skey < Slice(prev_skey) ||
                        (entry.skey == Slice(prev_skey) &&
                         entry.pkey < Slice(prev_pkey)))) {
        scan_status =
            Status::Corruption("SIDX entries out of (skey, pkey) order");
        break;
      }
      prev_skey = entry.skey.ToString();
      prev_pkey = entry.pkey.ToString();
      have_prev = true;
      if (entry.skey < Slice(lo)) continue;
      if (Slice(hi) < entry.skey) {
        past_hi = true;
        break;
      }
      matches.emplace_back(entry.pkey.ToString(),
                           ValueRef{entry.vaddr, entry.vlen});
      if (limit != 0 && matches.size() >= limit) {
        past_hi = true;
        break;
      }
    }
    if (!scan_status.ok() || past_hi) break;
  }
  for (IndexPrefetch& s : slots) {
    if (s.active) {
      co_await s.done->Wait();
      s.active = false;
      stats().counter("device.prefetch.wasted").Increment();
    }
  }
  KVCSD_CO_RETURN_IF_ERROR(scan_status);

  std::vector<ValueRef> refs;
  refs.reserve(matches.size());
  for (const auto& [pkey, ref] : matches) refs.push_back(ref);
  auto values = co_await GatherValues(std::move(refs));
  if (!values.ok()) co_return values.status();
  out->reserve(out->size() + matches.size());
  for (std::size_t i = 0; i < matches.size(); ++i) {
    out->emplace_back(std::move(matches[i].first), std::move((*values)[i]));
  }
  co_return Status::Ok();
}

}  // namespace kvcsd::device
