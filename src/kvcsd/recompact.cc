// Incremental re-compaction (DESIGN.md §12): folds a COMPACTED keyspace's
// delta log back into its sorted run WITHOUT re-sorting the run.
//
// The delta index (newest mutation per key, key-ordered) is small relative
// to the run, so the fold touches only what the delta keys touch:
//
//  * Values — live delta values are appended to FRESH SORTED_VALUES
//    clusters in key order; untouched run values stay where they are.
//  * PIDX — each delta key maps to exactly one covering 4 KB block
//    (pivots are unique primary keys). Only those dirty blocks are read,
//    merged two-pointer with the delta (last-writer-wins: a delta PUT
//    replaces the run entry, a tombstone removes it), and rewritten to
//    fresh PIDX clusters. Clean blocks are retained by reference: their
//    sketch entries — and therefore their old clusters — carry over.
//  * SIDX — membership of a stale tuple (pkey overwritten or deleted) is
//    only discoverable by reading each block, so the fold streams every
//    block but REWRITES only dirty regions: maximal runs of consecutive
//    blocks that lost a tuple or that a new tuple sorts into. Regions
//    (not single blocks) are the rebuild unit because secondary keys tie
//    across block boundaries; a region's span provably brackets every
//    tuple tied with the new ones, so the global (skey, pkey) order the
//    scans assert survives. Clean blocks are retained by reference.
//  * Bloom — new keys are OR-ed into the serialized filter in place
//    (BloomFilterAddKey). Deleted keys leave their bits set: that only
//    ever costs false positives, never false negatives.
//
// Commit protocol: the RECOMPACTING state is persisted before any output
// is written (recovery rolls it straight back to COMPACTED, delta intact,
// new clusters reclaimed as unreferenced); the fold then builds the mixed
// old + new sketch and commits it with one table persist. Past that point
// the delta logs and any old index cluster no retained block references
// are released. A crash anywhere leaves either the old state (delta still
// pending) or the new state (delta folded) — never a blend.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bloom.h"
#include "kvcsd/device.h"
#include "kvcsd/wire.h"
#include "nvme/skey.h"
#include "sim/fault.h"
#include "sim/tracer.h"

namespace kvcsd::device {

namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

// Last block whose pivot is <= key (PIDX: pivots unique). Returns
// sketch.size() when the key precedes every pivot.
std::size_t LowerBlock(const std::vector<SketchEntry>& sketch,
                       const std::string& key) {
  auto it = std::upper_bound(
      sketch.begin(), sketch.end(), key,
      [](const std::string& k, const SketchEntry& e) { return k < e.pivot; });
  if (it == sketch.begin()) return sketch.size();
  return static_cast<std::size_t>(it - sketch.begin()) - 1;
}

// Order-preserving encoding of the secondary key bytes found in a value
// (same extraction the compactor's fused build applies).
Result<std::string> ExtractSkey(const Slice& value,
                                const nvme::SecondaryIndexSpec& spec) {
  if (spec.value_offset + spec.value_length > value.size()) {
    return Status::InvalidArgument("secondary key range beyond value");
  }
  return nvme::EncodeSecondaryKeyBytes(
      Slice(value.data() + spec.value_offset, spec.value_length), spec);
}

// One delta mutation prepared for the fold, in key order.
struct FoldItem {
  std::string key;
  bool tombstone = false;
  std::string value;           // loaded bytes (empty for a tombstone)
  std::uint64_t new_addr = 0;  // where the value was re-appended
};

struct PidxRec {
  std::string key;
  std::uint64_t vaddr = 0;
  std::uint32_t vlen = 0;
};

}  // namespace

sim::Task<Result<std::string>> Device::LoadDeltaValue(const DeltaEntry& entry,
                                                      sim::Activity act) {
  if (entry.has_value) co_return entry.value;
  if (entry.vlen == 0) co_return std::string();
  std::vector<ValueRef> one;
  one.push_back(ValueRef{entry.vaddr, entry.vlen});
  auto values = co_await GatherValues(std::move(one), act);
  if (!values.ok()) co_return values.status();
  co_return std::move((*values)[0]);
}

// Failure-handling shell mirroring CompactKeyspace: scratch clusters are
// released on any failure and the keyspace rolls back to COMPACTED with
// its delta untouched, so the mutations stay pending rather than lost.
sim::Task<Status> Device::RecompactKeyspace(Keyspace* ks,
                                            std::uint64_t trigger_cmd_id) {
  sim::TraceSpan span(sim_, trk_compaction_, "recompact");
  span.Arg("keyspace", ks->name);
  span.Arg("delta_keys", static_cast<std::uint64_t>(ks->delta_index.size()));
  if (trigger_cmd_id != 0) {
    span.Arg("trigger_cmd_id", trigger_cmd_id);
    if (sim_->tracer().enabled()) {
      sim_->tracer().FlowEnd(sim_->tracer().Track(trk_compaction_), "compact",
                             trigger_cmd_id, sim_->Now());
    }
  }
  ++compactions_running_;
  std::vector<ClusterId> scratch;
  Status result = co_await RunRecompaction(ks, &scratch);
  --compactions_running_;
  if (!result.ok()) {
    co_await ReleaseClustersBestEffort(std::move(scratch));
    if (ks->state == KeyspaceState::kRecompacting) {
      ks->state = KeyspaceState::kCompacted;
    }
    if (faults_ == nullptr || !faults_->crashed()) {
      // Durable rollback, so a later crash cannot resurrect RECOMPACTING.
      // Best-effort: recovery also rolls the on-flash state back.
      (void)co_await keyspace_manager_.Persist();
    }
  }
  CompactionDone(ks->id)->Set();
  co_await MaybeFinishPendingDelete(ks);
  co_return result;
}

sim::Task<Status> Device::RunRecompaction(Keyspace* ks,
                                          std::vector<ClusterId>* scratch) {
  const Tick fold_start = sim_->Now();
  // Flush the buffered tail of the delta and drain in-flight flush I/O:
  // the fold must observe the complete delta log (and the durable log
  // extent must match what the fold consumes, for recovery's sake).
  {
    sim::Semaphore* lock = WriteLock(ks->id);
    co_await lock->Acquire();
    Status s = co_await FlushBuffer(ks);
    lock->Release();
    if (!s.ok()) co_return s;
    co_await FlushInflight(ks->id)->Wait();
    if (auto it = flush_errors_.find(ks->id);
        it != flush_errors_.end() && !it->second.ok()) {
      Status err = it->second;
      it->second = Status::Ok();
      co_return err;
    }
  }

  // Make RECOMPACTING and the final delta-log extents durable before any
  // output is written: recovery must know to roll this keyspace back to
  // COMPACTED and which clusters hold its (still authoritative) delta.
  KVCSD_CO_RETURN_IF_ERROR(co_await keyspace_manager_.Persist());
  if (CrashPoint("recompact.before_fold")) {
    co_return Status::IoError("simulated power loss before delta fold");
  }

  // ---- Snapshot the delta (mutations are rejected kBusy from here) ----
  std::vector<FoldItem> items;
  items.reserve(ks->delta_index.size());
  {
    // Batch-load values that only survive as VLOG pointers (post-restart
    // entries); values written this power cycle ride inline.
    std::vector<ValueRef> refs;
    std::vector<std::size_t> ref_slot;
    for (const auto& [key, entry] : ks->delta_index) {
      FoldItem item;
      item.key = key;
      item.tombstone = entry.tombstone;
      if (!entry.tombstone) {
        if (entry.has_value) {
          item.value = entry.value;
        } else {
          refs.push_back(ValueRef{entry.vaddr, entry.vlen});
          ref_slot.push_back(items.size());
        }
      }
      items.push_back(std::move(item));
    }
    if (!refs.empty()) {
      auto values = co_await GatherValues(std::move(refs), sim::Activity::kRecompact);
      if (!values.ok()) co_return values.status();
      for (std::size_t i = 0; i < ref_slot.size(); ++i) {
        items[ref_slot[i]].value = std::move((*values)[i]);
      }
    }
  }

  // ---- Re-append live delta values in key order to fresh clusters ----
  std::vector<ClusterId> new_value_clusters;
  {
    std::string chunk;
    chunk.reserve(config_.output_batch_bytes);
    std::vector<std::size_t> chunk_items;
    auto flush_values = [&]() -> sim::Task<Status> {
      if (chunk.empty()) co_return Status::Ok();
      co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kRecompact);
      auto addr = co_await AppendToChain(&new_value_clusters,
                                         ZoneType::kSortedValues,
                                         AsBytes(chunk), sim::Activity::kRecompact);
      if (!addr.ok()) co_return addr.status();
      compaction_stats_.bytes_written += chunk.size();
      std::uint64_t offset = 0;
      for (std::size_t idx : chunk_items) {
        items[idx].new_addr = *addr + offset;
        offset += items[idx].value.size();
      }
      chunk.clear();
      chunk_items.clear();
      co_return Status::Ok();
    };
    std::uint64_t value_bytes = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].tombstone) continue;
      if (chunk.size() + items[i].value.size() > config_.output_batch_bytes &&
          !chunk.empty()) {
        KVCSD_CO_RETURN_IF_ERROR(co_await flush_values());
      }
      chunk += items[i].value;
      chunk_items.push_back(i);
      value_bytes += items[i].value.size();
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await flush_values());
    co_await cpu_.ComputeBytes(value_bytes,
                               config_.costs.memcpy_bytes_per_sec, sim::Activity::kRecompact);
  }
  scratch->insert(scratch->end(), new_value_clusters.begin(),
                  new_value_clusters.end());

  // ---- PIDX fold: rebuild only the blocks the delta keys land in ----
  const std::vector<SketchEntry>& old_sketch = ks->pidx_sketch;
  // Delta keys per covering block, in key order. A key preceding every
  // pivot folds into block 0 (its rebuild simply grows a smaller pivot);
  // with no run at all, everything lands in one from-scratch region.
  std::vector<std::vector<const FoldItem*>> per_block(old_sketch.size());
  std::vector<const FoldItem*> orphan_items;  // run has no blocks
  for (const FoldItem& item : items) {
    if (old_sketch.empty()) {
      orphan_items.push_back(&item);
      continue;
    }
    std::size_t pos = LowerBlock(old_sketch, item.key);
    if (pos >= old_sketch.size()) pos = 0;
    per_block[pos].push_back(&item);
  }

  std::vector<ClusterId> new_pidx_clusters;
  std::vector<SketchEntry> new_sketch;
  new_sketch.reserve(old_sketch.size());
  std::int64_t run_entries_delta = 0;
  std::uint64_t pidx_retained = 0;
  std::uint64_t pidx_rebuilt = 0;

  // Packs records into 4 KB blocks and appends them to `chain`, pushing
  // one sketch entry per block onto `sketch_out`.
  auto pack_blocks = [&](const std::vector<PidxRec>& recs,
                         std::vector<ClusterId>* chain,
                         std::vector<SketchEntry>* sketch_out)
      -> sim::Task<Status> {
    std::string block;
    wire::BeginIndexBlock(&block);
    std::uint16_t count = 0;
    std::string pivot;
    std::vector<std::pair<std::string, std::string>> done;
    auto close_block = [&]() {
      if (count == 0) return;
      wire::FinishIndexBlock(&block, count, config_.index_block_size);
      done.emplace_back(std::move(pivot), std::move(block));
      wire::BeginIndexBlock(&block);
      count = 0;
      pivot.clear();
    };
    auto flush_done = [&]() -> sim::Task<Status> {
      if (done.empty()) co_return Status::Ok();
      std::string blob;
      blob.reserve(done.size() * config_.index_block_size);
      for (const auto& [p, b] : done) blob += b;
      co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kRecompact);
      auto addr = co_await AppendToChain(chain, ZoneType::kPidx,
                                         AsBytes(blob), sim::Activity::kRecompact);
      if (!addr.ok()) co_return addr.status();
      compaction_stats_.bytes_written += blob.size();
      for (std::size_t i = 0; i < done.size(); ++i) {
        sketch_out->push_back(SketchEntry{
            std::move(done[i].first), *addr + i * config_.index_block_size,
            config_.index_block_size});
      }
      done.clear();
      co_return Status::Ok();
    };
    for (const PidxRec& rec : recs) {
      if (block.size() + wire::PidxEntrySize(rec.key) >
          config_.index_block_size) {
        close_block();
        if (done.size() * config_.index_block_size >=
            config_.output_batch_bytes) {
          KVCSD_CO_RETURN_IF_ERROR(co_await flush_done());
        }
      }
      if (count == 0) pivot = rec.key;
      wire::AppendPidxEntry(&block, rec.key, rec.vaddr, rec.vlen);
      ++count;
    }
    close_block();
    co_return co_await flush_done();
  };

  // Two-pointer LWW merge of one dirty block with its delta keys.
  auto merge_block = [&](const std::vector<PidxRec>& old_recs,
                         const std::vector<const FoldItem*>& delta,
                         std::vector<PidxRec>* out) {
    std::size_t i = 0, j = 0;
    while (i < old_recs.size() || j < delta.size()) {
      if (j >= delta.size() ||
          (i < old_recs.size() && old_recs[i].key < delta[j]->key)) {
        out->push_back(old_recs[i]);
        ++i;
        continue;
      }
      const FoldItem* d = delta[j];
      const bool match = i < old_recs.size() && old_recs[i].key == d->key;
      if (match) ++i;
      if (d->tombstone) {
        if (match) --run_entries_delta;  // removed a run key
      } else {
        out->push_back(PidxRec{d->key, d->new_addr,
                               static_cast<std::uint32_t>(d->value.size())});
        if (!match) ++run_entries_delta;  // inserted a new key
      }
      ++j;
    }
  };

  std::uint64_t fold_bytes = 0;
  for (std::size_t pos = 0; pos < old_sketch.size(); ++pos) {
    if (per_block[pos].empty()) {
      new_sketch.push_back(old_sketch[pos]);  // retained by reference
      ++pidx_retained;
      continue;
    }
    ++pidx_rebuilt;
    auto block = co_await ReadIndexBlock(ks->id, old_sketch[pos], sim::Activity::kRecompact);
    if (!block.ok()) co_return block.status();
    compaction_stats_.bytes_read += old_sketch[pos].block_len;
    std::uint16_t count = 0;
    Slice in;
    if (!wire::OpenIndexBlock(*block, &count, &in)) {
      co_return Status::Corruption("undersized PIDX block in fold");
    }
    std::vector<PidxRec> old_recs;
    old_recs.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      wire::PidxEntry entry;
      if (!wire::ParsePidxEntry(&in, &entry)) {
        co_return Status::Corruption("bad PIDX block in fold");
      }
      old_recs.push_back(
          PidxRec{entry.key.ToString(), entry.vaddr, entry.vlen});
      fold_bytes += entry.key.size() + 12;
    }
    std::vector<PidxRec> merged;
    merged.reserve(old_recs.size() + per_block[pos].size());
    merge_block(old_recs, per_block[pos], &merged);
    KVCSD_CO_RETURN_IF_ERROR(
        co_await pack_blocks(merged, &new_pidx_clusters, &new_sketch));
  }
  if (!orphan_items.empty()) {
    // Empty run: the delta becomes the run.
    std::vector<PidxRec> merged;
    merge_block({}, orphan_items, &merged);
    KVCSD_CO_RETURN_IF_ERROR(
        co_await pack_blocks(merged, &new_pidx_clusters, &new_sketch));
    ++pidx_rebuilt;
  }
  if (fold_bytes > 0) {
    co_await cpu_.ComputeBytes(fold_bytes, config_.costs.merge_bytes_per_sec, sim::Activity::kRecompact);
  }
  scratch->insert(scratch->end(), new_pidx_clusters.begin(),
                  new_pidx_clusters.end());

  // ---- SIDX fold: stream all blocks, rewrite only dirty regions ----
  // Every delta key's old tuple (if any) is stale: a tombstone removes
  // it, an overwrite re-points it (and may change its secondary key).
  std::set<std::string> delta_keys;
  for (const FoldItem& item : items) delta_keys.insert(item.key);

  struct SidxFold {
    std::vector<ClusterId> new_clusters;
    std::vector<SketchEntry> new_sketch;
    std::uint64_t new_entries = 0;
    std::uint64_t retained = 0;
    std::uint64_t rebuilt = 0;
  };
  std::map<std::string, SidxFold> sidx_folds;
  std::uint64_t sidx_retained_total = 0;
  std::uint64_t sidx_rebuilt_total = 0;

  for (auto& [name, sidx] : ks->secondary_indexes) {
    SidxFold& fold = sidx_folds[name];
    const std::vector<SketchEntry>& sketch = sidx.sketch;

    // New tuples from the live delta values, sorted by (skey, pkey).
    std::vector<SidxTuple> fresh;
    for (const FoldItem& item : items) {
      if (item.tombstone) continue;
      auto skey = ExtractSkey(Slice(item.value), sidx.spec);
      if (!skey.ok()) co_return skey.status();
      fresh.push_back(SidxTuple{
          std::move(*skey), item.key, item.new_addr,
          static_cast<std::uint32_t>(item.value.size())});
    }
    std::sort(fresh.begin(), fresh.end(),
              [](const SidxTuple& a, const SidxTuple& b) {
                if (a.skey != b.skey) return a.skey < b.skey;
                return a.pkey < b.pkey;
              });

    // Pre-mark the insertion span of each fresh tuple dirty. The span
    // [a, b] brackets every block that can hold tuples tied with the
    // tuple's secondary key: blocks before `a` end strictly below it,
    // blocks after `b` start strictly above it, so rebuilding the
    // consecutive dirty run containing [a, b] preserves global order.
    std::vector<bool> dirty(sketch.size(), false);
    std::vector<std::size_t> fresh_start(fresh.size(), 0);
    for (std::size_t f = 0; f < fresh.size(); ++f) {
      if (sketch.empty()) break;
      const std::string& skey = fresh[f].skey;
      auto lo = std::lower_bound(
          sketch.begin(), sketch.end(), skey,
          [](const SketchEntry& e, const std::string& k) {
            return e.pivot < k;
          });
      std::size_t a = lo == sketch.begin()
                          ? 0
                          : static_cast<std::size_t>(lo - sketch.begin()) - 1;
      auto hi = std::upper_bound(
          sketch.begin(), sketch.end(), skey,
          [](const std::string& k, const SketchEntry& e) {
            return k < e.pivot;
          });
      std::size_t b = hi == sketch.begin()
                          ? 0
                          : static_cast<std::size_t>(hi - sketch.begin()) - 1;
      if (b < a) b = a;
      fresh_start[f] = a;
      for (std::size_t p = a; p <= b; ++p) dirty[p] = true;
    }

    std::vector<SidxTuple> region;  // surviving tuples of the open region
    bool region_open = false;
    std::size_t region_start = 0;
    std::size_t fresh_cursor = 0;
    std::uint64_t removed = 0;
    std::uint64_t kept = 0;

    auto emit_region = [&](std::size_t region_end) -> sim::Task<Status> {
      // Merge the region's survivors with the fresh tuples whose
      // insertion span starts inside it, then re-pack as SIDX blocks.
      std::vector<SidxTuple> incoming;
      while (fresh_cursor < fresh.size() &&
             (sketch.empty() || (fresh_start[fresh_cursor] >= region_start &&
                                 fresh_start[fresh_cursor] <= region_end))) {
        incoming.push_back(std::move(fresh[fresh_cursor]));
        ++fresh_cursor;
      }
      if (region.empty() && incoming.empty()) co_return Status::Ok();
      std::vector<SidxTuple> merged;
      merged.reserve(region.size() + incoming.size());
      std::merge(std::make_move_iterator(region.begin()),
                 std::make_move_iterator(region.end()),
                 std::make_move_iterator(incoming.begin()),
                 std::make_move_iterator(incoming.end()),
                 std::back_inserter(merged),
                 [](const SidxTuple& a, const SidxTuple& b) {
                   if (a.skey != b.skey) return a.skey < b.skey;
                   return a.pkey < b.pkey;
                 });
      region.clear();
      // Pack into 4 KB blocks appended to the fold's fresh clusters.
      std::string block;
      wire::BeginIndexBlock(&block);
      std::uint16_t count = 0;
      std::string pivot;
      std::vector<std::pair<std::string, std::string>> done;
      auto close_block = [&]() {
        if (count == 0) return;
        wire::FinishIndexBlock(&block, count, config_.index_block_size);
        done.emplace_back(std::move(pivot), std::move(block));
        wire::BeginIndexBlock(&block);
        count = 0;
        pivot.clear();
      };
      auto flush_done = [&]() -> sim::Task<Status> {
        if (done.empty()) co_return Status::Ok();
        std::string blob;
        blob.reserve(done.size() * config_.index_block_size);
        for (const auto& [p, b] : done) blob += b;
        co_await cpu_.Compute(config_.costs.io_path_overhead, sim::Activity::kRecompact);
        auto addr = co_await AppendToChain(&fold.new_clusters,
                                           ZoneType::kSidx, AsBytes(blob), sim::Activity::kRecompact);
        if (!addr.ok()) co_return addr.status();
        compaction_stats_.bytes_written += blob.size();
        for (std::size_t i = 0; i < done.size(); ++i) {
          fold.new_sketch.push_back(SketchEntry{
              std::move(done[i].first),
              *addr + i * config_.index_block_size,
              config_.index_block_size});
        }
        done.clear();
        co_return Status::Ok();
      };
      for (SidxTuple& t : merged) {
        if (block.size() + wire::SidxEntrySize(t.skey, t.pkey) >
            config_.index_block_size) {
          close_block();
          if (done.size() * config_.index_block_size >=
              config_.output_batch_bytes) {
            KVCSD_CO_RETURN_IF_ERROR(co_await flush_done());
          }
        }
        if (count == 0) pivot = t.skey;
        wire::AppendSidxEntry(&block, t.skey, t.pkey, t.vaddr, t.vlen);
        ++count;
      }
      close_block();
      co_return co_await flush_done();
    };

    for (std::size_t pos = 0; pos < sketch.size(); ++pos) {
      auto block = co_await ReadIndexBlock(ks->id, sketch[pos], sim::Activity::kRecompact);
      if (!block.ok()) co_return block.status();
      compaction_stats_.bytes_read += sketch[pos].block_len;
      std::uint16_t count = 0;
      Slice in;
      if (!wire::OpenIndexBlock(*block, &count, &in)) {
        co_return Status::Corruption("undersized SIDX block in fold");
      }
      std::vector<SidxTuple> survivors;
      survivors.reserve(count);
      bool lost_tuple = false;
      for (std::uint16_t i = 0; i < count; ++i) {
        wire::SidxEntry entry;
        if (!wire::ParseSidxEntry(&in, &entry)) {
          co_return Status::Corruption("bad SIDX block in fold");
        }
        if (delta_keys.contains(entry.pkey.ToString())) {
          lost_tuple = true;
          ++removed;
          continue;
        }
        survivors.push_back(SidxTuple{entry.skey.ToString(),
                                      entry.pkey.ToString(), entry.vaddr,
                                      entry.vlen});
      }
      if (dirty[pos] || lost_tuple) {
        // Dirty: survivors join the open region (opening one if needed).
        if (!region_open) {
          region_open = true;
          region_start = pos;
        }
        kept += survivors.size();
        region.insert(region.end(),
                      std::make_move_iterator(survivors.begin()),
                      std::make_move_iterator(survivors.end()));
        ++fold.rebuilt;
      } else {
        if (region_open) {
          KVCSD_CO_RETURN_IF_ERROR(co_await emit_region(pos - 1));
          region_open = false;
        }
        kept += survivors.size();
        fold.new_sketch.push_back(sketch[pos]);  // retained by reference
        ++fold.retained;
      }
    }
    if (region_open) {
      KVCSD_CO_RETURN_IF_ERROR(co_await emit_region(
          sketch.empty() ? 0 : sketch.size() - 1));
      region_open = false;
    }
    if (fresh_cursor < fresh.size()) {
      // Remaining fresh tuples (empty index, or a tail span): one final
      // from-scratch region.
      region_start = sketch.size();
      KVCSD_CO_RETURN_IF_ERROR(
          co_await emit_region(sketch.empty() ? 0 : sketch.size() - 1));
      ++fold.rebuilt;
    }
    fold.new_entries = sidx.entries - removed + fresh.size();
    scratch->insert(scratch->end(), fold.new_clusters.begin(),
                    fold.new_clusters.end());
    sidx_retained_total += fold.retained;
    sidx_rebuilt_total += fold.rebuilt;
  }

  // ---- Bloom: fold the new keys into the serialized filter in place ----
  std::string new_bloom = ks->pidx_bloom;
  if (!new_bloom.empty()) {
    std::uint64_t bloom_key_bytes = 0;
    for (const FoldItem& item : items) {
      if (item.tombstone) continue;
      BloomFilterAddKey(&new_bloom, Slice(item.key));
      bloom_key_bytes += item.key.size();
    }
    if (bloom_key_bytes > 0) {
      co_await cpu_.ComputeBytes(bloom_key_bytes,
                                 config_.costs.checksum_bytes_per_sec, sim::Activity::kRecompact);
    }
  }

  // ---- Commit ----
  // Drain in-flight readers first: new queries block in AwaitQueryable
  // while the state is RECOMPACTING, and the commit below swaps clusters
  // and sketches that a still-running scan may be dereferencing.
  while (ks->active_readers > 0) {
    sim::Event* idle = ReadersIdle(ks->id);
    idle->Reset();
    if (ks->active_readers == 0) break;
    co_await idle->Wait();
  }

  if (CrashPoint("recompact.before_commit")) {
    co_return Status::IoError("simulated power loss before recompact commit");
  }

  // Partition each old index chain into clusters a retained block still
  // references (they stay in the keyspace) and dead ones (released past
  // the commit point). A cluster is referenced iff one of its zones holds
  // a retained block; new-cluster zones can never alias old ones.
  const std::uint64_t zone_size = ssd_.zone_size();
  auto partition = [&](const std::vector<ClusterId>& old_chain,
                       const std::vector<SketchEntry>& sketch,
                       std::vector<ClusterId>* live,
                       std::vector<ClusterId>* dead) {
    std::set<std::uint64_t> zones;
    for (const SketchEntry& e : sketch) zones.insert(e.block_addr / zone_size);
    for (ClusterId id : old_chain) {
      bool referenced = false;
      for (std::uint32_t z : zone_manager_.cluster_zones(id)) {
        if (zones.contains(z)) {
          referenced = true;
          break;
        }
      }
      (referenced ? live : dead)->push_back(id);
    }
  };

  std::vector<ClusterId> pidx_live, pidx_dead;
  partition(ks->pidx_clusters, new_sketch, &pidx_live, &pidx_dead);
  std::map<std::string, std::pair<std::vector<ClusterId>,
                                  std::vector<ClusterId>>> sidx_parts;
  for (const auto& [name, sidx] : ks->secondary_indexes) {
    auto& [live, dead] = sidx_parts[name];
    partition(sidx.sidx_clusters, sidx_folds[name].new_sketch, &live, &dead);
  }

  // Save the old state for a symmetric un-install on persist failure.
  std::vector<ClusterId> old_klog = std::move(ks->klog_clusters);
  std::vector<ClusterId> old_vlog = std::move(ks->vlog_clusters);
  const std::uint64_t old_klog_bytes = ks->klog_bytes;
  const std::uint64_t old_vlog_bytes = ks->vlog_bytes;
  std::vector<ClusterId> old_pidx = std::move(ks->pidx_clusters);
  std::vector<SketchEntry> old_pidx_sketch = std::move(ks->pidx_sketch);
  std::string old_bloom = std::move(ks->pidx_bloom);
  const std::uint64_t old_num_kvs = ks->num_kvs;
  const std::uint64_t old_run_entries = ks->run_entries;
  std::map<std::string, DeltaEntry> old_delta = std::move(ks->delta_index);
  const std::uint64_t old_delta_live = ks->delta_live;
  const std::uint64_t old_delta_index_bytes = ks->delta_index_bytes;
  std::map<std::string, std::pair<std::vector<ClusterId>,
                                  std::vector<SketchEntry>>> old_sidx;
  for (auto& [name, sidx] : ks->secondary_indexes) {
    old_sidx[name] = {std::move(sidx.sidx_clusters), std::move(sidx.sketch)};
  }
  const std::uint64_t old_value_count = ks->sorted_value_clusters.size();

  // Install the folded state. The old sorted-value clusters all stay:
  // retained and rebuilt blocks alike still point at unchanged run values.
  ks->klog_clusters.clear();
  ks->vlog_clusters.clear();
  ks->klog_bytes = 0;
  ks->vlog_bytes = 0;
  ks->pidx_clusters = pidx_live;
  ks->pidx_clusters.insert(ks->pidx_clusters.end(), new_pidx_clusters.begin(),
                           new_pidx_clusters.end());
  ks->sorted_value_clusters.insert(ks->sorted_value_clusters.end(),
                                   new_value_clusters.begin(),
                                   new_value_clusters.end());
  ks->pidx_sketch = std::move(new_sketch);
  ks->pidx_bloom = std::move(new_bloom);
  ks->run_entries = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(ks->run_entries) + run_entries_delta);
  ks->num_kvs = ks->run_entries;
  ks->delta_index.clear();
  ks->delta_live = 0;
  ks->delta_index_bytes = 0;
  for (auto& [name, sidx] : ks->secondary_indexes) {
    SidxFold& fold = sidx_folds[name];
    sidx.sidx_clusters = sidx_parts[name].first;
    sidx.sidx_clusters.insert(sidx.sidx_clusters.end(),
                              fold.new_clusters.begin(),
                              fold.new_clusters.end());
    sidx.sketch = std::move(fold.new_sketch);
    sidx.entries = fold.new_entries;
  }
  ks->state = KeyspaceState::kCompacted;
  Status commit = co_await keyspace_manager_.Persist();
  if (!commit.ok()) {
    ks->klog_clusters = std::move(old_klog);
    ks->vlog_clusters = std::move(old_vlog);
    ks->klog_bytes = old_klog_bytes;
    ks->vlog_bytes = old_vlog_bytes;
    ks->pidx_clusters = std::move(old_pidx);
    ks->pidx_sketch = std::move(old_pidx_sketch);
    ks->pidx_bloom = std::move(old_bloom);
    ks->num_kvs = old_num_kvs;
    ks->run_entries = old_run_entries;
    ks->delta_index = std::move(old_delta);
    ks->delta_live = old_delta_live;
    ks->delta_index_bytes = old_delta_index_bytes;
    ks->sorted_value_clusters.resize(old_value_count);
    for (auto& [name, sidx] : ks->secondary_indexes) {
      sidx.sidx_clusters = std::move(old_sidx[name].first);
      sidx.sketch = std::move(old_sidx[name].second);
    }
    ks->state = KeyspaceState::kRecompacting;  // wrapper rolls back
    co_return commit;
  }
  ++compactions_done_;
  scratch->clear();  // the outputs are now owned by the durable snapshot
  // Retained blocks kept their addresses, but rebuilt and dead blocks
  // must never be served from DRAM again; drop the keyspace's cache.
  index_cache_.EraseKeyspace(ks->id);

  stats().counter("device.recompact.done").Increment();
  stats().counter("device.recompact.delta_keys").Add(items.size());
  stats().counter("device.recompact.pidx_blocks_retained").Add(pidx_retained);
  stats().counter("device.recompact.pidx_blocks_rebuilt").Add(pidx_rebuilt);
  stats()
      .counter("device.recompact.sidx_blocks_retained")
      .Add(sidx_retained_total);
  stats()
      .counter("device.recompact.sidx_blocks_rebuilt")
      .Add(sidx_rebuilt_total);
  stats().histogram("device.recompact.fold_ns").Record(sim_->Now() -
                                                       fold_start);

  // Past the commit point the fold HAS happened; the delta logs and any
  // old index cluster with no retained block are garbage (a crash here
  // leaks them to recovery's unreferenced-cluster sweep).
  (void)CrashPoint("recompact.after_commit");
  co_await ReleaseClustersBestEffort(std::move(old_klog));
  co_await ReleaseClustersBestEffort(std::move(old_vlog));
  co_await ReleaseClustersBestEffort(std::move(pidx_dead));
  for (auto& [name, parts] : sidx_parts) {
    co_await ReleaseClustersBestEffort(std::move(parts.second));
  }
  co_return Status::Ok();
}

}  // namespace kvcsd::device
