// Crash-consistent recovery (DESIGN.md §8).
//
// The recovery contract rests on one ordering rule the runtime obeys
// everywhere: metadata persists BEFORE the clusters it stops referencing
// are released. The persisted snapshot is therefore always a superset of
// the live allocation — a crash can leak clusters and zones (allocated
// after the snapshot, or released-but-still-referenced by a stale
// snapshot), never dangle them. Recovery's job is purely subtractive:
//
//   1. Load the newest intact metadata snapshot (keyspace table + the
//      zone-cluster allocation table) from the ping-pong metadata zones.
//   2. Complete drops that were acknowledged but deferred behind a
//      compaction or pinned handlers — the snapshot carries their
//      pending_delete tombstone, persisted before the ack. Then roll
//      keyspaces caught COMPACTING back to WRITABLE/EMPTY. Their logs
//      are intact (compaction never touches them before its commit
//      point); any outputs the snapshot happens to reference are orphans.
//   3. Release clusters no keyspace references (uncommitted compaction
//      outputs, TEMP runs, logs of half-dropped keyspaces).
//   4. Reset written zones no cluster owns (allocations newer than the
//      snapshot whose cluster ids died with DRAM).
//   5. Replay the KLOG chains of WRITABLE keyspaces to rebuild num_kvs /
//      min_key / max_key, truncating the torn tail a power cut may have
//      left mid-zone so future appends never follow garbage.
//   6. Persist the recovered state, giving the next crash a clean base.
#include <algorithm>
#include <set>

#include "kvcsd/device.h"
#include "kvcsd/klog_stream.h"
#include "sim/fault.h"
#include "sim/tracer.h"

namespace kvcsd::device {

namespace {

// Drops the last `torn` bytes of a zone's extent by rewriting the
// surviving prefix: read it back, reset, re-append. A torn KLOG tail must
// not stay on flash — the zone keeps taking appends while its keyspace is
// WRITABLE, and framed records appended after garbage would be
// unreachable to every later sequential parse.
sim::Task<Status> TruncateZoneTail(storage::ZnsSsd* ssd, std::uint32_t zone,
                                   std::uint64_t torn) {
  const std::uint64_t keep = ssd->write_pointer(zone) - torn;
  std::string survivor(keep, '\0');
  if (keep > 0) {
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd->Read(
        static_cast<std::uint64_t>(zone) * ssd->zone_size(),
        std::span<std::byte>(reinterpret_cast<std::byte*>(survivor.data()),
                             survivor.size())));
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await ssd->Reset(zone));
  if (keep > 0) {
    auto addr = co_await ssd->Append(
        zone, std::span<const std::byte>(
                  reinterpret_cast<const std::byte*>(survivor.data()),
                  survivor.size()));
    KVCSD_CO_RETURN_IF_ERROR(addr.status());
  }
  co_return Status::Ok();
}

void AppendAll(std::vector<ClusterId>* out,
               const std::vector<ClusterId>& ids) {
  out->insert(out->end(), ids.begin(), ids.end());
}

}  // namespace

sim::Task<Status> Device::Recover() {
  sim::TraceSpan span(sim_, trk_recovery_, "recover");
  sim::Log& log = sim_->log();
  log.Info("recovery", "start (crash point '" +
                           (faults_ != nullptr ? faults_->crash_point()
                                               : std::string()) +
                           "')");
  // The snapshot about to load may describe different index layouts than
  // whatever queries cached before; a restarted Device starts with an
  // empty cache anyway, but Recover() can also re-run over a live one.
  index_cache_.Clear();
  auto recovered = co_await keyspace_manager_.Recover();
  KVCSD_CO_RETURN_IF_ERROR(recovered.status());
  log.Info("recovery",
           "metadata snapshot loaded: " + std::to_string(*recovered) +
               " keyspaces");

  // Step 2a: complete acknowledged drops. A deferred drop persists its
  // pending_delete tombstone BEFORE acking, so a tombstoned keyspace in
  // the snapshot means the client was told the drop succeeded — it must
  // not resurface. Erasing it here makes its clusters unreferenced; steps
  // 3/4 reclaim them.
  std::vector<std::uint64_t> tombstoned;
  for (const auto& [id, ks_ptr] : keyspace_manager_.all()) {
    if (ks_ptr->pending_delete) tombstoned.push_back(id);
  }
  for (std::uint64_t id : tombstoned) {
    KVCSD_CO_RETURN_IF_ERROR(keyspace_manager_.Erase(id));
  }
  if (!tombstoned.empty()) {
    log.Info("recovery", "completed " + std::to_string(tombstoned.size()) +
                             " acknowledged drop(s)");
  }

  // Step 2b: COMPACTING at snapshot time means the compaction never
  // committed — its outputs (if the snapshot saw any) are orphans, its
  // input logs are whole. Volatile runtime state (pins) died with DRAM.
  std::vector<ClusterId> doomed;
  for (const auto& [id, ks_ptr] : keyspace_manager_.all()) {
    Keyspace* ks = ks_ptr.get();
    ks->inflight = 0;
    ks->active_readers = 0;
    if (ks->state == KeyspaceState::kRecompacting) {
      // An uncommitted incremental re-compaction: the sorted run and the
      // delta log are both intact (the fold writes only fresh clusters
      // before its commit persist), so roll straight back to COMPACTED.
      // Whatever partial outputs exist are referenced by no keyspace and
      // die in steps 3/4; step 5 replays the delta chains.
      ks->state = KeyspaceState::kCompacted;
      log.Warn("recovery",
               "rolled back uncommitted re-compaction on keyspace '" +
                   ks->name + "'");
      continue;
    }
    if (ks->state != KeyspaceState::kCompacting) continue;
    AppendAll(&doomed, ks->pidx_clusters);
    AppendAll(&doomed, ks->sorted_value_clusters);
    for (const auto& [name, sidx] : ks->secondary_indexes) {
      AppendAll(&doomed, sidx.sidx_clusters);
    }
    ks->pidx_clusters.clear();
    ks->sorted_value_clusters.clear();
    ks->pidx_sketch.clear();
    ks->pidx_bloom.clear();
    ks->secondary_indexes.clear();
    ks->state = ks->klog_clusters.empty() ? KeyspaceState::kEmpty
                                          : KeyspaceState::kWritable;
    log.Warn("recovery", "rolled back uncommitted compaction on keyspace '" +
                             ks->name + "'");
  }

  // Step 3: reclaim clusters referenced by no keyspace.
  std::set<ClusterId> referenced;
  for (const auto& [id, ks_ptr] : keyspace_manager_.all()) {
    const Keyspace* ks = ks_ptr.get();
    referenced.insert(ks->klog_clusters.begin(), ks->klog_clusters.end());
    referenced.insert(ks->vlog_clusters.begin(), ks->vlog_clusters.end());
    referenced.insert(ks->pidx_clusters.begin(), ks->pidx_clusters.end());
    referenced.insert(ks->sorted_value_clusters.begin(),
                      ks->sorted_value_clusters.end());
    for (const auto& [name, sidx] : ks->secondary_indexes) {
      referenced.insert(sidx.sidx_clusters.begin(),
                        sidx.sidx_clusters.end());
    }
  }
  for (const auto& [cluster, type] : zone_manager_.LiveClusters()) {
    if (!referenced.contains(cluster)) doomed.push_back(cluster);
  }
  if (!doomed.empty()) {
    log.Info("recovery", "reclaiming " + std::to_string(doomed.size()) +
                             " unreferenced cluster(s)");
  }
  co_await ReleaseClustersBestEffort(std::move(doomed));

  // Step 4: reset written zones no surviving cluster owns — data from
  // clusters allocated after the snapshot was taken.
  std::vector<bool> owned(ssd_.num_zones(), false);
  for (const auto& [cluster, type] : zone_manager_.LiveClusters()) {
    for (std::uint32_t zone : zone_manager_.cluster_zones(cluster)) {
      owned[zone] = true;
    }
  }
  std::uint32_t zones_reset = 0;
  for (std::uint32_t zone = config_.zones.reserved_zones;
       zone < ssd_.num_zones(); ++zone) {
    if (owned[zone]) continue;
    if (ssd_.write_pointer(zone) == 0 &&
        ssd_.zone_state(zone) == storage::ZoneState::kEmpty) {
      continue;
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd_.Reset(zone));
    ++zones_reset;
  }
  if (zones_reset > 0) {
    log.Info("recovery",
             "reset " + std::to_string(zones_reset) + " unowned zone(s)");
  }

  // Step 5: rebuild the write-path counters from the logs themselves. For
  // a COMPACTED keyspace the klog/vlog chains are its post-compaction
  // delta log; replaying them rebuilds the DRAM delta index merged reads
  // consult (and the next_seq last-writer-wins counter).
  for (const auto& [id, ks_ptr] : keyspace_manager_.all()) {
    Keyspace* ks = ks_ptr.get();
    if (ks->state == KeyspaceState::kWritable) {
      KVCSD_CO_RETURN_IF_ERROR(co_await ReplayKlogChains(ks));
    } else if (ks->state == KeyspaceState::kEmpty) {
      ks->num_kvs = 0;
      ks->min_key.clear();
      ks->max_key.clear();
      ks->klog_bytes = 0;
      ks->vlog_bytes = 0;
    } else if (ks->state == KeyspaceState::kCompacted) {
      if (!ks->klog_clusters.empty()) {
        KVCSD_CO_RETURN_IF_ERROR(co_await ReplayDeltaChains(ks));
      } else {
        ks->delta_index.clear();
        ks->delta_live = 0;
        ks->num_kvs = ks->run_entries;
        ks->klog_bytes = 0;
        ks->vlog_bytes = 0;
      }
    }
  }

  // Step 6: make the cleaned-up state durable (this also redirects the
  // snapshot log away from any torn metadata tail — see
  // KeyspaceManager::Recover).
  const Status persisted = co_await keyspace_manager_.Persist();
  log.Info("recovery", persisted.ok() ? "complete"
                                      : "failed: " + persisted.ToString());
  co_return persisted;
}

sim::Task<Status> Device::ReplayKlogChains(Keyspace* ks) {
  sim::TraceSpan span(sim_, trk_recovery_, "replay_klog");
  span.Arg("keyspace", ks->name);
  ks->num_kvs = 0;
  ks->min_key.clear();
  ks->max_key.clear();
  bool have_bounds = false;
  std::uint64_t max_seq = 0;
  std::vector<KlogEntry> parsed;
  for (ClusterId cluster : ks->klog_clusters) {
    for (std::uint32_t zone : zone_manager_.cluster_zones(cluster)) {
      KlogZoneStream stream(&ssd_, zone, config_.output_batch_bytes,
                            nullptr);
      for (;;) {
        parsed.clear();
        auto more = co_await stream.NextBatch(&parsed);
        if (!more.ok()) co_return more.status();
        if (!*more) break;
        for (const KlogEntry& e : parsed) {
          max_seq = std::max(max_seq, e.seq);
          // num_kvs counts log records, matching the write path (DoDelete
          // increments it too); min/max track PUT keys only, also matching
          // the write path (a blind delete never widens the bounds).
          ++ks->num_kvs;
          if (e.tombstone) continue;
          if (!have_bounds || e.key < ks->min_key) ks->min_key = e.key;
          if (!have_bounds || e.key > ks->max_key) ks->max_key = e.key;
          have_bounds = true;
        }
      }
      if (stream.torn_bytes() > 0) {
        sim_->log().Warn(
            "recovery", "keyspace '" + ks->name + "' zone " +
                            std::to_string(zone) + ": truncating " +
                            std::to_string(stream.torn_bytes()) +
                            " torn byte(s)");
        KVCSD_CO_RETURN_IF_ERROR(
            co_await TruncateZoneTail(&ssd_, zone, stream.torn_bytes()));
      }
    }
  }
  ks->next_seq = max_seq + 1;
  ks->klog_bytes = 0;
  for (ClusterId cluster : ks->klog_clusters) {
    ks->klog_bytes += zone_manager_.ClusterBytes(cluster);
  }
  ks->vlog_bytes = 0;
  for (ClusterId cluster : ks->vlog_clusters) {
    ks->vlog_bytes += zone_manager_.ClusterBytes(cluster);
  }
  co_return Status::Ok();
}

sim::Task<Status> Device::ReplayDeltaChains(Keyspace* ks) {
  sim::TraceSpan span(sim_, trk_recovery_, "replay_delta");
  span.Arg("keyspace", ks->name);
  ks->delta_index.clear();
  ks->delta_live = 0;
  ks->delta_index_bytes = 0;
  std::uint64_t max_seq = 0;
  std::vector<KlogEntry> parsed;
  for (ClusterId cluster : ks->klog_clusters) {
    for (std::uint32_t zone : zone_manager_.cluster_zones(cluster)) {
      KlogZoneStream stream(&ssd_, zone, config_.output_batch_bytes,
                            nullptr);
      for (;;) {
        parsed.clear();
        auto more = co_await stream.NextBatch(&parsed);
        if (!more.ok()) co_return more.status();
        if (!*more) break;
        for (const KlogEntry& e : parsed) {
          max_seq = std::max(max_seq, e.seq);
          // Newest mutation per key wins. Compare by seq, not replay
          // order: pipelined flushes can land KLOG batches out of
          // admission order.
          DeltaEntry& entry = ks->delta_index[e.key];
          if (entry.seq != 0 && e.seq < entry.seq) continue;
          if (entry.seq != 0 && !entry.tombstone) --ks->delta_live;
          entry.seq = e.seq;
          entry.tombstone = e.tombstone;
          entry.vaddr = e.value_addr;
          entry.vlen = e.value_len;
          entry.has_value = false;  // only the VLOG pointer survives DRAM
          entry.value.clear();
          if (!e.tombstone) ++ks->delta_live;
        }
      }
      if (stream.torn_bytes() > 0) {
        sim_->log().Warn(
            "recovery", "keyspace '" + ks->name + "' delta zone " +
                            std::to_string(zone) + ": truncating " +
                            std::to_string(stream.torn_bytes()) +
                            " torn byte(s)");
        KVCSD_CO_RETURN_IF_ERROR(
            co_await TruncateZoneTail(&ssd_, zone, stream.torn_bytes()));
      }
    }
  }
  ks->next_seq = max_seq + 1;
  ks->num_kvs = ks->run_entries + ks->delta_live;
  // Rebuild the DRAM-footprint gauge to match the replayed index. No
  // inline values survive a power cut (only VLOG pointers), so the
  // footprint is node overhead + key bytes per entry.
  for (const auto& kv : ks->delta_index) {
    ks->delta_index_bytes += kDeltaEntryOverhead + kv.first.size();
  }
  ks->klog_bytes = 0;
  for (ClusterId cluster : ks->klog_clusters) {
    ks->klog_bytes += zone_manager_.ClusterBytes(cluster);
  }
  ks->vlog_bytes = 0;
  for (ClusterId cluster : ks->vlog_clusters) {
    ks->vlog_bytes += zone_manager_.ClusterBytes(cluster);
  }
  co_return Status::Ok();
}

}  // namespace kvcsd::device
