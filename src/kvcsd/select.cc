// In-device query pushdown (DESIGN.md §13): SELECT with value predicates
// and byte-range projection, plus count/min/max/sum aggregation — the
// paper's Fig. 12 selectivity win taken to its conclusion. The host ships
// a predicate descriptor; the device scans, filters, and either trims
// each surviving record to the projected byte range or folds everything
// into four scalars, so host-visible bytes scale with selectivity (or
// stay constant), never with dataset size.
//
// Row collection deliberately reuses QueryPrimaryRange /
// QuerySecondaryRange: pushdown scans inherit the delta merge with
// tombstone suppression, the index-block cache, the two-slot prefetch
// pipeline, and the deduped/coalesced gather fan-out for free, and any
// future change to scan semantics applies to pushdown automatically.
#include <algorithm>
#include <bit>

#include "common/coding.h"
#include "kvcsd/device.h"
#include "kvcsd/wire.h"
#include "nvme/skey.h"
#include "sim/tracer.h"

namespace kvcsd::device {

namespace {

// Encoded width of a typed attribute; 0 for kBytes (any width is legal).
std::uint32_t TypedWidth(nvme::SecondaryKeyType type) {
  switch (type) {
    case nvme::SecondaryKeyType::kU32:
    case nvme::SecondaryKeyType::kI32:
    case nvme::SecondaryKeyType::kF32:
      return 4;
    case nvme::SecondaryKeyType::kU64:
    case nvme::SecondaryKeyType::kF64:
      return 8;
    case nvme::SecondaryKeyType::kBytes:
      return 0;
  }
  return 0;
}

Status ValidatePredicate(const nvme::ValuePredicate& pred) {
  if (pred.op == nvme::PredicateOp::kNone) return Status::Ok();
  const std::uint32_t width = TypedWidth(pred.type);
  if (width != 0) {
    if (pred.value_length != width) {
      return Status::InvalidArgument("predicate attribute length mismatch");
    }
    if (pred.operand.size() != width) {
      return Status::InvalidArgument("predicate operand width mismatch");
    }
  } else if (pred.value_length == 0) {
    return Status::InvalidArgument("bytes predicate needs a length");
  }
  return Status::Ok();
}

Status ValidateAggregate(const nvme::AggregateSpec& agg) {
  if (agg.func == nvme::AggregateFunc::kNone) {
    return Status::InvalidArgument("aggregate command without a function");
  }
  if (agg.func == nvme::AggregateFunc::kCount) return Status::Ok();
  const std::uint32_t width = TypedWidth(agg.type);
  if (width == 0) {
    return Status::InvalidArgument("min/max/sum need a numeric attribute");
  }
  if (agg.value_length != width) {
    return Status::InvalidArgument("aggregate attribute length mismatch");
  }
  return Status::Ok();
}

// memcmp verdict -> predicate verdict.
bool ApplyOp(int cmp, nvme::PredicateOp op) {
  switch (op) {
    case nvme::PredicateOp::kNone:
      return true;
    case nvme::PredicateOp::kEq:
      return cmp == 0;
    case nvme::PredicateOp::kNe:
      return cmp != 0;
    case nvme::PredicateOp::kLt:
      return cmp < 0;
    case nvme::PredicateOp::kLe:
      return cmp <= 0;
    case nvme::PredicateOp::kGt:
      return cmp > 0;
    case nvme::PredicateOp::kGe:
      return cmp >= 0;
  }
  return false;
}

// Decodes a raw little-endian attribute into the accumulator domain.
// kBytes never reaches here (rejected by ValidateAggregate).
double DecodeAttribute(const Slice& raw, nvme::SecondaryKeyType type) {
  switch (type) {
    case nvme::SecondaryKeyType::kU32:
      return static_cast<double>(DecodeFixed32(raw.data()));
    case nvme::SecondaryKeyType::kU64:
      return static_cast<double>(DecodeFixed64(raw.data()));
    case nvme::SecondaryKeyType::kI32:
      return static_cast<double>(
          static_cast<std::int32_t>(DecodeFixed32(raw.data())));
    case nvme::SecondaryKeyType::kF32:
      return static_cast<double>(
          std::bit_cast<float>(DecodeFixed32(raw.data())));
    case nvme::SecondaryKeyType::kF64:
      return std::bit_cast<double>(DecodeFixed64(raw.data()));
    case nvme::SecondaryKeyType::kBytes:
      break;
  }
  return 0.0;
}

}  // namespace

sim::Task<Status> Device::QueryPushdown(Keyspace* ks,
                                        const nvme::Command& cmd,
                                        nvme::Completion* out) {
  const bool aggregate = cmd.opcode == nvme::Opcode::kKvAggregate;
  if (aggregate) {
    KVCSD_CO_RETURN_IF_ERROR(ValidateAggregate(cmd.agg));
    if (cmd.proj.enabled) {
      co_return Status::InvalidArgument("projection is a select feature");
    }
  } else if (cmd.agg.func != nvme::AggregateFunc::kNone) {
    co_return Status::InvalidArgument("aggregate spec on a select command");
  }
  KVCSD_CO_RETURN_IF_ERROR(ValidatePredicate(cmd.pred));

  sim::TraceSpan span(sim_, trk_query_, aggregate ? "aggregate" : "select");

  // The predicate can match anywhere in the scan range, so row collection
  // runs unbounded (limit = 0); cmd.limit cuts *matches* below. Both scan
  // paths return (primary key, full value) rows in a deterministic order:
  // primary-key order for primary scans, (skey, pkey) order for
  // index-driven ones — the order the aggregate accumulates in.
  std::vector<std::pair<std::string, std::string>> rows;
  const bool via_sidx = !cmd.sidx.name.empty();
  if (via_sidx) {
    KVCSD_CO_RETURN_IF_ERROR(co_await QuerySecondaryRange(
        ks, cmd.sidx.name, cmd.key, cmd.key_end, /*limit=*/0, &rows,
        sim::Activity::kPushdown));
  } else {
    KVCSD_CO_RETURN_IF_ERROR(co_await QueryPrimaryRange(
        ks, cmd.key, cmd.key_end, /*limit=*/0, &rows,
        sim::Activity::kPushdown));
  }
  if (CrashPoint("select.mid_scan")) {
    co_return Status::IoError("simulated power loss (mid select scan)");
  }

  std::uint64_t bytes_scanned = 0;
  for (const auto& [key, value] : rows) bytes_scanned += value.size();
  // The filter streams every gathered value byte through the SoC cores —
  // same rate class as secondary-key extraction — plus fixed per-record
  // handling. This is the CPU the host does NOT pay.
  co_await cpu_.ComputeBytes(bytes_scanned,
                             config_.costs.extract_bytes_per_sec, sim::Activity::kPushdown);
  co_await cpu_.Compute(static_cast<Tick>(rows.size()) *
                        config_.costs.kv_op_fixed, sim::Activity::kPushdown);

  nvme::SecondaryIndexSpec pred_spec;
  pred_spec.value_offset = cmd.pred.value_offset;
  pred_spec.value_length = cmd.pred.value_length;
  pred_spec.type = cmd.pred.type;

  nvme::AggregateResult agg;
  std::uint64_t matched = 0;
  std::uint64_t short_values = 0;
  std::uint64_t bytes_returned = 0;
  Status verdict = Status::Ok();
  for (auto& [key, value] : rows) {
    if (cmd.pred.op != nvme::PredicateOp::kNone) {
      Slice attr;
      if (!wire::ExtractAttribute(Slice(value), cmd.pred.value_offset,
                                  cmd.pred.value_length, &attr)) {
        ++short_values;  // too short to hold the attribute: never matches
        continue;
      }
      auto encoded = nvme::EncodeSecondaryKeyBytes(attr, pred_spec);
      if (!encoded.ok()) {
        verdict = encoded.status();
        break;
      }
      if (!ApplyOp(encoded->compare(cmd.pred.operand), cmd.pred.op)) {
        continue;
      }
    }
    ++matched;
    if (aggregate) {
      if (cmd.agg.func != nvme::AggregateFunc::kCount) {
        Slice attr;
        if (!wire::ExtractAttribute(Slice(value), cmd.agg.value_offset,
                                    cmd.agg.value_length, &attr)) {
          ++short_values;  // counted in rows, excluded from min/max/sum
        } else {
          const double v = DecodeAttribute(attr, cmd.agg.type);
          if (!agg.valid) {
            agg.min = agg.max = v;
            agg.valid = true;
          } else {
            agg.min = std::min(agg.min, v);
            agg.max = std::max(agg.max, v);
          }
          agg.sum += v;  // scan order: bit-reproducible by the host model
        }
      }
    } else {
      Slice projected =
          cmd.proj.enabled
              ? wire::ClampProjection(Slice(value), cmd.proj.offset,
                                      cmd.proj.length)
              : Slice(value);
      bytes_returned += key.size() + projected.size();
      out->results.emplace_back(std::move(key), projected.ToString());
    }
    if (cmd.limit != 0 && matched >= cmd.limit) break;
  }
  KVCSD_CO_RETURN_IF_ERROR(verdict);

  if (aggregate) {
    agg.rows = matched;
    if (cmd.agg.func == nvme::AggregateFunc::kCount) agg.valid = matched > 0;
    out->agg = agg;
    out->has_agg = true;
    out->count = matched;
    bytes_returned = 32;  // the scalars — independent of matched rows
  } else {
    out->count = out->results.size();
  }

  stats().counter("device.select.rows_scanned").Add(rows.size());
  stats().counter("device.select.rows_matched").Add(matched);
  stats().counter("device.select.bytes_scanned").Add(bytes_scanned);
  stats().counter("device.select.bytes_returned").Add(bytes_returned);
  stats().counter("device.select.short_values").Add(short_values);
  stats()
      .counter(aggregate ? "device.cmd.kv_aggregate.rows"
                         : "device.cmd.kv_select.rows")
      .Add(matched);

  span.Arg("src", via_sidx ? "sidx" : "primary");
  span.Arg("rows_scanned", rows.size());
  span.Arg("rows_matched", matched);
  span.Arg("bytes_scanned", bytes_scanned);
  span.Arg("bytes_returned", bytes_returned);
  co_return Status::Ok();
}

}  // namespace kvcsd::device
