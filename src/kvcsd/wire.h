// On-flash record formats shared by the write path, the compactor, and
// the query engine.
//
//   KLOG entry   := varint32 klen | key | fixed64 vaddr | varint32 vlen
//   PIDX block   := fixed16 count | count * (varint32 klen | key |
//                   fixed64 vaddr | varint32 vlen) | zero pad to 4 KB
//   SIDX block   := fixed16 count | count * (varint32 sklen | skey_enc |
//                   varint32 pklen | pkey | fixed64 vaddr | varint32 vlen)
//                   | zero pad to 4 KB
//
// skey_enc is the order-preserving encoding of the typed secondary key
// (common/keys.h), so memcmp order == numeric order.
#pragma once

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"

namespace kvcsd::device::wire {

inline void AppendKlogEntry(std::string* out, const Slice& key,
                            std::uint64_t vaddr, std::uint32_t vlen) {
  PutVarint32(out, static_cast<std::uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutFixed64(out, vaddr);
  PutVarint32(out, vlen);
}

struct ParsedKlogEntry {
  Slice key;
  std::uint64_t vaddr;
  std::uint32_t vlen;
};

inline bool ParseKlogEntry(Slice* in, ParsedKlogEntry* out) {
  std::uint32_t klen = 0;
  if (!GetVarint32(in, &klen) || in->size() < klen) return false;
  out->key = Slice(in->data(), klen);
  in->remove_prefix(klen);
  return GetFixed64(in, &out->vaddr) && GetVarint32(in, &out->vlen);
}

// --- PIDX ---

struct PidxEntry {
  Slice key;
  std::uint64_t vaddr;
  std::uint32_t vlen;
};

inline std::size_t PidxEntrySize(const Slice& key) {
  return static_cast<std::size_t>(VarintLength(key.size())) + key.size() +
         8 + 5;  // worst-case vlen varint
}

inline void AppendPidxEntry(std::string* out, const Slice& key,
                            std::uint64_t vaddr, std::uint32_t vlen) {
  PutVarint32(out, static_cast<std::uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutFixed64(out, vaddr);
  PutVarint32(out, vlen);
}

inline bool ParsePidxEntry(Slice* in, PidxEntry* out) {
  std::uint32_t klen = 0;
  if (!GetVarint32(in, &klen) || in->size() < klen) return false;
  out->key = Slice(in->data(), klen);
  in->remove_prefix(klen);
  return GetFixed64(in, &out->vaddr) && GetVarint32(in, &out->vlen);
}

// --- SIDX ---

struct SidxEntry {
  Slice skey;  // order-encoded secondary key
  Slice pkey;
  std::uint64_t vaddr;
  std::uint32_t vlen;
};

inline std::size_t SidxEntrySize(const Slice& skey, const Slice& pkey) {
  return static_cast<std::size_t>(VarintLength(skey.size())) + skey.size() +
         static_cast<std::size_t>(VarintLength(pkey.size())) + pkey.size() +
         8 + 5;
}

inline void AppendSidxEntry(std::string* out, const Slice& skey,
                            const Slice& pkey, std::uint64_t vaddr,
                            std::uint32_t vlen) {
  PutVarint32(out, static_cast<std::uint32_t>(skey.size()));
  out->append(skey.data(), skey.size());
  PutVarint32(out, static_cast<std::uint32_t>(pkey.size()));
  out->append(pkey.data(), pkey.size());
  PutFixed64(out, vaddr);
  PutVarint32(out, vlen);
}

inline bool ParseSidxEntry(Slice* in, SidxEntry* out) {
  std::uint32_t sklen = 0;
  if (!GetVarint32(in, &sklen) || in->size() < sklen) return false;
  out->skey = Slice(in->data(), sklen);
  in->remove_prefix(sklen);
  std::uint32_t pklen = 0;
  if (!GetVarint32(in, &pklen) || in->size() < pklen) return false;
  out->pkey = Slice(in->data(), pklen);
  in->remove_prefix(pklen);
  return GetFixed64(in, &out->vaddr) && GetVarint32(in, &out->vlen);
}

// Index blocks start with a fixed16 entry count.
inline void BeginIndexBlock(std::string* block) {
  block->clear();
  PutFixed16(block, 0);  // patched by FinishIndexBlock
}

inline void FinishIndexBlock(std::string* block, std::uint16_t count,
                             std::uint32_t block_size) {
  EncodeFixed16(block->data(), count);
  block->resize(block_size, '\0');
}

}  // namespace kvcsd::device::wire
