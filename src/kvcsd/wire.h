// On-flash record formats shared by the write path, the compactor, and
// the query engine.
//
//   KLOG entry   := varint32 klen | key | fixed64 vaddr | varint32 vlen |
//                   varint64 seq | uint8 flags
//   KLOG frame   := fixed32 magic | fixed32 masked_crc | varint32 len |
//                   len bytes of KLOG entries (one frame per flush batch)
//
// `seq` is the keyspace-wide mutation sequence assigned at PUT/DELETE
// admission. Up to kMaxInflightFlushes flush batches are in flight at
// once, so KLOG append order is NOT admission order — last-writer-wins
// resolution (compaction dedupe, delta replay) always compares seq, never
// log position. flags bit 0 marks a tombstone (a point DELETE); tombstone
// entries carry vaddr = 0, vlen = 0.
//   PIDX block   := fixed16 count | count * (varint32 klen | key |
//                   fixed64 vaddr | varint32 vlen) | zero pad to 4 KB
//   SIDX block   := fixed16 count | count * (varint32 sklen | skey_enc |
//                   varint32 pklen | pkey | fixed64 vaddr | varint32 vlen)
//                   | zero pad to 4 KB
//
// skey_enc is the order-preserving encoding of the typed secondary key
// (common/keys.h), so memcmp order == numeric order.
//
// KLOG frames exist for crash consistency: the CRC lives in the frame
// HEADER, so a power cut mid-append always yields an incomplete payload
// (a torn tail recovery silently drops), never a frame that parses but
// carries garbage. A complete frame whose CRC mismatches is genuine
// corruption.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/slice.h"

namespace kvcsd::device::wire {

constexpr std::uint8_t kKlogFlagTombstone = 0x01;

inline void AppendKlogEntry(std::string* out, const Slice& key,
                            std::uint64_t vaddr, std::uint32_t vlen,
                            std::uint64_t seq, bool tombstone = false) {
  PutVarint32(out, static_cast<std::uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutFixed64(out, vaddr);
  PutVarint32(out, vlen);
  PutVarint64(out, seq);
  out->push_back(static_cast<char>(tombstone ? kKlogFlagTombstone : 0));
}

struct ParsedKlogEntry {
  Slice key;
  std::uint64_t vaddr;
  std::uint32_t vlen;
  std::uint64_t seq;
  bool tombstone;
};

inline bool ParseKlogEntry(Slice* in, ParsedKlogEntry* out) {
  std::uint32_t klen = 0;
  if (!GetVarint32(in, &klen) || in->size() < klen) return false;
  out->key = Slice(in->data(), klen);
  in->remove_prefix(klen);
  if (!GetFixed64(in, &out->vaddr) || !GetVarint32(in, &out->vlen)) {
    return false;
  }
  if (!GetVarint64(in, &out->seq) || in->empty()) return false;
  out->tombstone =
      (static_cast<std::uint8_t>((*in)[0]) & kKlogFlagTombstone) != 0;
  in->remove_prefix(1);
  return true;
}

// --- KLOG frames ---

constexpr std::uint32_t kKlogFrameMagic = 0x4b4c4f47;  // "KLOG"

// Wraps one flush batch of KLOG entries in a framed record.
inline void AppendKlogFrame(std::string* out, const Slice& payload) {
  PutFixed32(out, kKlogFrameMagic);
  PutFixed32(out,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutVarint32(out, static_cast<std::uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
}

enum class KlogFrameResult : std::uint8_t {
  kFrame = 0,   // *payload holds one complete, CRC-verified frame
  kNeedMore,    // input ends mid-frame (torn tail or short read)
  kBadMagic,    // not a frame boundary — corruption
  kBadCrc,      // complete frame, payload does not match its CRC
};

// Consumes one frame from *in. On kFrame the frame is consumed and
// *payload aliases *in's buffer; on kNeedMore nothing is consumed (the
// caller fetches more bytes or treats the remainder as a torn tail); on
// kBadMagic/kBadCrc nothing is consumed.
inline KlogFrameResult ParseKlogFrame(Slice* in, Slice* payload) {
  if (in->size() < 8) return KlogFrameResult::kNeedMore;
  Slice probe = *in;
  std::uint32_t magic = 0, masked_crc = 0, len = 0;
  GetFixed32(&probe, &magic);
  if (magic != kKlogFrameMagic) return KlogFrameResult::kBadMagic;
  GetFixed32(&probe, &masked_crc);
  if (!GetVarint32(&probe, &len)) {
    // A varint32 needs at most 5 bytes; fewer available means the header
    // itself is torn, more means it is garbage.
    return probe.size() < 5 ? KlogFrameResult::kNeedMore
                            : KlogFrameResult::kBadMagic;
  }
  if (probe.size() < len) return KlogFrameResult::kNeedMore;
  Slice body(probe.data(), len);
  if (crc32c::Unmask(masked_crc) !=
      crc32c::Value(body.data(), body.size())) {
    return KlogFrameResult::kBadCrc;
  }
  *payload = body;
  in->remove_prefix(static_cast<std::size_t>(probe.data() - in->data()) +
                    len);
  return KlogFrameResult::kFrame;
}

// --- PIDX ---

struct PidxEntry {
  Slice key;
  std::uint64_t vaddr;
  std::uint32_t vlen;
};

inline std::size_t PidxEntrySize(const Slice& key) {
  return static_cast<std::size_t>(VarintLength(key.size())) + key.size() +
         8 + 5;  // worst-case vlen varint
}

inline void AppendPidxEntry(std::string* out, const Slice& key,
                            std::uint64_t vaddr, std::uint32_t vlen) {
  PutVarint32(out, static_cast<std::uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutFixed64(out, vaddr);
  PutVarint32(out, vlen);
}

inline bool ParsePidxEntry(Slice* in, PidxEntry* out) {
  std::uint32_t klen = 0;
  if (!GetVarint32(in, &klen) || in->size() < klen) return false;
  out->key = Slice(in->data(), klen);
  in->remove_prefix(klen);
  return GetFixed64(in, &out->vaddr) && GetVarint32(in, &out->vlen);
}

// --- SIDX ---

// SIDX blocks are written by compaction in nondecreasing (skey, pkey)
// order: entries sort by the order-encoded secondary key first, with the
// primary key breaking ties. Readers depend on this — a secondary range
// scan with a row limit cuts the result at the limit, so when many rows
// share the boundary secondary key, the survivors are deterministically
// the ones with the smallest primary keys. QueryPoint/QuerySecondaryRange
// assert the invariant while parsing and fail Corruption on violation.
struct SidxEntry {
  Slice skey;  // order-encoded secondary key
  Slice pkey;
  std::uint64_t vaddr;
  std::uint32_t vlen;
};

inline std::size_t SidxEntrySize(const Slice& skey, const Slice& pkey) {
  return static_cast<std::size_t>(VarintLength(skey.size())) + skey.size() +
         static_cast<std::size_t>(VarintLength(pkey.size())) + pkey.size() +
         8 + 5;
}

inline void AppendSidxEntry(std::string* out, const Slice& skey,
                            const Slice& pkey, std::uint64_t vaddr,
                            std::uint32_t vlen) {
  PutVarint32(out, static_cast<std::uint32_t>(skey.size()));
  out->append(skey.data(), skey.size());
  PutVarint32(out, static_cast<std::uint32_t>(pkey.size()));
  out->append(pkey.data(), pkey.size());
  PutFixed64(out, vaddr);
  PutVarint32(out, vlen);
}

inline bool ParseSidxEntry(Slice* in, SidxEntry* out) {
  std::uint32_t sklen = 0;
  if (!GetVarint32(in, &sklen) || in->size() < sklen) return false;
  out->skey = Slice(in->data(), sklen);
  in->remove_prefix(sklen);
  std::uint32_t pklen = 0;
  if (!GetVarint32(in, &pklen) || in->size() < pklen) return false;
  out->pkey = Slice(in->data(), pklen);
  in->remove_prefix(pklen);
  return GetFixed64(in, &out->vaddr) && GetVarint32(in, &out->vlen);
}

// Index blocks start with a fixed16 entry count.
inline void BeginIndexBlock(std::string* block) {
  block->clear();
  PutFixed16(block, 0);  // patched by FinishIndexBlock
}

// Validates the block header before any entry is decoded: readers must
// not trust a fetched block's bytes (injected errors and crashes can hand
// them garbage). Returns false when the block is too small to hold its
// own header; *entries then must not be read.
inline bool OpenIndexBlock(const std::string& block, std::uint16_t* count,
                           Slice* entries) {
  if (block.size() < 2) return false;
  *count = DecodeFixed16(block.data());
  *entries = Slice(block.data() + 2, block.size() - 2);
  return true;
}

inline void FinishIndexBlock(std::string* block, std::uint16_t count,
                             std::uint32_t block_size) {
  EncodeFixed16(block->data(), count);
  block->resize(block_size, '\0');
}

// --- pushdown (kKvSelect / kKvAggregate) ---

// Extracts the attribute byte range a predicate or aggregate addresses.
// Returns false when the value is too short to hold it — such a record is
// skipped (and counted by the caller), never an error: heterogeneous
// value sizes are legal in one keyspace.
inline bool ExtractAttribute(const Slice& value, std::uint32_t offset,
                             std::uint32_t length, Slice* out) {
  const std::uint64_t end = std::uint64_t{offset} + length;
  if (end > value.size()) return false;
  *out = Slice(value.data() + offset, length);
  return true;
}

// Clamps a projection range to the bytes the value actually holds: a
// range starting at or past the end projects zero bytes, one reaching
// past the end is trimmed to what exists.
inline Slice ClampProjection(const Slice& value, std::uint32_t offset,
                             std::uint32_t length) {
  if (offset >= value.size()) return Slice(value.data(), 0);
  const std::size_t avail = value.size() - offset;
  return Slice(value.data() + offset,
               std::min<std::size_t>(length, avail));
}

}  // namespace kvcsd::device::wire
