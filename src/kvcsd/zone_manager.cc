#include "kvcsd/zone_manager.h"

#include <algorithm>
#include <string>

#include "common/coding.h"

namespace kvcsd::device {

const char* ZoneTypeName(ZoneType type) {
  switch (type) {
    case ZoneType::kKlog:
      return "klog";
    case ZoneType::kVlog:
      return "vlog";
    case ZoneType::kPidx:
      return "pidx";
    case ZoneType::kSidx:
      return "sidx";
    case ZoneType::kSortedValues:
      return "sorted_values";
    case ZoneType::kTemp:
      return "temp";
  }
  return "unknown";
}

ZoneManager::ZoneManager(storage::ZnsSsd* ssd, ZoneManagerConfig config,
                         std::uint64_t seed)
    : ssd_(ssd), config_(config), rng_(seed) {
  free_zones_.reserve(ssd->num_zones());
  // LIFO pool, highest ids first, so allocation hands out low zone ids in
  // ascending order (and therefore consecutive channels) per cluster.
  for (std::uint32_t z = ssd->num_zones(); z-- > config_.reserved_zones;) {
    free_zones_.push_back(z);
  }
  // The reserved zones hold the ping-pong metadata snapshots.
  for (std::uint32_t z = 0; z < config_.reserved_zones; ++z) {
    ssd_->TagZone(z, "meta");
  }
}

Result<ClusterId> ZoneManager::AllocateCluster(ZoneType type) {
  if (free_zones_.size() < config_.zones_per_cluster) {
    return Status::OutOfSpace(
        "zone pool exhausted (free=" + std::to_string(free_zones_.size()) +
        ", cluster needs " + std::to_string(config_.zones_per_cluster) +
        ", live clusters=" + std::to_string(clusters_.size()) + ")");
  }
  Cluster cluster;
  cluster.type = type;
  cluster.zones.reserve(config_.zones_per_cluster);
  for (std::uint32_t i = 0; i < config_.zones_per_cluster; ++i) {
    cluster.zones.push_back(free_zones_.back());
    free_zones_.pop_back();
    // Attribute the zone's I/O to its new role. Released zones keep their
    // old tag until reallocated, so a release's resets still land on the
    // role that owned the data.
    ssd_->TagZone(cluster.zones.back(), ZoneTypeName(type));
  }
  // The paper's channel-conflict mitigation: start the write rotation at a
  // random zone so simultaneous writers land on different channels.
  cluster.next_zone =
      static_cast<std::uint32_t>(rng_.Uniform(cluster.zones.size()));
  const ClusterId id = next_cluster_id_++;
  clusters_.emplace(id, std::move(cluster));
  return id;
}

sim::Task<Status> ZoneManager::ReleaseCluster(ClusterId id) {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    co_return Status::NotFound("no such cluster");
  }
  // Reset every zone BEFORE surrendering ownership. Reset suspends, and
  // during the suspension another coroutine may allocate a cluster or
  // persist a metadata snapshot: a zone must never be observable as both
  // cluster-owned and free, or the persisted table fails recovery's
  // exclusive-ownership check (and the zone can be handed out twice).
  // A reset-then-failed release leaves the cluster whole, which is
  // consistent: it still owns every zone, some merely empty.
  for (std::uint32_t zone : it->second.zones) {
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd_->Reset(zone));
  }
  // Re-find: a concurrent release of the same id may have finished while
  // the resets were in flight.
  it = clusters_.find(id);
  if (it == clusters_.end()) {
    co_return Status::NotFound("cluster released concurrently");
  }
  for (std::uint32_t zone : it->second.zones) {
    free_zones_.push_back(zone);
  }
  clusters_.erase(it);
  co_return Status::Ok();
}

sim::Task<Result<std::uint64_t>> ZoneManager::Append(
    ClusterId id, std::span<const std::byte> data, sim::Activity act) {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    co_return Status::NotFound("no such cluster");
  }
  Cluster& cluster = it->second;
  if (data.size() > ssd_->zone_size()) {
    co_return Status::InvalidArgument("record larger than a zone");
  }
  // Try each zone once, starting at the rotation cursor.
  for (std::size_t attempt = 0; attempt < cluster.zones.size(); ++attempt) {
    const std::uint32_t zone = cluster.zones[cluster.next_zone];
    cluster.next_zone =
        static_cast<std::uint32_t>((cluster.next_zone + 1) %
                                   cluster.zones.size());
    if (ssd_->zone_state(zone) != storage::ZoneState::kFull &&
        ssd_->write_pointer(zone) + data.size() <= ssd_->zone_size()) {
      co_return co_await ssd_->Append(zone, data, act);
    }
  }
  co_return Status::OutOfSpace("cluster full");
}

ZoneType ZoneManager::cluster_type(ClusterId id) const {
  return clusters_.at(id).type;
}

const std::vector<std::uint32_t>& ZoneManager::cluster_zones(
    ClusterId id) const {
  return clusters_.at(id).zones;
}

std::uint64_t ZoneManager::ClusterBytes(ClusterId id) const {
  std::uint64_t total = 0;
  for (std::uint32_t zone : clusters_.at(id).zones) {
    total += ssd_->write_pointer(zone);
  }
  return total;
}

void ZoneManager::SerializeTo(std::string* out) const {
  PutVarint64(out, next_cluster_id_);
  PutVarint64(out, clusters_.size());
  for (const auto& [id, cluster] : clusters_) {
    PutVarint64(out, id);
    out->push_back(static_cast<char>(cluster.type));
    PutVarint32(out, cluster.next_zone);
    PutVarint32(out, static_cast<std::uint32_t>(cluster.zones.size()));
    for (std::uint32_t zone : cluster.zones) PutVarint32(out, zone);
  }
}

Status ZoneManager::RestoreFrom(Slice* in) {
  std::uint64_t next_id = 0;
  std::uint64_t count = 0;
  if (!GetVarint64(in, &next_id) || !GetVarint64(in, &count)) {
    return Status::Corruption("zone-manager table header");
  }
  std::map<ClusterId, Cluster> clusters;
  std::vector<bool> owned(ssd_->num_zones(), false);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::uint32_t next_zone = 0;
    std::uint32_t num_zones = 0;
    if (!GetVarint64(in, &id) || in->empty()) {
      return Status::Corruption("zone-manager cluster record");
    }
    const auto type = static_cast<ZoneType>((*in)[0]);
    in->remove_prefix(1);
    if (type > ZoneType::kTemp) {
      return Status::Corruption("zone-manager cluster type");
    }
    if (!GetVarint32(in, &next_zone) || !GetVarint32(in, &num_zones)) {
      return Status::Corruption("zone-manager cluster record");
    }
    Cluster cluster;
    cluster.type = type;
    cluster.zones.reserve(num_zones);
    for (std::uint32_t z = 0; z < num_zones; ++z) {
      std::uint32_t zone = 0;
      if (!GetVarint32(in, &zone)) {
        return Status::Corruption("zone-manager cluster zones");
      }
      if (zone >= ssd_->num_zones() || zone < config_.reserved_zones ||
          owned[zone]) {
        return Status::Corruption("zone-manager zone id");
      }
      owned[zone] = true;
      cluster.zones.push_back(zone);
    }
    if (num_zones == 0 || next_zone >= num_zones || id >= next_id) {
      return Status::Corruption("zone-manager cluster shape");
    }
    cluster.next_zone = next_zone;
    clusters.emplace(id, std::move(cluster));
  }

  clusters_ = std::move(clusters);
  next_cluster_id_ = next_id == 0 ? 1 : next_id;
  for (const auto& [id, cluster] : clusters_) {
    for (std::uint32_t zone : cluster.zones) {
      ssd_->TagZone(zone, ZoneTypeName(cluster.type));
    }
  }
  free_zones_.clear();
  for (std::uint32_t z = ssd_->num_zones(); z-- > config_.reserved_zones;) {
    if (!owned[z]) free_zones_.push_back(z);
  }
  return Status::Ok();
}

}  // namespace kvcsd::device
