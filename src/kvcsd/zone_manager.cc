#include "kvcsd/zone_manager.h"

#include <algorithm>

namespace kvcsd::device {

ZoneManager::ZoneManager(storage::ZnsSsd* ssd, ZoneManagerConfig config,
                         std::uint64_t seed)
    : ssd_(ssd), config_(config), rng_(seed) {
  free_zones_.reserve(ssd->num_zones());
  // LIFO pool, highest ids first, so allocation hands out low zone ids in
  // ascending order (and therefore consecutive channels) per cluster.
  for (std::uint32_t z = ssd->num_zones(); z-- > config_.reserved_zones;) {
    free_zones_.push_back(z);
  }
}

Result<ClusterId> ZoneManager::AllocateCluster(ZoneType type) {
  if (free_zones_.size() < config_.zones_per_cluster) {
    return Status::OutOfSpace("zone pool exhausted");
  }
  Cluster cluster;
  cluster.type = type;
  cluster.zones.reserve(config_.zones_per_cluster);
  for (std::uint32_t i = 0; i < config_.zones_per_cluster; ++i) {
    cluster.zones.push_back(free_zones_.back());
    free_zones_.pop_back();
  }
  // The paper's channel-conflict mitigation: start the write rotation at a
  // random zone so simultaneous writers land on different channels.
  cluster.next_zone =
      static_cast<std::uint32_t>(rng_.Uniform(cluster.zones.size()));
  const ClusterId id = next_cluster_id_++;
  clusters_.emplace(id, std::move(cluster));
  return id;
}

sim::Task<Status> ZoneManager::ReleaseCluster(ClusterId id) {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    co_return Status::NotFound("no such cluster");
  }
  for (std::uint32_t zone : it->second.zones) {
    KVCSD_CO_RETURN_IF_ERROR(co_await ssd_->Reset(zone));
    free_zones_.push_back(zone);
  }
  clusters_.erase(it);
  co_return Status::Ok();
}

sim::Task<Result<std::uint64_t>> ZoneManager::Append(
    ClusterId id, std::span<const std::byte> data) {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    co_return Status::NotFound("no such cluster");
  }
  Cluster& cluster = it->second;
  if (data.size() > ssd_->zone_size()) {
    co_return Status::InvalidArgument("record larger than a zone");
  }
  // Try each zone once, starting at the rotation cursor.
  for (std::size_t attempt = 0; attempt < cluster.zones.size(); ++attempt) {
    const std::uint32_t zone = cluster.zones[cluster.next_zone];
    cluster.next_zone =
        static_cast<std::uint32_t>((cluster.next_zone + 1) %
                                   cluster.zones.size());
    if (ssd_->zone_state(zone) != storage::ZoneState::kFull &&
        ssd_->write_pointer(zone) + data.size() <= ssd_->zone_size()) {
      co_return co_await ssd_->Append(zone, data);
    }
  }
  co_return Status::OutOfSpace("cluster full");
}

ZoneType ZoneManager::cluster_type(ClusterId id) const {
  return clusters_.at(id).type;
}

const std::vector<std::uint32_t>& ZoneManager::cluster_zones(
    ClusterId id) const {
  return clusters_.at(id).zones;
}

std::uint64_t ZoneManager::ClusterBytes(ClusterId id) const {
  std::uint64_t total = 0;
  for (std::uint32_t zone : clusters_.at(id).zones) {
    total += ssd_->write_pointer(zone);
  }
  return total;
}

}  // namespace kvcsd::device
