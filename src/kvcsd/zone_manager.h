// Zone manager (paper §IV): allocates ZNS zones in groups called *zone
// clusters* and spreads writes across a cluster's zones starting at a
// per-cluster random offset, so concurrent keyspace writers do not pile
// onto the same SSD channels ("channel conflicts").
//
// Five cluster types exist, matching the five zone roles in Fig. 4:
// KLOG/VLOG for unsorted logs while a keyspace is WRITABLE, and
// PIDX/SIDX/SORTED_VALUES once it is COMPACTED (plus TEMP clusters holding
// intermediate merge-sort runs).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "sim/task.h"
#include "storage/zns.h"

namespace kvcsd::device {

enum class ZoneType : std::uint8_t {
  kKlog = 0,
  kVlog,
  kPidx,
  kSidx,
  kSortedValues,
  kTemp,  // intermediate merge-sort output, released after the sort
};

// Stable lowercase role name for metric keys and trace labels ("klog",
// "vlog", "pidx", "sidx", "sorted_values", "temp").
const char* ZoneTypeName(ZoneType type);

using ClusterId = std::uint64_t;

struct ZoneManagerConfig {
  std::uint32_t zones_per_cluster = 4;
  // Zones 0 and 1 hold the ping-pong keyspace-metadata snapshots (the
  // table alternates between them so a crash between Reset and the
  // rewrite can never lose both copies).
  std::uint32_t reserved_zones = 2;
};

class ZoneManager {
 public:
  ZoneManager(storage::ZnsSsd* ssd, ZoneManagerConfig config,
              std::uint64_t seed = 42);

  // Claims `zones_per_cluster` free zones. Fails with kOutOfSpace when the
  // free pool is exhausted.
  Result<ClusterId> AllocateCluster(ZoneType type);

  // Resets every zone of the cluster and returns them to the free pool.
  sim::Task<Status> ReleaseCluster(ClusterId id);

  // Appends a contiguous record to the cluster, rotating the target zone
  // per append starting at the cluster's random offset. Returns the device
  // byte address of the record. Fails with kOutOfSpace when no zone in the
  // cluster can hold the record (caller allocates a follow-up cluster).
  // `act` attributes NAND channel time per activity class.
  sim::Task<Result<std::uint64_t>> Append(
      ClusterId id, std::span<const std::byte> data,
      sim::Activity act = sim::Activity::kOther);

  // Reads back exactly `out.size()` bytes from device address `addr`.
  sim::Task<Status> Read(std::uint64_t addr, std::span<std::byte> out,
                         sim::Activity act = sim::Activity::kOther) {
    return ssd_->Read(addr, out, act);
  }

  ZoneType cluster_type(ClusterId id) const;
  const std::vector<std::uint32_t>& cluster_zones(ClusterId id) const;
  std::size_t free_zones() const { return free_zones_.size(); }
  std::size_t live_clusters() const { return clusters_.size(); }
  // Diagnostic: ids and types of every live cluster.
  std::vector<std::pair<ClusterId, ZoneType>> LiveClusters() const {
    std::vector<std::pair<ClusterId, ZoneType>> out;
    for (const auto& [id, c] : clusters_) out.emplace_back(id, c.type);
    return out;
  }
  storage::ZnsSsd* ssd() { return ssd_; }

  // Total payload bytes a cluster currently stores.
  std::uint64_t ClusterBytes(ClusterId id) const;

  // Serializes the allocation table (cluster ids, types, zones, rotation
  // cursors) for the metadata snapshot, and restores it on recovery. The
  // free pool is rebuilt from scratch: every non-reserved zone not owned
  // by a cluster, LIFO highest-first like the constructor.
  void SerializeTo(std::string* out) const;
  Status RestoreFrom(Slice* in);

 private:
  struct Cluster {
    ZoneType type;
    std::vector<std::uint32_t> zones;
    std::uint32_t next_zone;  // rotation cursor, randomly seeded
  };

  storage::ZnsSsd* ssd_;
  ZoneManagerConfig config_;
  Rng rng_;
  std::vector<std::uint32_t> free_zones_;  // LIFO free pool
  std::map<ClusterId, Cluster> clusters_;
  ClusterId next_cluster_id_ = 1;
};

}  // namespace kvcsd::device
