// Bump allocator backing the memtable skiplist (LevelDB-style): node and
// entry memory is freed wholesale when the memtable is dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace kvcsd::lsm {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(std::size_t bytes) {
    if (bytes <= remaining_) {
      char* out = ptr_;
      ptr_ += bytes;
      remaining_ -= bytes;
      return out;
    }
    return AllocateNewBlock(bytes);
  }

  // Total heap memory reserved by the arena.
  std::size_t MemoryUsage() const { return memory_usage_; }

 private:
  // 4 KB like LevelDB: a fresh arena must stay far below any realistic
  // memtable budget, or an empty memtable would immediately trip the
  // "memtable full" switch.
  static constexpr std::size_t kBlockSize = 4 * 1024;

  char* AllocateNewBlock(std::size_t bytes) {
    const std::size_t block_size = bytes > kBlockSize / 4 ? bytes : kBlockSize;
    blocks_.push_back(std::make_unique<char[]>(block_size));
    memory_usage_ += block_size;
    char* block = blocks_.back().get();
    if (block_size > bytes && block_size - bytes > remaining_) {
      // Keep the tail of this block as the active bump region.
      ptr_ = block + bytes;
      remaining_ = block_size - bytes;
    }
    return block;
  }

  char* ptr_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t memory_usage_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace kvcsd::lsm
