#include "lsm/block_cache.h"

namespace kvcsd::lsm {

const std::string* BlockCache::Lookup(std::uint64_t file_number,
                                      std::uint64_t offset) {
  auto it = map_.find(Key{file_number, offset});
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return &it->second->block;
}

void BlockCache::Insert(std::uint64_t file_number, std::uint64_t offset,
                        std::string block) {
  const Key key{file_number, offset};
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  charge_ += block.size();
  lru_.push_front(Entry{key, std::move(block)});
  map_[key] = lru_.begin();
  while (charge_ > capacity_ && !lru_.empty()) {
    charge_ -= lru_.back().block.size();
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void BlockCache::EvictFile(std::uint64_t file_number) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.first == file_number) {
      charge_ -= it->block.size();
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::Clear() {
  lru_.clear();
  map_.clear();
  charge_ = 0;
}

}  // namespace kvcsd::lsm
