// LRU block cache (the RocksDB "block cache"): caches decoded SSTable
// blocks above the filesystem, keyed by (file number, block offset). This
// is the client-side caching the paper credits for RocksDB's improving GET
// latency within a run (Fig. 10, Fig. 12).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

namespace kvcsd::lsm {

class BlockCache {
 public:
  explicit BlockCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  // Each Db instance sharing this cache must namespace its file numbers
  // (RocksDB's per-file "cache id"): two instances both have a file #7.
  std::uint64_t NewCacheId() { return next_cache_id_++; }

  // Returns the cached block or nullptr. The pointer stays valid until the
  // entry is evicted; callers use it within one operation only.
  const std::string* Lookup(std::uint64_t file_number, std::uint64_t offset);

  void Insert(std::uint64_t file_number, std::uint64_t offset,
              std::string block);

  void EvictFile(std::uint64_t file_number);
  void Clear();

  std::uint64_t charge() const { return charge_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (file, offset)

  struct Entry {
    Key key;
    std::string block;
  };

  std::uint64_t capacity_;
  std::uint64_t next_cache_id_ = 1;
  std::uint64_t charge_ = 0;
  std::list<Entry> lru_;  // front = MRU
  std::map<Key, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace kvcsd::lsm
