#include "lsm/db.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace kvcsd::lsm {

namespace {

constexpr std::uint32_t kManifestMagic = 0x4d414e49;  // "MANI"

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

// WAL payload: varint64 seq | u8 type | varint32 klen | key | value.
std::string EncodeWalEntry(SequenceNumber seq, ValueType type,
                           const Slice& key, const Slice& value) {
  std::string rec;
  rec.reserve(12 + key.size() + value.size());
  PutVarint64(&rec, seq);
  rec.push_back(static_cast<char>(type));
  PutVarint32(&rec, static_cast<std::uint32_t>(key.size()));
  rec.append(key.data(), key.size());
  rec.append(value.data(), value.size());
  return rec;
}

bool DecodeWalEntry(const Slice& rec, SequenceNumber* seq, ValueType* type,
                    Slice* key, Slice* value) {
  Slice in = rec;
  std::uint64_t s = 0;
  if (!GetVarint64(&in, &s) || in.empty()) return false;
  *seq = s;
  const auto type_byte = static_cast<std::uint8_t>(in[0]);
  if (type_byte > static_cast<std::uint8_t>(ValueType::kValue)) return false;
  *type = static_cast<ValueType>(type_byte);
  in.remove_prefix(1);
  std::uint32_t klen = 0;
  if (!GetVarint32(&in, &klen) || in.size() < klen) return false;
  *key = Slice(in.data(), klen);
  in.remove_prefix(klen);
  *value = in;
  return true;
}

}  // namespace

Db::Db(LsmEnv* env, BlockCache* block_cache, DbOptions options)
    : env_(env),
      block_cache_(block_cache),
      options_(std::move(options)),
      mem_(std::make_unique<MemTable>()),
      versions_(options_.level_base_size, options_.level_multiplier),
      manifest_lock_(env->sim, 1),
      work_signal_(env->sim),
      state_changed_(env->sim),
      workers_done_(env->sim) {
  cache_id_ = block_cache->NewCacheId();
}

std::string Db::SstFileName(std::uint64_t number) const {
  return options_.name + "/" + std::to_string(number) + ".sst";
}

std::string Db::WalFileName(std::uint64_t number) const {
  return options_.name + "/wal-" + std::to_string(number);
}

std::string Db::ManifestName() const { return options_.name + "/MANIFEST"; }

sim::Task<Result<std::unique_ptr<Db>>> Db::Open(LsmEnv* env,
                                                BlockCache* block_cache,
                                                DbOptions options) {
  std::unique_ptr<Db> db(new Db(env, block_cache, std::move(options)));
  Status s = co_await db->Recover();
  if (!s.ok()) co_return s;

  // Fresh WAL for the active memtable.
  db->mem_wal_number_ = db->versions_.NextFileNumber();
  if (db->options_.wal_enabled) {
    auto wal_file = env->fs->Create(db->WalFileName(db->mem_wal_number_));
    if (!wal_file.ok()) co_return wal_file.status();
    db->wal_ = std::make_unique<WalWriter>(env->fs, *wal_file);
  }

  db->workers_done_.Add(db->options_.background_workers);
  for (int i = 0; i < db->options_.background_workers; ++i) {
    env->sim->Spawn(db->BackgroundWorker(i));
  }
  co_return db;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

sim::Task<Status> Db::Recover() {
  // 1. Levels from the MANIFEST, if one exists.
  if (env_->fs->Exists(ManifestName())) {
    auto size = env_->fs->FileSize(ManifestName());
    if (!size.ok()) co_return size.status();
    auto handle = env_->fs->Open(ManifestName());
    if (!handle.ok()) co_return handle.status();
    std::string raw(*size, '\0');
    Status s = co_await env_->fs->Pread(
        *handle, 0,
        std::span<std::byte>(reinterpret_cast<std::byte*>(raw.data()),
                             raw.size()));
    if (!s.ok()) co_return s;

    Slice in(raw);
    std::uint32_t magic = 0;
    std::uint64_t last_seq = 0, next_file = 0, num_levels = 0;
    if (!GetFixed32(&in, &magic) || magic != kManifestMagic ||
        !GetVarint64(&in, &last_seq) || !GetVarint64(&in, &next_file) ||
        !GetVarint64(&in, &num_levels) ||
        num_levels > VersionSet::kNumLevels) {
      co_return Status::Corruption("bad manifest header");
    }
    seq_ = last_seq;
    for (std::uint64_t level = 0; level < num_levels; ++level) {
      std::uint64_t num_files = 0;
      if (!GetVarint64(&in, &num_files)) {
        co_return Status::Corruption("bad manifest level");
      }
      for (std::uint64_t i = 0; i < num_files; ++i) {
        auto meta = std::make_shared<FileMeta>();
        Slice smallest, largest;
        if (!GetVarint64(&in, &meta->number) ||
            !GetVarint64(&in, &meta->size) ||
            !GetVarint64(&in, &meta->entries) ||
            !GetLengthPrefixedSlice(&in, &smallest) ||
            !GetLengthPrefixedSlice(&in, &largest)) {
          co_return Status::Corruption("bad manifest file entry");
        }
        meta->smallest = smallest.ToString();
        meta->largest = largest.ToString();
        auto reader = co_await SstableReader::Open(
            env_, block_cache_, CacheKeyFor(meta->number),
            SstFileName(meta->number), options_.table);
        if (!reader.ok()) co_return reader.status();
        meta->reader = std::shared_ptr<SstableReader>(std::move(*reader));
        versions_.AddFile(static_cast<int>(level), std::move(meta));
      }
    }
    // NextFileNumber monotonicity across restarts.
    versions_.BumpFileNumberTo(next_file);
  }

  // 2. Replay any leftover WALs (unflushed memtables at crash/close time),
  // oldest first.
  std::vector<std::pair<std::uint64_t, std::string>> wals;
  const std::string prefix = options_.name + "/wal-";
  for (const std::string& name : env_->fs->ListFiles()) {
    if (name.rfind(prefix, 0) == 0) {
      wals.emplace_back(std::stoull(name.substr(prefix.size())), name);
    }
  }
  std::sort(wals.begin(), wals.end());
  for (const auto& [number, name] : wals) {
    KVCSD_CO_RETURN_IF_ERROR(co_await ReplayWal(name));
    KVCSD_CO_RETURN_IF_ERROR(co_await env_->fs->Delete(name));
  }
  co_return Status::Ok();
}

sim::Task<Status> Db::ReplayWal(const std::string& wal_name) {
  WalReader reader(env_->fs, wal_name);
  auto records = co_await reader.ReadAll();
  if (!records.ok()) co_return records.status();
  for (const std::string& rec : *records) {
    SequenceNumber seq = 0;
    ValueType type = ValueType::kValue;
    Slice key, value;
    if (!DecodeWalEntry(Slice(rec), &seq, &type, &key, &value)) {
      break;  // same stop-at-corruption contract as the record framing
    }
    seq_ = std::max(seq_, seq);
    mem_->Add(seq, type, key, value);
  }
  co_return Status::Ok();
}

sim::Task<Status> Db::WriteManifest() {
  // Flush and compaction can finish concurrently; the delete/create/append
  // sequence below must not interleave between writers.
  co_await manifest_lock_.Acquire();
  std::string out;
  PutFixed32(&out, kManifestMagic);
  PutVarint64(&out, seq_);
  PutVarint64(&out, versions_.PeekNextFileNumber());
  PutVarint64(&out, VersionSet::kNumLevels);
  for (int level = 0; level < VersionSet::kNumLevels; ++level) {
    const auto& files = versions_.files(level);
    PutVarint64(&out, files.size());
    for (const auto& f : files) {
      PutVarint64(&out, f->number);
      PutVarint64(&out, f->size);
      PutVarint64(&out, f->entries);
      PutLengthPrefixedSlice(&out, Slice(f->smallest));
      PutLengthPrefixedSlice(&out, Slice(f->largest));
    }
  }
  Status result = Status::Ok();
  if (env_->fs->Exists(ManifestName())) {
    result = co_await env_->fs->Delete(ManifestName());
  }
  if (result.ok()) {
    auto handle = env_->fs->Create(ManifestName());
    if (!handle.ok()) {
      result = handle.status();
    } else {
      result = co_await env_->fs->Append(*handle, AsBytes(out));
      if (result.ok()) result = co_await env_->fs->Sync(*handle);
    }
  }
  manifest_lock_.Release();
  co_return result;
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

sim::Task<Status> Db::MaybeStall() {
  bool stalled = false;
  const Tick start = env_->sim->Now();
  while (true) {
    const bool too_many_imm =
        static_cast<int>(imm_.size()) > options_.max_imm_memtables;
    const bool too_many_l0 =
        options_.compaction_mode == CompactionMode::kAuto &&
        NumLevelFiles(0) >= options_.l0_stall_trigger;
    if (!too_many_imm && !too_many_l0) break;
    stalled = true;
    state_changed_.Reset();
    co_await state_changed_.Wait();
  }
  if (stalled) {
    ++stats_.stalls;
    stats_.stall_time += env_->sim->Now() - start;
  }
  co_return Status::Ok();
}

sim::Task<Status> Db::SwitchMemtable() {
  imm_.push_back(ImmEntry{std::move(mem_), mem_wal_number_});
  mem_ = std::make_unique<MemTable>();
  mem_wal_number_ = versions_.NextFileNumber();
  if (options_.wal_enabled) {
    auto wal_file = env_->fs->Create(WalFileName(mem_wal_number_));
    if (!wal_file.ok()) co_return wal_file.status();
    wal_ = std::make_unique<WalWriter>(env_->fs, *wal_file);
  }
  ScheduleWork();
  co_return Status::Ok();
}

sim::Task<Status> Db::WriteEntry(ValueType type, const Slice& key,
                                 const Slice& value) {
  if (closed_) co_return Status::FailedPrecondition("db closed");
  if (!bg_error_.ok()) co_return bg_error_;
  KVCSD_CO_RETURN_IF_ERROR(co_await MaybeStall());

  const SequenceNumber seq = ++seq_;
  if (options_.wal_enabled) {
    const std::string rec = EncodeWalEntry(seq, type, key, value);
    KVCSD_CO_RETURN_IF_ERROR(co_await wal_->AddRecord(Slice(rec)));
    stats_.wal_bytes += rec.size();
    if (options_.sync_wal) {
      KVCSD_CO_RETURN_IF_ERROR(co_await wal_->Sync());
    }
  }

  co_await env_->cpu->Compute(env_->costs.memtable_insert);
  mem_->Add(seq, type, key, value);

  if (mem_->ApproximateMemoryUsage() >= options_.memtable_size) {
    KVCSD_CO_RETURN_IF_ERROR(co_await SwitchMemtable());
  }
  co_return Status::Ok();
}

sim::Task<Status> Db::Put(const Slice& key, const Slice& value) {
  ++stats_.puts;
  co_return co_await WriteEntry(ValueType::kValue, key, value);
}

sim::Task<Status> Db::Delete(const Slice& key) {
  ++stats_.deletes;
  co_return co_await WriteEntry(ValueType::kDeletion, key, Slice());
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

sim::Task<Status> Db::Get(const Slice& key, std::string* value) {
  if (closed_) co_return Status::FailedPrecondition("db closed");
  ++stats_.gets;
  const SequenceNumber snapshot = seq_;
  bool found = false;

  co_await env_->cpu->Compute(env_->costs.memtable_lookup);
  Status s = mem_->Get(key, snapshot, value, &found);
  if (found) co_return s;
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {  // newest first
    co_await env_->cpu->Compute(env_->costs.memtable_lookup);
    s = it->mem->Get(key, snapshot, value, &found);
    if (found) co_return s;
  }

  // L0: newest-first, ranges may overlap.
  for (const auto& f : versions_.files(0)) {
    if (key.compare(f->smallest_user()) < 0 ||
        key.compare(f->largest_user()) > 0) {
      continue;
    }
    s = co_await f->reader->Get(key, snapshot, value, &found);
    if (found) co_return s;
    if (!s.ok() && !s.IsNotFound()) co_return s;
  }

  // L1+: binary search the single candidate file per level.
  for (int level = 1; level < versions_.num_levels(); ++level) {
    const auto& files = versions_.files(level);
    auto it = std::lower_bound(
        files.begin(), files.end(), key,
        [](const std::shared_ptr<FileMeta>& f, const Slice& k) {
          return f->largest_user().compare(k) < 0;
        });
    if (it == files.end() || key.compare((*it)->smallest_user()) < 0) {
      continue;
    }
    s = co_await (*it)->reader->Get(key, snapshot, value, &found);
    if (found) co_return s;
    if (!s.ok() && !s.IsNotFound()) co_return s;
  }
  co_return Status::NotFound();
}

sim::Task<Status> Db::RangeScan(
    const Slice& lo, const Slice& hi, std::size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (closed_) co_return Status::FailedPrecondition("db closed");
  std::vector<std::unique_ptr<InternalIterator>> children;
  children.push_back(std::make_unique<MemTableIterator>(mem_.get()));
  for (const auto& imm : imm_) {
    children.push_back(std::make_unique<MemTableIterator>(imm.mem.get()));
  }
  for (int level = 0; level < versions_.num_levels(); ++level) {
    for (const auto& f : versions_.Overlapping(level, lo, hi)) {
      children.push_back(std::make_unique<SstableIterator>(f->reader.get()));
    }
  }
  MergingIterator merged(std::move(children));
  const std::string target =
      MakeInternalKey(lo, kMaxSequenceNumber, ValueType::kValue);
  KVCSD_CO_RETURN_IF_ERROR(co_await merged.Seek(Slice(target)));

  std::string last_user_key;
  bool have_last = false;
  while (merged.Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged.internal_key(), &parsed)) {
      co_return Status::Corruption("bad key during scan");
    }
    if (parsed.user_key.compare(hi) > 0) break;
    const bool shadowed =
        have_last && parsed.user_key == Slice(last_user_key);
    if (!shadowed) {
      last_user_key = parsed.user_key.ToString();
      have_last = true;
      if (parsed.type == ValueType::kValue) {
        co_await env_->cpu->Compute(env_->costs.kv_op_fixed);
        out->emplace_back(parsed.user_key.ToString(),
                          merged.value().ToString());
        if (limit != 0 && out->size() >= limit) break;
      }
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await merged.Next());
  }
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// Background work
// ---------------------------------------------------------------------------

void Db::ScheduleWork() { work_signal_.Push(1); }

void Db::SignalStateChange() { state_changed_.Set(); }

bool Db::HasCompactionWork() const {
  if (options_.compaction_mode != CompactionMode::kAuto) return false;
  if (manual_compaction_) return false;
  return versions_.PickCompactionLevel(options_.l0_compaction_trigger,
                                       levels_compacting_) >= 0;
}

bool Db::IsIdle() const {
  return imm_.empty() && !flush_running_ && levels_compacting_.empty() &&
         !manual_compaction_ && !HasCompactionWork();
}

sim::Task<void> Db::BackgroundWorker(int /*id*/) {
  for (;;) {
    co_await work_signal_.Pop();
    if (shutting_down_) break;
    for (;;) {
      if (HasFlushWork() && !flush_running_) {
        flush_running_ = true;
        Status s = co_await RunFlush();
        flush_running_ = false;
        if (!s.ok() && bg_error_.ok()) bg_error_ = s;
        SignalStateChange();
        continue;
      }
      if (HasCompactionWork()) {
        Status s = co_await RunCompaction();
        if (!s.ok() && bg_error_.ok()) bg_error_ = s;
        SignalStateChange();
        continue;
      }
      break;
    }
  }
  workers_done_.Done();
}

sim::Task<Result<std::shared_ptr<FileMeta>>> Db::OpenFileMeta(
    std::uint64_t number, const SstableBuilder& builder) {
  auto meta = std::make_shared<FileMeta>();
  meta->number = number;
  meta->size = builder.file_size();
  meta->entries = builder.num_entries();
  meta->smallest = builder.smallest_key();
  meta->largest = builder.largest_key();
  auto reader = co_await SstableReader::Open(env_, block_cache_,
                                             CacheKeyFor(number),
                                             SstFileName(number),
                                             options_.table);
  if (!reader.ok()) co_return reader.status();
  meta->reader = std::shared_ptr<SstableReader>(std::move(*reader));
  co_return meta;
}

sim::Task<Status> Db::RunFlush() {
  assert(!imm_.empty());
  // Oldest first, so L0 file numbers preserve shadowing order.
  MemTable* mem = imm_.front().mem.get();
  const std::uint64_t wal_number = imm_.front().wal_number;

  const std::uint64_t number = versions_.NextFileNumber();
  auto file = env_->fs->Create(SstFileName(number));
  if (!file.ok()) co_return file.status();
  SstableBuilder builder(env_, *file, options_.table);

  MemTable::Iterator it(mem);
  it.SeekToFirst();
  std::uint64_t cpu_batch = 0;
  while (it.Valid()) {
    const Slice key = it.internal_key();
    const Slice value = it.value();
    KVCSD_CO_RETURN_IF_ERROR(co_await builder.Add(key, value));
    cpu_batch += key.size() + value.size();
    if (cpu_batch >= KiB(256)) {
      co_await env_->cpu->ComputeBytes(cpu_batch,
                                       env_->costs.merge_bytes_per_sec);
      cpu_batch = 0;
    }
    it.Next();
  }
  if (cpu_batch > 0) {
    co_await env_->cpu->ComputeBytes(cpu_batch,
                                     env_->costs.merge_bytes_per_sec);
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await builder.Finish());

  auto meta = co_await OpenFileMeta(number, builder);
  if (!meta.ok()) co_return meta.status();
  versions_.AddFile(0, *meta);
  ++stats_.flushes;
  stats_.flush_bytes += builder.file_size();

  imm_.pop_front();
  if (options_.wal_enabled && env_->fs->Exists(WalFileName(wal_number))) {
    KVCSD_CO_RETURN_IF_ERROR(co_await env_->fs->Delete(WalFileName(wal_number)));
  }
  co_return co_await WriteManifest();
}

bool Db::RangeHasDeeperData(int below_level, const Slice& smallest_user,
                            const Slice& largest_user) const {
  for (int level = below_level + 1; level < versions_.num_levels(); ++level) {
    if (!versions_.Overlapping(level, smallest_user, largest_user).empty()) {
      return true;
    }
  }
  return false;
}

sim::Task<Status> Db::RunCompaction() {
  const int level = versions_.PickCompactionLevel(
      options_.l0_compaction_trigger, levels_compacting_);
  if (level < 0) co_return Status::Ok();
  levels_compacting_.insert(level);
  levels_compacting_.insert(level + 1);

  std::vector<CompactionInput> inputs;
  std::string smallest, largest;  // user-key range of the inputs
  auto widen = [&](const FileMeta& f) {
    if (smallest.empty() || f.smallest_user().compare(Slice(smallest)) < 0) {
      smallest = f.smallest_user().ToString();
    }
    if (largest.empty() || f.largest_user().compare(Slice(largest)) > 0) {
      largest = f.largest_user().ToString();
    }
  };

  if (level == 0) {
    for (const auto& f : versions_.files(0)) {
      inputs.push_back({0, f});
      widen(*f);
    }
  } else {
    // Pick the first file of the level (round-robin niceties matter little
    // for bulk-load workloads).
    const auto& files = versions_.files(level);
    assert(!files.empty());
    inputs.push_back({level, files.front()});
    widen(*files.front());
  }
  const int output_level = level + 1;
  for (const auto& f :
       versions_.Overlapping(output_level, Slice(smallest), Slice(largest))) {
    inputs.push_back({output_level, f});
  }

  const bool drop_deletions =
      !RangeHasDeeperData(output_level, Slice(smallest), Slice(largest));
  ++stats_.compactions;
  Status s = co_await MergeFiles(std::move(inputs), output_level,
                                 drop_deletions);
  levels_compacting_.erase(level);
  levels_compacting_.erase(output_level);
  co_return s;
}

sim::Task<Status> Db::MergeFiles(std::vector<CompactionInput> inputs,
                                 int output_level, bool drop_deletions) {
  std::vector<std::unique_ptr<InternalIterator>> children;
  children.reserve(inputs.size());
  for (const auto& in : inputs) {
    children.push_back(std::make_unique<SstableIterator>(
        in.file->reader.get(), /*fill_cache=*/false));
    stats_.compact_bytes_read += in.file->size;
  }
  MergingIterator merged(std::move(children));
  KVCSD_CO_RETURN_IF_ERROR(co_await merged.SeekToFirst());

  std::unique_ptr<SstableBuilder> builder;
  std::uint64_t out_number = 0;
  hostenv::FileHandle out_handle;
  std::vector<std::shared_ptr<FileMeta>> outputs;

  auto finish_output = [&]() -> sim::Task<Status> {
    if (!builder) co_return Status::Ok();
    KVCSD_CO_RETURN_IF_ERROR(co_await builder->Finish());
    auto meta = co_await OpenFileMeta(out_number, *builder);
    if (!meta.ok()) co_return meta.status();
    outputs.push_back(*meta);
    stats_.compact_bytes_written += builder->file_size();
    builder.reset();
    co_return Status::Ok();
  };

  std::string last_user_key;
  bool have_last = false;
  std::uint64_t cpu_batch = 0;
  while (merged.Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged.internal_key(), &parsed)) {
      co_return Status::Corruption("bad key during compaction");
    }
    const bool shadowed =
        have_last && parsed.user_key == Slice(last_user_key);
    cpu_batch += merged.internal_key().size() + merged.value().size();
    if (!shadowed) {
      last_user_key = parsed.user_key.ToString();
      have_last = true;
      const bool drop =
          drop_deletions && parsed.type == ValueType::kDeletion;
      if (!drop) {
        if (!builder) {
          out_number = versions_.NextFileNumber();
          auto file = env_->fs->Create(SstFileName(out_number));
          if (!file.ok()) co_return file.status();
          out_handle = *file;
          builder = std::make_unique<SstableBuilder>(env_, out_handle,
                                                     options_.table);
        }
        KVCSD_CO_RETURN_IF_ERROR(
            co_await builder->Add(merged.internal_key(), merged.value()));
        if (builder->file_size() >= options_.max_file_size) {
          KVCSD_CO_RETURN_IF_ERROR(co_await finish_output());
        }
      }
    }
    if (cpu_batch >= KiB(256)) {
      co_await env_->cpu->ComputeBytes(cpu_batch,
                                       env_->costs.merge_bytes_per_sec);
      cpu_batch = 0;
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await merged.Next());
  }
  if (cpu_batch > 0) {
    co_await env_->cpu->ComputeBytes(cpu_batch,
                                     env_->costs.merge_bytes_per_sec);
  }
  KVCSD_CO_RETURN_IF_ERROR(co_await finish_output());

  // Install outputs, then retire inputs.
  for (auto& meta : outputs) versions_.AddFile(output_level, meta);
  for (const auto& in : inputs) {
    versions_.RemoveFile(in.level, in.file->number);
    block_cache_->EvictFile(CacheKeyFor(in.file->number));
    KVCSD_CO_RETURN_IF_ERROR(
        co_await env_->fs->Delete(SstFileName(in.file->number)));
  }
  co_return co_await WriteManifest();
}

// ---------------------------------------------------------------------------
// Manual operations & lifecycle
// ---------------------------------------------------------------------------

sim::Task<Status> Db::Flush() {
  if (mem_->num_entries() > 0) {
    KVCSD_CO_RETURN_IF_ERROR(co_await SwitchMemtable());
  }
  while (!imm_.empty() || flush_running_) {
    state_changed_.Reset();
    co_await state_changed_.Wait();
  }
  co_return bg_error_;
}

sim::Task<Status> Db::CompactRange() {
  KVCSD_CO_RETURN_IF_ERROR(co_await Flush());
  // Claim exclusive compaction rights: no new background compactions
  // start, and all running ones must drain.
  manual_compaction_ = true;
  while (!levels_compacting_.empty()) {
    state_changed_.Reset();
    co_await state_changed_.Wait();
  }
  std::vector<CompactionInput> inputs;
  for (int level = 0; level < versions_.num_levels(); ++level) {
    for (const auto& f : versions_.files(level)) {
      inputs.push_back({level, f});
    }
  }
  Status s = Status::Ok();
  if (inputs.size() > 1 ||
      (inputs.size() == 1 && inputs[0].level != versions_.num_levels() - 1)) {
    ++stats_.compactions;
    s = co_await MergeFiles(std::move(inputs), versions_.num_levels() - 1,
                            /*drop_deletions=*/true);
  }
  manual_compaction_ = false;
  SignalStateChange();
  co_return s;
}

sim::Task<void> Db::WaitForIdle() {
  while (!IsIdle()) {
    state_changed_.Reset();
    co_await state_changed_.Wait();
  }
}

std::uint64_t Db::NumEntriesApprox() const {
  std::uint64_t n = versions_.TotalEntries() + mem_->num_entries();
  for (const auto& imm : imm_) n += imm.mem->num_entries();
  return n;
}

sim::Task<Status> Db::Close() {
  if (closed_) co_return Status::Ok();
  co_await WaitForIdle();
  shutting_down_ = true;
  for (int i = 0; i < options_.background_workers; ++i) {
    work_signal_.Push(0);
  }
  co_await workers_done_.Wait();
  closed_ = true;
  co_return bg_error_;
}

}  // namespace kvcsd::lsm
