// RocksLite: a from-scratch leveled LSM key-value store in the
// LevelDB/RocksDB tradition, used as the paper's software baseline.
//
// Architecture (all virtual-time, real data):
//   Put  -> WAL append -> memtable (skiplist). Full memtables rotate to an
//           immutable list and background workers flush them to L0 SSTs.
//   Auto compaction: L0 reaching `l0_compaction_trigger` files merges into
//           L1; any level over its size target merges one file down. Two
//           background workers per instance (RocksDB's default in the
//           paper's setup) share the host CPU pool with the foreground.
//   Write stalls: Put blocks while too many immutable memtables or L0
//           files are pending — the exact "write stall" failure mode the
//           paper cites [34].
//   Get  -> memtable -> immutables -> L0 newest-first -> L1.. binary
//           search, with bloom filters and the block cache en route.
//   Modes: kAuto (RocksDB default), kDeferred (compaction held until
//           CompactRange() — single-pass global merge), kNone.
//
// Durability: WAL with CRC records; MANIFEST rewritten on every version
// change; Open() recovers levels from MANIFEST and replays WALs.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/env.h"
#include "lsm/internal_key.h"
#include "lsm/iterator.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::lsm {

enum class CompactionMode {
  kAuto,      // background compaction as data is inserted (RocksDB default)
  kDeferred,  // compaction held until an explicit CompactRange()
  kNone,      // compaction disabled entirely
};

struct DbOptions {
  std::string name = "db";
  std::uint64_t memtable_size = MiB(16);
  int max_imm_memtables = 2;   // stall above this many pending flushes
  int l0_compaction_trigger = 4;
  int l0_stall_trigger = 12;
  std::uint64_t level_base_size = MiB(64);  // L1 target; L(n+1) = 10x L(n)
  double level_multiplier = 10.0;
  std::uint64_t max_file_size = MiB(16);
  SstableOptions table;
  bool wal_enabled = true;
  bool sync_wal = false;
  CompactionMode compaction_mode = CompactionMode::kAuto;
  int background_workers = 2;
};

// Cumulative I/O and behaviour counters for one DB instance (the numbers
// behind the paper's Fig. 7b / 10b "I/O statistics").
struct DbStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t flush_bytes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compact_bytes_read = 0;
  std::uint64_t compact_bytes_written = 0;
  std::uint64_t wal_bytes = 0;
  Tick stall_time = 0;
  std::uint64_t stalls = 0;
};

class Db {
 public:
  // Opens (and recovers, if MANIFEST/WAL files exist) a database. The
  // BlockCache may be shared across instances (RocksDB-style).
  static sim::Task<Result<std::unique_ptr<Db>>> Open(LsmEnv* env,
                                                     BlockCache* block_cache,
                                                     DbOptions options);
  ~Db() = default;
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  sim::Task<Status> Put(const Slice& key, const Slice& value);
  sim::Task<Status> Delete(const Slice& key);
  sim::Task<Status> Get(const Slice& key, std::string* value);

  // Collects live (key, value) pairs with lo <= key <= hi, up to `limit`
  // (0 = unlimited).
  sim::Task<Status> RangeScan(const Slice& lo, const Slice& hi,
                              std::size_t limit,
                              std::vector<std::pair<std::string,
                                                    std::string>>* out);

  // Flushes the active memtable (if non-empty) and waits for it to land.
  sim::Task<Status> Flush();

  // Manual full compaction: flush, then a single-pass merge of every file
  // into the bottom level. This is what "deferred compaction" mode runs
  // after load completes, and matches the paper's description of a single
  // end-of-job pass.
  sim::Task<Status> CompactRange();

  // Waits until no background work is pending or running.
  sim::Task<void> WaitForIdle();

  // Drains background work and stops the workers. Must be called before
  // destruction (the destructor cannot wait in virtual time).
  sim::Task<Status> Close();

  const DbStats& stats() const { return stats_; }
  const VersionSet& versions() const { return versions_; }
  int NumLevelFiles(int level) const {
    return static_cast<int>(versions_.files(level).size());
  }
  std::uint64_t NumEntriesApprox() const;

 private:
  Db(LsmEnv* env, BlockCache* block_cache, DbOptions options);

  std::string SstFileName(std::uint64_t number) const;
  std::string WalFileName(std::uint64_t number) const;
  std::string ManifestName() const;

  sim::Task<Status> Recover();
  sim::Task<Status> WriteManifest();
  sim::Task<Status> ReplayWal(const std::string& wal_name);

  sim::Task<Status> WriteEntry(ValueType type, const Slice& key,
                               const Slice& value);
  sim::Task<Status> MaybeStall();
  sim::Task<Status> SwitchMemtable();

  // --- background machinery ---
  void ScheduleWork();
  sim::Task<void> BackgroundWorker(int id);
  bool HasFlushWork() const { return !imm_.empty(); }
  bool HasCompactionWork() const;
  bool IsIdle() const;
  void SignalStateChange();

  sim::Task<Status> RunFlush();
  sim::Task<Status> RunCompaction();
  struct CompactionInput {
    int level;
    std::shared_ptr<FileMeta> file;
  };
  // Single-pass merge of `inputs` (plus shadowing resolution) into
  // `output_level`; drop tombstones iff `drop_deletions`.
  sim::Task<Status> MergeFiles(std::vector<CompactionInput> inputs,
                               int output_level, bool drop_deletions);
  bool RangeHasDeeperData(int below_level, const Slice& smallest_user,
                          const Slice& largest_user) const;
  sim::Task<Result<std::shared_ptr<FileMeta>>> OpenFileMeta(
      std::uint64_t number, const SstableBuilder& builder);

  // Globally-unique prefix for this instance's blocks in the shared
  // block cache (file numbers alone collide across instances).
  std::uint64_t CacheKeyFor(std::uint64_t file_number) const {
    return (cache_id_ << 24) | file_number;
  }
  std::uint64_t cache_id_ = 0;

  Status bg_error_;  // first background failure; surfaced on next write

  LsmEnv* env_;
  BlockCache* block_cache_;
  DbOptions options_;

  SequenceNumber seq_ = 0;
  std::unique_ptr<MemTable> mem_;
  std::uint64_t mem_wal_number_ = 0;
  std::unique_ptr<WalWriter> wal_;

  struct ImmEntry {
    std::unique_ptr<MemTable> mem;
    std::uint64_t wal_number;
  };
  std::deque<ImmEntry> imm_;

  VersionSet versions_;

  // Background coordination.
  sim::Semaphore manifest_lock_;  // flush & compaction both rewrite MANIFEST
  sim::Channel<int> work_signal_;
  sim::Event state_changed_;     // pulsed whenever bg state advances
  sim::WaitGroup workers_done_;
  bool flush_running_ = false;
  // Levels currently being compacted (input or output). Concurrent
  // compactions on disjoint level pairs are allowed, like RocksDB's
  // parallel background jobs; a manual CompactRange claims everything.
  std::set<int> levels_compacting_;
  bool manual_compaction_ = false;
  bool shutting_down_ = false;
  bool closed_ = false;

  DbStats stats_;
};

}  // namespace kvcsd::lsm
