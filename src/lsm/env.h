// Shared environment for all LSM components: where time is charged (host
// CPU pool), where bytes live (host filesystem), and where statistics go.
#pragma once

#include "hostenv/cost_model.h"
#include "hostenv/fs.h"
#include "sim/resources.h"
#include "sim/simulation.h"
#include "sim/stats.h"

namespace kvcsd::lsm {

struct LsmEnv {
  sim::Simulation* sim;
  hostenv::Fs* fs;
  sim::CpuPool* cpu;
  hostenv::CostModel costs;
  sim::Stats* stats;  // usually &sim->stats()
};

}  // namespace kvcsd::lsm
