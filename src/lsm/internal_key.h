// Internal key format: user_key ++ fixed64(sequence << 8 | type).
//
// Ordering: user key ascending, then sequence DESCENDING (newer first),
// then type descending — identical to LevelDB/RocksDB, so overwrites and
// tombstones resolve to the newest visible entry during merges and reads.
#pragma once

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"

namespace kvcsd::lsm {

using SequenceNumber = std::uint64_t;
constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

enum class ValueType : std::uint8_t {
  kDeletion = 0,
  kValue = 1,
};

inline std::uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | static_cast<std::uint8_t>(t);
}

inline void AppendInternalKey(std::string* dst, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, PackSequenceAndType(seq, t));
}

inline std::string MakeInternalKey(const Slice& user_key, SequenceNumber seq,
                                   ValueType t) {
  std::string key;
  key.reserve(user_key.size() + 8);
  AppendInternalKey(&key, user_key, seq, t);
  return key;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = ValueType::kValue;
};

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* out) {
  if (internal_key.size() < 8) return false;
  const std::uint64_t packed =
      DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  out->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  out->sequence = packed >> 8;
  const std::uint8_t type_byte = packed & 0xff;
  if (type_byte > static_cast<std::uint8_t>(ValueType::kValue)) return false;
  out->type = static_cast<ValueType>(type_byte);
  return true;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

// Three-way comparison of internal keys per the ordering above.
inline int CompareInternalKeys(const Slice& a, const Slice& b) {
  const int user = ExtractUserKey(a).compare(ExtractUserKey(b));
  if (user != 0) return user;
  const std::uint64_t pa = DecodeFixed64(a.data() + a.size() - 8);
  const std::uint64_t pb = DecodeFixed64(b.data() + b.size() - 8);
  // Higher (seq, type) sorts FIRST.
  if (pa > pb) return -1;
  if (pa < pb) return +1;
  return 0;
}

struct InternalKeyComparator {
  int operator()(const Slice& a, const Slice& b) const {
    return CompareInternalKeys(a, b);
  }
};

}  // namespace kvcsd::lsm
