// Internal iterator interface and the merging iterator used by range scans
// and compactions. Iteration is in internal-key order (user key asc, seq
// desc), so the first occurrence of a user key is its newest version.
#pragma once

#include <memory>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/internal_key.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "sim/task.h"

namespace kvcsd::lsm {

class InternalIterator {
 public:
  virtual ~InternalIterator() = default;
  virtual sim::Task<Status> SeekToFirst() = 0;
  virtual sim::Task<Status> Seek(const Slice& internal_target) = 0;
  virtual sim::Task<Status> Next() = 0;
  virtual bool Valid() const = 0;
  virtual Slice internal_key() const = 0;
  virtual Slice value() const = 0;
};

// Adapter over MemTable::Iterator (memtables never do I/O; the coroutine
// interface is for uniformity).
class MemTableIterator final : public InternalIterator {
 public:
  explicit MemTableIterator(const MemTable* mem) : iter_(mem) {}

  sim::Task<Status> SeekToFirst() override {
    iter_.SeekToFirst();
    co_return Status::Ok();
  }
  sim::Task<Status> Seek(const Slice& target) override {
    iter_.Seek(target);
    co_return Status::Ok();
  }
  sim::Task<Status> Next() override {
    iter_.Next();
    co_return Status::Ok();
  }
  bool Valid() const override { return iter_.Valid(); }
  Slice internal_key() const override { return iter_.internal_key(); }
  Slice value() const override { return iter_.value(); }

 private:
  MemTable::Iterator iter_;
};

// Adapter over SstableReader::Iterator.
class SstableIterator final : public InternalIterator {
 public:
  explicit SstableIterator(SstableReader* table, bool fill_cache = true)
      : iter_(table, fill_cache) {}

  sim::Task<Status> SeekToFirst() override {
    co_return co_await iter_.SeekToFirst();
  }
  sim::Task<Status> Seek(const Slice& target) override {
    co_return co_await iter_.Seek(target);
  }
  sim::Task<Status> Next() override { co_return co_await iter_.Next(); }
  bool Valid() const override { return iter_.Valid(); }
  Slice internal_key() const override { return iter_.internal_key(); }
  Slice value() const override { return iter_.value(); }

 private:
  SstableReader::Iterator iter_;
};

// K-way merge of child iterators in internal-key order. Ties (identical
// internal keys cannot happen; identical user keys differ by sequence) are
// resolved by the comparator alone.
class MergingIterator final : public InternalIterator {
 public:
  explicit MergingIterator(
      std::vector<std::unique_ptr<InternalIterator>> children)
      : children_(std::move(children)) {}

  sim::Task<Status> SeekToFirst() override {
    for (auto& child : children_) {
      Status s = co_await child->SeekToFirst();
      if (!s.ok()) co_return s;
    }
    FindSmallest();
    co_return Status::Ok();
  }

  sim::Task<Status> Seek(const Slice& target) override {
    for (auto& child : children_) {
      Status s = co_await child->Seek(target);
      if (!s.ok()) co_return s;
    }
    FindSmallest();
    co_return Status::Ok();
  }

  sim::Task<Status> Next() override {
    if (current_ == nullptr) {
      co_return Status::FailedPrecondition("merging iterator not valid");
    }
    Status s = co_await current_->Next();
    if (!s.ok()) co_return s;
    FindSmallest();
    co_return Status::Ok();
  }

  bool Valid() const override { return current_ != nullptr; }
  Slice internal_key() const override { return current_->internal_key(); }
  Slice value() const override { return current_->value(); }

 private:
  void FindSmallest() {
    current_ = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (current_ == nullptr ||
          CompareInternalKeys(child->internal_key(),
                              current_->internal_key()) < 0) {
        current_ = child.get();
      }
    }
  }

  std::vector<std::unique_ptr<InternalIterator>> children_;
  InternalIterator* current_ = nullptr;
};

}  // namespace kvcsd::lsm
