#include "lsm/memtable.h"

#include <cstring>

#include "common/coding.h"

namespace kvcsd::lsm {

namespace {

// Decodes the length-prefixed internal key of an entry.
Slice GetLengthPrefixed(const char* entry) {
  Slice in(entry, 5);  // varint32 is at most 5 bytes
  std::uint32_t len = 0;
  GetVarint32(&in, &len);
  return Slice(in.data(), len);
}

}  // namespace

int detail::MemEntryComparator::operator()(const char* a,
                                           const char* b) const {
  return CompareInternalKeys(GetLengthPrefixed(a), GetLengthPrefixed(b));
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  const std::size_t internal_key_size = user_key.size() + 8;
  const std::size_t encoded_len =
      static_cast<std::size_t>(VarintLength(internal_key_size)) +
      internal_key_size +
      static_cast<std::size_t>(VarintLength(value.size())) + value.size();

  std::string buf;
  buf.reserve(encoded_len);
  PutVarint32(&buf, static_cast<std::uint32_t>(internal_key_size));
  AppendInternalKey(&buf, user_key, seq, type);
  PutVarint32(&buf, static_cast<std::uint32_t>(value.size()));
  buf.append(value.data(), value.size());

  char* mem = arena_.Allocate(buf.size());
  std::memcpy(mem, buf.data(), buf.size());
  table_.Insert(mem);
}

Status MemTable::Get(const Slice& user_key, SequenceNumber snapshot,
                     std::string* value, bool* found) const {
  *found = false;
  SkipList<detail::MemEntryComparator>::Iterator iter(&table_);
  const std::string lookup =
      MakeInternalKey(user_key, snapshot, ValueType::kValue);
  std::string target;
  PutVarint32(&target, static_cast<std::uint32_t>(lookup.size()));
  target += lookup;
  iter.Seek(target.data());
  if (!iter.Valid()) return Status::NotFound();

  Slice entry_key = GetLengthPrefixed(iter.key());
  ParsedInternalKey parsed;
  if (!ParseInternalKey(entry_key, &parsed)) {
    return Status::Corruption("bad memtable entry");
  }
  if (parsed.user_key != user_key) return Status::NotFound();

  *found = true;
  if (parsed.type == ValueType::kDeletion) return Status::NotFound();

  // Value follows the internal key in the entry buffer.
  const char* value_start = entry_key.data() + entry_key.size();
  Slice in(value_start, 5);
  std::uint32_t value_len = 0;
  GetVarint32(&in, &value_len);
  value->assign(in.data(), value_len);
  return Status::Ok();
}

void MemTable::Iterator::Seek(const Slice& internal_key) {
  seek_scratch_.clear();
  PutVarint32(&seek_scratch_,
              static_cast<std::uint32_t>(internal_key.size()));
  seek_scratch_.append(internal_key.data(), internal_key.size());
  iter_.Seek(seek_scratch_.data());
}

Slice MemTable::Iterator::internal_key() const {
  return GetLengthPrefixed(iter_.key());
}

Slice MemTable::Iterator::value() const {
  Slice ikey = GetLengthPrefixed(iter_.key());
  const char* value_start = ikey.data() + ikey.size();
  Slice in(value_start, 5);
  std::uint32_t value_len = 0;
  GetVarint32(&in, &value_len);
  return Slice(in.data(), value_len);
}

}  // namespace kvcsd::lsm
