// In-memory write buffer: a skiplist of length-prefixed entries, exactly
// the LevelDB memtable layout:
//
//   entry := varint32 internal_key_len | internal_key | varint32 val_len
//            | value
//
// Lookups resolve the newest entry <= the requested snapshot; tombstones
// surface as NotFound.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/arena.h"
#include "lsm/internal_key.h"
#include "lsm/skiplist.h"

namespace kvcsd::lsm {

namespace detail {
// Compares two arena entries by their length-prefixed internal keys.
struct MemEntryComparator {
  int operator()(const char* a, const char* b) const;
};
}  // namespace detail

class MemTable {
 public:
  MemTable() : table_(detail::MemEntryComparator{}, &arena_) {}
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  // kOk with *value filled, kNotFound if a tombstone hides the key, or
  // kNotFound with found=false if the key is absent entirely. `found`
  // distinguishes "this memtable has an authoritative answer" from "keep
  // looking in older tables".
  Status Get(const Slice& user_key, SequenceNumber snapshot,
             std::string* value, bool* found) const;

  std::size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  std::size_t num_entries() const { return table_.size(); }

  // Iterates entries in internal-key order (user key asc, seq desc).
  class Iterator {
   public:
    explicit Iterator(const MemTable* mem) : iter_(&mem->table_) {}
    bool Valid() const { return iter_.Valid(); }
    void SeekToFirst() { iter_.SeekToFirst(); }
    void Seek(const Slice& internal_key);
    void Next() { iter_.Next(); }
    Slice internal_key() const;
    Slice value() const;

   private:
    SkipList<detail::MemEntryComparator>::Iterator iter_;
    mutable std::string seek_scratch_;
  };

 private:
  friend class Iterator;

  Arena arena_;
  SkipList<detail::MemEntryComparator> table_;
};

}  // namespace kvcsd::lsm
