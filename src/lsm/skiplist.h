// Skiplist keyed by length-prefixed entries in an Arena, in the LevelDB
// memtable tradition. The simulation is single-threaded, so no atomics are
// needed; structure and proportions (12 levels, 1/4 branching) match the
// original so CPU-cost modelling of inserts/lookups is honest about depth.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/random.h"
#include "lsm/arena.h"

namespace kvcsd::lsm {

// Comparator: int operator()(const char* a, const char* b) three-way.
template <typename Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(nullptr, kMaxHeight)),
        rng_(0xdecafbadull) {
    for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Inserts key (no duplicates allowed: internal keys are unique by
  // construction since sequence numbers are unique).
  void Insert(const char* key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || compare_(key, x->key) != 0);

    const int node_height = RandomHeight();
    if (node_height > height_) {
      for (int i = height_; i < node_height; ++i) prev[i] = head_;
      height_ = node_height;
    }
    x = NewNode(key, node_height);
    for (int i = 0; i < node_height; ++i) {
      x->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, x);
    }
    ++size_;
  }

  bool Contains(const char* key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && compare_(key, x->key) == 0;
  }

  std::size_t size() const { return size_; }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const char* key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const char* target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    const char* key;
    Node* Next(int level) const { return next[level]; }
    void SetNext(int level, Node* node) { next[level] = node; }
    Node* next[1];  // over-allocated to the node's height
  };

  Node* NewNode(const char* key, int node_height) {
    char* mem = arena_->Allocate(sizeof(Node) +
                                 sizeof(Node*) * (node_height - 1));
    Node* node = new (mem) Node;
    node->key = key;
    return node;
  }

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && rng_.OneIn(kBranching)) ++h;
    return h;
  }

  // Returns first node >= key; fills prev[] when non-null.
  Node* FindGreaterOrEqual(const char* key, Node** prev) const {
    Node* x = head_;
    int level = height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator compare_;
  Arena* arena_;
  Node* head_;
  Rng rng_;
  int height_ = 1;
  std::size_t size_ = 0;
};

}  // namespace kvcsd::lsm
