#include "lsm/sstable.h"

#include <algorithm>

#include "common/coding.h"
#include "common/bloom.h"

namespace kvcsd::lsm {

namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

}  // namespace

SstableBuilder::SstableBuilder(LsmEnv* env, hostenv::FileHandle file,
                               const SstableOptions& options)
    : env_(env),
      file_(file),
      options_(options),
      bloom_(options.bloom_bits_per_key) {}

sim::Task<Status> SstableBuilder::FlushDataBlock() {
  if (data_block_.empty()) co_return Status::Ok();
  // Index entry: last internal key in the block + extent.
  PutVarint32(&index_block_, static_cast<std::uint32_t>(last_key_.size()));
  index_block_ += last_key_;
  PutFixed64(&index_block_, offset_);
  PutFixed64(&index_block_, data_block_.size());

  co_await env_->cpu->ComputeBytes(data_block_.size(),
                                   env_->costs.checksum_bytes_per_sec);
  Status s = co_await env_->fs->Append(file_, AsBytes(data_block_));
  if (!s.ok()) co_return s;
  offset_ += data_block_.size();
  data_block_.clear();
  co_return Status::Ok();
}

sim::Task<Status> SstableBuilder::Add(const Slice& internal_key,
                                      const Slice& value) {
  if (finished_) co_return Status::FailedPrecondition("builder finished");
  if (!last_key_.empty() &&
      CompareInternalKeys(internal_key, Slice(last_key_)) <= 0) {
    co_return Status::InvalidArgument("keys not in increasing order");
  }
  if (smallest_.empty()) smallest_ = internal_key.ToString();
  largest_ = internal_key.ToString();
  last_key_ = internal_key.ToString();

  bloom_.AddKey(ExtractUserKey(internal_key));
  PutVarint32(&data_block_, static_cast<std::uint32_t>(internal_key.size()));
  data_block_.append(internal_key.data(), internal_key.size());
  PutVarint32(&data_block_, static_cast<std::uint32_t>(value.size()));
  data_block_.append(value.data(), value.size());
  ++num_entries_;

  if (data_block_.size() >= options_.block_size) {
    co_return co_await FlushDataBlock();
  }
  co_return Status::Ok();
}

sim::Task<Status> SstableBuilder::Finish() {
  if (finished_) co_return Status::FailedPrecondition("already finished");
  finished_ = true;
  Status s = co_await FlushDataBlock();
  if (!s.ok()) co_return s;

  const std::uint64_t filter_offset = offset_;
  std::string filter = bloom_.Finish();
  s = co_await env_->fs->Append(file_, AsBytes(filter));
  if (!s.ok()) co_return s;
  offset_ += filter.size();

  const std::uint64_t index_offset = offset_;
  s = co_await env_->fs->Append(file_, AsBytes(index_block_));
  if (!s.ok()) co_return s;
  offset_ += index_block_.size();

  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index_block_.size());
  PutFixed64(&footer, filter_offset);
  PutFixed64(&footer, filter.size());
  PutFixed64(&footer, num_entries_);
  PutFixed32(&footer, kSstMagic);
  s = co_await env_->fs->Append(file_, AsBytes(footer));
  if (!s.ok()) co_return s;
  offset_ += footer.size();

  co_return co_await env_->fs->Sync(file_);
}

sim::Task<Result<std::unique_ptr<SstableReader>>> SstableReader::Open(
    LsmEnv* env, BlockCache* block_cache, std::uint64_t file_number,
    const std::string& file_name, const SstableOptions& options) {
  auto size = env->fs->FileSize(file_name);
  if (!size.ok()) co_return size.status();
  if (*size < kSstFooterSize) co_return Status::Corruption("table too small");
  auto handle = env->fs->Open(file_name);
  if (!handle.ok()) co_return handle.status();

  std::unique_ptr<SstableReader> reader(
      new SstableReader(env, block_cache, file_number, *handle));
  reader->options_ = options;
  reader->file_size_ = *size;

  std::string footer(kSstFooterSize, '\0');
  Status s = co_await env->fs->Pread(
      *handle, *size - kSstFooterSize,
      std::span<std::byte>(reinterpret_cast<std::byte*>(footer.data()),
                           footer.size()));
  if (!s.ok()) co_return s;

  Slice in(footer);
  std::uint64_t index_offset, index_size, filter_offset, filter_size;
  std::uint32_t magic;
  GetFixed64(&in, &index_offset);
  GetFixed64(&in, &index_size);
  GetFixed64(&in, &filter_offset);
  GetFixed64(&in, &filter_size);
  GetFixed64(&in, &reader->num_entries_);
  GetFixed32(&in, &magic);
  if (magic != kSstMagic) co_return Status::Corruption("bad table magic");
  if (index_offset + index_size > *size ||
      filter_offset + filter_size > *size) {
    co_return Status::Corruption("footer extents out of range");
  }

  reader->filter_.resize(filter_size);
  if (filter_size > 0) {
    s = co_await env->fs->Pread(
        *handle, filter_offset,
        std::span<std::byte>(
            reinterpret_cast<std::byte*>(reader->filter_.data()),
            filter_size));
    if (!s.ok()) co_return s;
  }

  std::string index_raw(index_size, '\0');
  if (index_size > 0) {
    s = co_await env->fs->Pread(
        *handle, index_offset,
        std::span<std::byte>(reinterpret_cast<std::byte*>(index_raw.data()),
                             index_size));
    if (!s.ok()) co_return s;
  }
  Slice idx(index_raw);
  while (!idx.empty()) {
    IndexEntry e;
    e.index_file_offset =
        index_offset + (index_raw.size() - idx.size());
    std::uint32_t klen = 0;
    if (!GetVarint32(&idx, &klen) || idx.size() < klen + 16) {
      co_return Status::Corruption("bad index entry");
    }
    e.last_key.assign(idx.data(), klen);
    idx.remove_prefix(klen);
    GetFixed64(&idx, &e.offset);
    GetFixed64(&idx, &e.size);
    reader->index_.push_back(std::move(e));
  }
  co_return reader;
}

std::size_t SstableReader::FindBlock(const Slice& target) const {
  // First block whose last key >= target holds the candidate.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), target,
      [](const IndexEntry& e, const Slice& t) {
        return CompareInternalKeys(Slice(e.last_key), t) < 0;
      });
  return static_cast<std::size_t>(it - index_.begin());
}

sim::Task<Result<std::string>> SstableReader::ReadBlock(std::uint64_t offset,
                                                        std::uint64_t size,
                                                        bool fill_cache) {
  if (!fill_cache) {
    // Compaction-style bulk read: skips the block cache entirely and
    // bypasses the page cache (RocksDB fadvises compaction inputs away),
    // so this traffic always reaches the device.
    std::string direct(size, '\0');
    Status s = co_await env_->fs->PreadDirect(
        file_, offset,
        std::span<std::byte>(reinterpret_cast<std::byte*>(direct.data()),
                             size));
    if (!s.ok()) co_return s;
    co_return direct;
  }
  if (const std::string* cached = block_cache_->Lookup(file_number_, offset);
      cached != nullptr) {
    // Block cache hit: no filesystem traffic, trivial CPU.
    co_await env_->cpu->Compute(env_->costs.syscall_overhead);
    co_return *cached;
  }
  std::string block(size, '\0');
  Status s = co_await env_->fs->Pread(
      file_, offset,
      std::span<std::byte>(reinterpret_cast<std::byte*>(block.data()),
                           size));
  if (!s.ok()) co_return s;
  block_cache_->Insert(file_number_, offset, block);
  co_return block;
}

sim::Task<Status> SstableReader::Get(const Slice& user_key,
                                     SequenceNumber snapshot,
                                     std::string* value, bool* found) {
  *found = false;
  co_await env_->cpu->Compute(env_->costs.bloom_check);
  if (!BloomFilterMayContain(Slice(filter_), user_key)) {
    co_return Status::NotFound();
  }

  const std::string target =
      MakeInternalKey(user_key, snapshot, ValueType::kValue);
  const std::size_t pos = FindBlock(Slice(target));
  if (pos >= index_.size()) co_return Status::NotFound();

  if (!options_.pin_index_blocks) {
    // Fetch the 4 KB index page covering this entry through the block
    // cache (the contents are already parsed in memory; this charges the
    // I/O and cache behaviour RocksDB's unpinned index blocks have).
    const std::uint64_t page =
        index_[pos].index_file_offset / options_.block_size *
        options_.block_size;
    const std::uint64_t page_len =
        std::min<std::uint64_t>(options_.block_size, file_size_ - page);
    auto index_page = co_await ReadBlock(page, page_len);
    if (!index_page.ok()) co_return index_page.status();
  }
  auto block = co_await ReadBlock(index_[pos].offset, index_[pos].size);
  if (!block.ok()) co_return block.status();
  co_await env_->cpu->Compute(env_->costs.block_search);

  // Entries are variable-length: scan for the first entry >= target, then
  // check user-key equality and visibility.
  Slice in(*block);
  while (!in.empty()) {
    std::uint32_t klen = 0;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      co_return Status::Corruption("bad data block");
    }
    Slice ikey(in.data(), klen);
    in.remove_prefix(klen);
    std::uint32_t vlen = 0;
    if (!GetVarint32(&in, &vlen) || in.size() < vlen) {
      co_return Status::Corruption("bad data block");
    }
    Slice val(in.data(), vlen);
    in.remove_prefix(vlen);

    if (CompareInternalKeys(ikey, Slice(target)) >= 0) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(ikey, &parsed)) {
        co_return Status::Corruption("bad internal key");
      }
      if (parsed.user_key != user_key) co_return Status::NotFound();
      *found = true;
      if (parsed.type == ValueType::kDeletion) co_return Status::NotFound();
      value->assign(val.data(), val.size());
      co_return Status::Ok();
    }
  }
  co_return Status::NotFound();
}

// ---- Iterator ----

sim::Task<Status> SstableReader::Iterator::LoadBlock(std::size_t index_pos) {
  valid_ = false;
  block_index_ = index_pos;
  block_.clear();
  entry_offset_ = 0;
  if (index_pos >= table_->index_.size()) co_return Status::Ok();  // end
  auto block = co_await table_->ReadBlock(table_->index_[index_pos].offset,
                                          table_->index_[index_pos].size,
                                          fill_cache_);
  if (!block.ok()) co_return block.status();
  block_ = std::move(*block);
  co_return Status::Ok();
}

bool SstableReader::Iterator::ParseCurrentEntry() {
  if (entry_offset_ >= block_.size()) return false;
  Slice in(block_.data() + entry_offset_, block_.size() - entry_offset_);
  std::uint32_t klen = 0;
  if (!GetVarint32(&in, &klen) || in.size() < klen) return false;
  key_.assign(in.data(), klen);
  in.remove_prefix(klen);
  std::uint32_t vlen = 0;
  if (!GetVarint32(&in, &vlen) || in.size() < vlen) return false;
  value_.assign(in.data(), vlen);
  in.remove_prefix(vlen);
  entry_offset_ = block_.size() - in.size();
  valid_ = true;
  return true;
}

sim::Task<Status> SstableReader::Iterator::SeekToFirst() {
  Status s = co_await LoadBlock(0);
  if (!s.ok()) co_return s;
  if (block_index_ == 0 && !block_.empty()) ParseCurrentEntry();
  co_return Status::Ok();
}

sim::Task<Status> SstableReader::Iterator::Seek(const Slice& target) {
  const std::size_t pos = table_->FindBlock(target);
  Status s = co_await LoadBlock(pos);
  if (!s.ok()) co_return s;
  if (pos >= table_->index_.size()) co_return Status::Ok();  // end
  // Advance within the block to the first entry >= target.
  while (ParseCurrentEntry()) {
    if (CompareInternalKeys(Slice(key_), target) >= 0) co_return Status::Ok();
    valid_ = false;
  }
  // Target is greater than everything in this block (can happen only if it
  // is greater than the block's last key, i.e. pos was the end).
  co_return Status::Ok();
}

sim::Task<Status> SstableReader::Iterator::Next() {
  if (!valid_) co_return Status::FailedPrecondition("iterator not valid");
  valid_ = false;
  if (ParseCurrentEntry()) co_return Status::Ok();
  // Block exhausted: move to the next one.
  Status s = co_await LoadBlock(block_index_ + 1);
  if (!s.ok()) co_return s;
  if (block_index_ < table_->index_.size() && !block_.empty()) {
    ParseCurrentEntry();
  }
  co_return Status::Ok();
}

}  // namespace kvcsd::lsm
