// Sorted String Table: the on-disk unit of the software LSM.
//
// Layout:
//   data block*      entries: varint32 klen | internal_key | varint32 vlen
//                    | value; blocks cut at ~block_size bytes
//   filter block     bloom filter over user keys
//   index block      per data block: varint32 klen | last_internal_key |
//                    fixed64 offset | fixed64 size
//   footer (44 B)    fixed64 ×5 (index off/size, filter off/size, entry
//                    count) | fixed32 magic
//
// Readers check the magic and use the index to binary-search blocks; the
// bloom filter short-circuits point lookups for absent keys.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/block_cache.h"
#include "common/bloom.h"
#include "lsm/env.h"
#include "lsm/internal_key.h"
#include "sim/task.h"

namespace kvcsd::lsm {

constexpr std::uint32_t kSstMagic = 0x4b564353;  // "KVCS"
constexpr std::size_t kSstFooterSize = 5 * 8 + 4;

struct SstableOptions {
  std::uint32_t block_size = 4096;
  int bloom_bits_per_key = 10;
  // RocksDB's default does NOT pin index blocks in memory: point lookups
  // read the covering index page through the block cache first. Pinning
  // models `cache_index_and_filter_blocks=false` with pinned L0.
  bool pin_index_blocks = false;
};

class SstableBuilder {
 public:
  SstableBuilder(LsmEnv* env, hostenv::FileHandle file,
                 const SstableOptions& options);

  // Keys must arrive in strictly increasing internal-key order.
  sim::Task<Status> Add(const Slice& internal_key, const Slice& value);

  // Writes filter + index + footer and syncs the file.
  sim::Task<Status> Finish();

  std::uint64_t num_entries() const { return num_entries_; }
  std::uint64_t file_size() const { return offset_; }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }

 private:
  sim::Task<Status> FlushDataBlock();

  LsmEnv* env_;
  hostenv::FileHandle file_;
  SstableOptions options_;

  std::string data_block_;
  std::string index_block_;
  BloomFilterBuilder bloom_;
  std::string last_key_;
  std::string smallest_;
  std::string largest_;
  std::uint64_t offset_ = 0;
  std::uint64_t num_entries_ = 0;
  bool finished_ = false;
};

// Immutable reader over a finished SSTable file.
class SstableReader {
 public:
  // Reads footer + index + filter into memory (RocksDB keeps these pinned
  // via the table cache; we model the same by loading them at open).
  static sim::Task<Result<std::unique_ptr<SstableReader>>> Open(
      LsmEnv* env, BlockCache* block_cache, std::uint64_t file_number,
      const std::string& file_name, const SstableOptions& options = {});

  // Point lookup at a snapshot. `found` semantics match MemTable::Get.
  sim::Task<Status> Get(const Slice& user_key, SequenceNumber snapshot,
                        std::string* value, bool* found);

  std::uint64_t num_entries() const { return num_entries_; }
  std::uint64_t file_number() const { return file_number_; }

  // Streaming iteration in internal-key order. Compaction passes
  // fill_cache=false so bulk reads do not evict the hot read-path blocks
  // (RocksDB does the same).
  class Iterator {
   public:
    explicit Iterator(SstableReader* table, bool fill_cache = true)
        : table_(table), fill_cache_(fill_cache) {}

    // Positions at the first entry with internal key >= target (or end).
    sim::Task<Status> Seek(const Slice& target);
    sim::Task<Status> SeekToFirst();
    sim::Task<Status> Next();

    bool Valid() const { return valid_; }
    Slice internal_key() const { return Slice(key_); }
    Slice value() const { return Slice(value_); }

   private:
    sim::Task<Status> LoadBlock(std::size_t index_pos);
    bool ParseCurrentEntry();

    SstableReader* table_;
    bool fill_cache_ = true;
    bool valid_ = false;
    std::size_t block_index_ = 0;  // position in the index
    std::string block_;            // current data block contents
    std::size_t entry_offset_ = 0; // cursor within block_
    std::string key_;
    std::string value_;
  };

 private:
  struct IndexEntry {
    std::string last_key;  // internal key of the block's last entry
    std::uint64_t offset;
    std::uint64_t size;
    std::uint64_t index_file_offset;  // where this entry sits in the file
  };

  SstableReader(LsmEnv* env, BlockCache* block_cache,
                std::uint64_t file_number, hostenv::FileHandle file)
      : env_(env),
        block_cache_(block_cache),
        file_number_(file_number),
        file_(file) {}

  // Fetches a data block through the block cache; fill_cache=false skips
  // cache insertion (but still uses hits).
  sim::Task<Result<std::string>> ReadBlock(std::uint64_t offset,
                                           std::uint64_t size,
                                           bool fill_cache = true);

  // Index position of the first block whose last key >= target.
  std::size_t FindBlock(const Slice& internal_key_target) const;

  LsmEnv* env_;
  BlockCache* block_cache_;
  std::uint64_t file_number_;
  hostenv::FileHandle file_;
  SstableOptions options_;
  std::uint64_t file_size_ = 0;
  std::vector<IndexEntry> index_;
  std::string filter_;
  std::uint64_t num_entries_ = 0;
};

}  // namespace kvcsd::lsm
