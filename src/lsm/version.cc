#include "lsm/version.h"

#include <algorithm>
#include <cassert>

namespace kvcsd::lsm {

void VersionSet::AddFile(int level, std::shared_ptr<FileMeta> file) {
  auto& files = levels_[static_cast<std::size_t>(level)];
  files.push_back(std::move(file));
  if (level == 0) {
    // Newest (highest number) first: shadowing order for reads.
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) {
                return a->number > b->number;
              });
  } else {
    std::sort(files.begin(), files.end(), [](const auto& a, const auto& b) {
      return Slice(a->smallest).compare(Slice(b->smallest)) < 0;
    });
  }
}

void VersionSet::RemoveFile(int level, std::uint64_t number) {
  auto& files = levels_[static_cast<std::size_t>(level)];
  std::erase_if(files,
                [number](const auto& f) { return f->number == number; });
}

std::uint64_t VersionSet::LevelBytes(int level) const {
  std::uint64_t total = 0;
  for (const auto& f : levels_[static_cast<std::size_t>(level)]) {
    total += f->size;
  }
  return total;
}

std::uint64_t VersionSet::TotalBytes() const {
  std::uint64_t total = 0;
  for (int level = 0; level < kNumLevels; ++level) {
    total += LevelBytes(level);
  }
  return total;
}

std::uint64_t VersionSet::TotalEntries() const {
  std::uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) total += f->entries;
  }
  return total;
}

int VersionSet::NumFiles() const {
  int n = 0;
  for (const auto& level : levels_) n += static_cast<int>(level.size());
  return n;
}

std::vector<std::shared_ptr<FileMeta>> VersionSet::Overlapping(
    int level, const Slice& smallest_user, const Slice& largest_user) const {
  std::vector<std::shared_ptr<FileMeta>> out;
  for (const auto& f : levels_[static_cast<std::size_t>(level)]) {
    if (f->largest_user().compare(smallest_user) < 0) continue;
    if (f->smallest_user().compare(largest_user) > 0) continue;
    out.push_back(f);
  }
  return out;
}

std::uint64_t VersionSet::TargetBytes(int level) const {
  if (level == 0) return 0;
  double target = static_cast<double>(level_base_size_);
  for (int l = 1; l < level; ++l) target *= level_multiplier_;
  return static_cast<std::uint64_t>(target);
}

int VersionSet::PickCompactionLevel(int l0_trigger,
                                    const std::set<int>& busy) const {
  auto eligible = [&busy](int level) {
    return !busy.contains(level) && !busy.contains(level + 1);
  };
  if (static_cast<int>(levels_[0].size()) >= l0_trigger && eligible(0)) {
    return 0;
  }
  for (int level = 1; level < kNumLevels - 1; ++level) {
    if (level_base_size_ == 0) break;
    if (LevelBytes(level) > TargetBytes(level) && eligible(level)) {
      return level;
    }
  }
  return -1;
}

std::vector<std::shared_ptr<FileMeta>> VersionSet::AllFiles() const {
  std::vector<std::shared_ptr<FileMeta>> out;
  for (const auto& level : levels_) {
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

}  // namespace kvcsd::lsm
