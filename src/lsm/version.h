// Level metadata for the leveled LSM: which SSTable files live in which
// level, their key ranges, and compaction picking.
//
// Invariants:
//  * L0 files may overlap; they are ordered newest-first (descending file
//    number) because newer files shadow older ones.
//  * L1+ files are non-overlapping and sorted by smallest key.
#pragma once

#include <cstdint>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "lsm/internal_key.h"
#include "lsm/sstable.h"

namespace kvcsd::lsm {

struct FileMeta {
  std::uint64_t number = 0;
  std::uint64_t size = 0;
  std::uint64_t entries = 0;
  std::string smallest;  // internal keys
  std::string largest;
  // Pinned open reader (models the RocksDB table cache holding hot
  // tables open; index + filter stay in memory).
  std::shared_ptr<SstableReader> reader;

  Slice smallest_user() const { return ExtractUserKey(Slice(smallest)); }
  Slice largest_user() const { return ExtractUserKey(Slice(largest)); }
};

class VersionSet {
 public:
  static constexpr int kNumLevels = 7;

  explicit VersionSet(std::uint64_t level_base_size = 0,
                      double level_multiplier = 10.0)
      : level_base_size_(level_base_size),
        level_multiplier_(level_multiplier),
        levels_(kNumLevels) {}

  std::uint64_t NextFileNumber() { return next_file_number_++; }
  std::uint64_t PeekNextFileNumber() const { return next_file_number_; }
  void BumpFileNumberTo(std::uint64_t at_least) {
    if (next_file_number_ < at_least) next_file_number_ = at_least;
  }

  void AddFile(int level, std::shared_ptr<FileMeta> file);
  void RemoveFile(int level, std::uint64_t number);

  const std::vector<std::shared_ptr<FileMeta>>& files(int level) const {
    return levels_[static_cast<std::size_t>(level)];
  }
  int num_levels() const { return kNumLevels; }
  std::uint64_t LevelBytes(int level) const;
  std::uint64_t TotalBytes() const;
  std::uint64_t TotalEntries() const;
  int NumFiles() const;

  // Files in `level` whose user-key range intersects [smallest, largest].
  std::vector<std::shared_ptr<FileMeta>> Overlapping(
      int level, const Slice& smallest_user, const Slice& largest_user) const;

  // Target size for a level under the leveled policy (0 for L0: L0 is
  // triggered by file count instead).
  std::uint64_t TargetBytes(int level) const;

  // Lowest level needing compaction under the leveled policy, or -1.
  // A level is only eligible when neither it nor its output level appears
  // in `busy` (levels already being compacted by another worker).
  int PickCompactionLevel(int l0_trigger,
                          const std::set<int>& busy = {}) const;

  // All files of all levels, newest-shadowing-first (L0 newest..oldest,
  // then L1..L6): the global merge order for a full manual compaction.
  std::vector<std::shared_ptr<FileMeta>> AllFiles() const;

 private:
  std::uint64_t level_base_size_;
  double level_multiplier_;
  std::vector<std::vector<std::shared_ptr<FileMeta>>> levels_;
  std::uint64_t next_file_number_ = 1;
};

}  // namespace kvcsd::lsm
