#include "lsm/wal.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvcsd::lsm {

sim::Task<Status> WalWriter::AddRecord(const Slice& payload) {
  std::string record;
  record.reserve(4 + 10 + payload.size());
  PutFixed32(&record,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutVarint64(&record, payload.size());
  record.append(payload.data(), payload.size());
  bytes_written_ += record.size();
  co_return co_await fs_->Append(
      file_, std::span<const std::byte>(
                 reinterpret_cast<const std::byte*>(record.data()),
                 record.size()));
}

sim::Task<Status> WalWriter::Sync() { co_return co_await fs_->Sync(file_); }

sim::Task<Result<std::vector<std::string>>> WalReader::ReadAll() {
  auto size = fs_->FileSize(name_);
  if (!size.ok()) co_return size.status();
  auto handle = fs_->Open(name_);
  if (!handle.ok()) co_return handle.status();

  std::string buf(*size, '\0');
  if (*size > 0) {
    Status s = co_await fs_->Pread(
        *handle, 0,
        std::span<std::byte>(reinterpret_cast<std::byte*>(buf.data()),
                             buf.size()));
    if (!s.ok()) co_return s;
  }

  std::vector<std::string> records;
  Slice in(buf);
  while (!in.empty()) {
    std::uint32_t masked_crc = 0;
    std::uint64_t len = 0;
    if (!GetFixed32(&in, &masked_crc) || !GetVarint64(&in, &len) ||
        in.size() < len) {
      break;  // truncated tail: an in-flight write at crash time
    }
    Slice payload(in.data(), len);
    in.remove_prefix(len);
    if (crc32c::Unmask(masked_crc) !=
        crc32c::Value(payload.data(), payload.size())) {
      break;  // corrupt tail
    }
    records.emplace_back(payload.ToString());
  }
  co_return records;
}

}  // namespace kvcsd::lsm
