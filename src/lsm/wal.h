// Write-ahead log: checksummed, length-prefixed records appended to a
// filesystem file. Record format:
//
//   record := fixed32 masked_crc32c(payload) | varint64 len | payload
//
// The reader stops at the first corrupt or truncated record, returning the
// records recovered so far — the standard crash-recovery contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "hostenv/fs.h"
#include "sim/task.h"

namespace kvcsd::lsm {

class WalWriter {
 public:
  WalWriter(hostenv::Fs* fs, hostenv::FileHandle file)
      : fs_(fs), file_(file) {}

  sim::Task<Status> AddRecord(const Slice& payload);
  sim::Task<Status> Sync();

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  hostenv::Fs* fs_;
  hostenv::FileHandle file_;
  std::uint64_t bytes_written_ = 0;
};

class WalReader {
 public:
  WalReader(hostenv::Fs* fs, std::string name)
      : fs_(fs), name_(std::move(name)) {}

  // Reads every intact record in order. A trailing corrupt/partial record
  // ends recovery silently (it was an in-flight write at crash time).
  sim::Task<Result<std::vector<std::string>>> ReadAll();

 private:
  hostenv::Fs* fs_;
  std::string name_;
};

}  // namespace kvcsd::lsm
