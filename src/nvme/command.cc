#include "nvme/command.h"

namespace kvcsd::nvme {

namespace {
constexpr std::uint64_t kSqeSize = 64;  // NVMe submission queue entry
constexpr std::uint64_t kCqeSize = 16;  // NVMe completion queue entry
}  // namespace

std::uint64_t CommandWireSize(const Command& cmd) {
  std::uint64_t size = kSqeSize + cmd.name.size() + cmd.key.size() +
                       cmd.key_end.size() + cmd.value.size() +
                       cmd.sidx.name.size();
  for (const auto& spec : cmd.sidx_list) {
    size += spec.name.size() + 9;  // offset/length/type descriptor
  }
  return size;
}

std::uint64_t CompletionWireSize(const Completion& cpl) {
  std::uint64_t size = kCqeSize + cpl.value.size();
  for (const auto& [key, value] : cpl.results) {
    size += key.size() + value.size();
  }
  return size;
}

}  // namespace kvcsd::nvme
