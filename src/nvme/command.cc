#include "nvme/command.h"

namespace kvcsd::nvme {

namespace {
constexpr std::uint64_t kSqeSize = 64;  // NVMe submission queue entry
constexpr std::uint64_t kCqeSize = 16;  // NVMe completion queue entry
}  // namespace

std::uint64_t CommandWireSize(const Command& cmd) {
  std::uint64_t size = kSqeSize + cmd.name.size() + cmd.key.size() +
                       cmd.key_end.size() + cmd.value.size() +
                       cmd.sidx.name.size();
  for (const auto& spec : cmd.sidx_list) {
    size += spec.name.size() + 9;  // offset/length/type descriptor
  }
  // Pushdown descriptors ride in the submission payload.
  if (cmd.pred.op != PredicateOp::kNone) {
    size += 10 + cmd.pred.operand.size();  // op/offset/length/type + bound
  }
  if (cmd.proj.enabled) size += 9;         // flag/offset/length
  if (cmd.agg.func != AggregateFunc::kNone) {
    size += 10;                            // func/offset/length/type
  }
  if (cmd.opcode == Opcode::kGetLogPage) size += 4;  // log page id
  return size;
}

std::uint64_t CompletionWireSize(const Completion& cpl) {
  std::uint64_t size = kCqeSize + cpl.value.size();
  for (const auto& [key, value] : cpl.results) {
    size += key.size() + value.size();
  }
  // Aggregate scalars: rows + min/max/sum. This fixed cost is the whole
  // point of kKvAggregate — the result never grows with the row count.
  if (cpl.has_agg) size += 32;
  return size;
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kKvStore:
      return "kv_store";
    case Opcode::kKvRetrieve:
      return "kv_retrieve";
    case Opcode::kKvDelete:
      return "kv_delete";
    case Opcode::kKeyspaceCreate:
      return "keyspace_create";
    case Opcode::kKeyspaceOpen:
      return "keyspace_open";
    case Opcode::kKeyspaceDrop:
      return "keyspace_drop";
    case Opcode::kBulkStore:
      return "bulk_store";
    case Opcode::kCompact:
      return "compact";
    case Opcode::kCompactWait:
      return "compact_wait";
    case Opcode::kSecondaryBuild:
      return "secondary_build";
    case Opcode::kQueryPrimaryRange:
      return "query_primary_range";
    case Opcode::kQuerySecondaryRange:
      return "query_secondary_range";
    case Opcode::kKeyspaceStat:
      return "keyspace_stat";
    case Opcode::kSync:
      return "sync";
    case Opcode::kCompactWithIndexes:
      return "compact_with_indexes";
    case Opcode::kKvSelect:
      return "kv_select";
    case Opcode::kKvAggregate:
      return "kv_aggregate";
    case Opcode::kGetLogPage:
      return "get_log_page";
  }
  return "unknown";
}

sim::Activity ActivityForOpcode(Opcode op) {
  switch (op) {
    case Opcode::kKvRetrieve:
    case Opcode::kQueryPrimaryRange:
    case Opcode::kQuerySecondaryRange:
    case Opcode::kKeyspaceStat:
      return sim::Activity::kHostRead;
    case Opcode::kKvStore:
    case Opcode::kKvDelete:
    case Opcode::kBulkStore:
    case Opcode::kSync:
      return sim::Activity::kHostWrite;
    case Opcode::kCompact:
    case Opcode::kCompactWait:
    case Opcode::kSecondaryBuild:
    case Opcode::kCompactWithIndexes:
      return sim::Activity::kCompact;
    case Opcode::kKvSelect:
    case Opcode::kKvAggregate:
      return sim::Activity::kPushdown;
    default:
      return sim::Activity::kOther;
  }
}

const char* OpcodeLatencyClass(Opcode op) {
  switch (op) {
    case Opcode::kKvStore:
    case Opcode::kBulkStore:
      return "put";
    case Opcode::kKvDelete:
      return "delete";
    case Opcode::kKvRetrieve:
      return "get";
    case Opcode::kQueryPrimaryRange:
      return "range";
    case Opcode::kQuerySecondaryRange:
      return "secondary_range";
    case Opcode::kKvSelect:
      return "select";
    case Opcode::kKvAggregate:
      return "aggregate";
    default:
      return nullptr;
  }
}

}  // namespace kvcsd::nvme
