// NVMe-flavoured command set for KV-CSD.
//
// The paper (§III "NVMe") says KV-CSD speaks the standard NVMe key-value
// command set between the client library and the device, extended with
// vendor commands for what the standard lacks: keyspace management,
// compaction, and secondary-index operations. We encode commands as typed
// structs carried over the queue pair; payloads (keys/values/results) ride
// along as byte strings whose transfer cost is charged to the PCIe link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/activity.h"

namespace kvcsd::nvme {

enum class Opcode : std::uint8_t {
  // NVMe KV command set.
  kKvStore = 0x01,
  kKvRetrieve = 0x02,
  kKvDelete = 0x10,
  // KV-CSD vendor extensions.
  kKeyspaceCreate = 0xc0,
  kKeyspaceOpen = 0xc1,
  kKeyspaceDrop = 0xc2,
  kBulkStore = 0xc3,
  kCompact = 0xc4,          // trigger deferred compaction (async)
  kCompactWait = 0xc5,      // block until compaction completes
  kSecondaryBuild = 0xc6,   // build a secondary index (blocks until done)
  kQueryPrimaryRange = 0xc7,
  kQuerySecondaryRange = 0xc8,
  kKeyspaceStat = 0xc9,
  // Persists the keyspace's DRAM write buffer to its log zones (the
  // paper's explicit "fsync", §VI).
  kSync = 0xca,
  // Future-work extension the paper sketches in §V: compaction and
  // secondary-index construction fused into one pass, trading SoC DRAM
  // for not re-reading the keyspace during index builds.
  kCompactWithIndexes = 0xcb,
  // Query pushdown (paper Fig. 12 / AirMettle's KV_SEND_SELECT family):
  // the device filters on a value predicate, trims each match to a
  // projection byte range, and only the survivors cross PCIe.
  kKvSelect = 0xcc,
  // Pushdown aggregation: count/min/max/sum over a fixed-offset value
  // attribute computed device-side; the completion carries scalars only.
  kKvAggregate = 0xcd,
  // Admin introspection (NVMe Get Log Page): the device returns a
  // versioned, flat-encoded log page (nvme/log_page.h) in the completion
  // payload. Not keyspace-scoped; `log_page` selects the page.
  kGetLogPage = 0xce,
};

// Log page identifiers for kGetLogPage.
enum class LogPageId : std::uint32_t {
  kHealth = 1,  // gauges: zones per role, delta bytes, inflight, utilization
  kStats = 2,   // device.* counters + latency-histogram digests
};

// Secondary index key type (paper §V: applications give a byte range of
// the value and its type).
enum class SecondaryKeyType : std::uint8_t {
  kU32 = 0,
  kU64 = 1,
  kI32 = 2,
  kF32 = 3,
  kF64 = 4,
  kBytes = 5,  // raw memcmp-ordered bytes
};

struct SecondaryIndexSpec {
  std::string name;
  std::uint32_t value_offset = 0;
  std::uint32_t value_length = 0;
  SecondaryKeyType type = SecondaryKeyType::kBytes;
};

// --- query pushdown descriptors (kKvSelect / kKvAggregate) ---

enum class PredicateOp : std::uint8_t {
  kNone = 0,  // no predicate: every scanned record matches
  kEq = 1,
  kNe = 2,
  kLt = 3,
  kLe = 4,
  kGt = 5,
  kGe = 6,
};

// Device-side filter over raw value bytes, independent of any secondary
// index: the device extracts value[value_offset, value_offset+value_length),
// order-encodes it per `type` (nvme/skey.h), and memcmp-compares against
// `operand` (which the client ships ALREADY order-encoded, exactly like
// secondary-range bounds). A value too short to hold the attribute never
// matches — short records are counted, not errors.
struct ValuePredicate {
  PredicateOp op = PredicateOp::kNone;
  std::uint32_t value_offset = 0;
  std::uint32_t value_length = 0;
  SecondaryKeyType type = SecondaryKeyType::kBytes;
  std::string operand;  // order-encoded comparison bound
};

// Per-record byte-range projection: each matching value is trimmed to
// [offset, offset+length) before it crosses PCIe. A range reaching past
// the value end is clamped to the bytes that exist (possibly empty).
struct Projection {
  bool enabled = false;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;  // 0 with enabled=true projects zero bytes
};

enum class AggregateFunc : std::uint8_t {
  kNone = 0,
  kCount = 1,
  kMin = 2,
  kMax = 3,
  kSum = 4,
};

// Aggregate over a fixed-offset typed attribute of every matching value.
// kCount ignores the attribute fields; min/max/sum need a numeric type
// (kBytes is rejected) and skip values too short to hold the attribute.
struct AggregateSpec {
  AggregateFunc func = AggregateFunc::kNone;
  std::uint32_t value_offset = 0;
  std::uint32_t value_length = 0;
  SecondaryKeyType type = SecondaryKeyType::kF32;
};

// Scalars posted back for kKvAggregate. `rows` counts predicate matches;
// min/max/sum cover only the matches that held the attribute (`valid`
// false means zero such rows, leaving min/max/sum meaningless). The sum
// accumulates in scan order — primary-key order for primary-driven scans,
// (skey, pkey) order for index-driven ones — so a host model iterating
// the same order reproduces it bit-identically.
struct AggregateResult {
  std::uint64_t rows = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  bool valid = false;
};

// One command submission. Exactly the fields the opcode needs are set.
struct Command {
  Opcode opcode = Opcode::kKvStore;
  // Causal command id (Simulation::AllocateCmdId), stamped by the client
  // and threaded through dispatch and any device work the command spawns;
  // flow events and per-stage latency attribution key on it. 0 = untracked
  // (commands built directly by tests).
  std::uint64_t cmd_id = 0;
  // Host tick at which the client started preparing this command; the
  // submit-stage histogram measures from here to SQ enqueue. 0 = unset
  // (the queue falls back to its own entry tick).
  Tick submit_tick = 0;
  std::uint64_t keyspace_id = 0;   // resolved keyspace handle
  std::string name;                // keyspace name (create/open/drop)
  std::string key;                 // single-key ops / range start
  std::string key_end;             // range end (inclusive)
  std::string value;               // store payload / bulk-put frame
  std::uint32_t limit = 0;         // max results for range queries (0 = all)
  SecondaryIndexSpec sidx;         // secondary build / query target
  // kCompactWithIndexes: every index to build during the fused pass.
  std::vector<SecondaryIndexSpec> sidx_list;
  // kKvSelect / kKvAggregate. When sidx.name is set, the scan is driven
  // by that secondary index over [key, key_end] encoded bounds; otherwise
  // it is a primary range scan. `pred` filters beyond the scan bounds,
  // `proj` trims select results, `agg` picks the aggregate.
  ValuePredicate pred;
  Projection proj;
  AggregateSpec agg;
  // kGetLogPage: which page to return.
  LogPageId log_page = LogPageId::kHealth;
};

// Completion posted back to the host.
struct Completion {
  Status status;
  std::uint64_t keyspace_id = 0;              // create/open result
  std::string value;                          // retrieve result
  std::vector<std::pair<std::string, std::string>> results;  // range query
  std::uint64_t count = 0;                    // stat result / rows matched
  // kKvAggregate scalars; has_agg gates their PCIe wire accounting.
  bool has_agg = false;
  AggregateResult agg;
};

// Payload size used for PCIe transfer accounting on the submission side.
std::uint64_t CommandWireSize(const Command& cmd);
// And on the completion side.
std::uint64_t CompletionWireSize(const Completion& cpl);

// Stable lowercase mnemonic for metric names and trace-event labels
// ("kv_store", "query_primary_range", ...); "unknown" for out-of-set values.
const char* OpcodeName(Opcode op);

// Latency-class bucket for the per-command histograms the paper's plots
// need: "put" (store/bulk store), "get" (retrieve), "range" (primary
// range), "secondary_range" (secondary range), "select" (pushdown select),
// "aggregate" (pushdown aggregate); nullptr for everything else
// (management commands are counted but not latency-classed).
const char* OpcodeLatencyClass(Opcode op);

// Activity class for per-resource utilization attribution: host reads,
// host writes, compaction triggers, pushdown scans; management commands
// (keyspace create/open/drop, log-page pulls) land in kOther.
sim::Activity ActivityForOpcode(Opcode op);

}  // namespace kvcsd::nvme
