#include "nvme/log_page.h"

#include <bit>

#include "common/coding.h"
#include "common/slice.h"

namespace kvcsd::nvme {

namespace {

void PutName(std::string* dst, const std::string& name) {
  PutLengthPrefixedSlice(dst, Slice(name));
}

bool GetName(Slice* input, std::string* name) {
  Slice s;
  if (!GetLengthPrefixedSlice(input, &s)) return false;
  name->assign(s.data(), s.size());
  return true;
}

// Shared page header: version, page id, tick.
void PutHeader(std::string* dst, LogPageId id, Tick tick) {
  PutFixed16(dst, kLogPageVersion);
  PutFixed32(dst, static_cast<std::uint32_t>(id));
  PutFixed64(dst, tick);
}

}  // namespace

std::uint64_t HealthPage::Gauge(const std::string& name) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) return value;
  }
  return 0;
}

std::uint64_t StatsPage::Counter(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

std::string EncodeHealthPage(const HealthPage& page) {
  std::string out;
  PutHeader(&out, LogPageId::kHealth, page.tick);
  PutFixed32(&out, static_cast<std::uint32_t>(page.gauges.size()));
  for (const auto& [name, value] : page.gauges) {
    PutName(&out, name);
    PutFixed64(&out, value);
  }
  return out;
}

std::string EncodeStatsPage(const StatsPage& page) {
  std::string out;
  PutHeader(&out, LogPageId::kStats, page.tick);
  PutFixed32(&out, static_cast<std::uint32_t>(page.counters.size()));
  for (const auto& [name, value] : page.counters) {
    PutName(&out, name);
    PutFixed64(&out, value);
  }
  PutFixed32(&out, static_cast<std::uint32_t>(page.histograms.size()));
  for (const auto& [name, digest] : page.histograms) {
    PutName(&out, name);
    PutFixed64(&out, digest.count);
    PutFixed64(&out, digest.sum);
    PutFixed64(&out, digest.min);
    PutFixed64(&out, digest.max);
    // bit_cast keeps digests bit-identical through the wire: the decoded
    // double is the same object representation, not a re-rounded value.
    PutFixed64(&out, std::bit_cast<std::uint64_t>(digest.mean));
    PutFixed64(&out, std::bit_cast<std::uint64_t>(digest.p50));
    PutFixed64(&out, std::bit_cast<std::uint64_t>(digest.p95));
    PutFixed64(&out, std::bit_cast<std::uint64_t>(digest.p99));
    PutFixed64(&out, std::bit_cast<std::uint64_t>(digest.p999));
  }
  return out;
}

namespace {

bool DecodeHeader(Slice* input, LogPageId want, std::uint16_t* version,
                  Tick* tick) {
  if (input->size() < 2) return false;
  *version = DecodeFixed16(input->data());
  input->remove_prefix(2);
  std::uint32_t id = 0;
  std::uint64_t t = 0;
  if (!GetFixed32(input, &id) || !GetFixed64(input, &t)) return false;
  if (*version != kLogPageVersion) return false;
  if (id != static_cast<std::uint32_t>(want)) return false;
  *tick = t;
  return true;
}

}  // namespace

bool DecodeHealthPage(const std::string& payload, HealthPage* page) {
  Slice input(payload);
  if (!DecodeHeader(&input, LogPageId::kHealth, &page->version, &page->tick)) {
    return false;
  }
  std::uint32_t count = 0;
  if (!GetFixed32(&input, &count)) return false;
  page->gauges.clear();
  page->gauges.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!GetName(&input, &name) || !GetFixed64(&input, &value)) return false;
    page->gauges.emplace_back(std::move(name), value);
  }
  return input.empty();
}

bool DecodeStatsPage(const std::string& payload, StatsPage* page) {
  Slice input(payload);
  if (!DecodeHeader(&input, LogPageId::kStats, &page->version, &page->tick)) {
    return false;
  }
  std::uint32_t count = 0;
  if (!GetFixed32(&input, &count)) return false;
  page->counters.clear();
  page->counters.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!GetName(&input, &name) || !GetFixed64(&input, &value)) return false;
    page->counters.emplace_back(std::move(name), value);
  }
  if (!GetFixed32(&input, &count)) return false;
  page->histograms.clear();
  page->histograms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    sim::HistogramSummary digest;
    std::uint64_t mean = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    if (!GetName(&input, &name) || !GetFixed64(&input, &digest.count) ||
        !GetFixed64(&input, &digest.sum) || !GetFixed64(&input, &digest.min) ||
        !GetFixed64(&input, &digest.max) || !GetFixed64(&input, &mean) ||
        !GetFixed64(&input, &p50) || !GetFixed64(&input, &p95) ||
        !GetFixed64(&input, &p99) || !GetFixed64(&input, &p999)) {
      return false;
    }
    digest.mean = std::bit_cast<double>(mean);
    digest.p50 = std::bit_cast<double>(p50);
    digest.p95 = std::bit_cast<double>(p95);
    digest.p99 = std::bit_cast<double>(p99);
    digest.p999 = std::bit_cast<double>(p999);
    page->histograms.emplace_back(std::move(name), digest);
  }
  return input.empty();
}

}  // namespace kvcsd::nvme
