// Wire codec for kGetLogPage payloads.
//
// Real CSDs expose device health and statistics as NVMe log pages the host
// pulls over the admin queue; this module is our equivalent. Pages are
// versioned, flat, little-endian encodings (common/coding.h) shared by the
// device-side encoder (src/kvcsd/device.cc) and the host-side decoder
// (src/client/client.cc), so both ends agree on the format by construction.
//
// Two pages exist today:
//   kHealth — point-in-time gauges: free zones, per-role zone budgets,
//     delta-index bytes, inflight/compaction state, and the windowed
//     per-activity utilization section (util.<resource>.<class>).
//   kStats  — the device.* counter registry plus latency-histogram digests.
//     Doubles in a digest are encoded via bit_cast so a decoded digest is
//     bit-identical to the device-side HistogramSummary, not merely close.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "nvme/command.h"
#include "sim/stats.h"

namespace kvcsd::nvme {

// Bump when an encoding changes shape; decoders reject other versions.
inline constexpr std::uint16_t kLogPageVersion = 1;

// kHealth: named u64 gauges, same shape as a telemetry sample.
struct HealthPage {
  std::uint16_t version = kLogPageVersion;
  Tick tick = 0;  // device tick at which the page was assembled
  std::vector<std::pair<std::string, std::uint64_t>> gauges;

  // Convenience lookup; returns 0 for an absent gauge.
  std::uint64_t Gauge(const std::string& name) const;
};

// kStats: counters and histogram digests snapshotted at one tick.
struct StatsPage {
  std::uint16_t version = kLogPageVersion;
  Tick tick = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, sim::HistogramSummary>> histograms;

  std::uint64_t Counter(const std::string& name) const;
};

std::string EncodeHealthPage(const HealthPage& page);
std::string EncodeStatsPage(const StatsPage& page);

// Decoders return false on truncated input, a version mismatch, or a page
// id that does not match the struct being decoded.
bool DecodeHealthPage(const std::string& payload, HealthPage* page);
bool DecodeStatsPage(const std::string& payload, StatsPage* page);

}  // namespace kvcsd::nvme
