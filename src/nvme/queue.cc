#include "nvme/queue.h"

#include <algorithm>

#include "sim/simulation.h"
#include "sim/tracer.h"

namespace kvcsd::nvme {

QueuePair::QueuePair(sim::Simulation* sim, const PcieConfig& config)
    : sim_(sim),
      owned_h2d_(std::make_unique<sim::BandwidthResource>(
          sim, "pcie.h2d", config.bytes_per_sec, config.request_latency)),
      owned_d2h_(std::make_unique<sim::BandwidthResource>(
          sim, "pcie.d2h", config.bytes_per_sec, config.completion_latency)),
      host_to_device_(owned_h2d_.get()),
      device_to_host_(owned_d2h_.get()),
      submissions_(sim) {}

QueuePair::QueuePair(sim::Simulation* sim, QueueSet* set, std::uint32_t id,
                     sim::BandwidthResource* h2d, sim::BandwidthResource* d2h,
                     std::uint32_t depth_cap)
    : sim_(sim),
      set_(set),
      id_(id),
      host_to_device_(h2d),
      device_to_host_(d2h),
      config_depth_cap_(depth_cap),
      submissions_(sim) {
  if (!set->config_.name_prefix.empty()) {
    trk_nvme_ = set->config_.name_prefix + trk_nvme_;
    trk_nvme_cq_ = set->config_.name_prefix + trk_nvme_cq_;
  }
  if (depth_cap > 0) {
    depth_slots_ = std::make_unique<sim::Semaphore>(sim, depth_cap);
  }
}

void QueuePair::Enqueue(Command command, std::shared_ptr<ReplyState> state) {
  Incoming incoming;
  incoming.cmd_id = command.cmd_id;
  incoming.opcode = command.opcode;
  incoming.queue_id = id_;
  incoming.enqueue_tick = sim_->Now();
  const Tick prepare_begin =
      command.submit_tick ? command.submit_tick : incoming.enqueue_tick;
  sim_->stats()
      .histogram("client.stage.submit_ns")
      .Record(incoming.enqueue_tick - prepare_begin);
  state->cmd_id = command.cmd_id;
  state->opcode = command.opcode;
  state->queue_id = id_;
  state->submit_begin = prepare_begin;
  incoming.command = std::move(command);
  incoming.reply = std::move(state);
  submissions_.Push(std::move(incoming));
  if (set_ != nullptr) set_->NotifyWork();
}

sim::Task<Completion> QueuePair::Submit(Command command) {
  if (depth_slots_) co_await depth_slots_->Acquire();
  ++submitted_;
  const Tick begin = sim_->Now();
  if (command.submit_tick == 0) command.submit_tick = begin;
  // Spans the whole host-visible round trip: submission DMA, device
  // service time, completion DMA.
  sim::TraceSpan span(sim_, trk_nvme_, OpcodeName(command.opcode));
  const std::uint64_t wire = CommandWireSize(command);
  if (command.cmd_id != 0) span.Arg("cmd_id", command.cmd_id);
  span.Arg("wire_bytes", wire);
  co_await host_to_device_->Transfer(wire, ActivityForOpcode(command.opcode));

  // NOTE: named + std::make_shared, never a prvalue temporary — see the
  // "GCC 12 pitfall" note in sim/task.h.
  auto state = std::make_shared<ReplyState>(sim_);
  std::shared_ptr<ReplyState> keep = state;
  Enqueue(std::move(command), std::move(state));
  co_await keep->done.Wait();
  co_return std::move(keep->completion);
}

sim::Task<std::shared_ptr<ReplyState>> QueuePair::SubmitAsync(Command command,
                                                              CqRing* ring) {
  if (depth_slots_) co_await depth_slots_->Acquire();
  ++submitted_;
  const Tick begin = sim_->Now();
  if (command.submit_tick == 0) command.submit_tick = begin;
  // Async spans cover the submission DMA only; the client-side reactor
  // records the full round trip when it reaps the completion.
  sim::TraceSpan span(sim_, trk_nvme_, OpcodeName(command.opcode));
  const std::uint64_t wire = CommandWireSize(command);
  if (command.cmd_id != 0) span.Arg("cmd_id", command.cmd_id);
  span.Arg("wire_bytes", wire);
  co_await host_to_device_->Transfer(wire, ActivityForOpcode(command.opcode));

  auto state = std::make_shared<ReplyState>(sim_);
  state->cq_ring = ring;
  std::shared_ptr<ReplyState> keep = state;
  Enqueue(std::move(command), std::move(state));
  co_return keep;
}

sim::Task<std::vector<std::shared_ptr<ReplyState>>> QueuePair::SubmitBatch(
    std::vector<Command> commands, CqRing* ring) {
  std::vector<std::shared_ptr<ReplyState>> states;
  states.reserve(commands.size());
  std::size_t next = 0;
  while (next < commands.size()) {
    // With a depth cap, chunk to at most `cap` commands per doorbell: a
    // chunk never waits on permits that only its own DMA could free, so
    // acquiring them (as earlier in-flight commands complete) is safe.
    std::size_t chunk = commands.size() - next;
    if (depth_slots_) {
      chunk = std::min<std::size_t>(chunk, config_depth_cap_);
      for (std::size_t i = 0; i < chunk; ++i) {
        co_await depth_slots_->Acquire();
      }
    }
    const Tick begin = sim_->Now();
    std::uint64_t wire = 0;
    for (std::size_t i = next; i < next + chunk; ++i) {
      if (commands[i].submit_tick == 0) commands[i].submit_tick = begin;
      wire += CommandWireSize(commands[i]);
    }
    submitted_ += chunk;
    sim::TraceSpan span(sim_, trk_nvme_, "batch_submit");
    span.Arg("count", static_cast<std::uint64_t>(chunk));
    span.Arg("wire_bytes", wire);
    // One doorbell for the whole chunk: a single link operation pays
    // `request_latency` once, then streams every command's bytes. Batches
    // are homogeneous in practice, so the first opcode classes the chunk.
    co_await host_to_device_->Transfer(
        wire, ActivityForOpcode(commands[next].opcode));
    for (std::size_t i = next; i < next + chunk; ++i) {
      auto state = std::make_shared<ReplyState>(sim_);
      state->cq_ring = ring;
      states.push_back(state);
      Enqueue(std::move(commands[i]), std::move(state));
    }
    next += chunk;
  }
  co_return states;
}

sim::Task<void> QueuePair::Complete(Incoming incoming, Completion completion) {
  ++completed_;
  const Tick begin = sim_->Now();
  const std::uint64_t wire = CompletionWireSize(completion);
  // Hand the payload to the submitter before suspending: the submitter
  // only wakes after the Set()/ring push below, but moving first keeps
  // the data's lifetime independent of this frame.
  std::shared_ptr<ReplyState> reply = std::move(incoming.reply);
  reply->completion = std::move(completion);
  co_await device_to_host_->Transfer(wire, ActivityForOpcode(incoming.opcode));
  const Tick end = sim_->Now();
  sim_->stats().histogram("client.stage.complete_ns").Record(end - begin);
  if (sim_->tracer().enabled() && incoming.cmd_id != 0) {
    sim_->tracer().CompleteSpan(
        sim_->tracer().Track(trk_nvme_cq_), "complete", begin, end,
        {{"cmd_id", std::to_string(incoming.cmd_id)},
         {"op", OpcodeName(incoming.opcode)},
         {"q", std::to_string(incoming.queue_id)}});
  }
  if (depth_slots_) depth_slots_->Release();
  reply->completed = true;
  if (reply->cq_ring != nullptr) {
    CqRing* ring = reply->cq_ring;
    ring->Push(std::move(reply));
  } else {
    reply->done.Set();
  }
}

QueueSet::QueueSet(sim::Simulation* sim, const QueueSetConfig& config)
    : sim_(sim),
      config_(config),
      host_to_device_(sim, config.name_prefix + "pcie.h2d",
                      config.pcie.bytes_per_sec, config.pcie.request_latency),
      device_to_host_(sim, config.name_prefix + "pcie.d2h",
                      config.pcie.bytes_per_sec,
                      config.pcie.completion_latency),
      h2d_meter_(sim, config.name_prefix + "pcie.h2d", 1.0),
      d2h_meter_(sim, config.name_prefix + "pcie.d2h", 1.0),
      work_(sim, 0) {
  host_to_device_.set_meter(&h2d_meter_);
  device_to_host_.set_meter(&d2h_meter_);
  const std::uint32_t n = std::max<std::uint32_t>(config.num_queues, 1);
  pairs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    pairs_.emplace_back(new QueuePair(sim, this, i, &host_to_device_,
                                      &device_to_host_,
                                      config.sq_depth_cap));
  }
  arb_credits_ = WeightOf(0);
}

sim::Task<QueuePair::Incoming> QueueSet::NextCommand() {
  // One token per queued command: only scan when work exists.
  co_await work_.Acquire();
  const std::uint32_t n = num_queues();
  if (config_.arbitration == Arbitration::kWeighted) {
    // Deficit-free WRR: spend the current queue's quantum while it has
    // work, then rotate. Terminates because the token guarantees at
    // least one pair is non-empty and every weight is >= 1.
    for (;;) {
      if (arb_credits_ > 0) {
        if (auto item = pairs_[arb_cursor_]->TryTake()) {
          --arb_credits_;
          co_return std::move(*item);
        }
      }
      arb_cursor_ = (arb_cursor_ + 1) % n;
      arb_credits_ = WeightOf(arb_cursor_);
    }
  }
  // Round-robin: take one command from the first non-empty queue at or
  // after the cursor, then advance past it.
  for (;;) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t q = (arb_cursor_ + i) % n;
      if (auto item = pairs_[q]->TryTake()) {
        arb_cursor_ = (q + 1) % n;
        co_return std::move(*item);
      }
    }
    assert(false && "work token without a queued command");
  }
}

std::size_t QueueSet::sq_depth() const {
  std::size_t total = 0;
  for (const auto& pair : pairs_) total += pair->sq_depth();
  return total;
}

std::uint64_t QueueSet::inflight() const {
  std::uint64_t total = 0;
  for (const auto& pair : pairs_) total += pair->inflight();
  return total;
}

std::uint64_t QueueSet::submitted() const {
  std::uint64_t total = 0;
  for (const auto& pair : pairs_) total += pair->submitted();
  return total;
}

std::uint64_t QueueSet::completed() const {
  std::uint64_t total = 0;
  for (const auto& pair : pairs_) total += pair->completed();
  return total;
}

}  // namespace kvcsd::nvme
