// NVMe-style submission/completion queues over a PCIe link model.
//
// The host side calls Submit() (synchronous round trip) or SubmitAsync()/
// SubmitBatch() (decoupled submit/complete) and data movement in both
// directions is charged to the PCIe link (DMA); the device side services
// commands by popping the submission channels — exactly the client-library
// / device-server split the paper describes (§VI: "the translation and
// sending of the requests take place in userspace and completely bypass
// the host OS kernel").
//
// Two layers:
//
//   QueuePair — one SQ/CQ pair. Standalone (owns its own PCIe link) for
//       unit tests, or a member of a QueueSet (shares the set's link).
//       Doorbell batching: SubmitBatch() rings one doorbell for K commands,
//       paying `request_latency` once instead of K times.
//   QueueSet  — N pairs multiplexed over one PCIe link plus the device-side
//       arbitration point: NextCommand() serves all pairs round-robin (or
//       weighted), so no queue can starve while another is full.
//
// Completion delivery (ReplyState): the synchronous path awaits the state's
// `done` event; the async path instead routes the completed state onto the
// submitting client's CQ ring (a channel), where a per-client reactor
// coroutine reaps it — one parked reactor per client instead of one parked
// awaiter per command.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nvme/command.h"
#include "sim/resources.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::nvme {

struct PcieConfig {
  double bytes_per_sec = 12e9;          // Gen3 x16 effective
  Tick request_latency = Microseconds(5);   // doorbell + DMA setup
  Tick completion_latency = Microseconds(5);
};

// Device-side service order across the pairs of a QueueSet.
enum class Arbitration : std::uint8_t {
  kRoundRobin = 0,  // one command per non-empty queue, rotating
  kWeighted = 1,    // up to weights[i] consecutive commands from queue i
};

struct QueueSetConfig {
  PcieConfig pcie;
  // Prefixes the PCIe bandwidth/meter names ("pcie.h2d", "pcie.d2h") and
  // the set's trace tracks ("nvme", "nvme.cq"). Multi-device simulations
  // give each set a shard prefix ("shard0.") so link utilization and
  // completion spans attribute per device; empty keeps legacy names.
  std::string name_prefix;
  std::uint32_t num_queues = 1;
  // Max commands submitted-and-uncompleted per pair; 0 = unbounded.
  // Submitters block (before the submission DMA) until a slot frees.
  std::uint32_t sq_depth_cap = 0;
  Arbitration arbitration = Arbitration::kRoundRobin;
  // kWeighted service quanta, one per queue; missing/zero entries count
  // as 1. Ignored under kRoundRobin.
  std::vector<std::uint32_t> weights;
};

class QueuePair;
class QueueSet;

// Shared completion slot for one in-flight command. The submitter holds a
// reference (directly or through a client-level future), the in-flight
// Incoming holds another until the device completes it.
struct ReplyState {
  explicit ReplyState(sim::Simulation* sim) : done(sim) {}

  sim::Event done;
  Completion completion;
  bool completed = false;
  // Causal identity, for reactors that record latency/tracing on reap.
  std::uint64_t cmd_id = 0;
  Opcode opcode = Opcode::kKvStore;
  Tick submit_begin = 0;     // host-side stamp (command.submit_tick)
  std::uint32_t queue_id = 0;
  // When set, completion is delivered by pushing this state onto the ring
  // (async path; the reaper calls done.Set()). When null, Complete() sets
  // `done` directly (synchronous path).
  sim::Channel<std::shared_ptr<ReplyState>>* cq_ring = nullptr;
};

using CqRing = sim::Channel<std::shared_ptr<ReplyState>>;

class QueuePair {
 public:
  // Standalone pair owning its own PCIe link (unit tests, single-queue
  // tools). Pairs inside a QueueSet are built by the set instead.
  QueuePair(sim::Simulation* sim, const PcieConfig& config);

  // Host side: send a command, await its completion. Safe for any number
  // of concurrent host threads (each submission carries its own reply
  // state).
  sim::Task<Completion> Submit(Command command);

  // Host side, decoupled: DMA the command in, return its reply state
  // without waiting for execution. Completion is pushed to `ring` when
  // non-null (reactor reaping), otherwise signalled via the state's
  // `done` event.
  sim::Task<std::shared_ptr<ReplyState>> SubmitAsync(Command command,
                                                     CqRing* ring = nullptr);

  // Doorbell batching: rings one doorbell for the whole batch, so the
  // per-command `request_latency` (doorbell + DMA setup) is paid once
  // instead of `commands.size()` times; the byte service time is
  // unchanged. With a depth cap the batch is split into cap-sized chunks
  // (each chunk still amortizes within itself).
  sim::Task<std::vector<std::shared_ptr<ReplyState>>> SubmitBatch(
      std::vector<Command> commands, CqRing* ring = nullptr);

  // Device side: one submitted command plus its completion route.
  struct Incoming {
    Command command;
    std::shared_ptr<ReplyState> reply;
    // Causal id / opcode copies that outlive moves of `command`, plus the
    // SQ enqueue and dequeue ticks for queue-wait attribution.
    std::uint64_t cmd_id = 0;
    Opcode opcode = Opcode::kKvStore;
    std::uint32_t queue_id = 0;
    Tick enqueue_tick = 0;
    Tick dequeue_tick = 0;
  };

  // Device side: wait for the next command on THIS pair. Single-queue
  // path; multi-queue devices arbitrate via QueueSet::NextCommand().
  auto NextCommand() { return submissions_.Pop(); }

  // Device-side completion path (charged to the PCIe link).
  sim::Task<void> Complete(Incoming incoming, Completion completion);

  // Submitted-but-not-yet-popped commands (the SQ depth gauge).
  std::size_t sq_depth() const { return submissions_.size(); }
  // Submitted, completion not yet posted.
  std::uint64_t inflight() const { return submitted_ - completed_; }

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t host_to_device_bytes() const {
    return host_to_device_->total_bytes();
  }
  std::uint64_t device_to_host_bytes() const {
    return device_to_host_->total_bytes();
  }

  std::uint32_t id() const { return id_; }
  sim::Simulation* sim() const { return sim_; }

 private:
  friend class QueueSet;

  // Set-member pair: shares the set's PCIe link and depth-cap policy.
  QueuePair(sim::Simulation* sim, QueueSet* set, std::uint32_t id,
            sim::BandwidthResource* h2d, sim::BandwidthResource* d2h,
            std::uint32_t depth_cap);

  // Enqueues one DMA-delivered command onto the SQ (no suspension).
  void Enqueue(Command command, std::shared_ptr<ReplyState> state);
  std::optional<Incoming> TryTake() { return submissions_.TryPop(); }

  sim::Simulation* sim_;
  QueueSet* set_ = nullptr;  // null for standalone pairs
  std::uint32_t id_ = 0;
  // Trace track names ("nvme", "nvme.cq"), carrying the owning set's
  // name_prefix so per-device spans stay separable in multi-device sims.
  std::string trk_nvme_ = "nvme";
  std::string trk_nvme_cq_ = "nvme.cq";
  // Standalone pairs own their link; set members borrow the set's.
  std::unique_ptr<sim::BandwidthResource> owned_h2d_;
  std::unique_ptr<sim::BandwidthResource> owned_d2h_;
  sim::BandwidthResource* host_to_device_;
  sim::BandwidthResource* device_to_host_;
  // Depth cap (null = unbounded). Acquired per command before the
  // submission DMA, released when its completion has DMA'd back.
  std::uint32_t config_depth_cap_ = 0;
  std::unique_ptr<sim::Semaphore> depth_slots_;
  sim::Channel<Incoming> submissions_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
};

// N SQ/CQ pairs sharing one PCIe link, plus the device-side arbitration
// point. Hosts submit to a specific pair (pair(i)->Submit...); the device
// services all pairs through NextCommand() under the configured policy.
class QueueSet {
 public:
  QueueSet(sim::Simulation* sim, const QueueSetConfig& config);
  // Single-queue convenience, used by fixtures that predate multi-queue.
  QueueSet(sim::Simulation* sim, const PcieConfig& pcie)
      : QueueSet(sim, MakeSingleQueueConfig(pcie)) {}

  std::uint32_t num_queues() const {
    return static_cast<std::uint32_t>(pairs_.size());
  }
  QueuePair* pair(std::uint32_t id) { return pairs_[id].get(); }
  const QueuePair* pair(std::uint32_t id) const { return pairs_[id].get(); }

  // Convenience forwarder for single-queue callers: submit on pair 0.
  sim::Task<Completion> Submit(Command command) {
    return pairs_[0]->Submit(std::move(command));
  }

  // Device side: the next command across ALL pairs, in arbitration order.
  // Round-robin serves one command per non-empty queue in rotation;
  // weighted serves up to weights[i] consecutive commands from queue i
  // before moving on. Either way a non-empty queue is never skipped
  // indefinitely — a full competing queue cannot starve its neighbors.
  sim::Task<QueuePair::Incoming> NextCommand();

  // Routes the completion back through the pair the command arrived on.
  sim::Task<void> Complete(QueuePair::Incoming incoming,
                           Completion completion) {
    return pairs_[incoming.queue_id]->Complete(std::move(incoming),
                                               std::move(completion));
  }

  // Aggregates across pairs (the device-level gauges).
  std::size_t sq_depth() const;
  std::uint64_t inflight() const;
  std::uint64_t submitted() const;
  std::uint64_t completed() const;
  std::uint64_t host_to_device_bytes() const {
    return host_to_device_.total_bytes();
  }
  std::uint64_t device_to_host_bytes() const {
    return device_to_host_.total_bytes();
  }

  // Per-activity windowed occupancy of the shared PCIe link, one meter per
  // direction (link-equivalents: 1.0 = direction saturated for the window).
  const sim::ResourceMeter& h2d_meter() const { return h2d_meter_; }
  const sim::ResourceMeter& d2h_meter() const { return d2h_meter_; }

  const QueueSetConfig& config() const { return config_; }
  sim::Simulation* sim() const { return sim_; }

 private:
  friend class QueuePair;

  static QueueSetConfig MakeSingleQueueConfig(const PcieConfig& pcie) {
    QueueSetConfig config;
    config.pcie = pcie;
    return config;
  }

  // Called by a pair on every SQ push: one work token per queued command.
  void NotifyWork() { work_.Release(); }
  std::uint32_t WeightOf(std::uint32_t queue) const {
    if (queue < config_.weights.size() && config_.weights[queue] > 0) {
      return config_.weights[queue];
    }
    return 1;
  }

  sim::Simulation* sim_;
  QueueSetConfig config_;
  sim::BandwidthResource host_to_device_;
  sim::BandwidthResource device_to_host_;
  sim::ResourceMeter h2d_meter_;
  sim::ResourceMeter d2h_meter_;
  std::vector<std::unique_ptr<QueuePair>> pairs_;
  // Counts queued-but-unserved commands across all pairs; NextCommand()
  // acquires one token per command so it only scans when work exists.
  sim::Semaphore work_;
  std::uint32_t arb_cursor_ = 0;   // next queue to consider
  std::uint32_t arb_credits_ = 0;  // remaining quantum at arb_cursor_
};

}  // namespace kvcsd::nvme
