// NVMe-style submission/completion queue pair over a PCIe link model.
//
// The host side calls Submit() and awaits the completion; data movement in
// both directions is charged to the PCIe link (DMA), and the device side
// services commands by popping the submission channel — exactly the
// client-library / device-server split the paper describes (§VI: "the
// translation and sending of the requests take place in userspace and
// completely bypass the host OS kernel").
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "nvme/command.h"
#include "sim/resources.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::nvme {

struct PcieConfig {
  double bytes_per_sec = 12e9;          // Gen3 x16 effective
  Tick request_latency = Microseconds(5);   // doorbell + DMA setup
  Tick completion_latency = Microseconds(5);
};

class QueuePair {
 public:
  QueuePair(sim::Simulation* sim, const PcieConfig& config)
      : sim_(sim),
        config_(config),
        host_to_device_(sim, "pcie.h2d", config.bytes_per_sec,
                        config.request_latency),
        device_to_host_(sim, "pcie.d2h", config.bytes_per_sec,
                        config.completion_latency),
        submissions_(sim) {}

  // Host side: send a command, await its completion. Safe for any number
  // of concurrent host threads (each submission carries its own reply
  // event).
  sim::Task<Completion> Submit(Command command);

  // Device side: wait for the next command to service.
  struct Incoming {
    Command command;
    // Device calls this exactly once; it DMAs the completion back to the
    // host and wakes the submitter.
    sim::Event* reply_event;
    Completion* reply_slot;
  };
  auto NextCommand() { return submissions_.Pop(); }

  // Device-side completion path (charged to the PCIe link).
  sim::Task<void> Complete(Incoming incoming, Completion completion);

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t host_to_device_bytes() const {
    return host_to_device_.total_bytes();
  }
  std::uint64_t device_to_host_bytes() const {
    return device_to_host_.total_bytes();
  }

  sim::Simulation* sim() const { return sim_; }

 private:
  sim::Simulation* sim_;
  PcieConfig config_;
  sim::BandwidthResource host_to_device_;
  sim::BandwidthResource device_to_host_;
  sim::Channel<Incoming> submissions_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
};

inline sim::Task<Completion> QueuePair::Submit(Command command) {
  ++submitted_;
  // Spans the whole host-visible round trip: submission DMA, device
  // service time, completion DMA.
  sim::TraceSpan span(sim_, "nvme", OpcodeName(command.opcode));
  const std::uint64_t wire = CommandWireSize(command);
  span.Arg("wire_bytes", wire);
  co_await host_to_device_.Transfer(wire);

  sim::Event reply(sim_);
  Completion slot;
  submissions_.Push(Incoming{std::move(command), &reply, &slot});
  co_await reply.Wait();
  co_return slot;
}

inline sim::Task<void> QueuePair::Complete(Incoming incoming,
                                           Completion completion) {
  ++completed_;
  const std::uint64_t wire = CompletionWireSize(completion);
  // Hand the payload to the submitter before suspending: the submitter
  // only wakes after the Set() below, but moving first keeps the data's
  // lifetime independent of this frame.
  *incoming.reply_slot = std::move(completion);
  sim::Event* reply_event = incoming.reply_event;
  co_await device_to_host_.Transfer(wire);
  reply_event->Set();
}

}  // namespace kvcsd::nvme
