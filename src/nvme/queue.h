// NVMe-style submission/completion queue pair over a PCIe link model.
//
// The host side calls Submit() and awaits the completion; data movement in
// both directions is charged to the PCIe link (DMA), and the device side
// services commands by popping the submission channel — exactly the
// client-library / device-server split the paper describes (§VI: "the
// translation and sending of the requests take place in userspace and
// completely bypass the host OS kernel").
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "nvme/command.h"
#include "sim/resources.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::nvme {

struct PcieConfig {
  double bytes_per_sec = 12e9;          // Gen3 x16 effective
  Tick request_latency = Microseconds(5);   // doorbell + DMA setup
  Tick completion_latency = Microseconds(5);
};

class QueuePair {
 public:
  QueuePair(sim::Simulation* sim, const PcieConfig& config)
      : sim_(sim),
        config_(config),
        host_to_device_(sim, "pcie.h2d", config.bytes_per_sec,
                        config.request_latency),
        device_to_host_(sim, "pcie.d2h", config.bytes_per_sec,
                        config.completion_latency),
        submissions_(sim) {}

  // Host side: send a command, await its completion. Safe for any number
  // of concurrent host threads (each submission carries its own reply
  // event).
  sim::Task<Completion> Submit(Command command);

  // Device side: wait for the next command to service.
  struct Incoming {
    Command command;
    // Device calls this exactly once; it DMAs the completion back to the
    // host and wakes the submitter.
    sim::Event* reply_event;
    Completion* reply_slot;
    // Causal id / opcode copies that outlive moves of `command`, plus the
    // SQ enqueue and dequeue ticks for queue-wait attribution.
    std::uint64_t cmd_id = 0;
    Opcode opcode = Opcode::kKvStore;
    Tick enqueue_tick = 0;
    Tick dequeue_tick = 0;
  };
  auto NextCommand() { return submissions_.Pop(); }

  // Submitted-but-not-yet-popped commands (the SQ depth gauge).
  std::size_t sq_depth() const { return submissions_.size(); }
  // Popped by the device, completion not yet posted.
  std::uint64_t inflight() const { return submitted_ - completed_; }

  // Device-side completion path (charged to the PCIe link).
  sim::Task<void> Complete(Incoming incoming, Completion completion);

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t host_to_device_bytes() const {
    return host_to_device_.total_bytes();
  }
  std::uint64_t device_to_host_bytes() const {
    return device_to_host_.total_bytes();
  }

  sim::Simulation* sim() const { return sim_; }

 private:
  sim::Simulation* sim_;
  PcieConfig config_;
  sim::BandwidthResource host_to_device_;
  sim::BandwidthResource device_to_host_;
  sim::Channel<Incoming> submissions_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
};

inline sim::Task<Completion> QueuePair::Submit(Command command) {
  ++submitted_;
  const Tick begin = sim_->Now();
  const Tick prepare_begin = command.submit_tick ? command.submit_tick : begin;
  // Spans the whole host-visible round trip: submission DMA, device
  // service time, completion DMA.
  sim::TraceSpan span(sim_, "nvme", OpcodeName(command.opcode));
  const std::uint64_t wire = CommandWireSize(command);
  if (command.cmd_id != 0) span.Arg("cmd_id", command.cmd_id);
  span.Arg("wire_bytes", wire);
  co_await host_to_device_.Transfer(wire);

  Incoming incoming;
  incoming.cmd_id = command.cmd_id;
  incoming.opcode = command.opcode;
  incoming.enqueue_tick = sim_->Now();
  sim_->stats()
      .histogram("client.stage.submit_ns")
      .Record(incoming.enqueue_tick - prepare_begin);
  sim::Event reply(sim_);
  Completion slot;
  incoming.command = std::move(command);
  incoming.reply_event = &reply;
  incoming.reply_slot = &slot;
  submissions_.Push(std::move(incoming));
  co_await reply.Wait();
  co_return slot;
}

inline sim::Task<void> QueuePair::Complete(Incoming incoming,
                                           Completion completion) {
  ++completed_;
  const Tick begin = sim_->Now();
  const std::uint64_t wire = CompletionWireSize(completion);
  // Hand the payload to the submitter before suspending: the submitter
  // only wakes after the Set() below, but moving first keeps the data's
  // lifetime independent of this frame.
  *incoming.reply_slot = std::move(completion);
  sim::Event* reply_event = incoming.reply_event;
  co_await device_to_host_.Transfer(wire);
  const Tick end = sim_->Now();
  sim_->stats().histogram("client.stage.complete_ns").Record(end - begin);
  if (sim_->tracer().enabled() && incoming.cmd_id != 0) {
    sim_->tracer().CompleteSpan(
        sim_->tracer().Track("nvme.cq"), "complete", begin, end,
        {{"cmd_id", std::to_string(incoming.cmd_id)},
         {"op", OpcodeName(incoming.opcode)}});
  }
  reply_event->Set();
}

}  // namespace kvcsd::nvme
