// Order-preserving secondary-key encodings shared by the device (index
// construction) and the client (query bound construction). The encoded
// form compares with memcmp in the same order as the typed value.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/keys.h"
#include "common/status.h"
#include "nvme/command.h"

namespace kvcsd::nvme {

inline std::string EncodeSecondaryU32(std::uint32_t v) {
  std::string out;
  AppendBigEndian32(&out, v);
  return out;
}
inline std::string EncodeSecondaryU64(std::uint64_t v) {
  std::string out;
  AppendBigEndian64(&out, v);
  return out;
}
inline std::string EncodeSecondaryI32(std::int32_t v) {
  std::string out;
  AppendBigEndian32(&out, OrderEncodeI32(v));
  return out;
}
inline std::string EncodeSecondaryF32(float v) {
  std::string out;
  AppendBigEndian32(&out, OrderEncodeF32(v));
  return out;
}
inline std::string EncodeSecondaryF64(double v) {
  std::string out;
  AppendBigEndian64(&out, OrderEncodeF64(v));
  return out;
}

// Builds a pushdown predicate over a float32 value attribute, with the
// bound pre-encoded exactly the way the device compares it (the same
// order encoding secondary-range bounds use).
inline ValuePredicate PredicateF32(PredicateOp op, std::uint32_t value_offset,
                                   float bound) {
  ValuePredicate pred;
  pred.op = op;
  pred.value_offset = value_offset;
  pred.value_length = 4;
  pred.type = SecondaryKeyType::kF32;
  pred.operand = EncodeSecondaryF32(bound);
  return pred;
}

// Byte-wise predicate: memcmp order over the raw attribute bytes.
inline ValuePredicate PredicateBytes(PredicateOp op,
                                     std::uint32_t value_offset,
                                     std::string operand) {
  ValuePredicate pred;
  pred.op = op;
  pred.value_offset = value_offset;
  pred.value_length = static_cast<std::uint32_t>(operand.size());
  pred.type = SecondaryKeyType::kBytes;
  pred.operand = std::move(operand);
  return pred;
}

// Encodes the raw little-endian bytes of a stored value's key range (what
// the device extracts during index construction).
inline Result<std::string> EncodeSecondaryKeyBytes(
    const Slice& raw, const SecondaryIndexSpec& spec) {
  auto need = [&raw, &spec](std::uint32_t n) {
    return spec.value_length == n && raw.size() == n;
  };
  switch (spec.type) {
    case SecondaryKeyType::kU32:
      if (!need(4)) return Status::InvalidArgument("u32 key needs 4 bytes");
      return EncodeSecondaryU32(DecodeFixed32(raw.data()));
    case SecondaryKeyType::kU64:
      if (!need(8)) return Status::InvalidArgument("u64 key needs 8 bytes");
      return EncodeSecondaryU64(DecodeFixed64(raw.data()));
    case SecondaryKeyType::kI32:
      if (!need(4)) return Status::InvalidArgument("i32 key needs 4 bytes");
      return EncodeSecondaryI32(
          static_cast<std::int32_t>(DecodeFixed32(raw.data())));
    case SecondaryKeyType::kF32:
      if (!need(4)) return Status::InvalidArgument("f32 key needs 4 bytes");
      return EncodeSecondaryF32(std::bit_cast<float>(
          DecodeFixed32(raw.data())));
    case SecondaryKeyType::kF64:
      if (!need(8)) return Status::InvalidArgument("f64 key needs 8 bytes");
      return EncodeSecondaryF64(std::bit_cast<double>(
          DecodeFixed64(raw.data())));
    case SecondaryKeyType::kBytes:
      return raw.ToString();
  }
  return Status::InvalidArgument("unknown secondary key type");
}

}  // namespace kvcsd::nvme
