// Key→shard placement policies for the host-side shard router.
//
// A Partitioner maps every primary key to exactly one shard, making the
// logical keyspace the disjoint union of the per-shard keyspaces. The
// mapping must be deterministic and stateless: the router consults it on
// every routed command, and a power-cycled device must route identically
// after recovery — there is no placement table to persist or rebuild.
// Determinism is also what makes scatter-gather merges exact: because no
// key lives on two shards, merging per-shard sorted streams reproduces
// the single-device scan order without deduplication.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32c.h"

namespace kvcsd::router {

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  Partitioner() = default;
  Partitioner(const Partitioner&) = delete;
  Partitioner& operator=(const Partitioner&) = delete;

  // Shard index in [0, num_shards) that owns `key`. Must be a pure
  // function of (key, num_shards).
  virtual std::uint32_t ShardOf(std::string_view key,
                                std::uint32_t num_shards) const = 0;
  virtual std::string_view name() const = 0;
};

// CRC32C(key) mod N. Spreads uniform and skewed key populations evenly;
// the tradeoff is that a primary range scan touches every shard (the
// router's scatter-gather merge handles that).
class HashPartitioner final : public Partitioner {
 public:
  std::uint32_t ShardOf(std::string_view key,
                        std::uint32_t num_shards) const override {
    if (num_shards <= 1) return 0;
    return crc32c::Value(key.data(), key.size()) % num_shards;
  }
  std::string_view name() const override { return "hash"; }
};

// Explicit split points: shard 0 owns keys < splits[0], shard i owns
// [splits[i-1], splits[i]), the last shard owns the tail. With k split
// points the natural shard count is k+1; fewer shards clamp to the last
// one so the mapping stays total.
class RangePartitioner final : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<std::string> splits)
      : splits_(std::move(splits)) {
    std::sort(splits_.begin(), splits_.end());
  }

  std::uint32_t ShardOf(std::string_view key,
                        std::uint32_t num_shards) const override {
    if (num_shards == 0) return 0;
    const auto it =
        std::upper_bound(splits_.begin(), splits_.end(), key,
                         [](std::string_view k, const std::string& split) {
                           return k < std::string_view(split);
                         });
    const auto shard = static_cast<std::uint32_t>(it - splits_.begin());
    return std::min(shard, num_shards - 1);
  }
  std::string_view name() const override { return "range"; }

 private:
  std::vector<std::string> splits_;
};

}  // namespace kvcsd::router
