#include "router/sharded_client.h"

#include <algorithm>
#include <tuple>

#include "common/slice.h"
#include "kvcsd/merge.h"
#include "nvme/skey.h"
#include "sim/parallel.h"
#include "sim/tracer.h"

namespace kvcsd::router {
namespace {

using Rows = ShardedKeyspaceHandle::Rows;

Tick BackoffFor(const ShardedClientConfig& config, std::uint32_t attempt) {
  const std::uint32_t shift = std::min<std::uint32_t>(attempt, 20);
  const Tick backoff = config.retry_backoff_base << shift;
  return std::min(backoff, config.retry_backoff_cap);
}

// K-way merge of per-shard sorted streams via the device's loser tree.
// `less(sa, ia, sb, ib)` orders row ia of stream sa against row ib of
// stream sb; exhausted streams sort after live ones and ties break by
// stream index, so the merge is total and deterministic. Stops after
// `limit` rows (0 = unlimited). Rows are moved out of the streams.
template <typename RowLess>
void MergeStreams(std::vector<Rows>* streams, std::uint32_t limit,
                  RowLess&& less, Rows* out) {
  const std::size_t k = streams->size();
  std::vector<std::size_t> pos(k, 0);
  auto leaf_less = [&](std::size_t a, std::size_t b) {
    const bool va = pos[a] < (*streams)[a].size();
    const bool vb = pos[b] < (*streams)[b].size();
    if (!va || !vb) return va;
    if (less(a, pos[a], b, pos[b])) return true;
    if (less(b, pos[b], a, pos[a])) return false;
    return a < b;
  };
  device::LoserTree tree;
  tree.Build(k, leaf_less);
  while (true) {
    const std::size_t w = tree.winner();
    if (w == device::LoserTree::kNone || pos[w] >= (*streams)[w].size()) {
      break;
    }
    out->push_back(std::move((*streams)[w][pos[w]]));
    ++pos[w];
    if (limit != 0 && out->size() >= limit) break;
    tree.Replay(w, leaf_less);
  }
}

// Re-derives the order-encoded secondary key for every row so the merge
// can reproduce the device's (skey, pkey) iteration order host-side.
Status DeriveMergeKeys(const Rows& rows, const nvme::SecondaryIndexSpec& spec,
                       std::vector<std::string>* skeys) {
  skeys->reserve(rows.size());
  for (const auto& kv : rows) {
    const std::string& value = kv.second;
    if (value.size() < static_cast<std::size_t>(spec.value_offset) +
                           spec.value_length) {
      return Status::InvalidArgument(
          "row value too short to derive merge key for index '" + spec.name +
          "' (projection must keep the indexed attribute)");
    }
    Result<std::string> enc = nvme::EncodeSecondaryKeyBytes(
        Slice(value.data() + spec.value_offset, spec.value_length), spec);
    if (!enc.ok()) return enc.status();
    skeys->push_back(std::move(enc).value());
  }
  return Status::Ok();
}

// Attributes the scatter to its slowest shard: counters + histogram
// under the router prefix, plus span args the trace analyzer renders
// into the per-query fan-out table.
void FinishScatter(sim::Simulation* sim, const std::string& prefix,
                   const char* kind, sim::TraceSpan* span,
                   const std::vector<Tick>& elapsed, std::uint64_t rows) {
  std::uint32_t slowest = 0;
  for (std::uint32_t i = 1; i < elapsed.size(); ++i) {
    if (elapsed[i] > elapsed[slowest]) slowest = i;
  }
  const Tick slowest_ns = elapsed.empty() ? 0 : elapsed[slowest];
  sim->stats().counter(prefix + "scatter." + kind).Increment();
  sim->stats().histogram(prefix + "scatter.slowest_ns").Record(slowest_ns);
  span->Arg("fanout", static_cast<std::uint64_t>(elapsed.size()));
  span->Arg("rows", rows);
  span->Arg("slowest_shard", static_cast<std::uint64_t>(slowest));
  span->Arg("slowest_ns", slowest_ns);
}

// Scattered sub-queries, timed so the gather can attribute the merge
// wait. Arguments arrive as pointers into the scattering coroutine's
// frame, which TaskGroup::Wait keeps alive until every task joins.
sim::Task<Status> ScanShard(sim::Simulation* sim, client::KeyspaceHandle* ks,
                            const std::string* lo, const std::string* hi,
                            std::uint32_t limit, Rows* out, Tick* elapsed) {
  const Tick begin = sim->Now();
  Status s = co_await ks->Scan(*lo, *hi, limit, out);
  *elapsed = sim->Now() - begin;
  co_return s;
}

sim::Task<Status> SecondaryShard(sim::Simulation* sim,
                                 client::KeyspaceHandle* ks,
                                 const std::string* index_name,
                                 const std::string* lo, const std::string* hi,
                                 std::uint32_t limit, Rows* out,
                                 Tick* elapsed) {
  const Tick begin = sim->Now();
  Status s = co_await ks->QuerySecondaryRange(*index_name, *lo, *hi, limit,
                                              out);
  *elapsed = sim->Now() - begin;
  co_return s;
}

sim::Task<Status> SelectShard(
    sim::Simulation* sim, client::KeyspaceHandle* ks, const std::string* lo,
    const std::string* hi, const client::KeyspaceHandle::SelectOptions* opts,
    Rows* out, Tick* elapsed) {
  const Tick begin = sim->Now();
  Status s = co_await ks->Select(*lo, *hi, *opts, out);
  *elapsed = sim->Now() - begin;
  co_return s;
}

// One shard's slice of a routed batch PUT: ships the sub-batch as a
// single doorbell on the owning shard's client, then scatters the
// returned futures back to their input-order slots. idx/futures point
// into the scattering coroutine's frame (alive until the group joins).
sim::Task<Status> PutShardBatch(
    client::KeyspaceHandle* ks,
    std::vector<std::pair<std::string, std::string>> sub,
    const std::vector<std::size_t>* idx,
    std::vector<client::StatusFuture>* futures) {
  std::vector<client::StatusFuture> shard_futures =
      co_await ks->PutBatchAsync(std::move(sub));
  for (std::size_t j = 0; j < idx->size(); ++j) {
    (*futures)[(*idx)[j]] = std::move(shard_futures[j]);
  }
  co_return Status::Ok();
}

sim::Task<Status> AggregateShard(
    sim::Simulation* sim, client::KeyspaceHandle* ks, const std::string* lo,
    const std::string* hi, const nvme::AggregateSpec* agg,
    const client::KeyspaceHandle::SelectOptions* opts,
    nvme::AggregateResult* out, Tick* elapsed) {
  const Tick begin = sim->Now();
  Result<nvme::AggregateResult> r = co_await ks->Aggregate(*lo, *hi, *agg,
                                                           *opts);
  *elapsed = sim->Now() - begin;
  if (!r.ok()) co_return r.status();
  *out = r.value();
  co_return Status::Ok();
}

}  // namespace

// --- ShardedClient ---

ShardedClient::ShardedClient(sim::Simulation* sim,
                             std::vector<client::Client*> shards,
                             std::unique_ptr<Partitioner> partitioner,
                             ShardedClientConfig config)
    : sim_(sim),
      shards_(std::move(shards)),
      partitioner_(std::move(partitioner)),
      config_(std::move(config)),
      governor_(sim,
                std::max<std::uint32_t>(1, config_.max_compacting_shards)) {
  shard_counters_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string p =
        config_.stats_prefix + "shard" + std::to_string(i) + ".";
    shard_counters_.push_back({&sim_->stats().counter(p + "puts"),
                               &sim_->stats().counter(p + "gets"),
                               &sim_->stats().counter(p + "deletes")});
  }
  busy_retries_ = &sim_->stats().counter(config_.stats_prefix +
                                         "busy.retries");
}

sim::Task<Result<ShardedKeyspaceHandle>> ShardedClient::CreateKeyspace(
    const std::string& name) {
  auto state = std::make_shared<ShardedKeyspaceHandle::State>();
  state->name = name;
  state->shards.reserve(shards_.size());
  for (client::Client* c : shards_) {
    Result<client::KeyspaceHandle> r = co_await c->CreateKeyspace(name);
    if (!r.ok()) co_return r.status();
    state->shards.push_back(std::move(r).value());
  }
  co_return ShardedKeyspaceHandle(this, std::move(state));
}

sim::Task<Result<ShardedKeyspaceHandle>> ShardedClient::OpenKeyspace(
    const std::string& name) {
  auto state = std::make_shared<ShardedKeyspaceHandle::State>();
  state->name = name;
  state->shards.reserve(shards_.size());
  for (client::Client* c : shards_) {
    Result<client::KeyspaceHandle> r = co_await c->OpenKeyspace(name);
    if (!r.ok()) co_return r.status();
    state->shards.push_back(std::move(r).value());
  }
  co_return ShardedKeyspaceHandle(this, std::move(state));
}

sim::Task<Status> ShardedClient::DropKeyspace(const std::string& name) {
  Status first = Status::Ok();
  for (client::Client* c : shards_) {
    Status s = co_await c->DropKeyspace(name);
    if (!s.ok() && first.ok()) first = s;
  }
  co_return first;
}

// --- ShardedKeyspaceHandle: accessors ---

const std::string& ShardedKeyspaceHandle::name() const {
  return state_->name;
}

std::uint32_t ShardedKeyspaceHandle::num_shards() const {
  return static_cast<std::uint32_t>(state_->shards.size());
}

std::uint32_t ShardedKeyspaceHandle::ShardOf(std::string_view key) const {
  return router_->ShardOf(key);
}

client::KeyspaceHandle& ShardedKeyspaceHandle::shard_handle(
    std::uint32_t shard) {
  return state_->shards[shard];
}

void ShardedKeyspaceHandle::RegisterSecondaryIndex(
    nvme::SecondaryIndexSpec spec) {
  std::string key = spec.name;
  state_->indexes[std::move(key)] = std::move(spec);
}

Result<nvme::SecondaryIndexSpec> ShardedKeyspaceHandle::IndexSpec(
    const std::string& index_name) const {
  const auto it = state_->indexes.find(index_name);
  if (it == state_->indexes.end()) {
    return Status::InvalidArgument(
        "index '" + index_name +
        "' not registered with the router (create it through the sharded "
        "handle or RegisterSecondaryIndex after OpenKeyspace)");
  }
  return it->second;
}

// --- routed writes ---

sim::Task<Status> ShardedKeyspaceHandle::Put(const std::string& key,
                                             const std::string& value) {
  ShardedClient* r = router_;
  const std::uint32_t shard = ShardOf(key);
  r->shard_counters_[shard].puts->Increment();
  std::uint32_t attempt = 0;
  while (true) {
    Status s = co_await state_->shards[shard].Put(key, value);
    if (!s.IsBusy() || attempt >= r->config_.busy_retry_attempts) {
      co_return s;
    }
    r->busy_retries_->Increment();
    co_await r->sim_->Delay(BackoffFor(r->config_, attempt++));
  }
}

sim::Task<client::StatusFuture> ShardedKeyspaceHandle::PutAsync(
    const std::string& key, const std::string& value) {
  const std::uint32_t shard = ShardOf(key);
  router_->shard_counters_[shard].puts->Increment();
  co_return co_await state_->shards[shard].PutAsync(key, value);
}

sim::Task<std::vector<client::StatusFuture>>
ShardedKeyspaceHandle::PutBatchAsync(
    std::vector<std::pair<std::string, std::string>> pairs) {
  ShardedClient* r = router_;
  const std::uint32_t n = num_shards();
  std::vector<client::StatusFuture> futures(pairs.size());
  std::vector<std::vector<std::size_t>> members(n);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    members[ShardOf(pairs[i].first)].push_back(i);
  }
  // Scatter the sub-batches concurrently: submitting shard-by-shard
  // would serialize N doorbell costs into every batch call, turning
  // scale-out into a per-batch latency tax that grows with the fleet.
  sim::TaskGroup group(r->sim_);
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    const std::vector<std::size_t>& idx = members[shard];
    if (idx.empty()) continue;
    r->shard_counters_[shard].puts->Add(idx.size());
    std::vector<std::pair<std::string, std::string>> sub;
    sub.reserve(idx.size());
    for (std::size_t i : idx) sub.push_back(std::move(pairs[i]));
    group.Spawn(PutShardBatch(&state_->shards[shard], std::move(sub),
                              &members[shard], &futures));
  }
  // Per-shard submission never fails (errors surface through the
  // futures), so the join is only a frame-lifetime barrier.
  (void)co_await group.Wait();
  co_return futures;
}

sim::Task<Status> ShardedKeyspaceHandle::Delete(const std::string& key) {
  ShardedClient* r = router_;
  const std::uint32_t shard = ShardOf(key);
  r->shard_counters_[shard].deletes->Increment();
  std::uint32_t attempt = 0;
  while (true) {
    Status s = co_await state_->shards[shard].Delete(key);
    if (!s.IsBusy() || attempt >= r->config_.busy_retry_attempts) {
      co_return s;
    }
    r->busy_retries_->Increment();
    co_await r->sim_->Delay(BackoffFor(r->config_, attempt++));
  }
}

sim::Task<client::StatusFuture> ShardedKeyspaceHandle::DeleteAsync(
    const std::string& key) {
  const std::uint32_t shard = ShardOf(key);
  router_->shard_counters_[shard].deletes->Increment();
  co_return co_await state_->shards[shard].DeleteAsync(key);
}

sim::Task<Status> ShardedKeyspaceHandle::Sync() {
  sim::TaskGroup group(router_->sim_);
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    group.Spawn(state_->shards[i].Sync());
  }
  co_return co_await group.Wait();
}

sim::Task<Status> ShardedKeyspaceHandle::SyncWithRetry(
    std::uint32_t attempts) {
  sim::TaskGroup group(router_->sim_);
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    group.Spawn(state_->shards[i].SyncWithRetry(attempts));
  }
  co_return co_await group.Wait();
}

// --- lifecycle ---

sim::Task<Status> ShardedKeyspaceHandle::CompactShard(
    std::uint32_t shard, std::vector<nvme::SecondaryIndexSpec> specs) {
  ShardedClient* r = router_;
  co_await r->governor_.Acquire();
  client::KeyspaceHandle& ks = state_->shards[shard];
  Status s = Status::Ok();
  std::uint32_t attempt = 0;
  while (true) {
    if (specs.empty()) {
      s = co_await ks.Compact();
    } else {
      s = co_await ks.CompactWithIndexes(specs);
    }
    if (!s.IsBusy() || attempt >= r->config_.busy_retry_attempts) break;
    r->busy_retries_->Increment();
    co_await r->sim_->Delay(BackoffFor(r->config_, attempt++));
  }
  // Hold the governor slot through the barrier: the slot models "this
  // shard's SoC is busy compacting", which is true until COMPACTED.
  if (s.ok()) s = co_await ks.WaitCompaction();
  r->governor_.Release();
  co_return s;
}

sim::Task<Status> ShardedKeyspaceHandle::Compact() {
  sim::TaskGroup group(router_->sim_);
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    group.Spawn(CompactShard(i, {}));
  }
  co_return co_await group.Wait();
}

sim::Task<Status> ShardedKeyspaceHandle::CompactWithIndexes(
    std::vector<nvme::SecondaryIndexSpec> specs) {
  sim::TaskGroup group(router_->sim_);
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    group.Spawn(CompactShard(i, specs));
  }
  Status s = co_await group.Wait();
  if (s.ok()) {
    for (nvme::SecondaryIndexSpec& spec : specs) {
      RegisterSecondaryIndex(std::move(spec));
    }
  }
  co_return s;
}

sim::Task<Status> ShardedKeyspaceHandle::WaitCompaction() {
  sim::TaskGroup group(router_->sim_);
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    group.Spawn(state_->shards[i].WaitCompaction());
  }
  co_return co_await group.Wait();
}

sim::Task<Status> ShardedKeyspaceHandle::BuildIndexShard(
    std::uint32_t shard, nvme::SecondaryIndexSpec spec) {
  ShardedClient* r = router_;
  co_await r->governor_.Acquire();
  client::KeyspaceHandle& ks = state_->shards[shard];
  Status s = Status::Ok();
  std::uint32_t attempt = 0;
  while (true) {
    s = co_await ks.CreateSecondaryIndex(spec);
    if (!s.IsBusy() || attempt >= r->config_.busy_retry_attempts) break;
    r->busy_retries_->Increment();
    co_await r->sim_->Delay(BackoffFor(r->config_, attempt++));
  }
  r->governor_.Release();
  co_return s;
}

sim::Task<Status> ShardedKeyspaceHandle::CreateSecondaryIndex(
    nvme::SecondaryIndexSpec spec) {
  sim::TaskGroup group(router_->sim_);
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    group.Spawn(BuildIndexShard(i, spec));
  }
  Status s = co_await group.Wait();
  if (s.ok()) RegisterSecondaryIndex(std::move(spec));
  co_return s;
}

sim::Task<Status> ShardedKeyspaceHandle::CreateSecondaryIndexF32(
    const std::string& index_name, std::uint32_t value_offset) {
  nvme::SecondaryIndexSpec spec;
  spec.name = index_name;
  spec.value_offset = value_offset;
  spec.value_length = 4;
  spec.type = nvme::SecondaryKeyType::kF32;
  co_return co_await CreateSecondaryIndex(std::move(spec));
}

// --- routed point reads ---

sim::Task<Result<std::string>> ShardedKeyspaceHandle::Get(
    const std::string& key) {
  ShardedClient* r = router_;
  const std::uint32_t shard = ShardOf(key);
  r->shard_counters_[shard].gets->Increment();
  std::uint32_t attempt = 0;
  while (true) {
    Result<std::string> res = co_await state_->shards[shard].Get(key);
    if (res.ok() || !res.status().IsBusy() ||
        attempt >= r->config_.busy_retry_attempts) {
      co_return res;
    }
    r->busy_retries_->Increment();
    co_await r->sim_->Delay(BackoffFor(r->config_, attempt++));
  }
}

sim::Task<client::GetFuture> ShardedKeyspaceHandle::GetAsync(
    const std::string& key) {
  const std::uint32_t shard = ShardOf(key);
  router_->shard_counters_[shard].gets->Increment();
  co_return co_await state_->shards[shard].GetAsync(key);
}

// --- scatter-gather queries ---

sim::Task<Status> ShardedKeyspaceHandle::Scan(const std::string& lo,
                                              const std::string& hi,
                                              std::uint32_t limit,
                                              Rows* out) {
  ShardedClient* r = router_;
  const std::uint32_t n = num_shards();
  sim::TraceSpan span(r->sim_, "router", "scan");
  std::vector<Rows> per(n);
  std::vector<Tick> elapsed(n, 0);
  {
    sim::TaskGroup group(r->sim_);
    for (std::uint32_t i = 0; i < n; ++i) {
      // Per-shard limit == global limit: keys are disjoint across
      // shards, so each shard's first `limit` rows are a superset of
      // its contribution to the global first `limit`.
      group.Spawn(ScanShard(r->sim_, &state_->shards[i], &lo, &hi, limit,
                            &per[i], &elapsed[i]));
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await group.Wait());
  }
  MergeStreams(&per, limit,
               [&per](std::size_t sa, std::size_t ia, std::size_t sb,
                      std::size_t ib) {
                 return per[sa][ia].first < per[sb][ib].first;
               },
               out);
  FinishScatter(r->sim_, r->config_.stats_prefix, "scans", &span, elapsed,
                out->size());
  co_return Status::Ok();
}

sim::Task<Status> ShardedKeyspaceHandle::QuerySecondaryRange(
    const std::string& index_name, const std::string& lo_encoded,
    const std::string& hi_encoded, std::uint32_t limit, Rows* out) {
  ShardedClient* r = router_;
  const std::uint32_t n = num_shards();
  sim::TraceSpan span(r->sim_, "router", "secondary_scan");
  std::vector<Rows> per(n);
  std::vector<Tick> elapsed(n, 0);
  {
    sim::TaskGroup group(r->sim_);
    for (std::uint32_t i = 0; i < n; ++i) {
      group.Spawn(SecondaryShard(r->sim_, &state_->shards[i], &index_name,
                                 &lo_encoded, &hi_encoded, limit, &per[i],
                                 &elapsed[i]));
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await group.Wait());
  }
  if (n == 1) {
    *out = std::move(per[0]);
  } else {
    Result<nvme::SecondaryIndexSpec> spec = IndexSpec(index_name);
    if (!spec.ok()) co_return spec.status();
    std::vector<std::vector<std::string>> skeys(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      KVCSD_CO_RETURN_IF_ERROR(
          DeriveMergeKeys(per[i], spec.value(), &skeys[i]));
    }
    MergeStreams(&per, limit,
                 [&per, &skeys](std::size_t sa, std::size_t ia,
                                std::size_t sb, std::size_t ib) {
                   return std::tie(skeys[sa][ia], per[sa][ia].first) <
                          std::tie(skeys[sb][ib], per[sb][ib].first);
                 },
                 out);
  }
  FinishScatter(r->sim_, r->config_.stats_prefix, "secondary_scans", &span,
                elapsed, out->size());
  co_return Status::Ok();
}

sim::Task<Status> ShardedKeyspaceHandle::QuerySecondaryRangeF32(
    const std::string& index_name, float lo, float hi, std::uint32_t limit,
    Rows* out) {
  const std::string lo_encoded = nvme::EncodeSecondaryF32(lo);
  const std::string hi_encoded = nvme::EncodeSecondaryF32(hi);
  co_return co_await QuerySecondaryRange(index_name, lo_encoded, hi_encoded,
                                         limit, out);
}

sim::Task<Status> ShardedKeyspaceHandle::SelectScatter(
    std::string lo, std::string hi,
    client::KeyspaceHandle::SelectOptions opts, Rows* out) {
  ShardedClient* r = router_;
  const std::uint32_t n = num_shards();
  sim::TraceSpan span(r->sim_, "router", "select");
  std::vector<Rows> per(n);
  std::vector<Tick> elapsed(n, 0);
  {
    sim::TaskGroup group(r->sim_);
    for (std::uint32_t i = 0; i < n; ++i) {
      group.Spawn(SelectShard(r->sim_, &state_->shards[i], &lo, &hi, &opts,
                              &per[i], &elapsed[i]));
    }
    KVCSD_CO_RETURN_IF_ERROR(co_await group.Wait());
  }
  if (n == 1) {
    *out = std::move(per[0]);
  } else if (opts.index_name.empty()) {
    MergeStreams(&per, opts.limit,
                 [&per](std::size_t sa, std::size_t ia, std::size_t sb,
                        std::size_t ib) {
                   return per[sa][ia].first < per[sb][ib].first;
                 },
                 out);
  } else {
    Result<nvme::SecondaryIndexSpec> spec = IndexSpec(opts.index_name);
    if (!spec.ok()) co_return spec.status();
    std::vector<std::vector<std::string>> skeys(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      KVCSD_CO_RETURN_IF_ERROR(
          DeriveMergeKeys(per[i], spec.value(), &skeys[i]));
    }
    MergeStreams(&per, opts.limit,
                 [&per, &skeys](std::size_t sa, std::size_t ia,
                                std::size_t sb, std::size_t ib) {
                   return std::tie(skeys[sa][ia], per[sa][ia].first) <
                          std::tie(skeys[sb][ib], per[sb][ib].first);
                 },
                 out);
  }
  FinishScatter(r->sim_, r->config_.stats_prefix, "selects", &span, elapsed,
                out->size());
  co_return Status::Ok();
}

sim::Task<Result<nvme::AggregateResult>>
ShardedKeyspaceHandle::AggregateScatter(
    std::string lo, std::string hi, nvme::AggregateSpec agg,
    client::KeyspaceHandle::SelectOptions opts) {
  ShardedClient* r = router_;
  const std::uint32_t n = num_shards();
  if (opts.limit != 0 && n > 1) {
    co_return Status::InvalidArgument(
        "sharded aggregate cannot honor a matched-row limit (the cap is "
        "not decomposable across shards)");
  }
  sim::TraceSpan span(r->sim_, "router", "aggregate");
  std::vector<nvme::AggregateResult> per(n);
  std::vector<Tick> elapsed(n, 0);
  {
    sim::TaskGroup group(r->sim_);
    for (std::uint32_t i = 0; i < n; ++i) {
      group.Spawn(AggregateShard(r->sim_, &state_->shards[i], &lo, &hi, &agg,
                                 &opts, &per[i], &elapsed[i]));
    }
    Status s = co_await group.Wait();
    if (!s.ok()) co_return s;
  }
  // Deterministic fold in shard order 0..N-1: rows/min/max are exact;
  // sum is exact whenever the attribute values are exactly
  // representable (the bench's integer-valued floats).
  nvme::AggregateResult total;
  for (std::uint32_t i = 0; i < n; ++i) {
    const nvme::AggregateResult& part = per[i];
    total.rows += part.rows;
    if (!part.valid) continue;
    if (!total.valid) {
      total.min = part.min;
      total.max = part.max;
      total.sum = part.sum;
      total.valid = true;
    } else {
      total.min = std::min(total.min, part.min);
      total.max = std::max(total.max, part.max);
      total.sum += part.sum;
    }
  }
  FinishScatter(r->sim_, r->config_.stats_prefix, "aggregates", &span,
                elapsed, total.rows);
  co_return total;
}

// --- metadata ---

sim::Task<Result<client::KeyspaceHandle::Stat>>
ShardedKeyspaceHandle::GetStat() {
  client::KeyspaceHandle::Stat total;
  bool first = true;
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    Result<client::KeyspaceHandle::Stat> r =
        co_await state_->shards[i].GetStat();
    if (!r.ok()) co_return r.status();
    total.num_kvs += r.value().num_kvs;
    if (first) {
      total.state = r.value().state;
      first = false;
    } else if (total.state != r.value().state) {
      total.state = "MIXED";
    }
  }
  co_return total;
}

}  // namespace kvcsd::router
