// Host-side shard router: one logical keyspace over N independent KV-CSDs.
//
// A single simulated device serializes keyspace mutations behind one
// dispatch loop, so aggregate throughput flattens once the host can
// submit faster than the SoC dispatches. The router scales out instead
// of up (DESIGN.md §15): it hash- or range-partitions the primary key
// space over N devices — each with its own ZNS SSD, SoC, PCIe link and
// async multi-queue client — and makes the fleet look like one keyspace:
//
//   PUT/GET/DELETE  route to the owning shard (Partitioner), sync
//                   wrappers retry kBusy with exponential backoff while
//                   a shard compacts; async variants return the shard
//                   client's future and ride its admission window.
//   Scan/secondary  scatter to every shard, then k-way merge the
//                   per-shard sorted streams host-side (loser tree),
//                   producing the exact single-device result order.
//   Select/Aggregate scatter the pushdown descriptor; selects merge like
//                   scans, aggregate scalars fold in shard order 0..N-1.
//   Compact/index   staggered by a CompactionGovernor so at most K
//                   shards burn their SoC on compaction at once.
//
// Every routed op stays on the shard clients' futures API, so per-shard
// inflight windows (ClientConfig::max_inflight) provide admission
// control without any router-side queueing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/status.h"
#include "nvme/command.h"
#include "router/partitioner.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::router {

// Bounds how many shards may run a device-side compaction or secondary
// index build simultaneously. Compaction monopolizes a shard's SoC
// cores; letting all N shards compact together would stall foreground
// traffic fleet-wide, while staggering keeps N-K shards serving. Thin
// counting-semaphore wrapper so tests can drive it directly.
class CompactionGovernor {
 public:
  CompactionGovernor(sim::Simulation* sim, std::uint32_t max_concurrent)
      : sem_(sim, max_concurrent), limit_(max_concurrent) {}
  auto Acquire() { return sem_.Acquire(); }
  void Release() { sem_.Release(); }
  std::uint32_t limit() const { return limit_; }

 private:
  sim::Semaphore sem_;
  std::uint32_t limit_;
};

struct ShardedClientConfig {
  // Governor width: max shards compacting/index-building concurrently.
  std::uint32_t max_compacting_shards = 2;
  // Routed sync writes retry kBusy (shard mid-compaction) this many
  // times with exponential backoff before surfacing the error.
  std::uint32_t busy_retry_attempts = 8;
  Tick retry_backoff_base = Microseconds(50);
  Tick retry_backoff_cap = Milliseconds(5);
  // Prefix for router stats ("router." -> router.scatter.scans).
  std::string stats_prefix = "router.";
};

class ShardedClient;

// A handle to one logical (sharded) keyspace. Cheap to copy: wraps
// shared state holding the per-shard KeyspaceHandles plus the secondary
// index specs the router needs to re-derive merge keys host-side.
class ShardedKeyspaceHandle {
 public:
  using Rows = std::vector<std::pair<std::string, std::string>>;

  ShardedKeyspaceHandle() = default;
  bool valid() const { return router_ != nullptr; }
  const std::string& name() const;
  std::uint32_t num_shards() const;
  // The shard that owns `key` under the router's partitioner.
  std::uint32_t ShardOf(std::string_view key) const;
  // Direct access to one shard's handle (tests, diagnostics).
  client::KeyspaceHandle& shard_handle(std::uint32_t shard);

  // --- routed writes ---
  // Sync variants retry kBusy with backoff (config.busy_retry_attempts);
  // async variants surface the shard's status through the future and
  // leave retry policy to the caller.
  sim::Task<Status> Put(const std::string& key, const std::string& value);
  sim::Task<client::StatusFuture> PutAsync(const std::string& key,
                                           const std::string& value);
  // Batched async puts: pairs are grouped by owning shard and each
  // group ships as one doorbell ring on that shard's client, so the
  // per-command submission cost amortizes across the batch AND across
  // shards. Futures come back in input order.
  sim::Task<std::vector<client::StatusFuture>> PutBatchAsync(
      std::vector<std::pair<std::string, std::string>> pairs);
  sim::Task<Status> Delete(const std::string& key);
  sim::Task<client::StatusFuture> DeleteAsync(const std::string& key);

  // Fan-out fsync: every shard's buffered PUTs are durable on return.
  sim::Task<Status> Sync();
  sim::Task<Status> SyncWithRetry(std::uint32_t attempts = 3);

  // --- lifecycle ---
  // Compacts every shard, staggered by the router's CompactionGovernor
  // (at most K shards compacting at once; kBusy triggers deferred
  // retry). Unlike the single-device Compact() this BLOCKS until every
  // shard reports COMPACTED — "compact the logical keyspace" is only
  // meaningful as a barrier across the fleet.
  sim::Task<Status> Compact();
  sim::Task<Status> CompactWithIndexes(
      std::vector<nvme::SecondaryIndexSpec> specs);
  // Barrier: blocks until every shard reports COMPACTED.
  sim::Task<Status> WaitCompaction();

  // Builds the index on every shard (governor-staggered) and records the
  // spec for host-side merge key derivation.
  sim::Task<Status> CreateSecondaryIndex(nvme::SecondaryIndexSpec spec);
  sim::Task<Status> CreateSecondaryIndexF32(const std::string& name,
                                            std::uint32_t value_offset);
  // Declares an index that already exists device-side (e.g. after
  // OpenKeyspace on a previously built fleet) so secondary scatter
  // queries can merge. No device command is issued.
  void RegisterSecondaryIndex(nvme::SecondaryIndexSpec spec);

  // --- routed point reads ---
  sim::Task<Result<std::string>> Get(const std::string& key);
  sim::Task<client::GetFuture> GetAsync(const std::string& key);

  // --- scatter-gather queries ---
  // Scatters to every shard with the same [lo, hi] and per-shard limit,
  // k-way merges the sorted streams by primary key and truncates to
  // `limit`. Because the partition is disjoint, the merged stream is
  // byte-identical to a single device holding the whole dataset.
  sim::Task<Status> Scan(const std::string& lo, const std::string& hi,
                         std::uint32_t limit, Rows* out);
  // Secondary scatter: merges by (encoded secondary key, primary key),
  // re-deriving each row's secondary key from the registered index spec.
  sim::Task<Status> QuerySecondaryRange(const std::string& index_name,
                                        const std::string& lo_encoded,
                                        const std::string& hi_encoded,
                                        std::uint32_t limit, Rows* out);
  sim::Task<Status> QuerySecondaryRangeF32(const std::string& index_name,
                                           float lo, float hi,
                                           std::uint32_t limit, Rows* out);

  // Pushdown select: the predicate/projection descriptor ships to every
  // shard; matches merge by primary key (or by secondary key when
  // opts.index_name is set). Projections that drop the indexed attribute
  // from the value cannot be merge-ordered — keep it in the range.
  // Like the single-device API these are NOT coroutines: arguments are
  // copied into the scatter coroutine up front, so caller temporaries
  // (a literal `{}` for opts) never dangle.
  sim::Task<Status> Select(const std::string& lo, const std::string& hi,
                           const client::KeyspaceHandle::SelectOptions& opts,
                           Rows* out) {
    return SelectScatter(lo, hi, opts, out);
  }
  // Pushdown aggregate: per-shard scalars fold host-side in shard order
  // 0..N-1 (deterministic). opts.limit must be 0: a matched-row cap is
  // not decomposable across shards. The opts-free overload scans
  // unfiltered over the primary range.
  sim::Task<Result<nvme::AggregateResult>> Aggregate(
      const std::string& lo, const std::string& hi,
      const nvme::AggregateSpec& agg,
      const client::KeyspaceHandle::SelectOptions& opts) {
    return AggregateScatter(lo, hi, agg, opts);
  }
  sim::Task<Result<nvme::AggregateResult>> Aggregate(
      const std::string& lo, const std::string& hi,
      const nvme::AggregateSpec& agg) {
    return AggregateScatter(lo, hi, agg, {});
  }

  // --- metadata ---
  // num_kvs sums over shards; state is the common per-shard state, or
  // "MIXED" when shards disagree (e.g. mid-compaction).
  sim::Task<Result<client::KeyspaceHandle::Stat>> GetStat();

 private:
  friend class ShardedClient;

  struct State {
    std::string name;
    std::vector<client::KeyspaceHandle> shards;
    // Index specs keyed by name, recorded at creation/registration so
    // scatter-gather merges can re-derive each row's secondary key.
    std::map<std::string, nvme::SecondaryIndexSpec> indexes;
  };

  ShardedKeyspaceHandle(ShardedClient* router, std::shared_ptr<State> state)
      : router_(router), state_(std::move(state)) {}

  // Governor-staggered per-shard compaction driver (spawned per shard).
  sim::Task<Status> CompactShard(std::uint32_t shard,
                                 std::vector<nvme::SecondaryIndexSpec> specs);
  sim::Task<Status> BuildIndexShard(std::uint32_t shard,
                                    nvme::SecondaryIndexSpec spec);
  // Coroutine bodies behind Select/Aggregate; own every argument by
  // value so no caller lifetime leaks into the scatter frame.
  sim::Task<Status> SelectScatter(std::string lo, std::string hi,
                                  client::KeyspaceHandle::SelectOptions opts,
                                  Rows* out);
  sim::Task<Result<nvme::AggregateResult>> AggregateScatter(
      std::string lo, std::string hi, nvme::AggregateSpec agg,
      client::KeyspaceHandle::SelectOptions opts);
  // Looks up a registered index spec; kInvalidArgument when unknown.
  Result<nvme::SecondaryIndexSpec> IndexSpec(const std::string& name) const;

  ShardedClient* router_ = nullptr;
  std::shared_ptr<State> state_;
};

class ShardedClient {
 public:
  // `shards` are non-owned, must outlive the router, and must all live
  // on `sim`. The partitioner is owned. At least one shard is required.
  ShardedClient(sim::Simulation* sim, std::vector<client::Client*> shards,
                std::unique_ptr<Partitioner> partitioner,
                ShardedClientConfig config = {});

  // Creates/opens/drops the keyspace under the same name on EVERY shard.
  sim::Task<Result<ShardedKeyspaceHandle>> CreateKeyspace(
      const std::string& name);
  sim::Task<Result<ShardedKeyspaceHandle>> OpenKeyspace(
      const std::string& name);
  sim::Task<Status> DropKeyspace(const std::string& name);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t ShardOf(std::string_view key) const {
    return partitioner_->ShardOf(key, num_shards());
  }
  client::Client& shard(std::uint32_t i) { return *shards_[i]; }
  const Partitioner& partitioner() const { return *partitioner_; }
  CompactionGovernor& governor() { return governor_; }
  const ShardedClientConfig& config() const { return config_; }
  sim::Simulation* sim() { return sim_; }

 private:
  friend class ShardedKeyspaceHandle;

  // Per-shard routed-op counters, cached off the stats registry so the
  // hot path is pointer bumps ("router.shard0.puts", ...).
  struct ShardCounters {
    sim::Counter* puts;
    sim::Counter* gets;
    sim::Counter* deletes;
  };

  sim::Simulation* sim_;
  std::vector<client::Client*> shards_;
  std::unique_ptr<Partitioner> partitioner_;
  ShardedClientConfig config_;
  CompactionGovernor governor_;
  std::vector<ShardCounters> shard_counters_;
  sim::Counter* busy_retries_;
};

}  // namespace kvcsd::router
