// Activity classes for per-class busy-time attribution (sim/resources.h).
// Split out of resources.h so wire-level code can name a class without
// depending on the simulation machinery.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kvcsd::sim {

// Who a resource is working for. Busy time on every metered resource is
// attributed to one of these classes so telemetry can separate "the NAND is
// saturated by compaction" from "the NAND is saturated by host reads" —
// since-boot averages (BandwidthResource::utilization, CpuPool::average_load)
// cannot make that distinction.
enum class Activity : std::uint8_t {
  kHostRead = 0,   // point/range/secondary lookups issued by the host
  kHostWrite = 1,  // puts, deletes, bulk ingest, buffer flushes
  kCompact = 2,    // initial compaction (KLOG sort, run build, index build)
  kRecompact = 3,  // delta fold / incremental re-compaction
  kPushdown = 4,   // kKvSelect / kKvAggregate device-side scans
  kDispatch = 5,   // the device command dispatch front-end
  kOther = 6,      // recovery, metadata, untagged work
};

inline constexpr std::size_t kActivityCount = 7;

inline const char* ActivityName(Activity act) {
  switch (act) {
    case Activity::kHostRead:
      return "host_read";
    case Activity::kHostWrite:
      return "host_write";
    case Activity::kCompact:
      return "compact";
    case Activity::kRecompact:
      return "recompact";
    case Activity::kPushdown:
      return "pushdown";
    case Activity::kDispatch:
      return "dispatch";
    case Activity::kOther:
      return "other";
  }
  return "other";
}

}  // namespace kvcsd::sim
