#include "sim/fault.h"

#include <utility>

#include "sim/log.h"

namespace kvcsd::sim {

std::string_view FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kAppend:
      return "append";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kReset:
      return "reset";
  }
  return "unknown";
}

bool FaultInjector::Hit(std::string_view point) {
  if (crashed_) return true;
  ++total_hits_;
  auto it = hit_counts_.find(point);
  if (it == hit_counts_.end()) {
    it = hit_counts_.emplace(std::string(point), 0).first;
    point_names_.push_back(it->first);
  }
  ++it->second;

  const bool by_global =
      armed_global_hit_ != 0 && total_hits_ == armed_global_hit_;
  const bool by_point = !armed_point_.empty() && point == armed_point_ &&
                        it->second == armed_point_nth_;
  if (by_global || by_point) {
    crash_point_ = std::string(point);
    if (log_ != nullptr) {
      log_->Error("fault", "crash point '" + crash_point_ + "' tripped (hit #" +
                               std::to_string(total_hits_) + ")");
    }
    Crash();
  }
  return crashed_;
}

void FaultInjector::ArmCrashAtPoint(std::string point, std::uint64_t nth) {
  armed_point_ = std::move(point);
  armed_point_nth_ = nth == 0 ? 1 : nth;
}

void FaultInjector::ArmCrashAtHit(std::uint64_t global_hit) {
  armed_global_hit_ = global_hit;
}

void FaultInjector::Crash() {
  if (crashed_) return;
  crashed_ = true;
  // Hooks may mutate SSD state (torn tail); run each exactly once.
  std::vector<std::pair<std::uint64_t, std::function<void()>>> hooks;
  hooks.swap(crash_hooks_);
  for (auto& [token, hook] : hooks) hook();
  if (log_ != nullptr) {
    log_->Error("fault", "power cut" + (crash_point_.empty()
                                            ? std::string(" (manual)")
                                            : " at '" + crash_point_ + "'"));
    log_->DumpToStderr(crash_point_.empty() ? "power cut"
                                            : "crash at " + crash_point_);
  }
}

std::uint64_t FaultInjector::hit_count(std::string_view point) const {
  auto it = hit_counts_.find(point);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::uint64_t FaultInjector::AddCrashHook(std::function<void()> hook) {
  const std::uint64_t token = next_hook_token_++;
  crash_hooks_.emplace_back(token, std::move(hook));
  return token;
}

void FaultInjector::RemoveCrashHook(std::uint64_t token) {
  std::erase_if(crash_hooks_,
                [token](const auto& entry) { return entry.first == token; });
}

void FaultInjector::AddErrorRule(ErrorRule rule) {
  rules_.push_back(ArmedRule{std::move(rule)});
}

Status FaultInjector::OnIo(FaultOp op, std::uint32_t zone) {
  if (crashed_) {
    return Status::IoError("simulated power loss: device is off");
  }
  for (ArmedRule& armed : rules_) {
    const ErrorRule& rule = armed.rule;
    if (rule.op != op) continue;
    if (rule.zone >= 0 && static_cast<std::uint32_t>(rule.zone) != zone) {
      continue;
    }
    if (rule.times != 0 && armed.injected >= rule.times) continue;
    ++armed.seen;
    if (armed.seen <= rule.skip) continue;
    if (rule.probability < 1.0 && rng_.NextDouble() >= rule.probability) {
      continue;
    }
    ++armed.injected;
    ++errors_injected_;
    if (log_ != nullptr) {
      log_->Warn("fault", "injected " + std::string(FaultOpName(op)) +
                              " error on zone " + std::to_string(zone) + ": " +
                              rule.message);
    }
    return Status(rule.code, rule.message);
  }
  return Status::Ok();
}

void FaultInjector::ResetForRestart() {
  crashed_ = false;
  armed_point_.clear();
  armed_point_nth_ = 0;
  armed_global_hit_ = 0;
  crash_hooks_.clear();
  rules_.clear();
}

}  // namespace kvcsd::sim
