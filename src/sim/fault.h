// Fault injection for the simulated device stack.
//
// Two mechanisms, both deterministic under a fixed seed:
//
//  * Crash points. Code on the device paths calls Hit("name") at the
//    instants where a power cut would be interesting (between the two log
//    appends of a flush, between the metadata-zone reset and the rewrite,
//    either side of the compaction commit, ...). Every call is counted, so
//    an unarmed "dry run" of a workload enumerates the reachable points;
//    arming by name+count or by global hit index then replays the same
//    workload and cuts power at exactly one of them. After the crash every
//    SSD operation fails until the injector is reset for restart — the
//    byte state that survives is what recovery gets to work with.
//
//  * I/O error rules. OnIo() consults match rules (operation, optional
//    zone, probability, skip/times windows) and returns the rule's status
//    when one fires, modelling transient or persistent media errors
//    without powering the device off.
//
// The injector also owns the "torn tail" model: on Crash() it runs the
// registered crash hooks, and ZnsSsd registers one that truncates the
// in-flight last append to a configurable fraction — the classic
// power-loss artifact that log recovery must tolerate.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace kvcsd::sim {

class Log;

enum class FaultOp : std::uint8_t {
  kAppend = 0,
  kRead,
  kReset,
};

std::string_view FaultOpName(FaultOp op);

// One error-injection rule. A rule fires on operations matching (op,
// zone); `skip` matching operations pass through first, then each match
// fails with `probability`, at most `times` times (0 = no limit).
struct ErrorRule {
  FaultOp op = FaultOp::kAppend;
  std::int64_t zone = -1;  // -1 matches any zone
  double probability = 1.0;
  std::uint64_t skip = 0;
  std::uint64_t times = 1;
  StatusCode code = StatusCode::kIoError;
  std::string message = "injected I/O error";
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 42) : rng_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- crash points ---

  // Registers one pass through the named crash point and returns whether
  // the device is (now) crashed. Call sites abort their operation with an
  // I/O error when this returns true.
  bool Hit(std::string_view point);

  // Cuts power the `nth` time (1-based) `point` is hit.
  void ArmCrashAtPoint(std::string point, std::uint64_t nth = 1);
  // Cuts power at the k-th (1-based) crash-point hit overall, regardless
  // of name — the sweep driver's way to cover every reachable point.
  void ArmCrashAtHit(std::uint64_t global_hit);

  // Immediate power cut: marks the injector crashed and runs the
  // registered crash hooks (e.g. the SSD's torn-tail truncation) once.
  void Crash();

  bool crashed() const { return crashed_; }
  // Name of the point that fired the crash ("" for a manual Crash()).
  const std::string& crash_point() const { return crash_point_; }
  // Total crash-point hits observed (counting stops once crashed).
  std::uint64_t hits() const { return total_hits_; }
  std::uint64_t hit_count(std::string_view point) const;
  // Every point name seen so far, in first-hit order.
  const std::vector<std::string>& points() const { return point_names_; }

  // Hooks run exactly once, synchronously, inside Crash(). Returns a
  // token for RemoveCrashHook; an owner whose lifetime can end before the
  // injector's must deregister, or Crash() calls into freed memory.
  std::uint64_t AddCrashHook(std::function<void()> hook);
  // Idempotent: tokens already consumed by Crash()/ResetForRestart() (or
  // never issued) are ignored.
  void RemoveCrashHook(std::uint64_t token);

  // --- I/O error injection ---

  void AddErrorRule(ErrorRule rule);
  // Consulted by ZnsSsd at the top of Append/Read/Reset. Returns the
  // matching rule's status, a power-off error when crashed, or OK.
  Status OnIo(FaultOp op, std::uint32_t zone);
  std::uint64_t errors_injected() const { return errors_injected_; }

  // --- torn tail ---

  // Fraction (0..1) of the in-flight last append that survives a crash;
  // negative disables tearing. A fraction < 1 always drops at least one
  // byte of the torn append.
  void set_torn_tail_keep(double fraction) { torn_tail_keep_ = fraction; }
  double torn_tail_keep() const { return torn_tail_keep_; }

  // --- structured logging ---

  // Binds the simulation's event log (log.h). The injector records armed
  // crashes, injected I/O errors, and the power cut itself, and dumps the
  // whole ring to stderr when a crash point trips — the flight recorder
  // for crash-sweep failures. The log must outlive the injector's use.
  void set_log(Log* log) { log_ = log; }
  Log* log() const { return log_; }

  // Prepares the injector for a Device::Restart over the surviving bytes:
  // clears the crashed flag, armed crash points, crash hooks, and error
  // rules. Hit counters and the recorded crash point survive, so the
  // caller can still read what happened.
  void ResetForRestart();

 private:
  Rng rng_;
  Log* log_ = nullptr;
  bool crashed_ = false;
  std::string crash_point_;

  std::uint64_t total_hits_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> hit_counts_;
  std::vector<std::string> point_names_;

  std::string armed_point_;
  std::uint64_t armed_point_nth_ = 0;
  std::uint64_t armed_global_hit_ = 0;

  std::vector<std::pair<std::uint64_t, std::function<void()>>> crash_hooks_;
  std::uint64_t next_hook_token_ = 1;

  struct ArmedRule {
    ErrorRule rule;
    std::uint64_t seen = 0;      // matching operations observed
    std::uint64_t injected = 0;  // failures delivered
  };
  std::vector<ArmedRule> rules_;
  std::uint64_t errors_injected_ = 0;

  double torn_tail_keep_ = -1.0;
};

}  // namespace kvcsd::sim
