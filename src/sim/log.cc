#include "sim/log.h"

#include <cstdio>

namespace kvcsd::sim {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Log::set_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  while (entries_.size() > capacity_) entries_.pop_front();
}

void Log::Write(LogLevel level, std::string_view component,
                std::string message) {
  if (level < min_level_) return;
  Entry e;
  e.seq = next_seq_++;
  e.tick = clock_ ? clock_() : 0;
  e.level = level;
  e.component = std::string(component);
  e.message = std::move(message);
  entries_.push_back(std::move(e));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::string Log::ToString() const {
  std::string out;
  char head[96];
  for (const Entry& e : entries_) {
    std::snprintf(head, sizeof(head), "[%12llu ns] %-5s %s: ",
                  static_cast<unsigned long long>(e.tick),
                  std::string(LogLevelName(e.level)).c_str(),
                  e.component.c_str());
    out += head;
    out += e.message;
    out += '\n';
  }
  return out;
}

void Log::DumpToStderr(std::string_view banner) const {
  if (entries_.empty()) return;
  std::fprintf(stderr, "--- sim::Log (%s; last %zu of %llu entries) ---\n",
               std::string(banner).c_str(), entries_.size(),
               static_cast<unsigned long long>(next_seq_));
  const std::string body = ToString();
  std::fwrite(body.data(), 1, body.size(), stderr);
  std::fprintf(stderr, "--- end sim::Log ---\n");
}

void Log::Clear() {
  entries_.clear();
  next_seq_ = 0;
}

}  // namespace kvcsd::sim
