// Structured event log for the simulation: a leveled, fixed-size ring of
// timestamped entries. Unlike the tracer (bulk span data, dumped at exit)
// this is the "flight recorder": the fault injector and recovery replay
// write human-readable breadcrumbs here, and the whole ring is dumped to
// stderr when a crash point trips — so a failing crash-sweep case shows
// what the device was doing when the power went out.
//
// The ring is owned by the Simulation, not the Device, so it survives a
// Device::Restart power cycle: post-crash recovery appends to the same
// ring the pre-crash flush was writing to.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "common/units.h"

namespace kvcsd::sim {

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

std::string_view LogLevelName(LogLevel level);

class Log {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  struct Entry {
    std::uint64_t seq = 0;  // monotonic across ring evictions
    Tick tick = 0;
    LogLevel level = LogLevel::kInfo;
    std::string component;
    std::string message;
  };

  // The clock callback stamps entries with simulated time; the owning
  // Simulation binds its own clock at construction.
  void BindClock(std::function<Tick()> clock) { clock_ = std::move(clock); }

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  void Write(LogLevel level, std::string_view component,
             std::string message);
  void Debug(std::string_view component, std::string message) {
    Write(LogLevel::kDebug, component, std::move(message));
  }
  void Info(std::string_view component, std::string message) {
    Write(LogLevel::kInfo, component, std::move(message));
  }
  void Warn(std::string_view component, std::string message) {
    Write(LogLevel::kWarn, component, std::move(message));
  }
  void Error(std::string_view component, std::string message) {
    Write(LogLevel::kError, component, std::move(message));
  }

  // Oldest-first view of the surviving entries.
  const std::deque<Entry>& entries() const { return entries_; }
  // Total accepted writes, including entries the ring has since evicted.
  std::uint64_t total_written() const { return next_seq_; }

  // One "[tick] LEVEL component: message" line per entry.
  std::string ToString() const;
  void DumpToStderr(std::string_view banner) const;
  void Clear();

 private:
  std::function<Tick()> clock_;
  LogLevel min_level_ = LogLevel::kDebug;
  std::size_t capacity_ = kDefaultCapacity;
  std::deque<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace kvcsd::sim
