// Fan-out/fan-in helpers for simulation processes: structured task groups,
// a bounded-concurrency parallel for-loop, and a bounded hand-off channel
// for producer/consumer pipelines.
//
// These wrap the detached-spawn machinery so that callers get *structured*
// concurrency: every helper joins all of the work it started before
// returning, which keeps coroutine frames (and anything they reference)
// alive for the duration of the parallel section. Like everything in
// sim/, concurrency is virtual and deterministic: spawn order == start
// order, so the same inputs always produce the same event interleaving.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/status.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::sim {

// Spawns Status-returning tasks as detached processes and joins them.
// Wait() blocks until every spawned task finished and returns the first
// non-OK status (in completion order), or OK. The group must outlive all
// spawned tasks; Wait() before destruction guarantees that.
class TaskGroup {
 public:
  explicit TaskGroup(Simulation* sim) : sim_(sim), wg_(sim) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(Task<Status> task) {
    wg_.Add(1);
    sim_->Spawn(Run(this, std::move(task)));
  }

  Task<Status> Wait() {
    co_await wg_.Wait();
    co_return first_error_;
  }

  std::int64_t pending() const { return wg_.count(); }

 private:
  static Task<void> Run(TaskGroup* group, Task<Status> task) {
    Status s = co_await std::move(task);
    if (!s.ok() && group->first_error_.ok()) group->first_error_ = s;
    group->wg_.Done();
  }

  Simulation* sim_;
  WaitGroup wg_;
  Status first_error_;
};

namespace detail {

template <typename Fn>
struct ParallelForState {
  std::size_t next = 0;
  std::size_t n = 0;
  Fn* fn = nullptr;
  bool failed = false;
};

template <typename Fn>
Task<Status> ParallelForWorker(ParallelForState<Fn>* state) {
  while (!state->failed && state->next < state->n) {
    const std::size_t i = state->next++;
    Status s = co_await (*state->fn)(i);
    if (!s.ok()) {
      state->failed = true;
      co_return s;
    }
  }
  co_return Status::Ok();
}

}  // namespace detail

// Runs fn(0), fn(1), ..., fn(n-1) with at most `workers` instances in
// flight. Indexes are claimed in order, so with workers == 1 this is a
// plain sequential loop. On the first failure no further indexes are
// claimed (in-flight iterations still complete) and the error is
// returned. `fn` is a callable returning Task<Status>; it must stay valid
// until ParallelFor returns, which the join guarantees for lambdas living
// in the caller's frame.
template <typename Fn>
Task<Status> ParallelFor(Simulation* sim, std::size_t n, std::uint32_t workers,
                         Fn fn) {
  detail::ParallelForState<Fn> state;
  state.n = n;
  state.fn = &fn;
  const std::size_t count =
      std::min<std::size_t>(std::max<std::uint32_t>(workers, 1), n);
  TaskGroup group(sim);
  for (std::size_t i = 0; i < count; ++i) {
    group.Spawn(detail::ParallelForWorker(&state));
  }
  co_return co_await group.Wait();
}

// Bounded hand-off queue connecting pipeline stages. Push() suspends while
// `capacity` items are unconsumed (backpressure bounds the DRAM the
// pipeline can hold); Pop() suspends while the queue is empty. After
// Close(), Pop() returns nullopt once the queue drains; consumers should
// keep popping until then so a blocked producer is always released.
template <typename T>
class BoundedChannel {
 public:
  BoundedChannel(Simulation* sim, std::size_t capacity)
      : slots_(sim, capacity == 0 ? 1 : capacity), avail_(sim, 0) {}
  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  Task<void> Push(T item) {
    co_await slots_.Acquire();
    items_.push_back(std::move(item));
    avail_.Release();
  }

  Task<std::optional<T>> Pop() {
    co_await avail_.Acquire();
    if (items_.empty()) {
      // Woken by Close(): re-release so any other popper also wakes.
      avail_.Release();
      co_return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    slots_.Release();
    co_return item;
  }

  void Close() {
    closed_ = true;
    avail_.Release();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return items_.size(); }

 private:
  Semaphore slots_;
  Semaphore avail_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace kvcsd::sim
