// Timed, contended resources: bandwidth pipes (PCIe links, NAND channels,
// DRAM) and CPU pools (host cores, SoC ARM cores).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/activity.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::sim {

// Per-activity-class busy-time accounting over rotating windows aligned to
// an absolute grid: window k covers [k*W, (k+1)*W). Writers call Add() with
// busy ticks; readers see the last *completed* window, so a gauge sampled
// anywhere inside window k+1 reports window k's totals — a stable value
// independent of where in the window the sample lands. Accounting only:
// Add() never advances simulated time, so metering cannot perturb the
// schedule (bench fingerprints are unchanged by attaching a meter).
class ResourceMeter {
 public:
  static constexpr Tick kDefaultWindow = Microseconds(100);

  ResourceMeter(Simulation* sim, std::string name, double capacity,
                Tick window = kDefaultWindow)
      : sim_(sim),
        name_(std::move(name)),
        capacity_(capacity),
        window_(window == 0 ? kDefaultWindow : window) {}

  // Attribute `busy` ticks of work to `act` in the window containing the
  // current tick. Work that spans a window boundary is booked entirely to
  // the window in which it completes; over windows much longer than a
  // single operation the error is negligible and the bookkeeping is O(1).
  void Add(Activity act, Tick busy) {
    const std::uint64_t idx = sim_->Now() / window_;
    if (idx != cur_index_) {
      prev_ = (idx == cur_index_ + 1) ? cur_ : Buckets{};
      prev_index_ = idx - 1;
      cur_ = Buckets{};
      cur_index_ = idx;
    }
    cur_[static_cast<std::size_t>(act)] += busy;
    total_[static_cast<std::size_t>(act)] += busy;
  }

  // Busy ticks per class over the last completed window, derived lazily
  // from the current tick (rotation happens on Add, so a long-idle meter
  // must not report a stale window as recent).
  std::array<Tick, kActivityCount> WindowBusy() const {
    const std::uint64_t idx = sim_->Now() / window_;
    if (idx == cur_index_ + 1) return cur_;  // cur_ window just completed
    if (idx == cur_index_ && prev_index_ + 1 == cur_index_) return prev_;
    return Buckets{};  // idle across >= 1 full window: nothing recent
  }

  // Last-completed-window load for one class, in resource-equivalents
  // (1.0 = one core / the full link busy for the whole window). Can exceed
  // 1.0 on pools with capacity > 1.
  double WindowLoad(Activity act) const {
    return static_cast<double>(WindowBusy()[static_cast<std::size_t>(act)]) /
           static_cast<double>(window_);
  }

  // Utilization of the *current, partial* window: total busy across all
  // classes divided by capacity * elapsed-in-window. Returns a stable 0.0
  // when zero ticks of the window have elapsed — at t=0 and at the exact
  // instant of a window rotation — instead of dividing by zero (the
  // early-tick edge that produced NaN/inf gauges).
  double utilization() const {
    const Tick now = sim_->Now();
    const Tick elapsed = now % window_;
    if (elapsed == 0) return 0.0;
    if (now / window_ != cur_index_) return 0.0;  // nothing booked yet
    Tick busy = 0;
    for (const Tick b : cur_) busy += b;
    return static_cast<double>(busy) /
           (capacity_ * static_cast<double>(elapsed));
  }

  // Since-construction busy ticks per class (never rotated away).
  std::array<Tick, kActivityCount> TotalBusy() const { return total_; }

  // Appends one gauge per class — "util.<name>.<class>" in permille of one
  // resource-equivalent over the last completed window — plus
  // "util.<name>.capacity" (permille, so a 4-core pool reports 4000).
  // Telemetry gauges are u64, hence the fixed-point encoding.
  void AppendGauges(
      std::vector<std::pair<std::string, std::uint64_t>>* out) const {
    const auto busy = WindowBusy();
    for (std::size_t i = 0; i < kActivityCount; ++i) {
      out->emplace_back(
          "util." + name_ + "." + ActivityName(static_cast<Activity>(i)),
          busy[i] * 1000 / window_);
    }
    out->emplace_back("util." + name_ + ".capacity",
                      static_cast<std::uint64_t>(capacity_ * 1000.0));
  }

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  Tick window() const { return window_; }

 private:
  using Buckets = std::array<Tick, kActivityCount>;

  Simulation* sim_;
  std::string name_;
  double capacity_;
  Tick window_;
  std::uint64_t cur_index_ = 0;
  std::uint64_t prev_index_ = 0;
  Buckets cur_{};
  Buckets prev_{};
  Buckets total_{};
};

// A FIFO pipe with a fixed byte rate and a fixed per-operation latency.
// Transfers serialize on the pipe (service time = bytes/rate) but the
// per-op latency pipelines, i.e. back-to-back messages each pay the latency
// concurrently, like a real link.
class BandwidthResource {
 public:
  BandwidthResource(Simulation* sim, std::string name, double bytes_per_sec,
                    Tick per_op_latency = 0)
      : sim_(sim),
        name_(std::move(name)),
        bytes_per_sec_(bytes_per_sec),
        per_op_latency_(per_op_latency) {}

  // Completes when the last byte has moved through the pipe. `act` tags the
  // service time in the attached meter (if any); it never changes timing.
  Task<void> Transfer(std::uint64_t bytes, Activity act = Activity::kOther) {
    const Tick now = sim_->Now();
    const Tick service = TransferTicks(bytes, bytes_per_sec_);
    const Tick start = now > next_free_ ? now : next_free_;
    next_free_ = start + service;
    ops_ += 1;
    bytes_ += bytes;
    busy_ += service;
    if (meter_ != nullptr) meter_->Add(act, service);
    const Tick done = start + per_op_latency_ + service;
    co_await sim_->Delay(done - now);
  }

  // Attaches a per-activity meter; several pipes (e.g. NAND channels) may
  // share one meter, which then reports their aggregate in
  // channel-equivalents. The meter must outlive the pipe.
  void set_meter(ResourceMeter* meter) { meter_ = meter; }

  const std::string& name() const { return name_; }
  std::uint64_t total_bytes() const { return bytes_; }
  std::uint64_t total_ops() const { return ops_; }
  Tick busy_time() const { return busy_; }
  double utilization() const {
    const Tick now = sim_->Now();
    return now == 0 ? 0.0
                    : static_cast<double>(busy_) / static_cast<double>(now);
  }

 private:
  Simulation* sim_;
  std::string name_;
  double bytes_per_sec_;
  Tick per_op_latency_;
  ResourceMeter* meter_ = nullptr;
  Tick next_free_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_ = 0;
  Tick busy_ = 0;
};

// A pool of identical cores. Compute(cost) occupies one core for `cost`
// simulated ns, queueing FIFO when all cores are busy. This models the
// paper's CPU-pinning setup directly: "N cores available to this workload"
// is a pool of size N shared by foreground threads and background workers.
class CpuPool {
 public:
  CpuPool(Simulation* sim, std::string name, std::uint32_t cores)
      : sim_(sim),
        name_(std::move(name)),
        cores_(cores),
        sem_(sim, cores),
        meter_(sim, name_, static_cast<double>(cores)) {}

  Task<void> Compute(Tick cost, Activity act = Activity::kOther) {
    co_await sem_.Acquire();
    co_await sim_->Delay(cost);
    busy_ += cost;
    meter_.Add(act, cost);
    sem_.Release();
  }

  // Convenience: cost expressed as bytes processed at a per-core rate.
  Task<void> ComputeBytes(std::uint64_t bytes, double bytes_per_sec,
                          Activity act = Activity::kOther) {
    co_await Compute(TransferTicks(bytes, bytes_per_sec), act);
  }

  const std::string& name() const { return name_; }
  std::uint32_t cores() const { return cores_; }
  Tick busy_time() const { return busy_; }
  // Per-activity windowed occupancy (core-equivalents per class).
  ResourceMeter& meter() { return meter_; }
  const ResourceMeter& meter() const { return meter_; }
  // Average core occupancy in [0, cores].
  double average_load() const {
    const Tick now = sim_->Now();
    return now == 0 ? 0.0
                    : static_cast<double>(busy_) / static_cast<double>(now);
  }

 private:
  Simulation* sim_;
  std::string name_;
  std::uint32_t cores_;
  Semaphore sem_;
  Tick busy_ = 0;
  ResourceMeter meter_;
};

}  // namespace kvcsd::sim
