// Timed, contended resources: bandwidth pipes (PCIe links, NAND channels,
// DRAM) and CPU pools (host cores, SoC ARM cores).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace kvcsd::sim {

// A FIFO pipe with a fixed byte rate and a fixed per-operation latency.
// Transfers serialize on the pipe (service time = bytes/rate) but the
// per-op latency pipelines, i.e. back-to-back messages each pay the latency
// concurrently, like a real link.
class BandwidthResource {
 public:
  BandwidthResource(Simulation* sim, std::string name, double bytes_per_sec,
                    Tick per_op_latency = 0)
      : sim_(sim),
        name_(std::move(name)),
        bytes_per_sec_(bytes_per_sec),
        per_op_latency_(per_op_latency) {}

  // Completes when the last byte has moved through the pipe.
  Task<void> Transfer(std::uint64_t bytes) {
    const Tick now = sim_->Now();
    const Tick service = TransferTicks(bytes, bytes_per_sec_);
    const Tick start = now > next_free_ ? now : next_free_;
    next_free_ = start + service;
    ops_ += 1;
    bytes_ += bytes;
    busy_ += service;
    const Tick done = start + per_op_latency_ + service;
    co_await sim_->Delay(done - now);
  }

  const std::string& name() const { return name_; }
  std::uint64_t total_bytes() const { return bytes_; }
  std::uint64_t total_ops() const { return ops_; }
  Tick busy_time() const { return busy_; }
  double utilization() const {
    const Tick now = sim_->Now();
    return now == 0 ? 0.0
                    : static_cast<double>(busy_) / static_cast<double>(now);
  }

 private:
  Simulation* sim_;
  std::string name_;
  double bytes_per_sec_;
  Tick per_op_latency_;
  Tick next_free_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_ = 0;
  Tick busy_ = 0;
};

// A pool of identical cores. Compute(cost) occupies one core for `cost`
// simulated ns, queueing FIFO when all cores are busy. This models the
// paper's CPU-pinning setup directly: "N cores available to this workload"
// is a pool of size N shared by foreground threads and background workers.
class CpuPool {
 public:
  CpuPool(Simulation* sim, std::string name, std::uint32_t cores)
      : sim_(sim), name_(std::move(name)), cores_(cores), sem_(sim, cores) {}

  Task<void> Compute(Tick cost) {
    co_await sem_.Acquire();
    co_await sim_->Delay(cost);
    busy_ += cost;
    sem_.Release();
  }

  // Convenience: cost expressed as bytes processed at a per-core rate.
  Task<void> ComputeBytes(std::uint64_t bytes, double bytes_per_sec) {
    co_await Compute(TransferTicks(bytes, bytes_per_sec));
  }

  const std::string& name() const { return name_; }
  std::uint32_t cores() const { return cores_; }
  Tick busy_time() const { return busy_; }
  // Average core occupancy in [0, cores].
  double average_load() const {
    const Tick now = sim_->Now();
    return now == 0 ? 0.0
                    : static_cast<double>(busy_) / static_cast<double>(now);
  }

 private:
  Simulation* sim_;
  std::string name_;
  std::uint32_t cores_;
  Semaphore sem_;
  Tick busy_ = 0;
};

}  // namespace kvcsd::sim
