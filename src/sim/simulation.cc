#include "sim/simulation.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace kvcsd::sim {

// Self-destroying fire-and-forget coroutine used to host spawned processes.
struct Simulation::DetachedRunner {
  struct promise_type {
    DetachedRunner get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      // Library code reports failures via Status; an exception reaching a
      // detached process root is a programming error we cannot recover
      // from deterministically.
      std::fprintf(stderr,
                   "kvcsd::sim: unhandled exception in detached process\n");
      std::terminate();
    }
  };
};

namespace {

Simulation::DetachedRunner RunDetached(Simulation* sim, Task<void> task,
                                       std::size_t* live) {
  // Queue the start so spawn order == start order at the current tick.
  co_await sim->Delay(0);
  co_await std::move(task);
  --*live;
}

}  // namespace

void Simulation::Spawn(Task<void> task) {
  ++live_processes_;
  RunDetached(this, std::move(task), &live_processes_);
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ev.handle.resume();
  return true;
}

Tick Simulation::Run() {
  while (Step()) {
  }
  return now_;
}

Tick Simulation::RunUntil(Tick deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace kvcsd::sim
