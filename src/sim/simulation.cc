#include "sim/simulation.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace kvcsd::sim {

// Self-destroying fire-and-forget coroutine used to host spawned processes.
// Each runner registers its frame with the owning Simulation for the whole
// time it exists (the promise constructor/destructor bracket the frame's
// lifetime exactly), so ~Simulation can reclaim processes that are still
// blocked on a primitive nobody will ever signal.
struct Simulation::DetachedRunner {
  struct promise_type {
    Simulation* sim;

    // Matches RunDetached's parameter list (the promise constructor sees
    // the coroutine's arguments).
    promise_type(Simulation* s, Task<void>&, std::size_t*) : sim(s) {
      sim->detached_.insert(
          std::coroutine_handle<promise_type>::from_promise(*this).address());
    }
    ~promise_type() {
      sim->detached_.erase(
          std::coroutine_handle<promise_type>::from_promise(*this).address());
    }

    DetachedRunner get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      // Library code reports failures via Status; an exception reaching a
      // detached process root is a programming error we cannot recover
      // from deterministically.
      std::fprintf(stderr,
                   "kvcsd::sim: unhandled exception in detached process\n");
      std::terminate();
    }
  };
};

namespace {

Simulation::DetachedRunner RunDetached(Simulation* sim, Task<void> task,
                                       std::size_t* live) {
  // Queue the start so spawn order == start order at the current tick.
  co_await sim->Delay(0);
  co_await std::move(task);
  --*live;
}

}  // namespace

void Simulation::Spawn(Task<void> task) {
  ++live_processes_;
  RunDetached(this, std::move(task), &live_processes_);
}

Simulation::~Simulation() {
  // A process blocked forever (a device main loop parked on its submission
  // queue) never reaches its frame-destroying final suspend; destroying the
  // runner cascades through the Task chain it owns. destroy() unregisters
  // the frame via ~promise_type, so keep taking the first survivor.
  while (!detached_.empty()) {
    std::coroutine_handle<>::from_address(*detached_.begin()).destroy();
  }
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  // Sample gauges before resuming, so the sample sees the state as of the
  // cadence boundary the clock just crossed. Sampling takes no simulated
  // time; a disabled sampler costs one branch per event.
  if (telemetry_.Due(now_)) telemetry_.Sample(now_);
  ev.handle.resume();
  return true;
}

Tick Simulation::Run() {
  while (Step()) {
  }
  return now_;
}

Tick Simulation::RunUntil(Tick deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace kvcsd::sim
