// The discrete-event simulation engine.
//
// A Simulation owns a virtual clock (nanoseconds) and an event queue of
// coroutine handles to resume. "Processes" (application threads, the device
// main loop, background compaction workers) are coroutines spawned onto the
// simulation; they interact through awaitable synchronization primitives
// (sync.h) and timed resources (resources.h). Everything is deterministic:
// same inputs, same event order, same final clock — by design, since the
// reproduction's claims are about time ratios.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"
#include "sim/log.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "sim/telemetry.h"
#include "sim/tracer.h"

namespace kvcsd::sim {

class Simulation {
 public:
  Simulation() {
    log_.BindClock([this] { return now_; });
  }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Destroys any detached process still suspended (e.g. a device main loop
  // parked forever on its submission queue). Such a process must not hold
  // RAII locals that touch objects destroyed before the Simulation.
  ~Simulation();

  Tick Now() const { return now_; }

  // Schedule `handle` to be resumed at absolute time `when` (>= Now()).
  // Events at equal times fire in schedule order (FIFO), which keeps runs
  // deterministic.
  void ScheduleAt(Tick when, std::coroutine_handle<> handle) {
    if (when < now_) when = now_;
    queue_.push(Event{when, next_seq_++, handle});
  }

  // Awaitable: suspends the current coroutine for `delay` simulated ns.
  auto Delay(Tick delay) {
    struct Awaiter {
      Simulation* sim;
      Tick delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim->ScheduleAt(sim->now_ + delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  // Launch a detached process. It is queued to start at the current time
  // and runs interleaved with everything else. Exceptions escaping a
  // detached process terminate the simulation (library code reports errors
  // via Status; an exception here is a programming error).
  void Spawn(Task<void> task);

  // Run until the event queue drains. Returns the final clock value.
  Tick Run();

  // Run until the clock reaches `deadline` or the queue drains, whichever
  // is first. Events scheduled exactly at `deadline` are processed.
  Tick RunUntil(Tick deadline);

  // Number of spawned processes that have not yet finished. After Run(), a
  // nonzero value means some process is blocked forever (deadlock) — tests
  // assert this is zero.
  std::size_t live_processes() const { return live_processes_; }

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  // Span tracer (tracer.h); disabled until Tracer::Enable().
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Gauge time-series sampler (telemetry.h); polled by the event loop,
  // disabled until TelemetrySampler::Enable().
  TelemetrySampler& telemetry() { return telemetry_; }
  const TelemetrySampler& telemetry() const { return telemetry_; }

  // Structured event ring (log.h); stamped with the simulated clock.
  // Owned here rather than by the Device so it survives power cycles.
  Log& log() { return log_; }
  const Log& log() const { return log_; }

  // Monotonic causal command id, unique for the simulation's lifetime
  // (across Device::Restart power cycles and any number of clients). Ids
  // start at 1 so 0 can mean "no command" in trace args.
  std::uint64_t AllocateCmdId() { return ++last_cmd_id_; }

  struct DetachedRunner;  // implementation detail, defined in simulation.cc

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool Step();  // pop + resume one event; false if queue empty

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::size_t live_processes_ = 0;
  // Frame addresses of detached runners still in flight; each runner
  // registers in its promise constructor and unregisters in the promise
  // destructor, so the set always names exactly the frames the destructor
  // must reclaim.
  std::unordered_set<void*> detached_;
  Stats stats_;
  Tracer tracer_;
  TelemetrySampler telemetry_;
  Log log_;
  std::uint64_t last_cmd_id_ = 0;
};

}  // namespace kvcsd::sim
