#include "sim/stats.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace kvcsd::sim {

namespace {

constexpr int kSubBucketBits = 4;
constexpr int kSubBuckets = 1 << kSubBucketBits;

// Log-linear bucketing: values below kSubBuckets are exact; a value in
// octave [2^o, 2^(o+1)) (o >= kSubBucketBits) lands in one of kSubBuckets
// equal-width sub-buckets keyed by its bits just below the leading one.
int BucketFor(std::uint64_t v) {
  if (v < static_cast<std::uint64_t>(kSubBuckets)) return static_cast<int>(v);
  const int octave = static_cast<int>(std::bit_width(v)) - 1;
  const int sub = static_cast<int>((v >> (octave - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return kSubBuckets + (octave - kSubBucketBits) * kSubBuckets + sub;
}

// Inclusive-exclusive [lo, hi) value range of bucket `b`, as doubles so
// the top octave cannot overflow uint64.
void BucketBounds(int b, double* lo, double* hi) {
  if (b < kSubBuckets) {
    *lo = static_cast<double>(b);
    *hi = static_cast<double>(b + 1);
    return;
  }
  const int rel = b - kSubBuckets;
  const int shift = rel / kSubBuckets;  // octave - kSubBucketBits
  const int sub = rel % kSubBuckets;
  const double width = std::pow(2.0, shift);
  *lo = static_cast<double>(kSubBuckets + sub) * width;
  *hi = *lo + width;
}

// Relaxed CAS min/max: exactness matters only once writers join, and the
// loop retries until this thread's value is no longer an improvement.
void AtomicMin(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(std::uint64_t v) {
  buckets_[static_cast<std::size_t>(BucketFor(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

double Histogram::Percentile(double p) const {
  // Snapshot the buckets and derive the total from the snapshot, so the
  // math stays internally consistent even if writers race the read.
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    snap[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    total += snap[static_cast<std::size_t>(b)];
  }
  if (total == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = snap[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      double lo = 0.0;
      double hi = 0.0;
      BucketBounds(b, &lo, &hi);
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max());
}

HistogramSummary Histogram::Summary() const {
  HistogramSummary s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = Percentile(50);
  s.p95 = Percentile(95);
  s.p99 = Percentile(99);
  s.p999 = Percentile(99.9);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Stats::Reset() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

std::string Stats::ToString(std::string_view prefix) const {
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    std::snprintf(line, sizeof(line), "%-48s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    const HistogramSummary s = h.Summary();
    std::snprintf(line, sizeof(line),
                  "%-48s : n=%llu mean=%.1f p50=%.0f p99=%.0f max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean, s.p50, s.p99,
                  static_cast<unsigned long long>(s.max));
    out += line;
  }
  return out;
}

}  // namespace kvcsd::sim
