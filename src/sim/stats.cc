#include "sim/stats.h"

#include <bit>
#include <cstdio>

namespace kvcsd::sim {

namespace {

int BucketFor(std::uint64_t v) {
  // 0 -> 0, [2^(k-1), 2^k) -> k; values with the top bit set share the
  // last bucket (bit_width(UINT64_MAX) == 64 would otherwise overflow).
  return v == 0 ? 0 : std::min(static_cast<int>(std::bit_width(v)), 63);
}

}  // namespace

void Histogram::Record(std::uint64_t v) {
  ++buckets_[static_cast<std::size_t>(BucketFor(v))];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      const double hi = static_cast<double>(
          b == 0 ? 1ull : (b >= 63 ? UINT64_MAX : (1ull << b)));
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max_);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

void Stats::Reset() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

std::string Stats::ToString(std::string_view prefix) const {
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    std::snprintf(line, sizeof(line), "%-48s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    std::snprintf(line, sizeof(line),
                  "%-48s : n=%llu mean=%.1f p50=%.0f p99=%.0f max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.mean(), h.Percentile(50), h.Percentile(99),
                  static_cast<unsigned long long>(h.max()));
    out += line;
  }
  return out;
}

}  // namespace kvcsd::sim
