// Simulation-wide statistics registry: named monotonic counters and
// log-linear-bucketed histograms. These back the paper's "I/O statistics" plots
// (Fig. 7b, Fig. 10b): every storage, filesystem, and interconnect layer
// counts the bytes and operations that pass through it.
//
// Thread safety: recording (Counter::Add/Increment, Histogram::Record) is
// lock-free and safe from any number of OS threads — simulation code is
// single-threaded coroutines today, but harness and test code may hammer
// the same objects from real threads (tests/sim/stats_test.cc stresses
// exactly that). Registry mutation (Stats::counter/histogram inserting a
// new name) and Reset() are NOT thread-safe: create the named series and
// quiesce writers before resetting, then fan out. Readers (value, count,
// Percentile, ToString) take relaxed snapshots and may observe a
// mid-update state under concurrency; totals are exact once writers join.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace kvcsd::sim {

class Counter {
 public:
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// One-line digest of a histogram; produced by Histogram::Summary() and
// shared by every reporter (Stats::ToString, harness::JsonReporter) so the
// percentile set and its derivation live in exactly one place.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// Histogram with log-linear buckets: values < 16 are exact, larger values
// land in one of 16 linear sub-buckets per power-of-two octave (~6.25%
// relative resolution), tight enough that p99 at sub-microsecond scale is
// meaningful. Tracks count/sum/min/max and approximate percentiles.
class Histogram {
 public:
  void Record(std::uint64_t v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  // Approximate p-th percentile (0 < p <= 100) by linear interpolation
  // within the containing log-linear bucket, clamped to [min, max].
  double Percentile(double p) const;
  // Consistent one-shot digest (count/sum/min/max/mean/p50/p95/p99/p999).
  HistogramSummary Summary() const;
  void Reset();

 private:
  // 16 exact buckets for v < 16, then 16 sub-buckets for each octave
  // [2^o, 2^(o+1)) with o in [4, 63].
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  static constexpr int kBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 976
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// Name-keyed registry. References returned by counter()/histogram() stay
// valid for the registry's lifetime (std::map nodes are stable).
class Stats {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  // Read-only lookup; returns 0 / empty histogram stats for unknown names.
  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }
  bool has_counter(const std::string& name) const {
    return counters_.contains(name);
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void Reset();

  // Multi-line "name = value" dump, optionally filtered by prefix.
  std::string ToString(std::string_view prefix = {}) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

// Prefix-scoped view over a shared Stats registry: every name passed
// through the view is recorded under `prefix + name` in the base
// registry. With an empty prefix the view is a transparent pass-through,
// so single-instance components keep their historical metric names; a
// fleet of instances sharing one simulation gives each its own prefix
// ("shard0.", "shard1.", ...) and their series stay separable while
// living in the one registry every reporter already reads.
class StatsView {
 public:
  StatsView(Stats* base, std::string prefix)
      : base_(base), prefix_(std::move(prefix)) {}

  Counter& counter(const std::string& name) {
    return base_->counter(prefix_.empty() ? name : prefix_ + name);
  }
  Histogram& histogram(const std::string& name) {
    return base_->histogram(prefix_.empty() ? name : prefix_ + name);
  }
  std::uint64_t counter_value(const std::string& name) const {
    return base_->counter_value(prefix_.empty() ? name : prefix_ + name);
  }
  bool has_counter(const std::string& name) const {
    return base_->has_counter(prefix_.empty() ? name : prefix_ + name);
  }

  const std::string& prefix() const { return prefix_; }
  Stats& base() { return *base_; }
  const Stats& base() const { return *base_; }

 private:
  Stats* base_;
  std::string prefix_;
};

}  // namespace kvcsd::sim
