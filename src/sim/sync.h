// Awaitable synchronization primitives for simulation processes.
//
// All of these are single-threaded (virtual concurrency only) and wake
// waiters *through the event queue* rather than by direct resumption, which
// keeps resumption order deterministic and stack depth bounded.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulation.h"

namespace kvcsd::sim {

// One-shot event ("gate"). Waiters block until Set() is called; waits after
// Set() complete immediately. Reset() re-arms it.
class Event {
 public:
  explicit Event(Simulation* sim) : sim_(sim) {}

  bool is_set() const { return set_; }

  void Set() {
    if (set_) return;
    set_ = true;
    for (auto handle : waiters_) sim_->ScheduleAt(sim_->Now(), handle);
    waiters_.clear();
  }

  void Reset() { set_ = false; }

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) const {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Golang-style wait group: Wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation* sim) : sim_(sim) {}

  void Add(std::int64_t n = 1) { count_ += n; }

  void Done() {
    assert(count_ > 0);
    if (--count_ == 0) {
      for (auto handle : waiters_) sim_->ScheduleAt(sim_->Now(), handle);
      waiters_.clear();
    }
  }

  std::int64_t count() const { return count_; }

  auto Wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const noexcept { return wg->count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        wg->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  std::int64_t count_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO waiters. Release() hands the permit directly
// to the oldest waiter (no barging), so acquisition order is arrival order.
class Semaphore {
 public:
  Semaphore(Simulation* sim, std::uint64_t permits)
      : sim_(sim), permits_(permits) {}

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept { return sem->permits_ > 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {
        // Either we were ready (consume a permit) or a Release() handed us
        // one implicitly (permits_ stayed 0 and we just run).
        if (sem->pending_handoff_ > 0) {
          --sem->pending_handoff_;
        } else {
          assert(sem->permits_ > 0);
          --sem->permits_;
        }
      }
    };
    return Awaiter{this};
  }

  void Release() {
    if (!waiters_.empty()) {
      auto handle = waiters_.front();
      waiters_.pop_front();
      ++pending_handoff_;
      sim_->ScheduleAt(sim_->Now(), handle);
    } else {
      ++permits_;
    }
  }

  std::uint64_t available() const { return permits_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulation* sim_;
  std::uint64_t permits_;
  std::uint64_t pending_handoff_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Unbounded MPMC channel. Pop() suspends while empty; Push() wakes the
// oldest popper. Used for NVMe submission queues and device work queues.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation* sim) : sim_(sim) {}

  void Push(T item) {
    if (!poppers_.empty()) {
      PopWaiter* waiter = poppers_.front();
      poppers_.pop_front();
      waiter->slot.emplace(std::move(item));
      sim_->ScheduleAt(sim_->Now(), waiter->handle);
    } else {
      items_.push_back(std::move(item));
    }
  }

  auto Pop() {
    struct Awaiter : PopWaiter {
      Channel* channel;
      explicit Awaiter(Channel* c) : channel(c) {}
      bool await_ready() const noexcept { return !channel->items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        channel->poppers_.push_back(this);
      }
      T await_resume() {
        if (this->slot.has_value()) return std::move(*this->slot);
        T item = std::move(channel->items_.front());
        channel->items_.pop_front();
        return item;
      }
    };
    return Awaiter{this};
  }

  // Non-blocking pop: empty optional when no item is queued. Safe to mix
  // with Pop() — poppers only ever park while `items_` is empty, so a
  // successful TryPop can never race a parked popper out of its item.
  std::optional<T> TryPop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  struct PopWaiter {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
  };

  Simulation* sim_;
  std::deque<T> items_;
  std::deque<PopWaiter*> poppers_;
};

}  // namespace kvcsd::sim
