// Lazy coroutine task types for the discrete-event simulation.
//
// A Task<T> is a coroutine that does not start until awaited. Awaiting it
// transfers control into the child (symmetric transfer) and resumes the
// parent when the child completes. The simulation is strictly
// single-threaded: all concurrency is virtual, interleaved by the event
// queue, so none of this needs atomics.
//
// GCC 12 PITFALL: never pass a *prvalue temporary* of a non-trivially-
// copyable type (std::string, structs containing them) as a BY-VALUE
// argument to a coroutine, e.g. `co_await F(MyStruct{...})`. GCC 12's
// guaranteed-elision path bit-copies the parameter into the coroutine
// frame, leaving SSO string pointers aimed at the caller's (soon freed)
// frame — a use-after-free that only bites once the data is moved onward.
// Always name the object and `std::move` it: `MyStruct s{...};
// co_await F(std::move(s));`. Reference parameters (`const T&`) bound to
// temporaries are fine as long as the caller co_awaits the task within the
// same full expression, which is this library's universal calling pattern.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace kvcsd::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }

  T TakeResult() {
    if (exception) std::rethrow_exception(exception);
    assert(value.has_value());
    return std::move(*value);
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}

  void TakeResult() const {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

// Move-only owning handle to a lazy coroutine.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a Task starts it and resumes the awaiter on completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer into the child
      }
      T await_resume() { return handle.promise().TakeResult(); }
    };
    return Awaiter{handle_};
  }
  auto operator co_await() & noexcept = delete;  // must own the task

  // Release ownership (used by the detached-spawn machinery).
  Handle release() { return std::exchange(handle_, nullptr); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace kvcsd::sim
