#include "sim/telemetry.h"

#include <algorithm>
#include <cstdio>

namespace kvcsd::sim {

void TelemetrySampler::Enable(Tick interval, std::size_t max_samples) {
  enabled_ = true;
  interval_ = interval == 0 ? 1 : interval;
  max_samples_ = max_samples == 0 ? 1 : max_samples;
}

std::uint64_t TelemetrySampler::AddSource(const std::string& key,
                                          SourceFn fn) {
  const std::uint64_t token = next_token_++;
  for (Source& s : sources_) {
    if (s.key == key) {
      s.token = token;
      s.fn = std::move(fn);
      return token;
    }
  }
  sources_.push_back(Source{key, token, std::move(fn)});
  return token;
}

void TelemetrySampler::RemoveSource(std::uint64_t token) {
  std::erase_if(sources_, [token](const Source& s) {
    return s.token == token;
  });
}

std::uint32_t TelemetrySampler::NameId(const std::string& name) {
  auto [it, inserted] =
      name_ids_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

void TelemetrySampler::Sample(Tick now) {
  SamplePoint point;
  point.tick = now - now % interval_;
  next_due_ = point.tick + interval_;
  scratch_.clear();
  for (Source& s : sources_) s.fn(&scratch_);
  point.values.reserve(scratch_.size());
  for (auto& [name, value] : scratch_) {
    point.values.emplace_back(NameId(name), value);
  }
  samples_.push_back(std::move(point));
  while (samples_.size() > max_samples_) {
    samples_.pop_front();
    ++dropped_;
  }
}

void TelemetrySampler::Clear() {
  samples_.clear();
  names_.clear();
  name_ids_.clear();
  dropped_ = 0;
  next_due_ = 0;
}

std::string TelemetrySampler::ToJson() const {
  std::string out;
  out.reserve(samples_.size() * 48 + 512);
  out += "{\"interval_ns\":";
  out += std::to_string(interval_);
  out += ",\"dropped\":";
  out += std::to_string(dropped_);
  out += ",\"names\":[";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"";
    out += names_[i];  // gauge names are code constants, no escaping needed
    out += "\"";
  }
  out += "],\"samples\":[\n";
  bool first = true;
  for (const SamplePoint& p : samples_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"t\":";
    out += std::to_string(p.tick);
    out += ",\"v\":[";
    bool first_v = true;
    for (const auto& [id, value] : p.values) {
      if (!first_v) out += ",";
      first_v = false;
      out += "[";
      out += std::to_string(id);
      out += ",";
      out += std::to_string(value);
      out += "]";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

Status TelemetrySampler::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open telemetry file: " + path);
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return Status::IoError("short write to telemetry file: " + path);
  }
  return Status::Ok();
}

}  // namespace kvcsd::sim
