// Time-series telemetry for the simulation: named gauge sources sampled on
// a fixed simulated-time cadence into a bounded ring of samples.
//
// Spans (tracer.h) answer "where did this command's time go"; telemetry
// answers "what did the device look like while it ran" — NVMe queue depth,
// in-flight commands, per-keyspace log sizes, zone utilization per role,
// compaction progress. Components register a source callback under a key;
// the simulation polls Due()/Sample() from its event loop, so sampling
// consumes zero simulated time and is exactly reproducible.
//
// Re-registering a key replaces the previous source: a Device::Restart
// registers its gauges under the same key and supersedes the powered-off
// device's callback, keeping one live writer per key across power cycles.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace kvcsd::sim {

class TelemetrySampler {
 public:
  static constexpr std::size_t kDefaultMaxSamples = 1 << 16;

  // A source appends (gauge name, value) pairs for the current instant.
  using Gauges = std::vector<std::pair<std::string, std::uint64_t>>;
  using SourceFn = std::function<void(Gauges*)>;

  void Enable(Tick interval, std::size_t max_samples = kDefaultMaxSamples);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  Tick interval() const { return interval_; }

  // Registers (or, for an existing key, replaces) a gauge source. Returns
  // a token for RemoveSource; an owner whose lifetime can end before the
  // simulation's must deregister, or Sample() calls into freed memory.
  std::uint64_t AddSource(const std::string& key, SourceFn fn);
  // Idempotent; a token superseded by a later AddSource on the same key
  // is ignored (the replacement owns the key now).
  void RemoveSource(std::uint64_t token);

  // Event-loop hook: cheap check + sample. Sample() stamps the sample at
  // the latest cadence multiple <= now, so sample spacing is exact even
  // when event times are sparse.
  bool Due(Tick now) const {
    return enabled_ && now >= next_due_ && !sources_.empty();
  }
  void Sample(Tick now);

  struct SamplePoint {
    Tick tick = 0;
    // (gauge name id, value); ids index into names().
    std::vector<std::pair<std::uint32_t, std::uint64_t>> values;
  };

  const std::deque<SamplePoint>& samples() const { return samples_; }
  const std::vector<std::string>& names() const { return names_; }
  std::size_t size() const { return samples_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void Clear();

  // {"interval_ns":..., "names":[...], "samples":[{"t":ns,"v":[[id,value],
  // ...]}, ...]} — columnar so long runs stay compact.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Source {
    std::string key;
    std::uint64_t token = 0;
    SourceFn fn;
  };

  std::uint32_t NameId(const std::string& name);

  bool enabled_ = false;
  Tick interval_ = Microseconds(100);
  Tick next_due_ = 0;
  std::size_t max_samples_ = kDefaultMaxSamples;
  std::uint64_t next_token_ = 1;
  std::vector<Source> sources_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> name_ids_;
  std::deque<SamplePoint> samples_;
  std::uint64_t dropped_ = 0;
  Gauges scratch_;
};

}  // namespace kvcsd::sim
