#include "sim/tracer.h"

#include <cstdio>

#include "sim/simulation.h"

namespace kvcsd::sim {

namespace {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Ticks are nanoseconds; trace_event timestamps are microseconds. Three
// decimals keep full nanosecond precision and a deterministic rendering.
void AppendMicros(std::string* out, Tick ticks) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ticks / 1000),
                static_cast<unsigned long long>(ticks % 1000));
  *out += buf;
}

}  // namespace

std::uint32_t Tracer::Track(std::string_view name) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return i;
  }
  tracks_.emplace_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::CompleteSpan(
    std::uint32_t track, std::string_view name, Tick begin, Tick end,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_ || Full()) return;
  events_.push_back(Event{track, 'X', std::string(name), begin,
                          std::max(begin, end), 0, std::move(args)});
}

void Tracer::Instant(std::uint32_t track, std::string_view name, Tick at,
                     std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_ || Full()) return;
  events_.push_back(Event{track, 'i', std::string(name), at, at, 0,
                          std::move(args)});
}

void Tracer::Flow(std::uint32_t track, char phase, std::string_view name,
                  std::uint64_t id, Tick at) {
  if (!enabled_ || Full()) return;
  events_.push_back(Event{track, phase, std::string(name), at, at, id, {}});
}

void Tracer::FlowBegin(std::uint32_t track, std::string_view name,
                       std::uint64_t id, Tick at) {
  Flow(track, 's', name, id, at);
}

void Tracer::FlowStep(std::uint32_t track, std::string_view name,
                      std::uint64_t id, Tick at) {
  Flow(track, 't', name, id, at);
}

void Tracer::FlowEnd(std::uint32_t track, std::string_view name,
                     std::uint64_t id, Tick at) {
  Flow(track, 'f', name, id, at);
}

std::string Tracer::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  comma();
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"kvcsd-sim\"}}";
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(i);
    out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(&out, tracks_[i]);
    out += "\"}}";
  }
  for (const Event& e : events_) {
    comma();
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    AppendMicros(&out, e.begin);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      AppendMicros(&out, e.end - e.begin);
    } else if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // instant scope: thread
    } else {
      // Flow events ('s'/'t'/'f') are matched by (cat, name, id); binding
      // to the enclosing slice needs "bp":"e" on the terminating event.
      out += ",\"cat\":\"flow\",\"id\":";
      out += std::to_string(e.flow_id);
      if (e.phase == 'f') out += ",\"bp\":\"e\"";
    }
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        AppendJsonEscaped(&out, k);
        out += "\":\"";
        AppendJsonEscaped(&out, v);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::Ok();
}

TraceSpan::TraceSpan(Simulation* sim, std::string_view track,
                     std::string_view name) {
  if (sim == nullptr || !sim->tracer().enabled()) return;
  sim_ = sim;
  track_ = sim->tracer().Track(track);
  name_ = name;
  begin_ = sim->Now();
}

TraceSpan::~TraceSpan() {
  if (sim_ == nullptr) return;
  sim_->tracer().CompleteSpan(track_, name_, begin_, sim_->Now(),
                              std::move(args_));
}

void TraceSpan::Arg(std::string_view key, std::string_view value) {
  if (sim_ == nullptr) return;
  args_.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::Arg(std::string_view key, std::uint64_t value) {
  if (sim_ == nullptr) return;
  args_.emplace_back(std::string(key), std::to_string(value));
}

}  // namespace kvcsd::sim
