// Span tracer for the simulation: scoped begin/end events on named tracks,
// dumped in Chrome trace_event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev to see the device pipeline laid out on the
// simulated timeline).
//
// Tracing is off by default and every record call is a cheap no-op until
// Enable() — benches turn it on with --trace=<path>. The simulated clock is
// nanoseconds; trace timestamps are emitted in microseconds (the
// trace_event unit) with nanosecond precision preserved as fractions.
//
// Typical use inside a coroutine (the span closes on every co_return path):
//
//   sim::TraceSpan span(sim_, "compaction", "phase1.run_gen");
//   span.Arg("keyspace", ks->name);
//   ... co_await work ...
//   // ~TraceSpan records [construction tick, destruction tick]
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace kvcsd::sim {

class Simulation;

class Tracer {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 1 << 20;

  // Turns recording on. `max_events` bounds memory; once full, further
  // events are counted in dropped() instead of stored.
  void Enable(std::size_t max_events = kDefaultMaxEvents) {
    enabled_ = true;
    max_events_ = max_events;
  }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Interns a track name ("thread" row in the viewer) to a small id.
  // Idempotent; track ids are assigned in first-use order.
  std::uint32_t Track(std::string_view name);

  // One finished span [begin, end] on `track`. Args are attached verbatim
  // as string key/values.
  void CompleteSpan(
      std::uint32_t track, std::string_view name, Tick begin, Tick end,
      std::vector<std::pair<std::string, std::string>> args = {});

  // A zero-duration marker (crash points, commit points).
  void Instant(std::uint32_t track, std::string_view name, Tick at,
               std::vector<std::pair<std::string, std::string>> args = {});

  // Flow events tie causally-related spans together across tracks: a
  // FlowBegin inside the producing span, optional FlowSteps inside relay
  // spans, and a FlowEnd inside the consuming span, all sharing (name, id)
  // — the viewer draws arrows along the chain. Emit them at a tick covered
  // by an enclosing 'X' span on the same track, or they have nothing to
  // bind to. `id` is the causal key (we use the command's cmd_id).
  void FlowBegin(std::uint32_t track, std::string_view name, std::uint64_t id,
                 Tick at);
  void FlowStep(std::uint32_t track, std::string_view name, std::uint64_t id,
                Tick at);
  void FlowEnd(std::uint32_t track, std::string_view name, std::uint64_t id,
               Tick at);

  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Chrome trace_event JSON ("traceEvents" array of X/i/M phases).
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    std::uint32_t track;
    char phase;  // 'X' complete span, 'i' instant, 's'/'t'/'f' flow
    std::string name;
    Tick begin;
    Tick end;
    std::uint64_t flow_id = 0;  // flow events only
    std::vector<std::pair<std::string, std::string>> args;
  };

  void Flow(std::uint32_t track, char phase, std::string_view name,
            std::uint64_t id, Tick at);

  bool Full() {
    if (events_.size() < max_events_) return false;
    ++dropped_;
    return true;
  }

  bool enabled_ = false;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

// RAII span: captures the simulated clock at construction and records a
// complete span on destruction. Does nothing when tracing is disabled at
// construction time. Declared in a coroutine frame, the destructor runs at
// whichever co_return exits the scope, stamping the correct end tick.
class TraceSpan {
 public:
  TraceSpan(Simulation* sim, std::string_view track, std::string_view name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  // Attaches a key/value to the span (no-op when disabled).
  void Arg(std::string_view key, std::string_view value);
  void Arg(std::string_view key, std::uint64_t value);

 private:
  Simulation* sim_ = nullptr;  // nullptr = tracing was off at construction
  std::uint32_t track_ = 0;
  std::string name_;
  Tick begin_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace kvcsd::sim
